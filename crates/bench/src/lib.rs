//! Shared plumbing for the experiment binaries (one per paper
//! table/figure) and the Criterion micro-benchmarks.
//!
//! Every experiment binary accepts `--quick` on the command line, which
//! divides the training/RL budgets by roughly 10 — useful for smoke
//! testing; the numbers recorded in `EXPERIMENTS.md` come from full
//! (non-quick) runs.

#![warn(missing_docs)]

use std::time::Instant;

use hs_data::Dataset;
use hs_nn::optim::Sgd;
use hs_nn::{train, Network, NnError};
use hs_tensor::Rng;

/// Budget profile of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Epochs used to pre-train the original model.
    pub pretrain_epochs: usize,
    /// Fine-tuning epochs after pruning each layer.
    pub finetune_epochs: usize,
    /// RL episode cap per layer.
    pub rl_episodes: usize,
    /// Evaluation-split size for RL rewards.
    pub rl_eval_images: usize,
}

impl Budget {
    /// The full budget used for the recorded results.
    pub fn full() -> Self {
        Budget {
            pretrain_epochs: 14,
            finetune_epochs: 3,
            rl_episodes: 60,
            rl_eval_images: 64,
        }
    }

    /// A ~10× cheaper smoke-test budget.
    pub fn quick() -> Self {
        Budget {
            pretrain_epochs: 2,
            finetune_epochs: 1,
            rl_episodes: 12,
            rl_eval_images: 24,
        }
    }

    /// Parses the budget from the process arguments (`--quick`).
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--quick") {
            eprintln!("[budget] --quick: reduced budgets, numbers will be rough");
            Budget::quick()
        } else {
            Budget::full()
        }
    }
}

/// Trains a fresh SGD schedule on `net` (momentum 0.9, weight decay
/// 5e-4, the paper's fine-tuning settings) and reports progress.
///
/// # Errors
///
/// Propagates training errors.
pub fn pretrain(
    net: &mut Network,
    ds: &Dataset,
    epochs: usize,
    rng: &mut Rng,
) -> Result<f32, NnError> {
    let mut opt = Sgd::new(0.05).momentum(0.9).weight_decay(5e-4);
    let start = Instant::now();
    for epoch in 0..epochs {
        let stats = train::train_epoch(net, &mut opt, &ds.train_images, &ds.train_labels, 32, rng)?;
        if epoch % 4 == 0 || epoch + 1 == epochs {
            eprintln!(
                "[pretrain] epoch {epoch:3}: loss {:.3} train-acc {:.3} ({:.1?})",
                stats.loss,
                stats.accuracy,
                start.elapsed()
            );
        }
    }
    train::evaluate(net, &ds.test_images, &ds.test_labels, 64)
}

/// Percentage formatting used across all tables.
pub fn pct(x: f32) -> String {
    format!("{:.2}", x * 100.0)
}

/// A labelled stopwatch for experiment phases.
#[derive(Debug)]
pub struct Phase {
    label: String,
    start: Instant,
}

impl Phase {
    /// Starts timing a phase and logs it.
    pub fn start(label: &str) -> Self {
        eprintln!("[phase] {label} ...");
        Phase {
            label: label.to_string(),
            start: Instant::now(),
        }
    }

    /// Ends the phase, logging the elapsed time.
    pub fn end(self) {
        eprintln!(
            "[phase] {} done in {:.1?}",
            self.label,
            self.start.elapsed()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_are_ordered() {
        let f = Budget::full();
        let q = Budget::quick();
        assert!(q.pretrain_epochs < f.pretrain_epochs);
        assert!(q.rl_episodes < f.rl_episodes);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.7239), "72.39");
    }
}
