//! Shared plumbing for the experiment binaries (one per paper
//! table/figure) and the Criterion micro-benchmarks.
//!
//! The pipeline itself — budgets, pre-training, phase stopwatches, JSON
//! artifacts, whole-model prune drivers — lives in the `hs-runner`
//! crate; this crate re-exports the handful of names the binaries and
//! older call sites use so downstream code keeps compiling.
//!
//! Every experiment binary accepts `--quick` on the command line, which
//! divides the training/RL budgets by roughly 10 — useful for smoke
//! testing; the numbers recorded in `EXPERIMENTS.md` come from full
//! (non-quick) runs.

#![warn(missing_docs)]

pub use hs_runner::{pct, pretrain, Budget, Phase};
