//! **Table 4** + **Figures 4–5**: block-level HeadStart pruning of a
//! deep CIFAR ResNet. The paper prunes ResNet-110 to 27 blocks
//! (<10, 10, 7> per group) and compares against the original ResNet-110,
//! the same-size ResNet-56, and training the pruned structure from
//! scratch. At this reproduction's scale the deep model is ResNet-38
//! (n = 6) and the shallow sibling ResNet-20 (n = 3); the experiment
//! shape is identical.
//!
//! The per-group parameter/FLOP breakdown printed at the end *is*
//! Figures 4 and 5.
//!
//! ```text
//! cargo run --release -p hs-bench --bin table4_resnet_blocks [--quick]
//! ```

use hs_data::Dataset;
use hs_nn::accounting::analyze;
use hs_nn::{models, Network, Node};
use hs_runner::{pct, prepare, Budget, Method, ModelChoice, ModelKind, RunnerConfig};

const N_DEEP: usize = 6; // ResNet-38
const N_SHALLOW: usize = 3; // ResNet-20
const WIDTH: f32 = 0.25;

/// Per-group (params, flops) across the three ResNet groups.
fn group_costs(net: &Network, ds: &Dataset, n: usize) -> [(u64, u64); 3] {
    let cost = analyze(net, ds.channels(), ds.image_size()).expect("cost");
    let blocks = net.block_indices();
    let groups = models::resnet_block_groups(n);
    let mut out = [(0u64, 0u64); 3];
    for (g, &node) in groups.iter().zip(&blocks) {
        let params = cost.params_of(&[node]);
        let flops = cost.flops_of(&[node]);
        out[*g].0 += params;
        out[*g].1 += flops;
    }
    out
}

fn resnet_config(label: &str, n: usize, seed: u64, budget: Budget) -> RunnerConfig {
    let mut cfg = RunnerConfig::new(label);
    cfg.model = ModelChoice::new(ModelKind::ResNetCifar { n }, WIDTH);
    cfg.seed = seed;
    cfg.budget = budget;
    cfg
}

fn main() {
    let budget = Budget::from_args();

    // Deep model and its shallow sibling, same pre-training budget.
    let deep = prepare(&resnet_config("table4-deep", N_DEEP, 4, budget)).expect("prepare deep");
    let shallow =
        prepare(&resnet_config("table4-shallow", N_SHALLOW, 5, budget)).expect("prepare shallow");

    // HeadStart block pruning of the deep model.
    let hs = deep
        .run_method(&Method::HeadStartBlocks { sp: 2.0 }, 6)
        .expect("block pruning");
    let decision = hs.block_decision.as_ref().expect("block decision");

    // From scratch with the same (block-pruned) structure.
    let scratch = deep
        .run_scratch(&hs.net, budget.pretrain_epochs, 7)
        .expect("scratch");

    let depth_deep = models::resnet_depth(N_DEEP);
    let depth_shallow = models::resnet_depth(N_SHALLOW);
    println!("# Table 4 — block-level pruning on synthetic CIFAR-100");
    println!(
        "{:<28} {:>10} {:>10} {:>8} {:>8}",
        "MODEL", "#PARAM(M)", "#MACS(B)", "ACC%", "C.R.%"
    );
    let row = |name: &str, p: f64, f: f64, a: f32, cr: f64| {
        println!(
            "{:<28} {:>10.4} {:>10.5} {:>8} {:>8.2}",
            name,
            p,
            f,
            pct(a),
            cr
        );
    };
    let deep_cost = deep.original_cost.clone();
    row(
        &format!("ResNet-{depth_deep} original"),
        deep_cost.params_millions(),
        deep_cost.flops_billions(),
        deep.original_accuracy,
        100.0,
    );
    row(
        &format!("ResNet-{depth_shallow} original"),
        shallow.original_cost.params_millions(),
        shallow.original_cost.flops_billions(),
        shallow.original_accuracy,
        100.0 * shallow.original_cost.total_params as f64 / deep_cost.total_params as f64,
    );
    row(
        &format!("ResNet-{depth_deep} HeadStart"),
        hs.cost.params_millions(),
        hs.cost.flops_billions(),
        hs.final_accuracy,
        100.0 * hs.cost.total_params as f64 / deep_cost.total_params as f64,
    );
    row(
        &format!("ResNet-{depth_deep} HS f. scratch"),
        hs.cost.params_millions(),
        hs.cost.flops_billions(),
        scratch.final_accuracy,
        100.0 * hs.cost.total_params as f64 / deep_cost.total_params as f64,
    );

    // Figures 4 & 5: per-group breakdown.
    let groups = models::resnet_block_groups(N_DEEP);
    let mut kept = [0usize; 3];
    for (g, &a) in groups.iter().zip(&decision.active) {
        if a {
            kept[*g] += 1;
        }
    }
    // Sanity: active flags in the pruned network agree with the decision.
    let blocks = hs.net.block_indices();
    for (&node, &a) in blocks.iter().zip(&decision.active) {
        if let Node::Block(b) = hs.net.node(node) {
            assert_eq!(b.is_active(), a, "decision/network disagreement");
        }
    }
    let hs_groups = group_costs(&hs.net, &deep.ds, N_DEEP);
    let sh_groups = group_costs(&shallow.net, &shallow.ds, N_SHALLOW);
    println!("\n# Figures 4 & 5 — per-group #PARAMETERS (x1e5) and #FLOPS (x1e7)");
    println!(
        "{:<10} {:>14} {:>14} {:>14} {:>14}",
        "GROUP", "HS params", "R-20 params", "HS flops", "R-20 flops"
    );
    for g in 0..3 {
        println!(
            "group{:<5} {:>14.3} {:>14.3} {:>14.3} {:>14.3}",
            g + 1,
            hs_groups[g].0 as f64 / 1e5,
            sh_groups[g].0 as f64 / 1e5,
            hs_groups[g].1 as f64 / 1e7,
            sh_groups[g].1 as f64 / 1e7,
        );
    }
    println!(
        "# HeadStart kept blocks per group: <{}, {}, {}> of <{N_DEEP}, {N_DEEP}, {N_DEEP}> (ResNet-{depth_shallow} is <{N_SHALLOW}, {N_SHALLOW}, {N_SHALLOW}>)",
        kept[0], kept[1], kept[2]
    );
}
