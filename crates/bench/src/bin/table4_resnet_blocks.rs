//! **Table 4** + **Figures 4–5**: block-level HeadStart pruning of a
//! deep CIFAR ResNet. The paper prunes ResNet-110 to 27 blocks
//! (<10, 10, 7> per group) and compares against the original ResNet-110,
//! the same-size ResNet-56, and training the pruned structure from
//! scratch. At this reproduction's scale the deep model is ResNet-38
//! (n = 6) and the shallow sibling ResNet-20 (n = 3); the experiment
//! shape is identical.
//!
//! The per-group parameter/FLOP breakdown printed at the end *is*
//! Figures 4 and 5.
//!
//! ```text
//! cargo run --release -p hs-bench --bin table4_resnet_blocks [--quick]
//! ```

use hs_bench::{pct, pretrain, Budget, Phase};
use hs_core::{BlockPruner, HeadStartConfig};
use hs_data::{cached, DatasetSpec};
use hs_nn::accounting::analyze;
use hs_nn::{models, Network, Node};
use hs_pruning::driver::{train_from_scratch, FineTune};
use hs_tensor::Rng;

const N_DEEP: usize = 6; // ResNet-38
const N_SHALLOW: usize = 3; // ResNet-20
const WIDTH: f32 = 0.25;

/// Per-group (params, flops) across the three ResNet groups.
fn group_costs(net: &Network, ds: &hs_data::Dataset, n: usize) -> [(u64, u64); 3] {
    let cost = analyze(net, ds.channels(), ds.image_size()).expect("cost");
    let blocks = net.block_indices();
    let groups = models::resnet_block_groups(n);
    let mut out = [(0u64, 0u64); 3];
    for (g, &node) in groups.iter().zip(&blocks) {
        let params = cost.params_of(&[node]);
        let flops = cost.flops_of(&[node]);
        out[*g].0 += params;
        out[*g].1 += flops;
    }
    out
}

fn main() {
    let budget = Budget::from_args();
    let ds = cached(&DatasetSpec::cifar_like()).expect("dataset");

    // Deep model.
    let mut rng = Rng::seed_from(4);
    let mut deep = models::resnet_cifar(N_DEEP, ds.channels(), ds.num_classes(), WIDTH, &mut rng)
        .expect("model");
    let phase = Phase::start("pretraining deep ResNet");
    let deep_acc = pretrain(&mut deep, &ds, budget.pretrain_epochs, &mut rng).expect("pretrain");
    phase.end();
    let deep_cost = analyze(&deep, ds.channels(), ds.image_size()).expect("cost");

    // Shallow sibling with the same total budget.
    let mut rng2 = Rng::seed_from(5);
    let mut shallow =
        models::resnet_cifar(N_SHALLOW, ds.channels(), ds.num_classes(), WIDTH, &mut rng2)
            .expect("model");
    let phase = Phase::start("pretraining shallow ResNet");
    let shallow_acc =
        pretrain(&mut shallow, &ds, budget.pretrain_epochs, &mut rng2).expect("pretrain");
    phase.end();
    let shallow_cost = analyze(&shallow, ds.channels(), ds.image_size()).expect("cost");

    // HeadStart block pruning of the deep model.
    let phase = Phase::start("HeadStart block pruning");
    let cfg = HeadStartConfig::new(2.0)
        .max_episodes(budget.rl_episodes)
        .eval_images(budget.rl_eval_images);
    // Block pruning fine-tunes once at the end; give it the whole
    // per-layer budget.
    let ft = FineTune {
        epochs: (budget.finetune_epochs * 3).max(1),
        ..FineTune::default()
    };
    let mut hs_rng = Rng::seed_from(6);
    let (decision, hs_acc) = BlockPruner::new(cfg)
        .prune_and_finetune(&mut deep, &ds, &ft, &mut hs_rng)
        .expect("block pruning");
    phase.end();
    let hs_cost = analyze(&deep, ds.channels(), ds.image_size()).expect("cost");

    // From scratch with the same (block-pruned) structure.
    let phase = Phase::start("from scratch");
    let mut scratch_rng = Rng::seed_from(7);
    let scratch_acc = train_from_scratch(
        &deep,
        &ds,
        budget.pretrain_epochs,
        &FineTune::default(),
        &mut scratch_rng,
    )
    .expect("scratch");
    phase.end();

    let depth_deep = models::resnet_depth(N_DEEP);
    let depth_shallow = models::resnet_depth(N_SHALLOW);
    println!("# Table 4 — block-level pruning on synthetic CIFAR-100");
    println!(
        "{:<28} {:>10} {:>10} {:>8} {:>8}",
        "MODEL", "#PARAM(M)", "#MACS(B)", "ACC%", "C.R.%"
    );
    let row = |name: &str, p: f64, f: f64, a: f32, cr: f64| {
        println!(
            "{:<28} {:>10.4} {:>10.5} {:>8} {:>8.2}",
            name,
            p,
            f,
            pct(a),
            cr
        );
    };
    row(
        &format!("ResNet-{depth_deep} original"),
        deep_cost.params_millions(),
        deep_cost.flops_billions(),
        deep_acc,
        100.0,
    );
    row(
        &format!("ResNet-{depth_shallow} original"),
        shallow_cost.params_millions(),
        shallow_cost.flops_billions(),
        shallow_acc,
        100.0 * shallow_cost.total_params as f64 / deep_cost.total_params as f64,
    );
    row(
        &format!("ResNet-{depth_deep} HeadStart"),
        hs_cost.params_millions(),
        hs_cost.flops_billions(),
        hs_acc,
        100.0 * hs_cost.total_params as f64 / deep_cost.total_params as f64,
    );
    row(
        &format!("ResNet-{depth_deep} HS f. scratch"),
        hs_cost.params_millions(),
        hs_cost.flops_billions(),
        scratch_acc,
        100.0 * hs_cost.total_params as f64 / deep_cost.total_params as f64,
    );

    // Figures 4 & 5: per-group breakdown.
    let groups = models::resnet_block_groups(N_DEEP);
    let mut kept = [0usize; 3];
    for (g, &a) in groups.iter().zip(&decision.active) {
        if a {
            kept[*g] += 1;
        }
    }
    // Sanity: active flags in the network agree with the decision.
    let blocks = deep.block_indices();
    for (&node, &a) in blocks.iter().zip(&decision.active) {
        if let Node::Block(b) = deep.node(node) {
            assert_eq!(b.is_active(), a, "decision/network disagreement");
        }
    }
    let hs_groups = group_costs(&deep, &ds, N_DEEP);
    // Re-instantiate the shallow model's groups for comparison.
    let sh_groups = group_costs(&shallow, &ds, N_SHALLOW);
    println!("\n# Figures 4 & 5 — per-group #PARAMETERS (x1e5) and #FLOPS (x1e7)");
    println!(
        "{:<10} {:>14} {:>14} {:>14} {:>14}",
        "GROUP", "HS params", "R-20 params", "HS flops", "R-20 flops"
    );
    for g in 0..3 {
        println!(
            "group{:<5} {:>14.3} {:>14.3} {:>14.3} {:>14.3}",
            g + 1,
            hs_groups[g].0 as f64 / 1e5,
            sh_groups[g].0 as f64 / 1e5,
            hs_groups[g].1 as f64 / 1e7,
            sh_groups[g].1 as f64 / 1e7,
        );
    }
    println!(
        "# HeadStart kept blocks per group: <{}, {}, {}> of <{N_DEEP}, {N_DEEP}, {N_DEEP}> (ResNet-{depth_shallow} is <{N_SHALLOW}, {N_SHALLOW}, {N_SHALLOW}>)",
        kept[0], kept[1], kept[2]
    );
}
