//! **Figure 6**: frames-per-second of original vs HeadStart-pruned
//! models on the paper's four platforms (Jetson TX2 CPU+GPU, Xeon +
//! GTX 1080Ti), for VGG and ResNet on both the small (CIFAR-like) and
//! large (CUB-like) input sizes — via the roofline latency model.
//!
//! Architectures are instantiated at the paper's full widths and real
//! input sizes (32×32 CIFAR, 224×224 CUB); the latency model needs only
//! the architecture, not trained weights. The pruned VGG keeps ~50% of
//! every layer's maps (the sp = 2 result of Tables 1–2); the pruned
//! ResNet-110 keeps the paper's learned <10, 10, 7> blocks per group.
//!
//! ```text
//! cargo run --release -p hs-bench --bin fig6_inference_speedup [--artifact PATH]
//! ```

use hs_gpusim::{devices, estimate, DeviceSpec};
use hs_nn::{models, Network, Node};
use hs_runner::{write_json, Json};
use hs_tensor::Rng;

/// Deactivates blocks so each group keeps `keep[g]` of its `n` blocks
/// (downsample blocks always stay).
fn prune_blocks(net: &mut Network, n: usize, keep: [usize; 3]) {
    let blocks = net.block_indices();
    let groups = models::resnet_block_groups(n);
    let mut kept = [0usize; 3];
    for (&node, &g) in blocks.iter().zip(&groups) {
        let can = match net.node(node) {
            Node::Block(b) => b.can_prune(),
            _ => false,
        };
        let keep_this = !can || kept[g] < keep[g];
        if keep_this {
            kept[g] += 1;
        } else {
            net.set_block_active(node, false).expect("prunable");
        }
    }
}

fn fps_of(device: &DeviceSpec, net: &Network, size: usize) -> f64 {
    estimate(device, net, 3, size).expect("estimate").fps()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let artifact = args
        .iter()
        .position(|a| a == "--artifact")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let mut rng = Rng::seed_from(0);
    println!("# Figure 6 — inference fps, original vs HeadStart-pruned (roofline model)");
    println!(
        "{:<22} {:<16} {:>10} {:>10} {:>8}",
        "SCENARIO", "DEVICE", "ORIG fps", "HS fps", "SPEEDUP"
    );

    // (a) Jetson TX2 (CPU + GPU), (b) Xeon + 1080Ti — all four devices
    // for each scenario.
    let mut rows: Vec<Json> = Vec::new();
    let mut scenario = |name: &str, size: usize, full: &Network, pruned: &Network| {
        for device in devices::all() {
            let f = fps_of(&device, full, size);
            let p = fps_of(&device, pruned, size);
            println!(
                "{:<22} {:<16} {:>10.1} {:>10.1} {:>7.2}x",
                name,
                device.name,
                f,
                p,
                p / f
            );
            rows.push(Json::Obj(vec![
                ("scenario".into(), Json::str(name)),
                ("device".into(), Json::str(device.name)),
                ("original_fps".into(), Json::num(f)),
                ("pruned_fps".into(), Json::num(p)),
                ("speedup".into(), Json::num(p / f)),
            ]));
        }
        println!();
    };

    // VGG-16 on CIFAR (32x32): sp = 2 pruning halves every layer.
    let vgg_cifar_full = models::vgg16(3, 100, 32, 1.0, &mut rng).expect("model");
    let vgg_cifar_pruned = models::vgg16(3, 100, 32, 0.5, &mut rng).expect("model");
    scenario("VGG-16 / CIFAR-100", 32, &vgg_cifar_full, &vgg_cifar_pruned);

    // VGG-16 on CUB (224x224).
    let vgg_cub_full = models::vgg16(3, 200, 224, 1.0, &mut rng).expect("model");
    let vgg_cub_pruned = models::vgg16(3, 200, 224, 0.5, &mut rng).expect("model");
    scenario("VGG-16 / CUB-200", 224, &vgg_cub_full, &vgg_cub_pruned);

    // ResNet-110 on CIFAR: the paper's learned <10, 10, 7> blocks.
    let resnet_full = models::resnet_cifar(18, 3, 100, 1.0, &mut rng).expect("model");
    let mut resnet_pruned = models::resnet_cifar(18, 3, 100, 1.0, &mut rng).expect("model");
    prune_blocks(&mut resnet_pruned, 18, [10, 10, 7]);
    scenario("ResNet-110 / CIFAR", 32, &resnet_full, &resnet_pruned);

    // ResNet-110 on CUB-sized inputs (224x224).
    let resnet_cub_full = models::resnet_cifar(18, 3, 200, 1.0, &mut rng).expect("model");
    let mut resnet_cub_pruned = models::resnet_cifar(18, 3, 200, 1.0, &mut rng).expect("model");
    prune_blocks(&mut resnet_cub_pruned, 18, [10, 10, 7]);
    scenario(
        "ResNet-110 / CUB-200",
        224,
        &resnet_cub_full,
        &resnet_cub_pruned,
    );

    if let Some(path) = artifact {
        let doc = Json::Obj(vec![("rows".into(), Json::Arr(rows))]);
        write_json(&path, &doc).expect("write artifact");
        println!("wrote {path}");
    }
}
