//! Ablations of HeadStart's design choices (DESIGN.md §ablations):
//!
//! 1. self-critical baseline (Eq. 9) vs plain REINFORCE (Eq. 7);
//! 2. Monte-Carlo sample count k ∈ {1, 3, 5} (paper uses 3);
//! 3. inference threshold t ∈ {0.3, 0.5, 0.7} (paper uses 0.5);
//! 4. fixed vs resampled policy noise input.
//!
//! Each variant prunes the same layer of the same pretrained VGG and
//! reports the learned keep count, the inception accuracy on the test
//! set and the episodes to convergence.
//!
//! ```text
//! cargo run --release -p hs-bench --bin ablation_reward [--quick]
//! ```

use hs_bench::{pct, pretrain, Budget, Phase};
use hs_core::{HeadStartConfig, LayerPruner};
use hs_data::{cached, DatasetSpec};
use hs_nn::{models, surgery, train};
use hs_tensor::Rng;

fn main() {
    let budget = Budget::from_args();
    let ds = cached(&DatasetSpec::cifar_like()).expect("dataset");
    let mut rng = Rng::seed_from(77);
    let mut net = models::vgg11(
        ds.channels(),
        ds.num_classes(),
        ds.image_size(),
        0.25,
        &mut rng,
    )
    .expect("model");
    let phase = Phase::start("pretraining VGG");
    let original = pretrain(&mut net, &ds, budget.pretrain_epochs, &mut rng).expect("pretrain");
    phase.end();
    println!(
        "# HeadStart ablations, conv ordinal 2, sp = 2 (original acc {}%)",
        pct(original)
    );
    println!(
        "{:<34} {:>6} {:>10} {:>9}",
        "VARIANT", "KEPT", "EPISODES", "INC-ACC%"
    );

    let base = HeadStartConfig::new(2.0)
        .max_episodes(budget.rl_episodes)
        .eval_images(budget.rl_eval_images);
    let variants: Vec<(String, HeadStartConfig)> = vec![
        ("paper defaults (k=3, t=0.5, SC)".into(), base.clone()),
        (
            "no baseline (plain REINFORCE)".into(),
            base.clone().without_baseline(),
        ),
        (
            "k = 1 Monte-Carlo sample".into(),
            base.clone().monte_carlo_samples(1),
        ),
        (
            "k = 5 Monte-Carlo samples".into(),
            base.clone().monte_carlo_samples(5),
        ),
        ("threshold t = 0.3".into(), base.clone().threshold(0.3)),
        ("threshold t = 0.7".into(), base.clone().threshold(0.7)),
        ("resampled noise input".into(), {
            let mut cfg = base.clone();
            cfg.resample_noise = true;
            cfg
        }),
    ];

    // Average each variant over 2 seeds for stability.
    let seeds = [500u64, 501];
    for (label, cfg) in variants {
        let mut kept_total = 0usize;
        let mut episodes_total = 0usize;
        let mut acc_total = 0.0f32;
        for &seed in &seeds {
            let mut vnet = net.clone();
            let mut vrng = Rng::seed_from(seed);
            let d = LayerPruner::new(cfg.clone())
                .prune(&mut vnet, 2, &ds, &mut vrng)
                .expect("prune");
            let conv = vnet.conv_indices()[2];
            surgery::prune_feature_maps(&mut vnet, conv, &d.keep).expect("surgery");
            acc_total +=
                train::evaluate(&mut vnet, &ds.test_images, &ds.test_labels, 64).expect("eval");
            kept_total += d.keep.len();
            episodes_total += d.episodes;
        }
        let n = seeds.len();
        println!(
            "{:<34} {:>6.1} {:>10.1} {:>9}",
            label,
            kept_total as f32 / n as f32,
            episodes_total as f32 / n as f32,
            pct(acc_total / n as f32)
        );
    }
}
