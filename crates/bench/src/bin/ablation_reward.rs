//! Ablations of HeadStart's design choices (DESIGN.md §ablations):
//!
//! 1. self-critical baseline (Eq. 9) vs plain REINFORCE (Eq. 7);
//! 2. Monte-Carlo sample count k ∈ {1, 3, 5} (paper uses 3);
//! 3. inference threshold t ∈ {0.3, 0.5, 0.7} (paper uses 0.5);
//! 4. fixed vs resampled policy noise input.
//!
//! Each variant prunes the same layer of the same pretrained VGG and
//! reports the learned keep count, the inception accuracy on the test
//! set and the episodes to convergence.
//!
//! ```text
//! cargo run --release -p hs-bench --bin ablation_reward [--quick]
//! ```

use hs_core::HeadStartConfig;
use hs_runner::{pct, prepare, Budget, RunnerConfig};

fn main() {
    let mut cfg = RunnerConfig::new("ablation");
    cfg.seed = 77;
    cfg.budget = Budget::from_args();
    let prepared = prepare(&cfg).expect("prepare");
    println!(
        "# HeadStart ablations, conv ordinal 2, sp = 2 (original acc {}%)",
        pct(prepared.original_accuracy)
    );
    println!(
        "{:<34} {:>6} {:>10} {:>9}",
        "VARIANT", "KEPT", "EPISODES", "INC-ACC%"
    );

    let base = prepared.headstart_layer_cfg(2.0);
    let variants: Vec<(String, HeadStartConfig)> = vec![
        ("paper defaults (k=3, t=0.5, SC)".into(), base.clone()),
        (
            "no baseline (plain REINFORCE)".into(),
            base.clone().without_baseline(),
        ),
        (
            "k = 1 Monte-Carlo sample".into(),
            base.clone().monte_carlo_samples(1),
        ),
        (
            "k = 5 Monte-Carlo samples".into(),
            base.clone().monte_carlo_samples(5),
        ),
        ("threshold t = 0.3".into(), base.clone().threshold(0.3)),
        ("threshold t = 0.7".into(), base.clone().threshold(0.7)),
        ("resampled noise input".into(), {
            let mut cfg = base.clone();
            cfg.resample_noise = true;
            cfg
        }),
    ];

    // Average each variant over 2 seeds for stability.
    let seeds = [500u64, 501];
    for (label, vcfg) in variants {
        let mut kept_total = 0usize;
        let mut episodes_total = 0usize;
        let mut acc_total = 0.0f32;
        for &seed in &seeds {
            let run = prepared
                .single_layer_headstart(&vcfg, 2, false, seed)
                .expect("prune");
            kept_total += run.kept;
            episodes_total += run.episodes;
            acc_total += run.accuracy;
        }
        let n = seeds.len();
        println!(
            "{:<34} {:>6.1} {:>10.1} {:>9}",
            label,
            kept_total as f32 / n as f32,
            episodes_total as f32 / n as f32,
            pct(acc_total / n as f32)
        );
    }
}
