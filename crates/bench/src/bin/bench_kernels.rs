//! Kernel microbenchmarks for the persistent-pool + blocked-GEMM work:
//! times the packed/blocked GEMM against a faithful reimplementation of
//! the seed's naive `i-k-j` kernel (per-call thread spawning, 8-thread
//! cap), plus conv forward/backward and a full train step, and writes
//! the numbers to `BENCH_kernels.json` at the repository root.
//!
//! ```text
//! cargo run --release -p hs-bench --bin bench_kernels
//! ```

use std::time::Instant;

use hs_nn::layer::{Conv2d, GlobalAvgPool, Linear, MaxPool2d, ReLU};
use hs_nn::loss::softmax_cross_entropy;
use hs_nn::optim::{Optimizer, Sgd};
use hs_nn::{Network, Node};
use hs_runner::{write_json, Json};
use hs_telemetry::metrics::MetricSnapshot;
use hs_tensor::{gemm_ex, pool, Rng, Shape, Tensor};

/// The seed's GEMM: naive `i-k-j` row bands, threads spawned per call
/// (capped at 8), zero-skipping inner loop. Kept verbatim in spirit so
/// the benchmark compares against exactly what the pool replaced.
fn seed_gemm(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    fn band(a: &[f32], b: &[f32], out: &mut [f32], rows: usize, k: usize, n: usize) {
        for i in 0..rows {
            let a_row = &a[i * k..(i + 1) * k];
            let out_row = &mut out[i * n..(i + 1) * n];
            for (p, &a_ip) in a_row.iter().enumerate() {
                if a_ip == 0.0 {
                    continue;
                }
                let b_row = &b[p * n..(p + 1) * n];
                for (o, &b_pj) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a_ip * b_pj;
                }
            }
        }
    }
    let mut out = vec![0.0f32; m * n];
    let threads = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1)
        .min(8);
    if m * k * n < (1 << 18) || threads < 2 || m < 2 {
        band(a, b, &mut out, m, k, n);
        return out;
    }
    let rows_per = m.div_ceil(threads);
    std::thread::scope(|scope| {
        for (band_idx, out_chunk) in out.chunks_mut(rows_per * n).enumerate() {
            let row0 = band_idx * rows_per;
            let rows = out_chunk.len() / n;
            let a_chunk = &a[row0 * k..(row0 + rows) * k];
            scope.spawn(move || band(a_chunk, b, out_chunk, rows, k, n));
        }
    });
    out
}

/// Best-of-`reps` wall time of `f`, in seconds.
fn best_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

struct GemmRow {
    size: usize,
    seed_secs: f64,
    new_secs: f64,
}

fn bench_gemm(size: usize, reps: usize, rng: &mut Rng) -> GemmRow {
    let a = Tensor::randn(Shape::d2(size, size), rng);
    let b = Tensor::randn(Shape::d2(size, size), rng);
    let mut out = vec![0.0f32; size * size];
    // Warm both paths (page in buffers, populate the scratch arena).
    let _ = seed_gemm(a.data(), b.data(), size, size, size);
    gemm_ex(
        &mut out,
        a.data(),
        b.data(),
        size,
        size,
        size,
        false,
        false,
        false,
    );
    let seed_secs = best_secs(reps, || {
        std::hint::black_box(seed_gemm(a.data(), b.data(), size, size, size));
    });
    let new_secs = best_secs(reps, || {
        gemm_ex(
            &mut out,
            a.data(),
            b.data(),
            size,
            size,
            size,
            false,
            false,
            false,
        );
        std::hint::black_box(out[0]);
    });
    GemmRow {
        size,
        seed_secs,
        new_secs,
    }
}

fn gflops(size: usize, secs: f64) -> f64 {
    2.0 * (size as f64).powi(3) / secs / 1e9
}

fn main() {
    let mut rng = Rng::seed_from(2019);
    println!("# kernel benchmarks ({} pool threads)", pool::num_threads());

    let gemm_rows: Vec<GemmRow> = [(128usize, 20usize), (256, 8), (512, 3)]
        .iter()
        .map(|&(s, r)| bench_gemm(s, r, &mut rng))
        .collect();
    for row in &gemm_rows {
        println!(
            "gemm {s}x{s}x{s}: seed {seed:.2} ms ({sg:.2} GFLOP/s) -> blocked {new:.2} ms ({ng:.2} GFLOP/s), {x:.2}x",
            s = row.size,
            seed = row.seed_secs * 1e3,
            sg = gflops(row.size, row.seed_secs),
            new = row.new_secs * 1e3,
            ng = gflops(row.size, row.new_secs),
            x = row.seed_secs / row.new_secs,
        );
    }

    // Conv forward/backward on a mid-size layer.
    let mut conv = Conv2d::new(16, 32, 3, 1, 1, &mut rng);
    let x = Tensor::randn(Shape::d4(8, 16, 32, 32), &mut rng);
    let y = conv.forward(&x, true).expect("conv forward");
    let dy = Tensor::ones(y.shape().clone());
    conv.backward(&dy).expect("conv backward");
    let conv_fwd_secs = best_secs(10, || {
        std::hint::black_box(conv.forward(&x, true).expect("conv forward"));
    });
    // Forward once more so every timed backward has a fresh input cache.
    let conv_bwd_secs = best_secs(10, || {
        conv.forward(&x, true).expect("conv forward");
        std::hint::black_box(conv.backward(&dy).expect("conv backward"));
    }) - conv_fwd_secs;
    println!(
        "conv fwd {:.2} ms, bwd {:.2} ms",
        conv_fwd_secs * 1e3,
        conv_bwd_secs * 1e3
    );

    // Full train step (zero_grad + forward + loss + backward + SGD) on a
    // small conv net.
    let mut net = Network::new();
    net.push(Node::Conv(Conv2d::new(3, 16, 3, 1, 1, &mut rng)));
    net.push(Node::Relu(ReLU::new()));
    net.push(Node::MaxPool(MaxPool2d::new(2)));
    net.push(Node::Conv(Conv2d::new(16, 32, 3, 1, 1, &mut rng)));
    net.push(Node::Relu(ReLU::new()));
    net.push(Node::Gap(GlobalAvgPool::new()));
    net.push(Node::Linear(Linear::new(32, 10, &mut rng)));
    let images = Tensor::randn(Shape::d4(16, 3, 16, 16), &mut rng);
    let labels: Vec<usize> = (0..16).map(|i| i % 10).collect();
    let mut opt = Sgd::new(0.01);
    let mut step = || {
        net.zero_grad();
        let logits = net.forward(&images, true).expect("forward");
        let (_, grad) = softmax_cross_entropy(&logits, &labels).expect("loss");
        net.backward(&grad).expect("backward");
        opt.step(&mut net);
    };
    step(); // warm the arena
    let train_step_secs = best_secs(10, &mut step);
    println!("train step {:.2} ms", train_step_secs * 1e3);

    let gemm_json = gemm_rows
        .iter()
        .map(|row| {
            Json::Obj(vec![
                ("size".into(), Json::num(row.size as f64)),
                ("seed_secs".into(), Json::num(row.seed_secs)),
                ("new_secs".into(), Json::num(row.new_secs)),
                ("speedup".into(), Json::num(row.seed_secs / row.new_secs)),
                (
                    "new_gflops".into(),
                    Json::num(gflops(row.size, row.new_secs)),
                ),
            ])
        })
        .collect();
    // Snapshot the telemetry metrics registry: by now the timed kernels
    // have driven every hs_tensor_* counter, so the artifact records how
    // much work (GEMM calls/FLOPs, im2col bytes, pool batches, scratch
    // high-water) the benchmark actually exercised.
    let metrics_json = hs_telemetry::metrics::snapshot()
        .into_iter()
        .map(|m| match m {
            MetricSnapshot::Counter { name, value } => Json::Obj(vec![
                ("name".into(), Json::str(name)),
                ("kind".into(), Json::str("counter")),
                ("value".into(), Json::num(value as f64)),
            ]),
            MetricSnapshot::Gauge { name, value } => Json::Obj(vec![
                ("name".into(), Json::str(name)),
                ("kind".into(), Json::str("gauge")),
                ("value".into(), Json::num(value)),
            ]),
            MetricSnapshot::Histogram {
                name, count, sum, ..
            } => Json::Obj(vec![
                ("name".into(), Json::str(name)),
                ("kind".into(), Json::str("histogram")),
                ("count".into(), Json::num(count as f64)),
                ("sum".into(), Json::num(sum)),
            ]),
        })
        .collect();
    let doc = Json::Obj(vec![
        ("pool_threads".into(), Json::num(pool::num_threads() as f64)),
        ("gemm".into(), Json::Arr(gemm_json)),
        (
            "conv".into(),
            Json::Obj(vec![
                ("forward_secs".into(), Json::num(conv_fwd_secs)),
                ("backward_secs".into(), Json::num(conv_bwd_secs)),
            ]),
        ),
        ("train_step_secs".into(), Json::num(train_step_secs)),
        ("metrics".into(), Json::Arr(metrics_json)),
    ]);

    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    write_json(out_path, &doc).expect("write BENCH_kernels.json");
    println!("wrote {out_path}");
}
