//! Kernel microbenchmarks for the persistent-pool + blocked-GEMM work:
//! times the packed/blocked GEMM against a faithful reimplementation of
//! the seed's naive `i-k-j` kernel (per-call thread spawning, 8-thread
//! cap), plus conv forward/backward and a full train step, and writes
//! the numbers to `BENCH_kernels.json` at the repository root.
//!
//! ```text
//! cargo run --release -p hs-bench --bin bench_kernels
//! ```

use std::time::Instant;

use hs_gpusim::{devices, estimate};
use hs_nn::layer::{Conv2d, GlobalAvgPool, Linear, MaxPool2d, ReLU};
use hs_nn::loss::softmax_cross_entropy;
use hs_nn::optim::{Optimizer, Sgd};
use hs_nn::surgery::conv_sites;
use hs_nn::{compact, models, Network, Node};
use hs_runner::{write_json, Json};
use hs_telemetry::metrics::MetricSnapshot;
use hs_tensor::{gemm_ex, pool, Rng, Shape, Tensor};

/// The seed's GEMM: naive `i-k-j` row bands, threads spawned per call
/// (capped at 8), zero-skipping inner loop. Kept verbatim in spirit so
/// the benchmark compares against exactly what the pool replaced.
fn seed_gemm(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    fn band(a: &[f32], b: &[f32], out: &mut [f32], rows: usize, k: usize, n: usize) {
        for i in 0..rows {
            let a_row = &a[i * k..(i + 1) * k];
            let out_row = &mut out[i * n..(i + 1) * n];
            for (p, &a_ip) in a_row.iter().enumerate() {
                if a_ip == 0.0 {
                    continue;
                }
                let b_row = &b[p * n..(p + 1) * n];
                for (o, &b_pj) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a_ip * b_pj;
                }
            }
        }
    }
    let mut out = vec![0.0f32; m * n];
    let threads = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1)
        .min(8);
    if m * k * n < (1 << 18) || threads < 2 || m < 2 {
        band(a, b, &mut out, m, k, n);
        return out;
    }
    let rows_per = m.div_ceil(threads);
    std::thread::scope(|scope| {
        for (band_idx, out_chunk) in out.chunks_mut(rows_per * n).enumerate() {
            let row0 = band_idx * rows_per;
            let rows = out_chunk.len() / n;
            let a_chunk = &a[row0 * k..(row0 + rows) * k];
            scope.spawn(move || band(a_chunk, b, out_chunk, rows, k, n));
        }
    });
    out
}

/// Best-of-`reps` wall time of `f`, in seconds.
fn best_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

struct GemmRow {
    size: usize,
    seed_secs: f64,
    new_secs: f64,
}

fn bench_gemm(size: usize, reps: usize, rng: &mut Rng) -> GemmRow {
    let a = Tensor::randn(Shape::d2(size, size), rng);
    let b = Tensor::randn(Shape::d2(size, size), rng);
    let mut out = vec![0.0f32; size * size];
    // Warm both paths (page in buffers, populate the scratch arena).
    let _ = seed_gemm(a.data(), b.data(), size, size, size);
    gemm_ex(
        &mut out,
        a.data(),
        b.data(),
        size,
        size,
        size,
        false,
        false,
        false,
    );
    let seed_secs = best_secs(reps, || {
        std::hint::black_box(seed_gemm(a.data(), b.data(), size, size, size));
    });
    let new_secs = best_secs(reps, || {
        gemm_ex(
            &mut out,
            a.data(),
            b.data(),
            size,
            size,
            size,
            false,
            false,
            false,
        );
        std::hint::black_box(out[0]);
    });
    GemmRow {
        size,
        seed_secs,
        new_secs,
    }
}

fn gflops(size: usize, secs: f64) -> f64 {
    2.0 * (size as f64).powi(3) / secs / 1e9
}

/// One dense-vs-masked-vs-compacted forward-pass measurement: the same
/// pruning decision executed logically (0/1 channel masks, full-shape
/// kernels) and physically (compacted shapes), plus the roofline
/// model's predicted speedup for the shape change.
struct ForwardRow {
    model: &'static str,
    sp: usize,
    dense_secs: f64,
    masked_secs: f64,
    compact_secs: f64,
    /// Executed-MAC ratio dense/compacted (upper bound on the speedup).
    flop_speedup: f64,
    /// Roofline-predicted dense/compacted latency ratio (CPU device).
    predicted_speedup: f64,
}

impl ForwardRow {
    fn measured_speedup(&self) -> f64 {
        self.dense_secs / self.compact_secs
    }

    /// Relative error of the roofline prediction vs the measurement.
    fn prediction_error_pct(&self) -> f64 {
        100.0 * (self.predicted_speedup - self.measured_speedup()).abs() / self.measured_speedup()
    }
}

/// Benchmarks one model at one target speedup: masks every conv site
/// down to `1/sp` of its maps (first `c/sp` channels — the timing is
/// pattern-independent), compacts a clone, and times eval-mode forward
/// passes of all three variants on the same batch.
fn bench_forward(
    model: &'static str,
    net: &Network,
    in_channels: usize,
    input_size: usize,
    sp: usize,
    reps: usize,
    rng: &mut Rng,
) -> ForwardRow {
    let mut dense = net.clone();
    let mut masked = net.clone();
    for site in conv_sites(&masked) {
        let c = masked.conv(site.conv).expect("conv site").out_channels();
        let keep = (c / sp).max(1);
        let mask: Vec<f32> = (0..c).map(|i| if i < keep { 1.0 } else { 0.0 }).collect();
        masked.set_channel_mask(site.mask_node, Some(mask));
    }
    let compacted = compact::compact(&masked, in_channels, input_size).expect("compact");
    let report = compacted.report;
    let mut compact_net = compacted.net;

    let x = Tensor::randn(Shape::d4(8, in_channels, input_size, input_size), rng);
    let fwd = |net: &mut Network| {
        std::hint::black_box(net.forward(&x, false).expect("forward"));
    };
    fwd(&mut dense); // warm all three (arena, page-in)
    fwd(&mut masked);
    fwd(&mut compact_net);
    let dense_secs = best_secs(reps, || fwd(&mut dense));
    let masked_secs = best_secs(reps, || fwd(&mut masked));
    let compact_secs = best_secs(reps, || fwd(&mut compact_net));

    // Roofline prediction on the CPU device the benchmark itself runs
    // on a sibling of: the *relative* dense/compact latency is what the
    // measured speedup is checked against.
    let device = devices::xeon_e2620();
    let dense_est = estimate(&device, &dense, in_channels, input_size).expect("roofline dense");
    let compact_est =
        estimate(&device, &compact_net, in_channels, input_size).expect("roofline compact");
    ForwardRow {
        model,
        sp,
        dense_secs,
        masked_secs,
        compact_secs,
        flop_speedup: report.speedup(),
        predicted_speedup: dense_est.total_seconds / compact_est.total_seconds,
    }
}

fn main() {
    let mut rng = Rng::seed_from(2019);
    println!(
        "# kernel benchmarks ({} pool threads)",
        pool::effective_threads()
    );

    let gemm_rows: Vec<GemmRow> = [(128usize, 20usize), (256, 8), (512, 3)]
        .iter()
        .map(|&(s, r)| bench_gemm(s, r, &mut rng))
        .collect();
    for row in &gemm_rows {
        println!(
            "gemm {s}x{s}x{s}: seed {seed:.2} ms ({sg:.2} GFLOP/s) -> blocked {new:.2} ms ({ng:.2} GFLOP/s), {x:.2}x",
            s = row.size,
            seed = row.seed_secs * 1e3,
            sg = gflops(row.size, row.seed_secs),
            new = row.new_secs * 1e3,
            ng = gflops(row.size, row.new_secs),
            x = row.seed_secs / row.new_secs,
        );
    }

    // Conv forward/backward on a mid-size layer.
    let mut conv = Conv2d::new(16, 32, 3, 1, 1, &mut rng);
    let x = Tensor::randn(Shape::d4(8, 16, 32, 32), &mut rng);
    let y = conv.forward(&x, true).expect("conv forward");
    let dy = Tensor::ones(y.shape().clone());
    conv.backward(&dy).expect("conv backward");
    let conv_fwd_secs = best_secs(10, || {
        std::hint::black_box(conv.forward(&x, true).expect("conv forward"));
    });
    // Forward once more so every timed backward has a fresh input cache.
    let conv_bwd_secs = best_secs(10, || {
        conv.forward(&x, true).expect("conv forward");
        std::hint::black_box(conv.backward(&dy).expect("conv backward"));
    }) - conv_fwd_secs;
    println!(
        "conv fwd {:.2} ms, bwd {:.2} ms",
        conv_fwd_secs * 1e3,
        conv_bwd_secs * 1e3
    );

    // Full train step (zero_grad + forward + loss + backward + SGD) on a
    // small conv net.
    let mut net = Network::new();
    net.push(Node::Conv(Conv2d::new(3, 16, 3, 1, 1, &mut rng)));
    net.push(Node::Relu(ReLU::new()));
    net.push(Node::MaxPool(MaxPool2d::new(2)));
    net.push(Node::Conv(Conv2d::new(16, 32, 3, 1, 1, &mut rng)));
    net.push(Node::Relu(ReLU::new()));
    net.push(Node::Gap(GlobalAvgPool::new()));
    net.push(Node::Linear(Linear::new(32, 10, &mut rng)));
    let images = Tensor::randn(Shape::d4(16, 3, 16, 16), &mut rng);
    let labels: Vec<usize> = (0..16).map(|i| i % 10).collect();
    let mut opt = Sgd::new(0.01);
    let mut step = || {
        net.zero_grad();
        let logits = net.forward(&images, true).expect("forward");
        let (_, grad) = softmax_cross_entropy(&logits, &labels).expect("loss");
        net.backward(&grad).expect("backward");
        opt.step(&mut net);
    };
    step(); // warm the arena
    let train_step_secs = best_secs(10, &mut step);
    println!("train step {:.2} ms", train_step_secs * 1e3);

    // Whole-network forward passes: the same pruning decision as masks
    // (logical) and as compacted shapes (physical), per model and
    // target speedup, against the roofline model's prediction.
    let vgg = models::vgg11(3, 10, 32, 0.5, &mut rng).expect("vgg11");
    let alex = models::alexnet(3, 10, 32, 0.5, &mut rng).expect("alexnet");
    let mut forward_rows = Vec::new();
    for (name, net) in [("vgg11", &vgg), ("alexnet", &alex)] {
        for sp in [2usize, 4] {
            let row = bench_forward(name, net, 3, 32, sp, 5, &mut rng);
            println!(
                "forward {name} sp={sp}: dense {:.2} ms, masked {:.2} ms, compact {:.2} ms \
                 -> {:.2}x measured ({:.2}x flops, {:.2}x roofline, {:.1}% error)",
                row.dense_secs * 1e3,
                row.masked_secs * 1e3,
                row.compact_secs * 1e3,
                row.measured_speedup(),
                row.flop_speedup,
                row.predicted_speedup,
                row.prediction_error_pct(),
            );
            forward_rows.push(row);
        }
    }

    let forward_json = forward_rows
        .iter()
        .map(|row| {
            Json::Obj(vec![
                ("model".into(), Json::str(row.model)),
                ("sp".into(), Json::num(row.sp as f64)),
                ("dense_secs".into(), Json::num(row.dense_secs)),
                ("masked_secs".into(), Json::num(row.masked_secs)),
                ("compact_secs".into(), Json::num(row.compact_secs)),
                ("measured_speedup".into(), Json::num(row.measured_speedup())),
                (
                    "masked_speedup".into(),
                    Json::num(row.dense_secs / row.masked_secs),
                ),
                ("flop_speedup".into(), Json::num(row.flop_speedup)),
                ("predicted_speedup".into(), Json::num(row.predicted_speedup)),
                (
                    "prediction_error_pct".into(),
                    Json::num(row.prediction_error_pct()),
                ),
            ])
        })
        .collect();
    let gemm_json = gemm_rows
        .iter()
        .map(|row| {
            Json::Obj(vec![
                ("size".into(), Json::num(row.size as f64)),
                ("seed_secs".into(), Json::num(row.seed_secs)),
                ("new_secs".into(), Json::num(row.new_secs)),
                ("speedup".into(), Json::num(row.seed_secs / row.new_secs)),
                (
                    "new_gflops".into(),
                    Json::num(gflops(row.size, row.new_secs)),
                ),
            ])
        })
        .collect();
    // Snapshot the telemetry metrics registry: by now the timed kernels
    // have driven every hs_tensor_* counter, so the artifact records how
    // much work (GEMM calls/FLOPs, im2col bytes, pool batches, scratch
    // high-water) the benchmark actually exercised.
    let metrics_json = hs_telemetry::metrics::snapshot()
        .into_iter()
        .map(|m| match m {
            MetricSnapshot::Counter { name, value } => Json::Obj(vec![
                ("name".into(), Json::str(name)),
                ("kind".into(), Json::str("counter")),
                ("value".into(), Json::num(value as f64)),
            ]),
            MetricSnapshot::Gauge { name, value } => Json::Obj(vec![
                ("name".into(), Json::str(name)),
                ("kind".into(), Json::str("gauge")),
                ("value".into(), Json::num(value)),
            ]),
            MetricSnapshot::Histogram {
                name, count, sum, ..
            } => Json::Obj(vec![
                ("name".into(), Json::str(name)),
                ("kind".into(), Json::str("histogram")),
                ("count".into(), Json::num(count as f64)),
                ("sum".into(), Json::num(sum)),
            ]),
        })
        .collect();
    let doc = Json::Obj(vec![
        // Versioned against the telemetry event schema so `hs_obs
        // bench-check` and downstream tooling can refuse files they
        // don't understand.
        (
            "schema_version".into(),
            Json::num(hs_telemetry::SCHEMA_VERSION as f64),
        ),
        // The pool size actually used by the timed kernels (workers +
        // caller), not just the configured target: `HS_NUM_THREADS`
        // overrides are reflected here.
        (
            "pool_threads".into(),
            Json::num(pool::effective_threads() as f64),
        ),
        // The knobs that shaped this run, so two BENCH files are only
        // ever compared like-for-like.
        (
            "env".into(),
            Json::Obj(vec![
                (
                    "hs_num_threads".into(),
                    match std::env::var("HS_NUM_THREADS") {
                        Ok(v) => Json::str(v),
                        Err(_) => Json::str("unset"),
                    },
                ),
                (
                    "effective_threads".into(),
                    Json::num(pool::effective_threads() as f64),
                ),
            ]),
        ),
        ("gemm".into(), Json::Arr(gemm_json)),
        ("forward".into(), Json::Arr(forward_json)),
        (
            "conv".into(),
            Json::Obj(vec![
                ("forward_secs".into(), Json::num(conv_fwd_secs)),
                ("backward_secs".into(), Json::num(conv_bwd_secs)),
            ]),
        ),
        ("train_step_secs".into(), Json::num(train_step_secs)),
        ("metrics".into(), Json::Arr(metrics_json)),
    ]);

    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    write_json(out_path, &doc).expect("write BENCH_kernels.json");
    println!("wrote {out_path}");
}
