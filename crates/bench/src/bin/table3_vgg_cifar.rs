//! **Table 3**: whole-model VGG pruning on the CIFAR-100 substitute at
//! the aggressive sp = 5 — Random, Li'17, APoZ, HeadStart and
//! from-scratch.
//!
//! ```text
//! cargo run --release -p hs-bench --bin table3_vgg_cifar [--quick]
//! ```

use hs_nn::accounting::NetworkCost;
use hs_runner::{pct, prepare, BaselineKind, Budget, Method, RunnerConfig};

fn main() {
    let mut cfg = RunnerConfig::new("table3");
    cfg.seed = 3;
    cfg.budget = Budget::from_args();
    let prepared = prepare(&cfg).expect("prepare");
    let full_cost = prepared.original_cost.clone();

    println!("# Table 3 — whole-model VGG on synthetic CIFAR-100, sp = 5");
    println!(
        "{:<16} {:>10} {:>10} {:>8} {:>10}",
        "METHOD", "#PARAM(M)", "#MACS(B)", "ACC%", "C.R.%"
    );
    let row = |label: &str, cost: &NetworkCost, acc: f32| {
        println!(
            "{:<16} {:>10.4} {:>10.5} {:>8} {:>10.2}",
            label,
            cost.params_millions(),
            cost.flops_billions(),
            pct(acc),
            100.0 * cost.total_params as f64 / full_cost.total_params as f64
        );
    };
    row("VGG ORIGINAL", &full_cost, prepared.original_accuracy);

    let keep_ratio = 0.2; // sp = 5
    for kind in [BaselineKind::Random, BaselineKind::L1, BaselineKind::Apoz] {
        let outcome = prepared
            .run_method(&Method::Baseline { kind, keep_ratio }, 55)
            .unwrap_or_else(|e| panic!("{}: {e}", kind.label()));
        row(&outcome.label, &outcome.cost, outcome.final_accuracy);
    }

    let hs = prepared
        .run_method(&Method::HeadStartLayers { sp: 5.0 }, 55)
        .expect("headstart");
    row(&hs.label, &hs.cost, hs.final_accuracy);

    let total_epochs = prepared.budget.finetune_epochs * hs.traces.len();
    let scratch = prepared
        .run_scratch(&hs.net, total_epochs, 56)
        .expect("scratch");
    row(&scratch.label, &scratch.cost, scratch.final_accuracy);
}
