//! **Table 3**: whole-model VGG pruning on the CIFAR-100 substitute at
//! the aggressive sp = 5 — Random, Li'17, APoZ, HeadStart and
//! from-scratch.
//!
//! ```text
//! cargo run --release -p hs-bench --bin table3_vgg_cifar [--quick]
//! ```

use hs_bench::{pct, pretrain, Budget, Phase};
use hs_core::{HeadStartConfig, HeadStartPruner};
use hs_data::{cached, DatasetSpec};
use hs_nn::{accounting, models};
use hs_pruning::driver::{prune_whole_model, train_from_scratch, FineTune};
use hs_pruning::{Apoz, L1Norm, PruningCriterion, Random};
use hs_tensor::Rng;

fn main() {
    let budget = Budget::from_args();
    let ds = cached(&DatasetSpec::cifar_like()).expect("dataset");
    let mut rng = Rng::seed_from(3);
    let mut net = models::vgg11(
        ds.channels(),
        ds.num_classes(),
        ds.image_size(),
        0.25,
        &mut rng,
    )
    .expect("model");
    let phase = Phase::start("pretraining VGG on synthetic CIFAR");
    let original = pretrain(&mut net, &ds, budget.pretrain_epochs, &mut rng).expect("pretrain");
    phase.end();
    let full_cost = accounting::analyze(&net, ds.channels(), ds.image_size()).expect("cost");

    println!("# Table 3 — whole-model VGG on synthetic CIFAR-100, sp = 5");
    println!(
        "{:<16} {:>10} {:>10} {:>8} {:>10}",
        "METHOD", "#PARAM(M)", "#MACS(B)", "ACC%", "C.R.%"
    );
    println!(
        "{:<16} {:>10.4} {:>10.5} {:>8} {:>10.2}",
        "VGG ORIGINAL",
        full_cost.params_millions(),
        full_cost.flops_billions(),
        pct(original),
        100.0
    );

    let ft = FineTune {
        epochs: budget.finetune_epochs,
        ..FineTune::default()
    };
    let keep_ratio = 0.2; // sp = 5

    let baselines: Vec<(&str, Box<dyn PruningCriterion>)> = vec![
        ("Random", Box::new(Random::new())),
        ("Li'17", Box::new(L1Norm::new())),
        ("APoZ", Box::new(Apoz::new())),
    ];
    for (label, mut criterion) in baselines {
        let phase = Phase::start(label);
        let mut pruned = net.clone();
        let mut prng = Rng::seed_from(55);
        let outcome = prune_whole_model(
            &mut pruned,
            criterion.as_mut(),
            keep_ratio,
            &ds,
            &ft,
            &mut prng,
        )
        .unwrap_or_else(|e| panic!("{label}: {e}"));
        phase.end();
        println!(
            "{:<16} {:>10.4} {:>10.5} {:>8} {:>10.2}",
            label,
            outcome.cost.params_millions(),
            outcome.cost.flops_billions(),
            pct(outcome.final_accuracy),
            100.0 * outcome.cost.total_params as f64 / full_cost.total_params as f64
        );
    }

    let phase = Phase::start("HeadStart");
    let mut hs_net = net.clone();
    let mut hs_rng = Rng::seed_from(55);
    let cfg = HeadStartConfig::new(5.0)
        .max_episodes(budget.rl_episodes)
        .eval_images(budget.rl_eval_images);
    let (hs, _) = HeadStartPruner::new(cfg, ft)
        .prune_model(&mut hs_net, &ds, &mut hs_rng)
        .expect("headstart");
    phase.end();
    println!(
        "{:<16} {:>10.4} {:>10.5} {:>8} {:>10.2}",
        "HeadStart",
        hs.cost.params_millions(),
        hs.cost.flops_billions(),
        pct(hs.final_accuracy),
        100.0 * hs.cost.total_params as f64 / full_cost.total_params as f64
    );

    let phase = Phase::start("from scratch");
    let mut scratch_rng = Rng::seed_from(56);
    let total_epochs = budget.finetune_epochs * hs.traces.len();
    let scratch_acc = train_from_scratch(
        &hs_net,
        &ds,
        total_epochs,
        &FineTune::default(),
        &mut scratch_rng,
    )
    .expect("scratch");
    phase.end();
    println!(
        "{:<16} {:>10.4} {:>10.5} {:>8} {:>10.2}",
        "from scratch",
        hs.cost.params_millions(),
        hs.cost.flops_billions(),
        pct(scratch_acc),
        100.0 * hs.cost.total_params as f64 / full_cost.total_params as f64
    );
}
