//! **Figure 3**: single-layer pruning *without fine-tuning* under
//! speedup ∈ {2, 3, 4, 5}, for several VGG layers, comparing HeadStart
//! against Li'17, APoZ and random pruning. The paper reports inception
//! accuracy (higher is better) and finds HeadStart far more robust,
//! with Li'17/APoZ degrading to random at high speedups.
//!
//! Baseline criteria score the same class-balanced 64-image training
//! subset the whole-model driver feeds them, so single-layer and
//! whole-model comparisons go through one code path.
//!
//! Pass `--recalibrate` to refresh batch-norm running statistics (a few
//! training-mode forward passes, no gradient steps) after each surgery
//! and before measuring — applied to every method equally. The paper's
//! VGG predates batch norm; without recalibration our BN models collapse
//! to chance at high speedups for all methods (see EXPERIMENTS.md), and
//! this flag shows the differences that collapse hides.
//!
//! ```text
//! cargo run --release -p hs-bench --bin fig3_single_layer [--quick] [--recalibrate]
//! ```

use hs_runner::{pct, prepare, BaselineKind, Budget, RunnerConfig};

fn main() {
    let recalibrate = std::env::args().any(|a| a == "--recalibrate");
    let mut cfg = RunnerConfig::new("fig3");
    cfg.seed = 2019;
    cfg.budget = Budget::from_args();
    let prepared = prepare(&cfg).expect("prepare");

    println!(
        "# Figure 3 — single-layer pruning, no fine-tuning (top-1 %, higher is better){}",
        if recalibrate {
            ", BN statistics recalibrated"
        } else {
            ""
        }
    );
    println!("# original accuracy: {}%", pct(prepared.original_accuracy));
    println!(
        "{:<8} {:>8} {:>10} {:>8} {:>8} {:>8}",
        "LAYER", "SPEEDUP", "HeadStart", "Li'17", "APoZ", "Random"
    );

    // The paper shows conv1_2-ish low layers through conv4_1; at our
    // scale VGG-11 ordinals 1..4 span the same low-to-high range.
    for ordinal in [1usize, 2, 3, 4] {
        for sp in [2.0f32, 3.0, 4.0, 5.0] {
            // HeadStart learns its own inception at this sp.
            let hs = prepared
                .single_layer_headstart(
                    &prepared.headstart_layer_cfg(sp),
                    ordinal,
                    recalibrate,
                    100 + ordinal as u64 * 10 + sp as u64,
                )
                .expect("headstart");

            let mut row = vec![hs.accuracy];
            for kind in [BaselineKind::L1, BaselineKind::Apoz, BaselineKind::Random] {
                let run = prepared
                    .single_layer_baseline(kind, ordinal, sp, recalibrate, 7 + ordinal as u64)
                    .unwrap_or_else(|e| panic!("{}: {e}", kind.label()));
                row.push(run.accuracy);
            }
            println!(
                "conv{:<4} {:>8.1} {:>10} {:>8} {:>8} {:>8}",
                ordinal,
                sp,
                pct(row[0]),
                pct(row[1]),
                pct(row[2]),
                pct(row[3])
            );
        }
    }
}
