//! **Figure 3**: single-layer pruning *without fine-tuning* under
//! speedup ∈ {2, 3, 4, 5}, for several VGG layers, comparing HeadStart
//! against Li'17, APoZ and random pruning. The paper reports inception
//! accuracy (higher is better) and finds HeadStart far more robust,
//! with Li'17/APoZ degrading to random at high speedups.
//!
//! Pass `--recalibrate` to refresh batch-norm running statistics (a few
//! training-mode forward passes, no gradient steps) after each surgery
//! and before measuring — applied to every method equally. The paper's
//! VGG predates batch norm; without recalibration our BN models collapse
//! to chance at high speedups for all methods (see EXPERIMENTS.md), and
//! this flag shows the differences that collapse hides.
//!
//! ```text
//! cargo run --release -p hs-bench --bin fig3_single_layer [--quick] [--recalibrate]
//! ```

use hs_bench::{pct, pretrain, Budget, Phase};
use hs_core::{HeadStartConfig, LayerPruner};
use hs_data::{cached, DatasetSpec};
use hs_nn::{models, surgery, train};
use hs_pruning::{Apoz, L1Norm, PruningCriterion, Random, ScoreContext};
use hs_tensor::Rng;

fn main() {
    let budget = Budget::from_args();
    let recalibrate = std::env::args().any(|a| a == "--recalibrate");
    let ds = cached(&DatasetSpec::cifar_like()).expect("dataset");
    let mut rng = Rng::seed_from(2019);
    let mut net = models::vgg11(
        ds.channels(),
        ds.num_classes(),
        ds.image_size(),
        0.25,
        &mut rng,
    )
    .expect("model");
    let phase = Phase::start("pretraining VGG on synthetic CIFAR");
    let original = pretrain(&mut net, &ds, budget.pretrain_epochs, &mut rng).expect("pretrain");
    phase.end();
    println!(
        "# Figure 3 — single-layer pruning, no fine-tuning (top-1 %, higher is better){}",
        if recalibrate {
            ", BN statistics recalibrated"
        } else {
            ""
        }
    );
    println!("# original accuracy: {}%", pct(original));
    println!(
        "{:<8} {:>8} {:>10} {:>8} {:>8} {:>8}",
        "LAYER", "SPEEDUP", "HeadStart", "Li'17", "APoZ", "Random"
    );

    // The paper shows conv1_2-ish low layers through conv4_1; at our
    // scale VGG-11 ordinals 1..4 span the same low-to-high range.
    for ordinal in [1usize, 2, 3, 4] {
        for sp in [2.0f32, 3.0, 4.0, 5.0] {
            let maps = {
                let site = surgery::conv_sites(&net)[ordinal];
                net.conv(site.conv).expect("conv").out_channels()
            };
            let keep_count = ((maps as f32 / sp).round() as usize).max(1);

            // HeadStart learns its own inception at this sp.
            let hs_acc = {
                let mut hs_net = net.clone();
                let mut rl_rng = Rng::seed_from(100 + ordinal as u64 * 10 + sp as u64);
                let cfg = HeadStartConfig::new(sp)
                    .max_episodes(budget.rl_episodes)
                    .eval_images(budget.rl_eval_images);
                let d = LayerPruner::new(cfg)
                    .prune(&mut hs_net, ordinal, &ds, &mut rl_rng)
                    .expect("headstart");
                let conv = hs_net.conv_indices()[ordinal];
                surgery::prune_feature_maps(&mut hs_net, conv, &d.keep).expect("surgery");
                if recalibrate {
                    train::recalibrate_bn(&mut hs_net, &ds.train_images, 32, 2)
                        .expect("recalibrate");
                }
                train::evaluate(&mut hs_net, &ds.test_images, &ds.test_labels, 64).expect("eval")
            };

            let mut row = vec![hs_acc];
            for criterion in [
                &mut L1Norm::new() as &mut dyn PruningCriterion,
                &mut Apoz::new(),
                &mut Random::new(),
            ] {
                let mut base = net.clone();
                let mut crng = Rng::seed_from(7 + ordinal as u64);
                let site = surgery::conv_sites(&base)[ordinal];
                let keep = {
                    let mut ctx = ScoreContext::new(
                        &mut base,
                        site,
                        &ds.train_images,
                        &ds.train_labels,
                        &mut crng,
                    );
                    criterion.keep_set(&mut ctx, keep_count).expect("keep set")
                };
                surgery::prune_feature_maps(&mut base, site.conv, &keep).expect("surgery");
                if recalibrate {
                    train::recalibrate_bn(&mut base, &ds.train_images, 32, 2).expect("recalibrate");
                }
                row.push(
                    train::evaluate(&mut base, &ds.test_images, &ds.test_labels, 64).expect("eval"),
                );
            }
            println!(
                "conv{:<4} {:>8.1} {:>10} {:>8} {:>8} {:>8}",
                ordinal,
                sp,
                pct(row[0]),
                pct(row[1]),
                pct(row[2]),
                pct(row[3])
            );
        }
    }
}
