//! **Table 2**: whole-model VGG pruning on the fine-grained (CUB-200
//! substitute) dataset at sp = 2 — #parameters, #FLOPs, accuracy and
//! compression ratio for Random, ThiNet, AutoPruner, Li'17, HeadStart
//! and training the pruned architecture from scratch.
//!
//! ```text
//! cargo run --release -p hs-bench --bin table2_vgg_cub [--quick]
//! ```

use hs_nn::accounting::NetworkCost;
use hs_runner::{pct, prepare, BaselineKind, Budget, DataChoice, Method, RunnerConfig};

fn main() {
    let mut cfg = RunnerConfig::new("table2");
    cfg.data = DataChoice::CubLike;
    cfg.seed = 2;
    cfg.budget = Budget::from_args();
    let prepared = prepare(&cfg).expect("prepare");
    let full_cost = prepared.original_cost.clone();

    println!("# Table 2 — whole-model VGG on synthetic CUB, sp = 2");
    println!(
        "{:<16} {:>10} {:>10} {:>8} {:>10}",
        "METHOD", "#PARAM(M)", "#MACS(B)", "ACC%", "C.R.%"
    );
    let row = |label: &str, cost: &NetworkCost, acc: f32| {
        println!(
            "{:<16} {:>10.4} {:>10.5} {:>8} {:>10.2}",
            label,
            cost.params_millions(),
            cost.flops_billions(),
            pct(acc),
            100.0 * cost.total_params as f64 / full_cost.total_params as f64
        );
    };
    row("VGG ORIGINAL", &full_cost, prepared.original_accuracy);

    // Metric/reconstruction baselines at fixed 50% keep.
    for kind in [
        BaselineKind::Random,
        BaselineKind::ThiNet,
        BaselineKind::AutoPruner { iterations: 20 },
        BaselineKind::L1,
    ] {
        let outcome = prepared
            .run_method(
                &Method::Baseline {
                    kind,
                    keep_ratio: 0.5,
                },
                42,
            )
            .unwrap_or_else(|e| panic!("{}: {e}", kind.label()));
        row(&outcome.label, &outcome.cost, outcome.final_accuracy);
    }

    // HeadStart (learned keep counts, may drift slightly from 50%).
    let hs = prepared
        .run_method(&Method::HeadStartLayers { sp: 2.0 }, 42)
        .expect("headstart");
    row(&hs.label, &hs.cost, hs.final_accuracy);

    // From scratch: the HeadStart architecture, reinitialized, trained
    // with the same total budget the pruned model received.
    let total_epochs = prepared.budget.finetune_epochs * hs.traces.len();
    let scratch = prepared
        .run_scratch(&hs.net, total_epochs, 43)
        .expect("scratch");
    row(&scratch.label, &scratch.cost, scratch.final_accuracy);
}
