//! **Table 2**: whole-model VGG pruning on the fine-grained (CUB-200
//! substitute) dataset at sp = 2 — #parameters, #FLOPs, accuracy and
//! compression ratio for Random, ThiNet, AutoPruner, Li'17, HeadStart
//! and training the pruned architecture from scratch.
//!
//! ```text
//! cargo run --release -p hs-bench --bin table2_vgg_cub [--quick]
//! ```

use hs_bench::{pct, pretrain, Budget, Phase};
use hs_core::{HeadStartConfig, HeadStartPruner};
use hs_data::{cached, DatasetSpec};
use hs_nn::{accounting, models};
use hs_pruning::driver::{prune_whole_model, train_from_scratch, FineTune};
use hs_pruning::{AutoPruner, L1Norm, PruningCriterion, Random, ThiNet};
use hs_tensor::Rng;

fn main() {
    let budget = Budget::from_args();
    let ds = cached(&DatasetSpec::cub_like()).expect("dataset");
    let mut rng = Rng::seed_from(2);
    let mut net = models::vgg11(
        ds.channels(),
        ds.num_classes(),
        ds.image_size(),
        0.25,
        &mut rng,
    )
    .expect("model");
    let phase = Phase::start("pretraining VGG on synthetic CUB");
    let original = pretrain(&mut net, &ds, budget.pretrain_epochs, &mut rng).expect("pretrain");
    phase.end();
    let full_cost = accounting::analyze(&net, ds.channels(), ds.image_size()).expect("cost");

    println!("# Table 2 — whole-model VGG on synthetic CUB, sp = 2");
    println!(
        "{:<16} {:>10} {:>10} {:>8} {:>10}",
        "METHOD", "#PARAM(M)", "#MACS(B)", "ACC%", "C.R.%"
    );
    println!(
        "{:<16} {:>10.4} {:>10.5} {:>8} {:>10.2}",
        "VGG ORIGINAL",
        full_cost.params_millions(),
        full_cost.flops_billions(),
        pct(original),
        100.0
    );

    let ft = FineTune {
        epochs: budget.finetune_epochs,
        ..FineTune::default()
    };

    // Metric/reconstruction baselines at fixed 50% keep.
    let baselines: Vec<(&str, Box<dyn PruningCriterion>)> = vec![
        ("Random", Box::new(Random::new())),
        ("ThiNet'17", Box::new(ThiNet::new())),
        ("AutoPruner'18", Box::new(AutoPruner::new().iterations(20))),
        ("Li'17", Box::new(L1Norm::new())),
    ];
    for (label, mut criterion) in baselines {
        let phase = Phase::start(label);
        let mut pruned = net.clone();
        let mut prng = Rng::seed_from(42);
        let outcome = prune_whole_model(&mut pruned, criterion.as_mut(), 0.5, &ds, &ft, &mut prng)
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        phase.end();
        println!(
            "{:<16} {:>10.4} {:>10.5} {:>8} {:>10.2}",
            label,
            outcome.cost.params_millions(),
            outcome.cost.flops_billions(),
            pct(outcome.final_accuracy),
            100.0 * outcome.cost.total_params as f64 / full_cost.total_params as f64
        );
    }

    // HeadStart (learned keep counts, may drift slightly from 50%).
    let phase = Phase::start("HeadStart");
    let mut hs_net = net.clone();
    let mut hs_rng = Rng::seed_from(42);
    let cfg = HeadStartConfig::new(2.0)
        .max_episodes(budget.rl_episodes)
        .eval_images(budget.rl_eval_images);
    let (hs, _) = HeadStartPruner::new(cfg, ft)
        .prune_model(&mut hs_net, &ds, &mut hs_rng)
        .expect("headstart");
    phase.end();
    println!(
        "{:<16} {:>10.4} {:>10.5} {:>8} {:>10.2}",
        "HeadStart",
        hs.cost.params_millions(),
        hs.cost.flops_billions(),
        pct(hs.final_accuracy),
        100.0 * hs.cost.total_params as f64 / full_cost.total_params as f64
    );

    // From scratch: the HeadStart architecture, reinitialized, trained
    // with the same total budget the pruned model received.
    let phase = Phase::start("from scratch");
    let mut scratch_rng = Rng::seed_from(43);
    let total_epochs = budget.finetune_epochs * hs.traces.len();
    let scratch_acc = train_from_scratch(
        &hs_net,
        &ds,
        total_epochs,
        &FineTune::default(),
        &mut scratch_rng,
    )
    .expect("scratch");
    phase.end();
    println!(
        "{:<16} {:>10.4} {:>10.5} {:>8} {:>10.2}",
        "from scratch",
        hs.cost.params_millions(),
        hs.cost.flops_billions(),
        pct(scratch_acc),
        100.0 * hs.cost.total_params as f64 / full_cost.total_params as f64
    );
}
