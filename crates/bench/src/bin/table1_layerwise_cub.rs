//! **Table 1**: layer-by-layer whole-model pruning trace on the
//! fine-grained (CUB-200 substitute) dataset at sp = 2 — #maps after
//! pruning, total #parameters, total #FLOPs (MACs), inception accuracy
//! and post-fine-tuning accuracy, for Li'17 vs HeadStart.
//!
//! ```text
//! cargo run --release -p hs-bench --bin table1_layerwise_cub [--quick]
//! ```

use hs_pruning::driver::LayerTrace;
use hs_runner::{pct, prepare, BaselineKind, Budget, DataChoice, Method, RunnerConfig};

fn print_rows(method: &str, traces: &[LayerTrace]) {
    for t in traces {
        println!(
            "{:<10} conv{:<3} {:>5}->{:<5} {:>9.4} {:>9.5} {:>9} {:>9}",
            method,
            t.conv_ordinal,
            t.maps_before,
            t.maps_after,
            t.params_after as f64 / 1e6,
            t.flops_after as f64 / 1e9,
            pct(t.inception_accuracy),
            pct(t.finetuned_accuracy)
        );
    }
}

fn main() {
    let mut cfg = RunnerConfig::new("table1");
    cfg.data = DataChoice::CubLike;
    cfg.seed = 1;
    cfg.budget = Budget::from_args();
    let prepared = prepare(&cfg).expect("prepare");

    println!("# Table 1 — iterative whole-model pruning on synthetic CUB, sp = 2");
    println!(
        "# original: acc {}%, {:.4}M params, {:.5}B MACs",
        pct(prepared.original_accuracy),
        prepared.original_cost.params_millions(),
        prepared.original_cost.flops_billions()
    );
    println!(
        "{:<10} {:<7} {:>11} {:>9} {:>9} {:>9} {:>9}",
        "METHOD", "LAYER", "#MAPS", "#PARAM(M)", "#MACS(B)", "INC%", "W/FT%"
    );

    let li = prepared
        .run_method(
            &Method::Baseline {
                kind: BaselineKind::L1,
                keep_ratio: 0.5,
            },
            11,
        )
        .expect("li17");
    print_rows("Li'17", &li.traces);

    let hs = prepared
        .run_method(&Method::HeadStartLayers { sp: 2.0 }, 12)
        .expect("headstart");
    print_rows("HeadStart", &hs.traces);

    println!(
        "# final: Li'17 {}% vs HeadStart {}% (original {}%)",
        pct(li.final_accuracy),
        pct(hs.final_accuracy),
        pct(prepared.original_accuracy)
    );
}
