//! **Table 1**: layer-by-layer whole-model pruning trace on the
//! fine-grained (CUB-200 substitute) dataset at sp = 2 — #maps after
//! pruning, total #parameters, total #FLOPs (MACs), inception accuracy
//! and post-fine-tuning accuracy, for Li'17 vs HeadStart.
//!
//! ```text
//! cargo run --release -p hs-bench --bin table1_layerwise_cub [--quick]
//! ```

use hs_bench::{pct, pretrain, Budget, Phase};
use hs_core::{HeadStartConfig, HeadStartPruner};
use hs_data::{cached, DatasetSpec};
use hs_nn::{accounting, models};
use hs_pruning::driver::{prune_whole_model, FineTune, LayerTrace};
use hs_pruning::L1Norm;
use hs_tensor::Rng;

fn print_rows(method: &str, traces: &[LayerTrace]) {
    for t in traces {
        println!(
            "{:<10} conv{:<3} {:>5}->{:<5} {:>9.4} {:>9.5} {:>9} {:>9}",
            method,
            t.conv_ordinal,
            t.maps_before,
            t.maps_after,
            t.params_after as f64 / 1e6,
            t.flops_after as f64 / 1e9,
            pct(t.inception_accuracy),
            pct(t.finetuned_accuracy)
        );
    }
}

fn main() {
    let budget = Budget::from_args();
    let ds = cached(&DatasetSpec::cub_like()).expect("dataset");
    let mut rng = Rng::seed_from(1);
    let mut net = models::vgg11(
        ds.channels(),
        ds.num_classes(),
        ds.image_size(),
        0.25,
        &mut rng,
    )
    .expect("model");
    let phase = Phase::start("pretraining VGG on synthetic CUB");
    let original = pretrain(&mut net, &ds, budget.pretrain_epochs, &mut rng).expect("pretrain");
    phase.end();
    let cost = accounting::analyze(&net, ds.channels(), ds.image_size()).expect("cost");
    println!("# Table 1 — iterative whole-model pruning on synthetic CUB, sp = 2");
    println!(
        "# original: acc {}%, {:.4}M params, {:.5}B MACs",
        pct(original),
        cost.params_millions(),
        cost.flops_billions()
    );
    println!(
        "{:<10} {:<7} {:>11} {:>9} {:>9} {:>9} {:>9}",
        "METHOD", "LAYER", "#MAPS", "#PARAM(M)", "#MACS(B)", "INC%", "W/FT%"
    );

    let ft = FineTune {
        epochs: budget.finetune_epochs,
        ..FineTune::default()
    };

    // Li'17 trace.
    let phase = Phase::start("Li'17 whole-model prune");
    let mut li_net = net.clone();
    let mut li_rng = Rng::seed_from(11);
    let li = prune_whole_model(&mut li_net, &mut L1Norm::new(), 0.5, &ds, &ft, &mut li_rng)
        .expect("li17");
    phase.end();
    print_rows("Li'17", &li.traces);

    // HeadStart trace.
    let phase = Phase::start("HeadStart whole-model prune");
    let mut hs_net = net.clone();
    let mut hs_rng = Rng::seed_from(12);
    let cfg = HeadStartConfig::new(2.0)
        .max_episodes(budget.rl_episodes)
        .eval_images(budget.rl_eval_images);
    let (hs, _) = HeadStartPruner::new(cfg, ft)
        .prune_model(&mut hs_net, &ds, &mut hs_rng)
        .expect("headstart");
    phase.end();
    print_rows("HeadStart", &hs.traces);

    println!(
        "# final: Li'17 {}% vs HeadStart {}% (original {}%)",
        pct(li.final_accuracy),
        pct(hs.final_accuracy),
        pct(original)
    );
}
