//! Layer- and model-level forward/backward benchmarks.

use criterion::{criterion_group, criterion_main, Criterion};
use hs_nn::layer::{BatchNorm2d, Conv2d};
use hs_nn::loss::softmax_cross_entropy;
use hs_nn::models;
use hs_tensor::{Rng, Shape, Tensor};

fn bench_conv_forward(c: &mut Criterion) {
    let mut rng = Rng::seed_from(0);
    let mut conv = Conv2d::new(32, 64, 3, 1, 1, &mut rng);
    let x = Tensor::randn(Shape::d4(8, 32, 16, 16), &mut rng);
    let mut group = c.benchmark_group("conv2d");
    group.sample_size(20);
    group.bench_function("forward_8x32x16", |b| {
        b.iter(|| conv.forward(&x, false).expect("forward"));
    });
    group.bench_function("forward_backward_8x32x16", |b| {
        b.iter(|| {
            let y = conv.forward(&x, true).expect("forward");
            conv.backward(&Tensor::ones(y.shape().clone()))
                .expect("backward")
        });
    });
    group.finish();
}

fn bench_batchnorm(c: &mut Criterion) {
    let mut rng = Rng::seed_from(1);
    let mut bn = BatchNorm2d::new(64);
    let x = Tensor::randn(Shape::d4(8, 64, 16, 16), &mut rng);
    c.bench_function("batchnorm_forward_train", |b| {
        b.iter(|| bn.forward(&x, true).expect("bn"));
    });
}

fn bench_vgg_forward(c: &mut Criterion) {
    let mut rng = Rng::seed_from(2);
    let mut net = models::vgg11(3, 16, 16, 0.25, &mut rng).expect("model");
    let x = Tensor::randn(Shape::d4(16, 3, 16, 16), &mut rng);
    let mut group = c.benchmark_group("vgg11_quarter_width");
    group.sample_size(10);
    group.bench_function("inference_batch16", |b| {
        b.iter(|| net.forward(&x, false).expect("forward"));
    });
    group.bench_function("train_step_batch16", |b| {
        let labels: Vec<usize> = (0..16).map(|i| i % 16).collect();
        b.iter(|| {
            net.zero_grad();
            let logits = net.forward(&x, true).expect("forward");
            let (_, grad) = softmax_cross_entropy(&logits, &labels).expect("loss");
            net.backward(&grad).expect("backward")
        });
    });
    group.finish();
}

fn bench_resnet_forward(c: &mut Criterion) {
    let mut rng = Rng::seed_from(3);
    let mut net = models::resnet_cifar(3, 3, 16, 0.25, &mut rng).expect("model");
    let x = Tensor::randn(Shape::d4(16, 3, 16, 16), &mut rng);
    let mut group = c.benchmark_group("resnet20_quarter_width");
    group.sample_size(10);
    group.bench_function("inference_batch16", |b| {
        b.iter(|| net.forward(&x, false).expect("forward"));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_conv_forward,
    bench_batchnorm,
    bench_vgg_forward,
    bench_resnet_forward
);
criterion_main!(benches);
