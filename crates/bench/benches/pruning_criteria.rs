//! Cost of one `keep_set` call per pruning criterion, on the same
//! pretrained-shape network and scoring batch.

use criterion::{criterion_group, criterion_main, Criterion};
use hs_nn::surgery::conv_sites;
use hs_nn::{models, Network};
use hs_pruning::{
    Apoz, AutoPruner, EntropyCriterion, L1Norm, PruningCriterion, Random, ScoreContext, ThiNet,
};
use hs_tensor::{Rng, Shape, Tensor};

fn setup() -> (Network, Tensor, Vec<usize>) {
    let mut rng = Rng::seed_from(0);
    let net = models::vgg11(3, 16, 16, 0.25, &mut rng).expect("model");
    let images = Tensor::randn(Shape::d4(32, 3, 16, 16), &mut rng);
    let labels: Vec<usize> = (0..32).map(|i| i % 16).collect();
    (net, images, labels)
}

fn bench_criteria(c: &mut Criterion) {
    let (net, images, labels) = setup();
    let site = conv_sites(&net)[2];
    let keep = 32; // half of conv2's 64 maps at quarter width
    let mut group = c.benchmark_group("keep_set");
    group.sample_size(10);

    macro_rules! bench_one {
        ($label:expr, $make:expr) => {
            group.bench_function($label, |b| {
                b.iter(|| {
                    let mut net = net.clone();
                    let mut rng = Rng::seed_from(1);
                    let mut criterion = $make;
                    let mut ctx = ScoreContext::new(&mut net, site, &images, &labels, &mut rng);
                    criterion.keep_set(&mut ctx, keep).expect("keep_set")
                });
            });
        };
    }

    bench_one!("l1_norm", L1Norm::new());
    bench_one!("apoz", Apoz::new());
    bench_one!("entropy", EntropyCriterion::new());
    bench_one!("random", Random::new());
    bench_one!("thinet_64samples", ThiNet::new().samples(64));
    bench_one!("autopruner_5iters", AutoPruner::new().iterations(5));
    group.finish();
}

fn bench_surgery(c: &mut Criterion) {
    let (net, _, _) = setup();
    let site = conv_sites(&net)[2];
    let keep: Vec<usize> = (0..64).step_by(2).collect();
    c.bench_function("prune_feature_maps_64to32", |b| {
        b.iter(|| {
            let mut n = net.clone();
            hs_nn::surgery::prune_feature_maps(&mut n, site.conv, &keep).expect("surgery")
        });
    });
}

criterion_group!(benches, bench_criteria, bench_surgery);
criterion_main!(benches);
