//! Benchmarks of one HeadStart RL episode's moving parts.

use criterion::{criterion_group, criterion_main, Criterion};
use hs_core::reinforce::{logit_gradient, sample_action};
use hs_core::{HeadStartNetwork, MaskedEvaluator};
use hs_nn::models;
use hs_tensor::{Rng, Shape, Tensor};

fn bench_policy_forward_and_step(c: &mut Criterion) {
    let mut rng = Rng::seed_from(0);
    let mut policy = HeadStartNetwork::new(128, 8, &mut rng).expect("policy");
    let noise = policy.sample_noise(&mut rng);
    let mut group = c.benchmark_group("policy");
    group.sample_size(30);
    group.bench_function("probs_128_units", |b| {
        b.iter(|| policy.probs(&noise).expect("probs"));
    });
    group.bench_function("probs_plus_train_step", |b| {
        let grad = vec![0.01f32; 128];
        b.iter(|| {
            policy.probs(&noise).expect("probs");
            policy.train_step(&grad).expect("step")
        });
    });
    group.finish();
}

fn bench_action_machinery(c: &mut Criterion) {
    let mut rng = Rng::seed_from(1);
    let probs: Vec<f32> = (0..512).map(|i| (i % 100) as f32 / 100.0).collect();
    c.bench_function("sample_action_512", |b| {
        b.iter(|| sample_action(&probs, &mut rng));
    });
    let actions: Vec<Vec<bool>> = (0..3).map(|_| sample_action(&probs, &mut rng)).collect();
    let rewards = [0.3f32, -0.1, 0.7];
    c.bench_function("logit_gradient_512x3", |b| {
        b.iter(|| logit_gradient(&probs, &actions, &rewards, 0.2));
    });
}

fn bench_masked_evaluation(c: &mut Criterion) {
    // The suffix-only evaluation vs a naive full forward — the
    // optimization that makes the RL loop affordable.
    let mut rng = Rng::seed_from(2);
    let mut net = models::vgg11(3, 16, 16, 0.25, &mut rng).expect("model");
    let images = Tensor::randn(Shape::d4(32, 3, 16, 16), &mut rng);
    let labels: Vec<usize> = (0..32).map(|i| i % 16).collect();
    let site = hs_nn::surgery::conv_sites(&net)[4];
    let evaluator =
        MaskedEvaluator::new(&mut net, site.mask_node, &images, &labels).expect("evaluator");
    let action: Vec<bool> = (0..evaluator.channels()).map(|i| i % 2 == 0).collect();
    let mut group = c.benchmark_group("action_eval");
    group.sample_size(20);
    group.bench_function("suffix_only", |b| {
        b.iter(|| {
            evaluator
                .accuracy_with_action(&mut net, &action)
                .expect("eval")
        });
    });
    group.bench_function("naive_full_forward", |b| {
        let mask: Vec<f32> = action.iter().map(|&a| if a { 1.0 } else { 0.0 }).collect();
        b.iter(|| {
            net.set_channel_mask(site.mask_node, Some(mask.clone()));
            let logits = net.forward(&images, false).expect("forward");
            net.set_channel_mask(site.mask_node, None);
            hs_nn::loss::accuracy(&logits, &labels).expect("accuracy")
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_policy_forward_and_step,
    bench_action_machinery,
    bench_masked_evaluation
);
criterion_main!(benches);
