//! Micro-benchmarks of the tensor kernels every experiment rests on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hs_tensor::{im2col, Conv2dGeometry, Rng, Shape, Tensor};

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    group.sample_size(20);
    for &n in &[32usize, 64, 128] {
        let mut rng = Rng::seed_from(0);
        let a = Tensor::randn(Shape::d2(n, n), &mut rng);
        let b = Tensor::randn(Shape::d2(n, n), &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| a.matmul(&b).expect("matmul"));
        });
    }
    group.finish();
}

fn bench_matmul_transposed_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul_variants");
    group.sample_size(20);
    let mut rng = Rng::seed_from(1);
    let a = Tensor::randn(Shape::d2(96, 96), &mut rng);
    let b = Tensor::randn(Shape::d2(96, 96), &mut rng);
    group.bench_function("nn", |bench| bench.iter(|| a.matmul(&b).expect("nn")));
    group.bench_function("tn", |bench| bench.iter(|| a.matmul_tn(&b).expect("tn")));
    group.bench_function("nt", |bench| bench.iter(|| a.matmul_nt(&b).expect("nt")));
    group.finish();
}

fn bench_im2col(c: &mut Criterion) {
    let mut group = c.benchmark_group("im2col");
    group.sample_size(20);
    for &(channels, size) in &[(16usize, 16usize), (64, 16), (64, 32)] {
        let mut rng = Rng::seed_from(2);
        let x = Tensor::randn(Shape::d3(channels, size, size), &mut rng);
        let geom = Conv2dGeometry::new(channels, size, size, 3, 1, 1);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{channels}c_{size}px")),
            &geom,
            |bench, geom| {
                bench.iter(|| im2col(&x, geom).expect("im2col"));
            },
        );
    }
    group.finish();
}

fn bench_index_select(c: &mut Criterion) {
    let mut rng = Rng::seed_from(3);
    // A VGG-sized weight tensor: select half the filters (surgery's core op).
    let w = Tensor::randn(Shape::d4(128, 128, 3, 3), &mut rng);
    let keep: Vec<usize> = (0..128).step_by(2).collect();
    c.bench_function("index_select_filters", |bench| {
        bench.iter(|| w.index_select(0, &keep).expect("select"));
    });
}

criterion_group!(
    benches,
    bench_matmul,
    bench_matmul_transposed_variants,
    bench_im2col,
    bench_index_select
);
criterion_main!(benches);
