//! Benchmarks of the roofline latency model itself (lowering + sweep).

use criterion::{criterion_group, criterion_main, Criterion};
use hs_gpusim::{devices, estimate, estimate_workload, lower_network};
use hs_nn::models;
use hs_tensor::Rng;

fn bench_lowering(c: &mut Criterion) {
    let mut rng = Rng::seed_from(0);
    let vgg = models::vgg16(3, 100, 32, 1.0, &mut rng).expect("model");
    let resnet = models::resnet_cifar(18, 3, 100, 1.0, &mut rng).expect("model");
    let mut group = c.benchmark_group("lowering");
    group.bench_function("vgg16", |b| {
        b.iter(|| lower_network("vgg16", &vgg, 3, 32).expect("lower"));
    });
    group.bench_function("resnet110", |b| {
        b.iter(|| lower_network("resnet110", &resnet, 3, 32).expect("lower"));
    });
    group.finish();
}

fn bench_estimation(c: &mut Criterion) {
    let mut rng = Rng::seed_from(1);
    let vgg = models::vgg16(3, 200, 224, 1.0, &mut rng).expect("model");
    let workload = lower_network("vgg16_cub", &vgg, 3, 224).expect("lower");
    let mut group = c.benchmark_group("estimation");
    group.bench_function("single_device", |b| {
        let device = devices::gtx_1080ti();
        b.iter(|| estimate_workload(&device, &workload).expect("estimate"));
    });
    group.bench_function("full_device_sweep", |b| {
        b.iter(|| {
            devices::all()
                .iter()
                .map(|d| estimate(d, &vgg, 3, 224).expect("estimate").fps())
                .sum::<f64>()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_lowering, bench_estimation);
criterion_main!(benches);
