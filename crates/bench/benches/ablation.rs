//! Micro-ablations of HeadStart design choices that DESIGN.md calls out:
//! the cost of the self-critical baseline (one extra action evaluation
//! per episode) and the scaling of one full RL episode with the
//! Monte-Carlo sample count k.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hs_core::reinforce::{inference_action, logit_gradient, sample_action};
use hs_core::reward::reward;
use hs_core::MaskedEvaluator;
use hs_nn::models;
use hs_tensor::{Rng, Shape, Tensor};

fn bench_episode_vs_k(c: &mut Criterion) {
    let mut rng = Rng::seed_from(0);
    let mut net = models::vgg11(3, 16, 16, 0.25, &mut rng).expect("model");
    let images = Tensor::randn(Shape::d4(32, 3, 16, 16), &mut rng);
    let labels: Vec<usize> = (0..32).map(|i| i % 16).collect();
    let site = hs_nn::surgery::conv_sites(&net)[2];
    let evaluator =
        MaskedEvaluator::new(&mut net, site.mask_node, &images, &labels).expect("evaluator");
    let channels = evaluator.channels();
    let probs: Vec<f32> = (0..channels)
        .map(|i| 0.3 + 0.4 * ((i % 2) as f32))
        .collect();

    let mut group = c.benchmark_group("episode_cost_vs_k");
    group.sample_size(10);
    for &k in &[1usize, 3, 5] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let mut rng = Rng::seed_from(1);
                let mut actions = Vec::with_capacity(k);
                let mut rewards = Vec::with_capacity(k);
                for _ in 0..k {
                    let a = sample_action(&probs, &mut rng);
                    let acc = evaluator.accuracy_with_action(&mut net, &a).expect("eval");
                    rewards.push(reward(
                        acc,
                        0.7,
                        channels,
                        a.iter().filter(|&&x| x).count().max(1),
                        2.0,
                    ));
                    actions.push(a);
                }
                // Self-critical baseline: one extra evaluation.
                let inf = inference_action(&probs, 0.5);
                let acc = evaluator
                    .accuracy_with_action(&mut net, &inf)
                    .expect("eval");
                let baseline = reward(
                    acc,
                    0.7,
                    channels,
                    inf.iter().filter(|&&x| x).count().max(1),
                    2.0,
                );
                logit_gradient(&probs, &actions, &rewards, baseline)
            });
        });
    }
    group.finish();
}

fn bench_baseline_overhead(c: &mut Criterion) {
    // The self-critical baseline costs exactly one extra action
    // evaluation; measure that evaluation in isolation.
    let mut rng = Rng::seed_from(2);
    let mut net = models::vgg11(3, 16, 16, 0.25, &mut rng).expect("model");
    let images = Tensor::randn(Shape::d4(32, 3, 16, 16), &mut rng);
    let labels: Vec<usize> = (0..32).map(|i| i % 16).collect();
    let site = hs_nn::surgery::conv_sites(&net)[2];
    let evaluator =
        MaskedEvaluator::new(&mut net, site.mask_node, &images, &labels).expect("evaluator");
    let probs: Vec<f32> = (0..evaluator.channels()).map(|_| 0.5).collect();
    c.bench_function("self_critical_baseline_evaluation", |b| {
        b.iter(|| {
            let inf = inference_action(&probs, 0.5);
            evaluator
                .accuracy_with_action(&mut net, &inf)
                .expect("eval")
        });
    });
}

criterion_group!(benches, bench_episode_vs_k, bench_baseline_overhead);
criterion_main!(benches);
