//! Matrix multiplication: the workhorse kernel behind convolution
//! (via im2col lowering) and fully connected layers.
//!
//! The implementation is a BLIS-style cache-blocked GEMM: operands are
//! packed into contiguous panels (`MC`×`KC` strips of A, `KC`×`NC` panels
//! of B) and multiplied by an `MR`×`NR` register-tiled microkernel. Large
//! problems parallelize over disjoint row blocks of the output on the
//! persistent [`crate::pool`] — no per-call thread spawning — and small
//! problems fall back to a naive loop that skips packing overhead.
//!
//! All transpose variants (`A·B`, `Aᵀ·B`, `A·Bᵀ`) are handled by
//! [`gemm_ex`] through the packing step, so backpropagation never
//! materializes a transposed copy, and `accumulate = true` adds into an
//! existing output buffer (used to accumulate weight gradients in place).
//!
//! # Determinism
//!
//! The `KC` reduction blocks are applied sequentially in a fixed order and
//! every output element is owned by exactly one parallel task, so results
//! are bit-identical for any `HS_NUM_THREADS` setting.

use crate::error::TensorError;
use crate::pool;
use crate::shape::Shape;
use crate::telem;
use crate::tensor::Tensor;
use crate::workspace::with_scratch;

/// Problems smaller than this many multiply-accumulates stay single
/// threaded; pool dispatch overhead dominates below it.
pub(crate) const PARALLEL_THRESHOLD: usize = 1 << 18;

/// Below this many multiply-accumulates, packing overhead exceeds the
/// microkernel's cache benefit; use the naive loops instead.
const SMALL_THRESHOLD: usize = 1 << 13;

/// Microkernel register tile: rows of A per strip.
const MR: usize = 8;
/// Microkernel register tile: columns of B per panel.
const NR: usize = 8;
/// Rows of A per cache block (must be a multiple of `MR` so strip
/// boundaries — and therefore results — do not depend on the block
/// partition).
const MC: usize = 64;
/// Depth of the shared-K cache block; one packed A strip (`KC`×`MR`) fits
/// comfortably in L1, a packed B panel (`KC`×`NR`) in L2.
const KC: usize = 256;
/// Columns of B per outer block; bounds packed-B scratch at `KC`×`NC`.
const NC: usize = 2048;

#[inline(always)]
fn a_at(a: &[f32], m: usize, k: usize, i: usize, p: usize, trans: bool) -> f32 {
    if trans {
        // Stored k×m, logical element (i, p) lives at row p, column i.
        a[p * m + i]
    } else {
        a[i * k + p]
    }
}

#[inline(always)]
fn b_at(b: &[f32], k: usize, n: usize, p: usize, j: usize, trans: bool) -> f32 {
    if trans {
        // Stored n×k, logical element (p, j) lives at row j, column p.
        b[j * k + p]
    } else {
        b[p * n + j]
    }
}

/// Naive fallback for problems too small to amortize packing. Skips zero
/// multipliers, which matters for pruned (masked) weight matrices.
#[allow(clippy::too_many_arguments)]
fn gemm_small(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    trans_a: bool,
    trans_b: bool,
) {
    for i in 0..m {
        let out_row = &mut out[i * n..(i + 1) * n];
        for p in 0..k {
            let a_ip = a_at(a, m, k, i, p, trans_a);
            if a_ip == 0.0 {
                continue;
            }
            for (j, o) in out_row.iter_mut().enumerate() {
                *o += a_ip * b_at(b, k, n, p, j, trans_b);
            }
        }
    }
}

/// Packs the `mc`×`kc` block of A starting at (`ic`, `pc`) into `MR`-row
/// strips: `ap[strip][p * MR + r] = A(ic + strip·MR + r, pc + p)`,
/// zero-padding rows past `mc`.
#[allow(clippy::too_many_arguments)]
fn pack_a(
    ap: &mut [f32],
    a: &[f32],
    m: usize,
    k: usize,
    ic: usize,
    mc: usize,
    pc: usize,
    kc: usize,
    trans: bool,
) {
    for (si, strip) in (0..mc).step_by(MR).enumerate() {
        let dst = &mut ap[si * kc * MR..(si + 1) * kc * MR];
        let rows = MR.min(mc - strip);
        for p in 0..kc {
            let cell = &mut dst[p * MR..p * MR + MR];
            for (r, slot) in cell.iter_mut().enumerate() {
                *slot = if r < rows {
                    a_at(a, m, k, ic + strip + r, pc + p, trans)
                } else {
                    0.0
                };
            }
        }
    }
}

/// Packs the `kc`×`nc` block of B starting at (`pc`, `jc`) into `NR`-column
/// panels: `bp[panel][p * NR + c] = B(pc + p, jc + panel·NR + c)`,
/// zero-padding columns past `nc`.
#[allow(clippy::too_many_arguments)]
fn pack_b(
    bp: &mut [f32],
    b: &[f32],
    k: usize,
    n: usize,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
    trans: bool,
) {
    for (pj, jr) in (0..nc).step_by(NR).enumerate() {
        let dst = &mut bp[pj * kc * NR..(pj + 1) * kc * NR];
        let cols = NR.min(nc - jr);
        for p in 0..kc {
            let cell = &mut dst[p * NR..p * NR + NR];
            for (c, slot) in cell.iter_mut().enumerate() {
                *slot = if c < cols {
                    b_at(b, k, n, pc + p, jc + jr + c, trans)
                } else {
                    0.0
                };
            }
        }
    }
}

/// The register-tiled core: `acc[MR×NR] += Ap-strip · Bp-panel` over `kc`
/// depth steps. Both operands are packed contiguously, so the inner loops
/// are unit stride and the accumulator stays in registers.
#[inline(always)]
fn microkernel_portable(kc: usize, ap: &[f32], bp: &[f32], acc: &mut [f32; MR * NR]) {
    for p in 0..kc {
        let a_cell = &ap[p * MR..p * MR + MR];
        let b_cell = &bp[p * NR..p * NR + NR];
        for r in 0..MR {
            let a_rp = a_cell[r];
            let row = &mut acc[r * NR..r * NR + NR];
            for c in 0..NR {
                row[c] += a_rp * b_cell[c];
            }
        }
    }
}

/// AVX2+FMA microkernel, selected at runtime when the CPU supports it.
/// Holds the whole `MR`×`NR` accumulator in eight YMM registers; each
/// depth step is one packed-B load plus `MR` broadcast-FMAs, so the only
/// memory traffic in the hot loop is the two packed panels streaming
/// from L1/L2.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{MR, NR};

    // The single packed-B load per depth step assumes one YMM register
    // spans the full panel width.
    const _: () = assert!(MR == 8 && NR == 8);

    /// # Safety
    ///
    /// Caller must ensure the CPU supports AVX2 and FMA (see
    /// [`available`]) and that `ap`/`bp` hold at least `kc * 8` elements.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn microkernel(kc: usize, ap: &[f32], bp: &[f32], acc: &mut [f32; MR * NR]) {
        use std::arch::x86_64::*;
        debug_assert!(ap.len() >= kc * MR && bp.len() >= kc * NR);
        let mut rows = [_mm256_setzero_ps(); MR];
        let mut a_ptr = ap.as_ptr();
        let mut b_ptr = bp.as_ptr();
        for _ in 0..kc {
            let b_vec = _mm256_loadu_ps(b_ptr);
            for (r, row) in rows.iter_mut().enumerate() {
                let a_rp = _mm256_broadcast_ss(&*a_ptr.add(r));
                *row = _mm256_fmadd_ps(a_rp, b_vec, *row);
            }
            a_ptr = a_ptr.add(MR);
            b_ptr = b_ptr.add(NR);
        }
        for (r, row) in rows.iter().enumerate() {
            let sum = _mm256_add_ps(_mm256_loadu_ps(acc.as_ptr().add(r * NR)), *row);
            _mm256_storeu_ps(acc.as_mut_ptr().add(r * NR), sum);
        }
    }

    /// True when the running CPU has AVX2 and FMA (cached by std).
    pub fn available() -> bool {
        std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("fma")
    }
}

/// Dispatches to the fastest microkernel the CPU supports. Dispatch is a
/// property of the machine, not the thread count, so determinism across
/// `HS_NUM_THREADS` settings is unaffected.
#[inline(always)]
fn microkernel(kc: usize, ap: &[f32], bp: &[f32], acc: &mut [f32; MR * NR]) {
    #[cfg(target_arch = "x86_64")]
    if x86::available() {
        // SAFETY: feature presence checked above; packed panels are
        // allocated at `kc * MR` / `kc * NR` by the callers.
        unsafe { x86::microkernel(kc, ap, bp, acc) };
        return;
    }
    microkernel_portable(kc, ap, bp, acc);
}

/// Multiplies one `mc`-row block of the output: packs the corresponding A
/// block and sweeps the microkernel over every (strip, panel) pair,
/// accumulating valid regions into `out_block` (full `n`-wide rows,
/// columns `jc..jc + nc`).
#[allow(clippy::too_many_arguments)]
fn gemm_block(
    out_block: &mut [f32],
    a: &[f32],
    bp: &[f32],
    m: usize,
    k: usize,
    n: usize,
    ic: usize,
    mc: usize,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
    trans_a: bool,
) {
    let strips = mc.div_ceil(MR);
    with_scratch(strips * kc * MR, |ap| {
        pack_a(ap, a, m, k, ic, mc, pc, kc, trans_a);
        for (si, strip) in (0..mc).step_by(MR).enumerate() {
            let ap_strip = &ap[si * kc * MR..(si + 1) * kc * MR];
            let rows = MR.min(mc - strip);
            for (pj, jr) in (0..nc).step_by(NR).enumerate() {
                let bp_panel = &bp[pj * kc * NR..(pj + 1) * kc * NR];
                let cols = NR.min(nc - jr);
                let mut acc = [0.0f32; MR * NR];
                microkernel(kc, ap_strip, bp_panel, &mut acc);
                for r in 0..rows {
                    let dst = &mut out_block[(strip + r) * n + jc + jr..][..cols];
                    let src = &acc[r * NR..r * NR + cols];
                    for (o, &v) in dst.iter_mut().zip(src) {
                        *o += v;
                    }
                }
            }
        }
    });
}

/// General matrix multiply into a caller-owned buffer:
/// `out[m×n] (+)= op(a) · op(b)` where `op` optionally transposes.
///
/// - `trans_a = false`: `a` is `m×k` row-major; `true`: `a` is stored
///   `k×m` and used as its transpose.
/// - `trans_b = false`: `b` is `k×n` row-major; `true`: `b` is stored
///   `n×k` and used as its transpose.
/// - `accumulate = false` overwrites `out`; `true` adds to it (gradient
///   accumulation without a temporary).
///
/// Large problems run on the persistent worker pool; results are
/// bit-identical for every thread count.
///
/// # Panics
///
/// Panics if slice lengths do not match `m`/`k`/`n`.
#[allow(clippy::too_many_arguments)]
pub fn gemm_ex(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    trans_a: bool,
    trans_b: bool,
    accumulate: bool,
) {
    assert_eq!(a.len(), m * k, "gemm_ex: lhs length mismatch");
    assert_eq!(b.len(), k * n, "gemm_ex: rhs length mismatch");
    assert_eq!(out.len(), m * n, "gemm_ex: out length mismatch");
    if !accumulate {
        out.fill(0.0);
    }
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let work = m * k * n;
    telem::gemm_calls().inc();
    telem::gemm_flops().add(2 * work as u64);
    if work < SMALL_THRESHOLD {
        // No timing here: two clock reads would be measurable against a
        // few thousand multiply-accumulates.
        gemm_small(out, a, b, m, k, n, trans_a, trans_b);
        return;
    }
    let timer = std::time::Instant::now();
    // Serial problems use one row block covering all of `m`; because MC is
    // a multiple of MR the strip decomposition (and hence every float
    // result) is identical either way.
    let block_rows = if work >= PARALLEL_THRESHOLD {
        MC
    } else {
        m.div_ceil(MR) * MR
    };
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        let panels = nc.div_ceil(NR);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            with_scratch(panels * kc * NR, |bp| {
                pack_b(bp, b, k, n, pc, kc, jc, nc, trans_b);
                let bp = &*bp;
                let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = out
                    .chunks_mut(block_rows * n)
                    .enumerate()
                    .map(|(bi, out_block)| {
                        let ic = bi * block_rows;
                        let mc = out_block.len() / n;
                        Box::new(move || {
                            gemm_block(out_block, a, bp, m, k, n, ic, mc, pc, kc, jc, nc, trans_a);
                        }) as Box<dyn FnOnce() + Send + '_>
                    })
                    .collect();
                pool::run_tasks(tasks);
            });
        }
    }
    telem::gemm_secs().observe(timer.elapsed().as_secs_f64());
}

impl Tensor {
    /// Matrix product `self · rhs` of two rank-2 tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if either operand is not
    /// rank 2 or the inner dimensions disagree.
    ///
    /// # Example
    ///
    /// ```
    /// use hs_tensor::{Tensor, Shape};
    /// # fn main() -> Result<(), hs_tensor::TensorError> {
    /// let a = Tensor::from_vec(Shape::d2(2, 2), vec![1.0, 2.0, 3.0, 4.0])?;
    /// let id = Tensor::from_vec(Shape::d2(2, 2), vec![1.0, 0.0, 0.0, 1.0])?;
    /// assert_eq!(a.matmul(&id)?, a);
    /// # Ok(())
    /// # }
    /// ```
    pub fn matmul(&self, rhs: &Tensor) -> Result<Tensor, TensorError> {
        let mismatch = || TensorError::ShapeMismatch {
            op: "matmul",
            lhs: self.shape().clone(),
            rhs: rhs.shape().clone(),
        };
        if self.shape().rank() != 2 || rhs.shape().rank() != 2 {
            return Err(mismatch());
        }
        let (m, k) = (self.shape().dim(0), self.shape().dim(1));
        let (k2, n) = (rhs.shape().dim(0), rhs.shape().dim(1));
        if k != k2 {
            return Err(mismatch());
        }
        let mut out = vec![0.0f32; m * n];
        gemm_ex(
            &mut out,
            self.data(),
            rhs.data(),
            m,
            k,
            n,
            false,
            false,
            false,
        );
        Tensor::from_vec(Shape::d2(m, n), out)
    }

    /// `selfᵀ · rhs` without materializing the transpose.
    ///
    /// With `self: k×m` and `rhs: k×n`, the result is `m×n`. This is the
    /// shape pattern of weight gradients (`Xᵀ·dY`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] on rank or inner-dimension
    /// mismatch.
    pub fn matmul_tn(&self, rhs: &Tensor) -> Result<Tensor, TensorError> {
        let mismatch = || TensorError::ShapeMismatch {
            op: "matmul_tn",
            lhs: self.shape().clone(),
            rhs: rhs.shape().clone(),
        };
        if self.shape().rank() != 2 || rhs.shape().rank() != 2 {
            return Err(mismatch());
        }
        let (k, m) = (self.shape().dim(0), self.shape().dim(1));
        let (k2, n) = (rhs.shape().dim(0), rhs.shape().dim(1));
        if k != k2 {
            return Err(mismatch());
        }
        let mut out = vec![0.0f32; m * n];
        gemm_ex(
            &mut out,
            self.data(),
            rhs.data(),
            m,
            k,
            n,
            true,
            false,
            false,
        );
        Tensor::from_vec(Shape::d2(m, n), out)
    }

    /// `self · rhsᵀ` without materializing the transpose.
    ///
    /// With `self: m×k` and `rhs: n×k`, the result is `m×n`. This is the
    /// shape pattern of input gradients (`dY·Wᵀ` for `Y = X·W`… stored
    /// row-major as `W: n×k`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] on rank or inner-dimension
    /// mismatch.
    pub fn matmul_nt(&self, rhs: &Tensor) -> Result<Tensor, TensorError> {
        let mismatch = || TensorError::ShapeMismatch {
            op: "matmul_nt",
            lhs: self.shape().clone(),
            rhs: rhs.shape().clone(),
        };
        if self.shape().rank() != 2 || rhs.shape().rank() != 2 {
            return Err(mismatch());
        }
        let (m, k) = (self.shape().dim(0), self.shape().dim(1));
        let (n, k2) = (rhs.shape().dim(0), rhs.shape().dim(1));
        if k != k2 {
            return Err(mismatch());
        }
        let mut out = vec![0.0f32; m * n];
        gemm_ex(
            &mut out,
            self.data(),
            rhs.data(),
            m,
            k,
            n,
            false,
            true,
            false,
        );
        Tensor::from_vec(Shape::d2(m, n), out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape().dim(0), a.shape().dim(1));
        let n = b.shape().dim(1);
        Tensor::from_fn(Shape::d2(m, n), |idx| {
            (0..k)
                .map(|p| a.at(&[idx[0], p]) * b.at(&[p, idx[1]]))
                .sum()
        })
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.data().iter().zip(b.data().iter()) {
            assert!(
                (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
                "{x} vs {y}"
            );
        }
    }

    #[test]
    fn matmul_matches_naive_small() {
        let mut rng = Rng::seed_from(1);
        let a = Tensor::randn(Shape::d2(5, 7), &mut rng);
        let b = Tensor::randn(Shape::d2(7, 4), &mut rng);
        assert_close(&a.matmul(&b).unwrap(), &naive(&a, &b), 1e-5);
    }

    #[test]
    fn matmul_matches_naive_parallel_path() {
        let mut rng = Rng::seed_from(2);
        // Big enough to exceed PARALLEL_THRESHOLD.
        let a = Tensor::randn(Shape::d2(128, 96), &mut rng);
        let b = Tensor::randn(Shape::d2(96, 64), &mut rng);
        assert_close(&a.matmul(&b).unwrap(), &naive(&a, &b), 1e-4);
    }

    #[test]
    fn matmul_identity() {
        let mut rng = Rng::seed_from(3);
        let a = Tensor::randn(Shape::d2(6, 6), &mut rng);
        let id = Tensor::from_fn(Shape::d2(6, 6), |i| if i[0] == i[1] { 1.0 } else { 0.0 });
        assert_close(&a.matmul(&id).unwrap(), &a, 1e-6);
        assert_close(&id.matmul(&a).unwrap(), &a, 1e-6);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(Shape::d2(2, 3));
        let b = Tensor::zeros(Shape::d2(4, 5));
        assert!(a.matmul(&b).is_err());
        let c = Tensor::zeros(Shape::d1(3));
        assert!(a.matmul(&c).is_err());
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let mut rng = Rng::seed_from(4);
        let a = Tensor::randn(Shape::d2(9, 5), &mut rng);
        let b = Tensor::randn(Shape::d2(9, 6), &mut rng);
        let expected = a.transpose2().matmul(&b).unwrap();
        assert_close(&a.matmul_tn(&b).unwrap(), &expected, 1e-5);
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let mut rng = Rng::seed_from(5);
        let a = Tensor::randn(Shape::d2(4, 7), &mut rng);
        let b = Tensor::randn(Shape::d2(6, 7), &mut rng);
        let expected = a.matmul(&b.transpose2()).unwrap();
        assert_close(&a.matmul_nt(&b).unwrap(), &expected, 1e-5);
    }

    #[test]
    fn transposed_variants_reject_mismatch() {
        let a = Tensor::zeros(Shape::d2(3, 4));
        let b = Tensor::zeros(Shape::d2(5, 6));
        assert!(a.matmul_tn(&b).is_err());
        assert!(a.matmul_nt(&b).is_err());
    }

    #[test]
    fn zero_dimension_edge_cases() {
        let a = Tensor::zeros(Shape::d2(0, 3));
        let b = Tensor::zeros(Shape::d2(3, 2));
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), &Shape::d2(0, 2));
    }

    /// Scalar reference supporting every `gemm_ex` flag combination.
    #[allow(clippy::too_many_arguments)]
    fn reference(
        out: &mut [f32],
        a: &[f32],
        b: &[f32],
        m: usize,
        k: usize,
        n: usize,
        ta: bool,
        tb: bool,
        acc: bool,
    ) {
        if !acc {
            out.fill(0.0);
        }
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0f32;
                for p in 0..k {
                    s += a_at(a, m, k, i, p, ta) * b_at(b, k, n, p, j, tb);
                }
                out[i * n + j] += s;
            }
        }
    }

    #[test]
    fn gemm_ex_all_variants_match_reference_on_awkward_dims() {
        let mut rng = Rng::seed_from(6);
        // Prime-ish dims exercise every edge-padding path in the packers;
        // 97·61·53 exceeds PARALLEL_THRESHOLD so the pooled path runs too.
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 2),
            (17, 13, 19),
            (31, 7, 29),
            (97, 61, 53),
        ] {
            let av: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect();
            let bv: Vec<f32> = (0..k * n).map(|_| rng.normal()).collect();
            for &(ta, tb) in &[(false, false), (true, false), (false, true)] {
                for &acc in &[false, true] {
                    let mut got: Vec<f32> = (0..m * n).map(|i| i as f32 * 0.01).collect();
                    let mut want = got.clone();
                    gemm_ex(&mut got, &av, &bv, m, k, n, ta, tb, acc);
                    reference(&mut want, &av, &bv, m, k, n, ta, tb, acc);
                    for (g, w) in got.iter().zip(&want) {
                        assert!(
                            (g - w).abs() <= 1e-4 * (1.0 + g.abs().max(w.abs())),
                            "m={m} k={k} n={n} ta={ta} tb={tb} acc={acc}: {g} vs {w}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn gemm_ex_accumulate_adds_to_existing_output() {
        let mut rng = Rng::seed_from(7);
        let a = Tensor::randn(Shape::d2(6, 4), &mut rng);
        let b = Tensor::randn(Shape::d2(4, 5), &mut rng);
        let product = a.matmul(&b).unwrap();
        let mut out = vec![1.0f32; 6 * 5];
        gemm_ex(&mut out, a.data(), b.data(), 6, 4, 5, false, false, true);
        for (o, p) in out.iter().zip(product.data()) {
            assert!((o - (p + 1.0)).abs() < 1e-5);
        }
    }

    #[test]
    fn repeated_calls_are_bit_identical() {
        // Same problem twice through the pooled path must produce the very
        // same bits (task partition is independent of scheduling).
        let mut rng = Rng::seed_from(8);
        let a = Tensor::randn(Shape::d2(128, 80), &mut rng);
        let b = Tensor::randn(Shape::d2(80, 72), &mut rng);
        let first = a.matmul(&b).unwrap();
        for _ in 0..4 {
            assert_eq!(a.matmul(&b).unwrap().data(), first.data());
        }
    }
}
