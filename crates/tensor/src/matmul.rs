//! Matrix multiplication: the workhorse kernel behind convolution
//! (via im2col lowering) and fully connected layers.
//!
//! The implementation is a cache-friendly `i-k-j` loop with row-parallel
//! threading over crossbeam scoped threads for large problems. It also
//! provides the transposed variants backpropagation needs (`Aᵀ·B`, `A·Bᵀ`)
//! without materializing transposed copies.

use crate::error::TensorError;
use crate::shape::Shape;
use crate::tensor::Tensor;

/// Problems smaller than this many multiply-accumulates stay single
/// threaded; thread spawn overhead dominates below it.
const PARALLEL_THRESHOLD: usize = 1 << 18;

fn thread_count() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// `out[m×n] += a[m×k] · b[k×n]` for one row band, single threaded.
fn gemm_band(a: &[f32], b: &[f32], out: &mut [f32], rows: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), rows * k);
    debug_assert_eq!(out.len(), rows * n);
    for i in 0..rows {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &b_pj) in out_row.iter_mut().zip(b_row.iter()) {
                *o += a_ip * b_pj;
            }
        }
    }
}

/// Raw GEMM: `out = a·b` with `a: m×k`, `b: k×n`, row-major slices.
///
/// Parallelizes over row bands of `a` when the problem is large enough.
pub(crate) fn gemm(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    let work = m * k * n;
    let threads = thread_count();
    if work < PARALLEL_THRESHOLD || threads < 2 || m < 2 {
        gemm_band(a, b, &mut out, m, k, n);
        return out;
    }
    let band = m.div_ceil(threads);
    crossbeam::thread::scope(|scope| {
        for (band_idx, out_chunk) in out.chunks_mut(band * n).enumerate() {
            let row0 = band_idx * band;
            let rows = out_chunk.len() / n;
            let a_chunk = &a[row0 * k..(row0 + rows) * k];
            scope.spawn(move |_| {
                gemm_band(a_chunk, b, out_chunk, rows, k, n);
            });
        }
    })
    .expect("matmul worker thread panicked");
    out
}

impl Tensor {
    /// Matrix product `self · rhs` of two rank-2 tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if either operand is not
    /// rank 2 or the inner dimensions disagree.
    ///
    /// # Example
    ///
    /// ```
    /// use hs_tensor::{Tensor, Shape};
    /// # fn main() -> Result<(), hs_tensor::TensorError> {
    /// let a = Tensor::from_vec(Shape::d2(2, 2), vec![1.0, 2.0, 3.0, 4.0])?;
    /// let id = Tensor::from_vec(Shape::d2(2, 2), vec![1.0, 0.0, 0.0, 1.0])?;
    /// assert_eq!(a.matmul(&id)?, a);
    /// # Ok(())
    /// # }
    /// ```
    pub fn matmul(&self, rhs: &Tensor) -> Result<Tensor, TensorError> {
        let mismatch = || TensorError::ShapeMismatch {
            op: "matmul",
            lhs: self.shape().clone(),
            rhs: rhs.shape().clone(),
        };
        if self.shape().rank() != 2 || rhs.shape().rank() != 2 {
            return Err(mismatch());
        }
        let (m, k) = (self.shape().dim(0), self.shape().dim(1));
        let (k2, n) = (rhs.shape().dim(0), rhs.shape().dim(1));
        if k != k2 {
            return Err(mismatch());
        }
        let out = gemm(self.data(), rhs.data(), m, k, n);
        Tensor::from_vec(Shape::d2(m, n), out)
    }

    /// `selfᵀ · rhs` without materializing the transpose.
    ///
    /// With `self: k×m` and `rhs: k×n`, the result is `m×n`. This is the
    /// shape pattern of weight gradients (`Xᵀ·dY`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] on rank or inner-dimension
    /// mismatch.
    pub fn matmul_tn(&self, rhs: &Tensor) -> Result<Tensor, TensorError> {
        let mismatch = || TensorError::ShapeMismatch {
            op: "matmul_tn",
            lhs: self.shape().clone(),
            rhs: rhs.shape().clone(),
        };
        if self.shape().rank() != 2 || rhs.shape().rank() != 2 {
            return Err(mismatch());
        }
        let (k, m) = (self.shape().dim(0), self.shape().dim(1));
        let (k2, n) = (rhs.shape().dim(0), rhs.shape().dim(1));
        if k != k2 {
            return Err(mismatch());
        }
        // outᵀ accumulation with the same cache-friendly inner loop:
        // out[i][j] = Σ_p a[p][i] * b[p][j].
        let a = self.data();
        let b = rhs.data();
        let mut out = vec![0.0f32; m * n];
        for p in 0..k {
            let a_row = &a[p * m..(p + 1) * m];
            let b_row = &b[p * n..(p + 1) * n];
            for (i, &a_pi) in a_row.iter().enumerate() {
                if a_pi == 0.0 {
                    continue;
                }
                let out_row = &mut out[i * n..(i + 1) * n];
                for (o, &b_pj) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a_pi * b_pj;
                }
            }
        }
        Tensor::from_vec(Shape::d2(m, n), out)
    }

    /// `self · rhsᵀ` without materializing the transpose.
    ///
    /// With `self: m×k` and `rhs: n×k`, the result is `m×n`. This is the
    /// shape pattern of input gradients (`dY·Wᵀ` for `Y = X·W`… stored
    /// row-major as `W: n×k`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] on rank or inner-dimension
    /// mismatch.
    pub fn matmul_nt(&self, rhs: &Tensor) -> Result<Tensor, TensorError> {
        let mismatch = || TensorError::ShapeMismatch {
            op: "matmul_nt",
            lhs: self.shape().clone(),
            rhs: rhs.shape().clone(),
        };
        if self.shape().rank() != 2 || rhs.shape().rank() != 2 {
            return Err(mismatch());
        }
        let (m, k) = (self.shape().dim(0), self.shape().dim(1));
        let (n, k2) = (rhs.shape().dim(0), rhs.shape().dim(1));
        if k != k2 {
            return Err(mismatch());
        }
        let a = self.data();
        let b = rhs.data();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let out_row = &mut out[i * n..(i + 1) * n];
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = &b[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&x, &y) in a_row.iter().zip(b_row.iter()) {
                    acc += x * y;
                }
                *o = acc;
            }
        }
        Tensor::from_vec(Shape::d2(m, n), out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape().dim(0), a.shape().dim(1));
        let n = b.shape().dim(1);
        Tensor::from_fn(Shape::d2(m, n), |idx| {
            (0..k).map(|p| a.at(&[idx[0], p]) * b.at(&[p, idx[1]])).sum()
        })
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.data().iter().zip(b.data().iter()) {
            assert!((x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())), "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_matches_naive_small() {
        let mut rng = Rng::seed_from(1);
        let a = Tensor::randn(Shape::d2(5, 7), &mut rng);
        let b = Tensor::randn(Shape::d2(7, 4), &mut rng);
        assert_close(&a.matmul(&b).unwrap(), &naive(&a, &b), 1e-5);
    }

    #[test]
    fn matmul_matches_naive_parallel_path() {
        let mut rng = Rng::seed_from(2);
        // Big enough to exceed PARALLEL_THRESHOLD.
        let a = Tensor::randn(Shape::d2(128, 96), &mut rng);
        let b = Tensor::randn(Shape::d2(96, 64), &mut rng);
        assert_close(&a.matmul(&b).unwrap(), &naive(&a, &b), 1e-4);
    }

    #[test]
    fn matmul_identity() {
        let mut rng = Rng::seed_from(3);
        let a = Tensor::randn(Shape::d2(6, 6), &mut rng);
        let id = Tensor::from_fn(Shape::d2(6, 6), |i| if i[0] == i[1] { 1.0 } else { 0.0 });
        assert_close(&a.matmul(&id).unwrap(), &a, 1e-6);
        assert_close(&id.matmul(&a).unwrap(), &a, 1e-6);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(Shape::d2(2, 3));
        let b = Tensor::zeros(Shape::d2(4, 5));
        assert!(a.matmul(&b).is_err());
        let c = Tensor::zeros(Shape::d1(3));
        assert!(a.matmul(&c).is_err());
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let mut rng = Rng::seed_from(4);
        let a = Tensor::randn(Shape::d2(9, 5), &mut rng);
        let b = Tensor::randn(Shape::d2(9, 6), &mut rng);
        let expected = a.transpose2().matmul(&b).unwrap();
        assert_close(&a.matmul_tn(&b).unwrap(), &expected, 1e-5);
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let mut rng = Rng::seed_from(5);
        let a = Tensor::randn(Shape::d2(4, 7), &mut rng);
        let b = Tensor::randn(Shape::d2(6, 7), &mut rng);
        let expected = a.matmul(&b.transpose2()).unwrap();
        assert_close(&a.matmul_nt(&b).unwrap(), &expected, 1e-5);
    }

    #[test]
    fn transposed_variants_reject_mismatch() {
        let a = Tensor::zeros(Shape::d2(3, 4));
        let b = Tensor::zeros(Shape::d2(5, 6));
        assert!(a.matmul_tn(&b).is_err());
        assert!(a.matmul_nt(&b).is_err());
    }

    #[test]
    fn zero_dimension_edge_cases() {
        let a = Tensor::zeros(Shape::d2(0, 3));
        let b = Tensor::zeros(Shape::d2(3, 2));
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), &Shape::d2(0, 2));
    }
}
