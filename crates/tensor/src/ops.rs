//! Operator overloads and checked elementwise arithmetic.
//!
//! Operators (`+`, `-`, `*` between tensors, and with `f32` scalars) panic
//! on shape mismatch — they exist for readable math in internal kernels.
//! The checked equivalents ([`Tensor::try_add`] etc.) return errors and are
//! what public-facing code should use on untrusted shapes.

use std::ops::{Add, Mul, Neg, Sub};

use crate::error::TensorError;
use crate::tensor::Tensor;

impl Tensor {
    /// Elementwise sum of two equal-shape tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn try_add(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        let mut out = self.clone();
        out.zip_mut_with(other, |a, b| a + b)?;
        Ok(out)
    }

    /// Elementwise difference of two equal-shape tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn try_sub(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        let mut out = self.clone();
        out.zip_mut_with(other, |a, b| a - b)?;
        Ok(out)
    }

    /// Elementwise (Hadamard) product of two equal-shape tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn try_mul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        let mut out = self.clone();
        out.zip_mut_with(other, |a, b| a * b)?;
        Ok(out)
    }
}

macro_rules! binary_op {
    ($trait:ident, $method:ident, $f:expr) => {
        impl $trait<&Tensor> for &Tensor {
            type Output = Tensor;
            /// # Panics
            ///
            /// Panics if the shapes differ; use the `try_` variant for a
            /// checked version.
            fn $method(self, rhs: &Tensor) -> Tensor {
                let mut out = self.clone();
                out.zip_mut_with(rhs, $f)
                    .unwrap_or_else(|e| panic!("tensor operator `{}`: {e}", stringify!($method)));
                out
            }
        }

        impl $trait<Tensor> for Tensor {
            type Output = Tensor;
            /// # Panics
            ///
            /// Panics if the shapes differ.
            fn $method(self, rhs: Tensor) -> Tensor {
                (&self).$method(&rhs)
            }
        }
    };
}

binary_op!(Add, add, |a, b| a + b);
binary_op!(Sub, sub, |a, b| a - b);
binary_op!(Mul, mul, |a, b| a * b);

impl Mul<f32> for &Tensor {
    type Output = Tensor;
    fn mul(self, rhs: f32) -> Tensor {
        let mut out = self.clone();
        out.scale(rhs);
        out
    }
}

impl Mul<f32> for Tensor {
    type Output = Tensor;
    fn mul(mut self, rhs: f32) -> Tensor {
        self.scale(rhs);
        self
    }
}

impl Add<f32> for &Tensor {
    type Output = Tensor;
    fn add(self, rhs: f32) -> Tensor {
        self.map(|x| x + rhs)
    }
}

impl Neg for &Tensor {
    type Output = Tensor;
    fn neg(self) -> Tensor {
        self.map(|x| -x)
    }
}

impl Neg for Tensor {
    type Output = Tensor;
    fn neg(mut self) -> Tensor {
        self.map_inplace(|x| -x);
        self
    }
}

#[cfg(test)]
mod tests {
    use crate::{Shape, Tensor};

    fn t(v: Vec<f32>) -> Tensor {
        let n = v.len();
        Tensor::from_vec(Shape::d1(n), v).expect("length matches")
    }

    #[test]
    fn add_sub_mul() {
        let a = t(vec![1.0, 2.0, 3.0]);
        let b = t(vec![4.0, 5.0, 6.0]);
        assert_eq!((&a + &b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!((&b - &a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!((&a * &b).data(), &[4.0, 10.0, 18.0]);
    }

    #[test]
    fn scalar_ops() {
        let a = t(vec![1.0, -2.0]);
        assert_eq!((&a * 2.0).data(), &[2.0, -4.0]);
        assert_eq!((&a + 1.0).data(), &[2.0, -1.0]);
        assert_eq!((-&a).data(), &[-1.0, 2.0]);
    }

    #[test]
    fn try_variants_report_mismatch() {
        let a = t(vec![1.0, 2.0]);
        let b = t(vec![1.0, 2.0, 3.0]);
        assert!(a.try_add(&b).is_err());
        assert!(a.try_sub(&b).is_err());
        assert!(a.try_mul(&b).is_err());
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn operator_panics_on_mismatch() {
        let _ = &t(vec![1.0]) + &t(vec![1.0, 2.0]);
    }

    #[test]
    fn owned_operators_match_borrowed() {
        let a = t(vec![1.0, 2.0]);
        let b = t(vec![3.0, 4.0]);
        assert_eq!(a.clone() + b.clone(), &a + &b);
        assert_eq!(a.clone() - b.clone(), &a - &b);
        assert_eq!(a.clone() * b.clone(), &a * &b);
    }
}
