//! Cached handles to this crate's telemetry metrics.
//!
//! Kernel call sites record through these accessors so the registry's
//! name-lookup lock is taken once per metric per process, leaving one
//! relaxed atomic op on the hot path. Metric names follow the workspace
//! convention `hs_<crate>_<what>[_total|_bytes|_secs]`.

use std::sync::OnceLock;

use hs_telemetry::metrics::{self, Counter, Gauge, Histogram, TIME_BUCKETS_SECS};

macro_rules! cached_counter {
    ($fn_name:ident, $metric:literal) => {
        pub(crate) fn $fn_name() -> &'static Counter {
            static HANDLE: OnceLock<&'static Counter> = OnceLock::new();
            HANDLE.get_or_init(|| metrics::counter($metric))
        }
    };
}

cached_counter!(gemm_calls, "hs_tensor_gemm_calls_total");
cached_counter!(gemm_flops, "hs_tensor_gemm_flops_total");
cached_counter!(im2col_calls, "hs_tensor_im2col_calls_total");
cached_counter!(im2col_bytes, "hs_tensor_im2col_bytes_total");
cached_counter!(col2im_calls, "hs_tensor_col2im_calls_total");
cached_counter!(pool_batches, "hs_tensor_pool_batches_total");
cached_counter!(pool_tasks, "hs_tensor_pool_tasks_total");

/// Wall-clock seconds of blocked (non-naive) GEMM calls. The naive
/// small-problem path skips timing: two `Instant` reads would be
/// measurable against a few thousand multiply-accumulates.
pub(crate) fn gemm_secs() -> &'static Histogram {
    static HANDLE: OnceLock<&'static Histogram> = OnceLock::new();
    HANDLE.get_or_init(|| metrics::histogram("hs_tensor_gemm_secs", &TIME_BUCKETS_SECS))
}

/// High-water mark of scratch-arena bytes checked out across all threads.
pub(crate) fn scratch_highwater_bytes() -> &'static Gauge {
    static HANDLE: OnceLock<&'static Gauge> = OnceLock::new();
    HANDLE.get_or_init(|| metrics::gauge("hs_tensor_scratch_highwater_bytes"))
}
