//! Weight-initialization schemes.

use crate::rng::Rng;
use crate::shape::Shape;
use crate::tensor::Tensor;

/// A weight-initialization scheme.
///
/// The reproduction follows common practice for the paper's models: Kaiming
/// (He) initialization for convolution filters feeding ReLUs, Xavier for
/// fully connected classifier heads.
///
/// # Example
///
/// ```
/// use hs_tensor::{Init, Shape, Rng};
///
/// let mut rng = Rng::seed_from(0);
/// // 64 3x3 filters over 32 input channels.
/// let w = Init::KaimingNormal.sample(Shape::d4(64, 32, 3, 3), &mut rng);
/// assert_eq!(w.len(), 64 * 32 * 9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Init {
    /// All zeros (biases).
    Zeros,
    /// A constant value everywhere.
    Constant(f32),
    /// He normal: `N(0, sqrt(2 / fan_in))`, suited to ReLU networks.
    KaimingNormal,
    /// Glorot/Xavier uniform: `U(±sqrt(6 / (fan_in + fan_out)))`.
    XavierUniform,
    /// Plain normal with the given standard deviation.
    Normal(f32),
    /// Plain uniform on `[-a, a]`.
    Uniform(f32),
}

impl Init {
    /// Samples a tensor of the given shape under this scheme.
    ///
    /// Fan-in/fan-out are derived from the shape using the convolution
    /// convention: for rank ≥ 2, `fan_in = prod(dims[1..])` and
    /// `fan_out = dims[0] * prod(dims[2..])`; for rank ≤ 1 both default
    /// to the element count (so biases behave sanely).
    pub fn sample(self, shape: impl Into<Shape>, rng: &mut Rng) -> Tensor {
        let shape = shape.into();
        let dims = shape.dims();
        let (fan_in, fan_out) = if dims.len() >= 2 {
            let receptive: usize = dims[2..].iter().product();
            (dims[1] * receptive, dims[0] * receptive)
        } else {
            let n = shape.len().max(1);
            (n, n)
        };
        match self {
            Init::Zeros => Tensor::zeros(shape),
            Init::Constant(c) => Tensor::full(shape, c),
            Init::KaimingNormal => {
                let std = (2.0 / fan_in.max(1) as f32).sqrt();
                let mut t = Tensor::randn(shape, rng);
                t.scale(std);
                t
            }
            Init::XavierUniform => {
                let a = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
                Tensor::rand(shape, -a, a, rng)
            }
            Init::Normal(std) => {
                let mut t = Tensor::randn(shape, rng);
                t.scale(std);
                t
            }
            Init::Uniform(a) => Tensor::rand(shape, -a.abs(), a.abs(), rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_constant() {
        let mut rng = Rng::seed_from(0);
        assert!(Init::Zeros
            .sample(Shape::d1(10), &mut rng)
            .data()
            .iter()
            .all(|&x| x == 0.0));
        assert!(Init::Constant(2.5)
            .sample(Shape::d1(10), &mut rng)
            .data()
            .iter()
            .all(|&x| x == 2.5));
    }

    #[test]
    fn kaiming_std_matches_fan_in() {
        let mut rng = Rng::seed_from(1);
        // fan_in = 128 * 9
        let w = Init::KaimingNormal.sample(Shape::d4(64, 128, 3, 3), &mut rng);
        let var = w.sq_norm() / w.len() as f32;
        let expected = 2.0 / (128.0 * 9.0);
        assert!(
            (var - expected).abs() < 0.1 * expected,
            "var {var} vs {expected}"
        );
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = Rng::seed_from(2);
        let w = Init::XavierUniform.sample(Shape::d2(100, 50), &mut rng);
        let a = (6.0f32 / 150.0).sqrt();
        assert!(w.data().iter().all(|&x| x.abs() <= a));
        // And not degenerate:
        assert!(w.max() > 0.5 * a);
    }

    #[test]
    fn uniform_symmetric() {
        let mut rng = Rng::seed_from(3);
        let w = Init::Uniform(0.1).sample(Shape::d1(1000), &mut rng);
        assert!(w.data().iter().all(|&x| x.abs() <= 0.1));
        assert!(w.mean().abs() < 0.02);
    }

    #[test]
    fn normal_scales_std() {
        let mut rng = Rng::seed_from(4);
        let w = Init::Normal(0.01).sample(Shape::d1(10_000), &mut rng);
        let var = w.sq_norm() / w.len() as f32;
        assert!((var.sqrt() - 0.01).abs() < 0.002);
    }
}
