//! Deterministic, seedable random number generation.
//!
//! Every stochastic component in the reproduction — weight initialization,
//! data synthesis, Bernoulli action sampling in the HeadStart policy —
//! draws from this generator so that a fixed seed reproduces an experiment
//! exactly. The core is xoshiro256++ seeded through SplitMix64, the same
//! construction used by `rand`'s small RNGs, implemented here so the tensor
//! crate has no runtime dependency on `rand` itself.

/// Deterministic pseudo-random number generator (xoshiro256++).
///
/// # Example
///
/// ```
/// use hs_tensor::Rng;
///
/// let mut a = Rng::seed_from(7);
/// let mut b = Rng::seed_from(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Rng {
    state: [u64; 4],
    /// Cached second output of the Box–Muller transform.
    gauss_cache: Option<f32>,
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// Different seeds produce statistically independent streams; the
    /// all-zero internal state is unreachable by construction.
    pub fn seed_from(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the 256-bit state.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Rng {
            state: [next(), next(), next(), next()],
            gauss_cache: None,
        }
    }

    /// Derives an independent child generator; useful for giving each
    /// component (data, weights, policy) its own stream from one root seed.
    pub fn split(&mut self) -> Rng {
        Rng::seed_from(self.next_u64())
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn uniform(&mut self) -> f32 {
        // 24 high bits → mantissa-exact uniform in [0,1).
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform `f32` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform_in(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo <= hi, "uniform_in requires lo <= hi (got {lo} > {hi})");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, bound)` by rejection-free Lemire reduction.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below(0) is meaningless");
        // Multiply-shift; bias is negligible for the bounds used here
        // (dataset sizes, channel counts ≪ 2^32).
        ((self.next_u64() >> 32).wrapping_mul(bound as u64) >> 32) as usize
    }

    /// Standard normal sample via the Box–Muller transform.
    pub fn normal(&mut self) -> f32 {
        if let Some(cached) = self.gauss_cache.take() {
            return cached;
        }
        // Avoid u == 0 so ln stays finite.
        let u = loop {
            let u = self.uniform();
            if u > 1e-12 {
                break u;
            }
        };
        let v = self.uniform();
        let r = (-2.0 * u.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * v;
        self.gauss_cache = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.normal()
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f32) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i + 1);
            slice.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)` (a random k-subset),
    /// returned in random order.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct indices from {n}");
        let mut all: Vec<usize> = (0..n).collect();
        self.shuffle(&mut all);
        all.truncate(k);
        all
    }
}

impl Default for Rng {
    fn default() -> Self {
        Rng::seed_from(0)
    }
}

/// A complete, serializable snapshot of an [`Rng`]'s state.
///
/// Captures both the xoshiro256++ state words and the cached second
/// Box–Muller output, so a generator restored from a snapshot continues
/// the stream **bit-identically** — the property crash-resumable
/// pipelines rely on when they journal RNG state at stage boundaries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RngSnapshot {
    /// The four xoshiro256++ state words.
    pub state: [u64; 4],
    /// The cached second output of the Box–Muller transform, if any.
    pub gauss_cache: Option<f32>,
}

impl Rng {
    /// Captures the generator's complete state.
    pub fn snapshot(&self) -> RngSnapshot {
        RngSnapshot {
            state: self.state,
            gauss_cache: self.gauss_cache,
        }
    }

    /// Rebuilds a generator from a snapshot; the restored generator
    /// produces exactly the stream the snapshotted one would have.
    ///
    /// An all-zero state (unreachable from [`Rng::seed_from`], but
    /// representable in a hand-built snapshot) is mapped to the seed-0
    /// state so the generator can never get stuck.
    pub fn from_snapshot(s: RngSnapshot) -> Rng {
        if s.state == [0; 4] {
            let mut rng = Rng::seed_from(0);
            rng.gauss_cache = s.gauss_cache;
            return rng;
        }
        Rng {
            state: s.state,
            gauss_cache: s.gauss_cache,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed_from(123);
        let mut b = Rng::seed_from(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = Rng::seed_from(9);
        for _ in 0..10_000 {
            let x = rng.uniform();
            assert!((0.0..1.0).contains(&x), "uniform out of range: {x}");
        }
    }

    #[test]
    fn uniform_mean_near_half() {
        let mut rng = Rng::seed_from(11);
        let n = 50_000;
        let mean: f32 = (0..n).map(|_| rng.uniform()).sum::<f32>() / n as f32;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::seed_from(13);
        let n = 100_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = Rng::seed_from(17);
        for _ in 0..10_000 {
            assert!(rng.below(7) < 7);
        }
        // Every residue should occur.
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.below(7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = Rng::seed_from(19);
        assert!((0..100).all(|_| rng.bernoulli(1.0)));
        assert!((0..100).all(|_| !rng.bernoulli(0.0)));
    }

    #[test]
    fn bernoulli_rate() {
        let mut rng = Rng::seed_from(23);
        let hits = (0..20_000).filter(|_| rng.bernoulli(0.3)).count();
        let rate = hits as f32 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::seed_from(29);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left input ordered");
    }

    #[test]
    fn sample_indices_distinct() {
        let mut rng = Rng::seed_from(31);
        let sample = rng.sample_indices(20, 8);
        assert_eq!(sample.len(), 8);
        let mut sorted = sample.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 8, "duplicates in sample {sample:?}");
        assert!(sample.iter().all(|&i| i < 20));
    }

    #[test]
    fn snapshot_restores_the_stream_bit_exactly() {
        let mut rng = Rng::seed_from(41);
        // Leave a Box–Muller second half in the cache on purpose.
        let _ = rng.normal();
        let snap = rng.snapshot();
        let expected: Vec<f32> = (0..32).map(|_| rng.normal()).collect();
        let mut restored = Rng::from_snapshot(snap);
        let replayed: Vec<f32> = (0..32).map(|_| restored.normal()).collect();
        assert_eq!(
            expected.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            replayed.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn zero_snapshot_is_not_a_stuck_state() {
        let mut rng = Rng::from_snapshot(RngSnapshot {
            state: [0; 4],
            gauss_cache: None,
        });
        assert_ne!(rng.next_u64(), rng.next_u64());
    }

    #[test]
    fn split_streams_differ() {
        let mut root = Rng::seed_from(37);
        let mut a = root.split();
        let mut b = root.split();
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
