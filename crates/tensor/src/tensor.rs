//! The dense `f32` tensor type.

use crate::error::TensorError;
use crate::pool;
use crate::rng::Rng;
use crate::shape::Shape;

/// Elementwise kernels split buffers into chunks of this many elements for
/// the worker pool. The size is fixed (never derived from the thread
/// count), so chunk boundaries — and with them floating-point results —
/// are identical under any `HS_NUM_THREADS`.
const PAR_CHUNK: usize = 1 << 15;

/// Applies `f` to fixed-size disjoint chunks of `data`, in parallel when
/// the buffer is large enough to amortize pool dispatch.
fn par_apply(data: &mut [f32], f: impl Fn(&mut [f32]) + Sync) {
    if data.len() <= PAR_CHUNK {
        f(data);
        return;
    }
    let f = &f;
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = data
        .chunks_mut(PAR_CHUNK)
        .map(|chunk| Box::new(move || f(chunk)) as Box<dyn FnOnce() + Send + '_>)
        .collect();
    pool::run_tasks(tasks);
}

/// Like [`par_apply`] but over paired chunks of two equal-length buffers.
fn par_apply2(data: &mut [f32], other: &[f32], f: impl Fn(&mut [f32], &[f32]) + Sync) {
    debug_assert_eq!(data.len(), other.len());
    if data.len() <= PAR_CHUNK {
        f(data, other);
        return;
    }
    let f = &f;
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = data
        .chunks_mut(PAR_CHUNK)
        .zip(other.chunks(PAR_CHUNK))
        .map(|(a, b)| Box::new(move || f(a, b)) as Box<dyn FnOnce() + Send + '_>)
        .collect();
    pool::run_tasks(tasks);
}

/// A contiguous, row-major, heap-allocated `f32` tensor.
///
/// This is the single array type used throughout the reproduction for
/// weights, activations, gradients and datasets. It is deliberately simple:
/// always contiguous, always `f32`, always row-major — the properties the
/// convolution lowering and the blocked matmul rely on.
///
/// # Example
///
/// ```
/// use hs_tensor::{Tensor, Shape};
///
/// let t = Tensor::from_fn(Shape::d2(2, 3), |idx| (idx[0] * 3 + idx[1]) as f32);
/// assert_eq!(t.at(&[1, 2]), 5.0);
/// assert_eq!(t.sum(), 15.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let len = shape.len();
        Tensor {
            shape,
            data: vec![0.0; len],
        }
    }

    /// Creates a tensor of ones.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let len = shape.len();
        Tensor {
            shape,
            data: vec![value; len],
        }
    }

    /// Creates a rank-0 tensor holding a single value.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: Shape::scalar(),
            data: vec![value],
        }
    }

    /// Creates a tensor from an existing buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::BufferLengthMismatch`] if the buffer length
    /// does not equal the shape's element count.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Result<Self, TensorError> {
        let shape = shape.into();
        if shape.len() != data.len() {
            return Err(TensorError::BufferLengthMismatch {
                buffer: data.len(),
                shape: shape.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a tensor by evaluating `f` at every multi-index.
    pub fn from_fn(shape: impl Into<Shape>, mut f: impl FnMut(&[usize]) -> f32) -> Self {
        let shape = shape.into();
        let rank = shape.rank();
        let mut index = vec![0usize; rank];
        let mut data = Vec::with_capacity(shape.len());
        for _ in 0..shape.len() {
            data.push(f(&index));
            // Odometer increment.
            for axis in (0..rank).rev() {
                index[axis] += 1;
                if index[axis] < shape.dim(axis) {
                    break;
                }
                index[axis] = 0;
            }
        }
        Tensor { shape, data }
    }

    /// Creates a tensor of i.i.d. standard-normal samples.
    pub fn randn(shape: impl Into<Shape>, rng: &mut Rng) -> Self {
        let shape = shape.into();
        let data = (0..shape.len()).map(|_| rng.normal()).collect();
        Tensor { shape, data }
    }

    /// Creates a tensor of i.i.d. uniform samples in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn rand(shape: impl Into<Shape>, lo: f32, hi: f32, rng: &mut Rng) -> Self {
        let shape = shape.into();
        let data = (0..shape.len()).map(|_| rng.uniform_in(lo, hi)).collect();
        Tensor { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total number of elements.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The underlying buffer, row-major.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying buffer, row-major.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range or of the wrong rank.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Mutable element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range or of the wrong rank.
    pub fn at_mut(&mut self, index: &[usize]) -> &mut f32 {
        let off = self.shape.offset(index);
        &mut self.data[off]
    }

    /// Reinterprets the buffer under a new shape of equal element count.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ElementCountMismatch`] if the counts differ.
    pub fn reshape(mut self, shape: impl Into<Shape>) -> Result<Self, TensorError> {
        let shape = shape.into();
        if shape.len() != self.data.len() {
            return Err(TensorError::ElementCountMismatch {
                have: self.data.len(),
                want: shape.len(),
            });
        }
        self.shape = shape;
        Ok(self)
    }

    /// Flattens to rank 1.
    pub fn flatten(self) -> Self {
        let len = self.data.len();
        Tensor {
            shape: Shape::d1(len),
            data: self.data,
        }
    }

    /// Applies `f` to every element, producing a new tensor. Large buffers
    /// run chunked on the persistent worker pool.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Self {
        let mut out = self.clone();
        out.map_inplace(f);
        out
    }

    /// Applies `f` to every element in place. Large buffers run chunked on
    /// the persistent worker pool.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32 + Sync) {
        par_apply(&mut self.data, |chunk| {
            for x in chunk {
                *x = f(*x);
            }
        });
    }

    /// Elementwise combination with another tensor of identical shape,
    /// writing into `self`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn zip_mut_with(
        &mut self,
        other: &Tensor,
        f: impl Fn(f32, f32) -> f32 + Sync,
    ) -> Result<(), TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op: "zip_mut_with",
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
            });
        }
        par_apply2(&mut self.data, &other.data, |dst, src| {
            for (a, &b) in dst.iter_mut().zip(src.iter()) {
                *a = f(*a, b);
            }
        });
        Ok(())
    }

    /// `self += alpha * other` (the BLAS `axpy` operation).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) -> Result<(), TensorError> {
        self.zip_mut_with(other, |a, b| a + alpha * b)
    }

    /// Multiplies every element by `alpha` in place.
    pub fn scale(&mut self, alpha: f32) {
        par_apply(&mut self.data, |chunk| {
            for x in chunk {
                *x *= alpha;
            }
        });
    }

    /// Sets every element to zero (gradient-buffer reset).
    pub fn fill(&mut self, value: f32) {
        par_apply(&mut self.data, |chunk| chunk.fill(value));
    }

    /// Sum of all elements.
    ///
    /// Accumulates in f64 over fixed-size chunks (parallel on large
    /// buffers); the chunking is independent of the thread count, so the
    /// result is bit-identical under any `HS_NUM_THREADS`.
    pub fn sum(&self) -> f32 {
        pool::reduce_chunks(self.data.len(), PAR_CHUNK, |s, e| {
            self.data[s..e].iter().map(|&x| x as f64).sum::<f64>()
        }) as f32
    }

    /// Mean of all elements.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn mean(&self) -> f32 {
        assert!(!self.data.is_empty(), "mean of empty tensor");
        self.sum() / self.data.len() as f32
    }

    /// Maximum element.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn max(&self) -> f32 {
        assert!(!self.data.is_empty(), "max of empty tensor");
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn min(&self) -> f32 {
        assert!(!self.data.is_empty(), "min of empty tensor");
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Index of the maximum element in the flattened buffer.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn argmax(&self) -> usize {
        assert!(!self.data.is_empty(), "argmax of empty tensor");
        let mut best = 0;
        for (i, &x) in self.data.iter().enumerate() {
            if x > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// Sum of squares of all elements (squared Frobenius norm).
    pub fn sq_norm(&self) -> f32 {
        pool::reduce_chunks(self.data.len(), PAR_CHUNK, |s, e| {
            self.data[s..e]
                .iter()
                .map(|&x| (x as f64) * (x as f64))
                .sum::<f64>()
        }) as f32
    }

    /// Sum of absolute values (L1 norm of the flattened tensor).
    pub fn l1_norm(&self) -> f32 {
        pool::reduce_chunks(self.data.len(), PAR_CHUNK, |s, e| {
            self.data[s..e].iter().map(|&x| x.abs() as f64).sum::<f64>()
        }) as f32
    }

    /// Returns a contiguous sub-tensor: entry `i` along axis 0.
    ///
    /// For an NCHW activation batch this extracts one sample (as CHW).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is rank 0 or `i` is out of range.
    pub fn index_axis0(&self, i: usize) -> Tensor {
        assert!(self.shape.rank() >= 1, "index_axis0 on scalar");
        let n = self.shape.dim(0);
        assert!(i < n, "index {i} out of range for axis of size {n}");
        let inner = self.shape.without_axis(0);
        let step = inner.len();
        let data = self.data[i * step..(i + 1) * step].to_vec();
        Tensor { shape: inner, data }
    }

    /// Stacks rank-`r` tensors of identical shape into a rank-`r+1` tensor
    /// along a new leading axis.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for an empty input and
    /// [`TensorError::ShapeMismatch`] if any element's shape differs from
    /// the first's.
    pub fn stack(parts: &[Tensor]) -> Result<Tensor, TensorError> {
        let first = parts.first().ok_or(TensorError::Empty { op: "stack" })?;
        let inner = first.shape.clone();
        let mut data = Vec::with_capacity(parts.len() * inner.len());
        for p in parts {
            if p.shape != inner {
                return Err(TensorError::ShapeMismatch {
                    op: "stack",
                    lhs: inner,
                    rhs: p.shape.clone(),
                });
            }
            data.extend_from_slice(&p.data);
        }
        let mut dims = vec![parts.len()];
        dims.extend_from_slice(inner.dims());
        Ok(Tensor {
            shape: Shape::new(dims),
            data,
        })
    }

    /// Concatenates tensors along an existing `axis`; all other
    /// dimensions must agree.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for an empty input,
    /// [`TensorError::AxisOutOfRange`] for a bad axis, and
    /// [`TensorError::ShapeMismatch`] if the non-`axis` dimensions of any
    /// part differ from the first's.
    ///
    /// # Example
    ///
    /// ```
    /// use hs_tensor::{Tensor, Shape};
    /// # fn main() -> Result<(), hs_tensor::TensorError> {
    /// let a = Tensor::ones(Shape::d2(2, 3));
    /// let b = Tensor::zeros(Shape::d2(1, 3));
    /// let c = Tensor::concat(&[a, b], 0)?;
    /// assert_eq!(c.shape().dims(), &[3, 3]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn concat(parts: &[Tensor], axis: usize) -> Result<Tensor, TensorError> {
        let first = parts.first().ok_or(TensorError::Empty { op: "concat" })?;
        let rank = first.shape.rank();
        if axis >= rank {
            return Err(TensorError::AxisOutOfRange { axis, rank });
        }
        let mut axis_total = 0usize;
        for p in parts {
            if p.shape.rank() != rank
                || p.shape
                    .dims()
                    .iter()
                    .enumerate()
                    .any(|(i, &d)| i != axis && d != first.shape.dim(i))
            {
                return Err(TensorError::ShapeMismatch {
                    op: "concat",
                    lhs: first.shape.clone(),
                    rhs: p.shape.clone(),
                });
            }
            axis_total += p.shape.dim(axis);
        }
        let outer: usize = first.shape.dims()[..axis].iter().product();
        let inner: usize = first.shape.dims()[axis + 1..].iter().product();
        let mut out_dims = first.shape.dims().to_vec();
        out_dims[axis] = axis_total;
        let mut data = Vec::with_capacity(outer * axis_total * inner);
        for o in 0..outer {
            for p in parts {
                let span = p.shape.dim(axis) * inner;
                let start = o * span;
                data.extend_from_slice(&p.data[start..start + span]);
            }
        }
        Tensor::from_vec(Shape::new(out_dims), data)
    }

    /// Selects the given entries along `axis`, in the given order,
    /// producing a new tensor whose `axis` has size `indices.len()`.
    ///
    /// This is the primitive behind channel surgery: keeping filters
    /// `[0, 2, 5]` of a `[N, C, K, K]` weight is
    /// `w.index_select(0, &[0, 2, 5])`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] if `axis` is invalid.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range for the selected axis.
    pub fn index_select(&self, axis: usize, indices: &[usize]) -> Result<Tensor, TensorError> {
        let rank = self.shape.rank();
        if axis >= rank {
            return Err(TensorError::AxisOutOfRange { axis, rank });
        }
        let dims = self.shape.dims();
        let axis_len = dims[axis];
        let outer: usize = dims[..axis].iter().product();
        let inner: usize = dims[axis + 1..].iter().product();
        let mut out_dims = dims.to_vec();
        out_dims[axis] = indices.len();
        let mut out = Vec::with_capacity(outer * indices.len() * inner);
        for o in 0..outer {
            for &idx in indices {
                assert!(
                    idx < axis_len,
                    "index {idx} out of range for axis {axis} of size {axis_len}"
                );
                let start = (o * axis_len + idx) * inner;
                out.extend_from_slice(&self.data[start..start + inner]);
            }
        }
        Ok(Tensor {
            shape: Shape::new(out_dims),
            data: out,
        })
    }

    /// Sums over `axis`, reducing the rank by one.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] if `axis` is invalid.
    pub fn sum_axis(&self, axis: usize) -> Result<Tensor, TensorError> {
        let rank = self.shape.rank();
        if axis >= rank {
            return Err(TensorError::AxisOutOfRange { axis, rank });
        }
        let dims = self.shape.dims();
        let axis_len = dims[axis];
        let outer: usize = dims[..axis].iter().product();
        let inner: usize = dims[axis + 1..].iter().product();
        let mut out = vec![0.0f32; outer * inner];
        for o in 0..outer {
            for a in 0..axis_len {
                let base = (o * axis_len + a) * inner;
                let dst = o * inner;
                for i in 0..inner {
                    out[dst + i] += self.data[base + i];
                }
            }
        }
        Ok(Tensor {
            shape: self.shape.without_axis(axis),
            data: out,
        })
    }

    /// Mean over `axis`, reducing the rank by one.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] if `axis` is invalid.
    pub fn mean_axis(&self, axis: usize) -> Result<Tensor, TensorError> {
        let n = self
            .shape
            .dim(axis.min(self.shape.rank().saturating_sub(1)));
        let mut t = self.sum_axis(axis)?;
        if n > 0 {
            t.scale(1.0 / n as f32);
        }
        Ok(t)
    }

    /// 2-D transpose.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn transpose2(&self) -> Tensor {
        assert_eq!(self.shape.rank(), 2, "transpose2 requires a rank-2 tensor");
        let (r, c) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = vec![0.0f32; r * c];
        for i in 0..r {
            for j in 0..c {
                out[j * r + i] = self.data[i * c + j];
            }
        }
        Tensor {
            shape: Shape::d2(c, r),
            data: out,
        }
    }

    /// Returns `true` if all elements are finite (no NaN/±∞); useful as a
    /// training-divergence check.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::scalar(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_fill_correctly() {
        assert!(Tensor::zeros(Shape::d2(2, 2))
            .data()
            .iter()
            .all(|&x| x == 0.0));
        assert!(Tensor::ones(Shape::d2(2, 2))
            .data()
            .iter()
            .all(|&x| x == 1.0));
        assert!(Tensor::full(Shape::d1(3), 7.5)
            .data()
            .iter()
            .all(|&x| x == 7.5));
        assert_eq!(Tensor::scalar(3.0).at(&[]), 3.0);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(Shape::d2(2, 2), vec![1.0; 4]).is_ok());
        let err = Tensor::from_vec(Shape::d2(2, 2), vec![1.0; 5]).unwrap_err();
        assert!(matches!(
            err,
            TensorError::BufferLengthMismatch {
                buffer: 5,
                shape: 4
            }
        ));
    }

    #[test]
    fn from_fn_visits_row_major() {
        let t = Tensor::from_fn(Shape::d2(2, 3), |idx| (idx[0] * 10 + idx[1]) as f32);
        assert_eq!(t.data(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    fn reshape_checks_count() {
        let t = Tensor::zeros(Shape::d2(2, 3));
        assert!(t.clone().reshape(Shape::d1(6)).is_ok());
        assert!(t.reshape(Shape::d1(7)).is_err());
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(Shape::d1(4), vec![1.0, -2.0, 3.0, -4.0]).unwrap();
        assert_eq!(t.sum(), -2.0);
        assert_eq!(t.mean(), -0.5);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.min(), -4.0);
        assert_eq!(t.argmax(), 2);
        assert_eq!(t.l1_norm(), 10.0);
        assert_eq!(t.sq_norm(), 30.0);
    }

    #[test]
    fn axpy_adds_scaled() {
        let mut a = Tensor::ones(Shape::d1(3));
        let b = Tensor::from_vec(Shape::d1(3), vec![1.0, 2.0, 3.0]).unwrap();
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a.data(), &[1.5, 2.0, 2.5]);
    }

    #[test]
    fn axpy_rejects_mismatch() {
        let mut a = Tensor::ones(Shape::d1(3));
        let b = Tensor::ones(Shape::d1(4));
        assert!(a.axpy(1.0, &b).is_err());
    }

    #[test]
    fn index_axis0_extracts_sample() {
        let t = Tensor::from_fn(Shape::d3(2, 2, 2), |idx| {
            (idx[0] * 100 + idx[1] * 10 + idx[2]) as f32
        });
        let s = t.index_axis0(1);
        assert_eq!(s.shape(), &Shape::d2(2, 2));
        assert_eq!(s.data(), &[100.0, 101.0, 110.0, 111.0]);
    }

    #[test]
    fn stack_inverts_index_axis0() {
        let t = Tensor::from_fn(Shape::d3(3, 2, 2), |idx| {
            (idx[0] * 4 + idx[1] * 2 + idx[2]) as f32
        });
        let parts: Vec<Tensor> = (0..3).map(|i| t.index_axis0(i)).collect();
        assert_eq!(Tensor::stack(&parts).unwrap(), t);
    }

    #[test]
    fn stack_rejects_heterogeneous() {
        let a = Tensor::zeros(Shape::d1(2));
        let b = Tensor::zeros(Shape::d1(3));
        assert!(Tensor::stack(&[a, b]).is_err());
        assert!(Tensor::stack(&[]).is_err());
    }

    #[test]
    fn concat_axis0_matches_stack_of_rows() {
        let a = Tensor::from_fn(Shape::d2(2, 3), |i| (i[0] * 3 + i[1]) as f32);
        let b = Tensor::from_fn(Shape::d2(1, 3), |i| 100.0 + i[1] as f32);
        let c = Tensor::concat(&[a.clone(), b.clone()], 0).unwrap();
        assert_eq!(c.shape(), &Shape::d2(3, 3));
        assert_eq!(&c.data()[..6], a.data());
        assert_eq!(&c.data()[6..], b.data());
    }

    #[test]
    fn concat_middle_axis_interleaves() {
        // [1, 2, 2] ++ [1, 1, 2] along axis 1 → [1, 3, 2].
        let a = Tensor::from_vec(Shape::d3(1, 2, 2), vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Tensor::from_vec(Shape::d3(1, 1, 2), vec![9.0, 8.0]).unwrap();
        let c = Tensor::concat(&[a, b], 1).unwrap();
        assert_eq!(c.shape(), &Shape::d3(1, 3, 2));
        assert_eq!(c.data(), &[1.0, 2.0, 3.0, 4.0, 9.0, 8.0]);
    }

    #[test]
    fn concat_inverts_index_select_split() {
        let mut rng = Rng::seed_from(41);
        let t = Tensor::randn(Shape::d3(2, 5, 3), &mut rng);
        let left = t.index_select(1, &[0, 1]).unwrap();
        let right = t.index_select(1, &[2, 3, 4]).unwrap();
        assert_eq!(Tensor::concat(&[left, right], 1).unwrap(), t);
    }

    #[test]
    fn concat_validates_inputs() {
        assert!(Tensor::concat(&[], 0).is_err());
        let a = Tensor::zeros(Shape::d2(2, 3));
        let b = Tensor::zeros(Shape::d2(2, 4));
        assert!(Tensor::concat(&[a.clone(), b], 0).is_err());
        assert!(Tensor::concat(std::slice::from_ref(&a), 5).is_err());
        let c = Tensor::zeros(Shape::d1(6));
        assert!(Tensor::concat(&[a, c], 0).is_err(), "rank mismatch");
    }

    #[test]
    fn index_select_middle_axis() {
        // [2, 3, 2] tensor; select channels [2, 0] along axis 1.
        let t = Tensor::from_fn(Shape::d3(2, 3, 2), |idx| {
            (idx[0] * 100 + idx[1] * 10 + idx[2]) as f32
        });
        let s = t.index_select(1, &[2, 0]).unwrap();
        assert_eq!(s.shape(), &Shape::d3(2, 2, 2));
        assert_eq!(
            s.data(),
            &[20.0, 21.0, 0.0, 1.0, 120.0, 121.0, 100.0, 101.0]
        );
    }

    #[test]
    fn index_select_bad_axis_errors() {
        let t = Tensor::zeros(Shape::d2(2, 2));
        assert!(matches!(
            t.index_select(5, &[0]),
            Err(TensorError::AxisOutOfRange { axis: 5, rank: 2 })
        ));
    }

    #[test]
    fn sum_axis_matches_manual() {
        let t = Tensor::from_fn(Shape::d3(2, 3, 4), |idx| (idx[0] + idx[1] + idx[2]) as f32);
        let s = t.sum_axis(1).unwrap();
        assert_eq!(s.shape(), &Shape::d2(2, 4));
        for i in 0..2 {
            for k in 0..4 {
                let manual: f32 = (0..3).map(|j| t.at(&[i, j, k])).sum();
                assert_eq!(s.at(&[i, k]), manual);
            }
        }
    }

    #[test]
    fn mean_axis_divides() {
        let t = Tensor::from_vec(Shape::d2(2, 2), vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let m = t.mean_axis(0).unwrap();
        assert_eq!(m.data(), &[2.0, 3.0]);
    }

    #[test]
    fn transpose2_round_trip() {
        let t = Tensor::from_fn(Shape::d2(3, 5), |idx| (idx[0] * 5 + idx[1]) as f32);
        assert_eq!(t.transpose2().transpose2(), t);
        assert_eq!(t.transpose2().at(&[4, 2]), t.at(&[2, 4]));
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut t = Tensor::ones(Shape::d1(3));
        assert!(t.all_finite());
        t.data_mut()[1] = f32::NAN;
        assert!(!t.all_finite());
    }

    #[test]
    fn randn_uses_rng_deterministically() {
        let mut r1 = Rng::seed_from(5);
        let mut r2 = Rng::seed_from(5);
        assert_eq!(
            Tensor::randn(Shape::d2(3, 3), &mut r1),
            Tensor::randn(Shape::d2(3, 3), &mut r2)
        );
    }
}
