//! Persistent worker pool shared by every parallel kernel in the
//! workspace.
//!
//! The seed implementation spawned fresh crossbeam scoped threads on every
//! large matmul call — thousands of thread spawns per HeadStart search
//! episode. This module replaces that with a process-wide pool created
//! lazily on first use and kept alive for the process lifetime: submitting
//! a batch of tasks is a queue push + condvar wake, not a `clone(2)`.
//!
//! # Sizing
//!
//! The pool holds [`num_threads`]`- 1` workers (the submitting thread
//! itself executes tasks while it waits, so total concurrency equals
//! [`num_threads`]). The count defaults to `std::thread::available_parallelism`
//! and can be overridden with the `HS_NUM_THREADS` environment variable,
//! read once at first use. `HS_NUM_THREADS=1` disables worker threads
//! entirely; every task then runs inline on the caller.
//!
//! # Determinism
//!
//! Kernels built on this pool split work into chunks whose boundaries
//! depend only on the problem size — never on the thread count — and each
//! output element is produced by exactly one task with a fixed internal
//! reduction order. Results are therefore bit-identical for any
//! `HS_NUM_THREADS`, including 1.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;

/// A unit of work submitted to the pool. Lifetimes are erased by
/// [`run_tasks`], which joins all tasks before returning.
type Task = Box<dyn FnOnce() + Send + 'static>;

struct Queue {
    tasks: Mutex<VecDeque<Task>>,
    ready: Condvar,
}

struct Pool {
    queue: Arc<Queue>,
    workers: usize,
}

static POOL: OnceLock<Pool> = OnceLock::new();
static THREADS: OnceLock<usize> = OnceLock::new();

thread_local! {
    /// Set for pool workers: tasks that themselves call [`run_tasks`]
    /// execute their subtasks inline instead of re-entering the queue,
    /// which rules out worker-starvation deadlocks from nested
    /// parallelism.
    static IS_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Parses an `HS_NUM_THREADS`-style override; `None`/garbage/0 falls back
/// to the machine's available parallelism.
fn resolve_threads(var: Option<&str>) -> usize {
    match var.and_then(|s| s.trim().parse::<usize>().ok()) {
        Some(n) if n >= 1 => n,
        _ => thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// The pool's concurrency: `HS_NUM_THREADS` if set to a positive integer,
/// otherwise `std::thread::available_parallelism()`. Read once; later
/// changes to the environment variable have no effect.
pub fn num_threads() -> usize {
    *THREADS.get_or_init(|| resolve_threads(std::env::var("HS_NUM_THREADS").ok().as_deref()))
}

/// The pool size actually in use: spawned workers plus the submitting
/// thread. Forces pool creation, so the answer reflects what parallel
/// kernels really run on — unlike [`num_threads`], which only reports
/// the configured target and can disagree with reality if worker
/// spawning failed. Benchmarks record this value.
pub fn effective_threads() -> usize {
    pool().workers + 1
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let queue = Arc::new(Queue {
            tasks: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
        });
        let workers = num_threads().saturating_sub(1);
        for i in 0..workers {
            let queue = Arc::clone(&queue);
            thread::Builder::new()
                .name(format!("hs-pool-{i}"))
                .spawn(move || {
                    IS_WORKER.with(|w| w.set(true));
                    worker_loop(&queue);
                })
                .expect("failed to spawn pool worker");
        }
        Pool { queue, workers }
    })
}

fn worker_loop(queue: &Queue) {
    loop {
        let task = {
            let mut tasks = queue.tasks.lock().expect("pool queue poisoned");
            loop {
                if let Some(task) = tasks.pop_front() {
                    break task;
                }
                tasks = queue.ready.wait(tasks).expect("pool queue poisoned");
            }
        };
        task();
    }
}

/// Tracks completion (and panics) of one `run_tasks` batch.
struct Batch {
    pending: Mutex<usize>,
    done: Condvar,
    panicked: AtomicUsize,
}

impl Batch {
    fn finish_one(&self) {
        let mut pending = self.pending.lock().expect("pool batch poisoned");
        *pending -= 1;
        if *pending == 0 {
            self.done.notify_all();
        }
    }
}

/// Executes every task, using the pool when it helps, and returns when all
/// are done. Task closures may borrow from the caller's stack: the borrow
/// is sound because this function does not return until every task has
/// finished.
///
/// Tasks run in submission order when executed inline (one thread) and in
/// an unspecified interleaving otherwise, so they must write to disjoint
/// data. Panics in tasks are re-raised on the caller.
pub fn run_tasks(tasks: Vec<Box<dyn FnOnce() + Send + '_>>) {
    if tasks.is_empty() {
        return;
    }
    crate::telem::pool_batches().inc();
    crate::telem::pool_tasks().add(tasks.len() as u64);
    let inline = tasks.len() == 1 || IS_WORKER.with(|w| w.get());
    if inline || pool().workers == 0 {
        // Same panic behavior as the pooled path: run every task, then
        // report a single batch-level panic.
        let mut panicked = false;
        for task in tasks {
            panicked |= std::panic::catch_unwind(std::panic::AssertUnwindSafe(task)).is_err();
        }
        if panicked {
            panic!("a pool task panicked");
        }
        return;
    }
    let pool = pool();
    let batch = Arc::new(Batch {
        pending: Mutex::new(tasks.len()),
        done: Condvar::new(),
        panicked: AtomicUsize::new(0),
    });
    {
        let mut queue = pool.queue.tasks.lock().expect("pool queue poisoned");
        for task in tasks {
            // SAFETY: the closure may borrow caller-stack data ('_), but we
            // block below until the whole batch has completed, so no borrow
            // outlives this call. The queue itself requires 'static.
            let task: Task =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Task>(task) };
            let batch = Arc::clone(&batch);
            queue.push_back(Box::new(move || {
                if std::panic::catch_unwind(std::panic::AssertUnwindSafe(task)).is_err() {
                    batch.panicked.fetch_add(1, Ordering::Relaxed);
                }
                batch.finish_one();
            }));
        }
        pool.queue.ready.notify_all();
    }
    // Help drain the queue instead of idling: the submitting thread is one
    // of the `num_threads()` compute lanes.
    loop {
        let task = {
            let mut queue = pool.queue.tasks.lock().expect("pool queue poisoned");
            queue.pop_front()
        };
        match task {
            Some(task) => task(),
            None => break,
        }
    }
    let mut pending = batch.pending.lock().expect("pool batch poisoned");
    while *pending > 0 {
        pending = batch.done.wait(pending).expect("pool batch poisoned");
    }
    drop(pending);
    if batch.panicked.load(Ordering::Relaxed) > 0 {
        panic!("a pool task panicked");
    }
}

/// Splits `0..len` into chunks of `chunk` elements (the last may be
/// shorter) and runs `f(start, end)` for each, in parallel when the pool
/// has workers. Chunk boundaries depend only on `len` and `chunk`, keeping
/// results thread-count-invariant.
pub fn for_each_chunk(len: usize, chunk: usize, f: impl Fn(usize, usize) + Sync) {
    if len == 0 {
        return;
    }
    let chunk = chunk.max(1);
    let f = &f;
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..len.div_ceil(chunk))
        .map(|i| {
            let start = i * chunk;
            let end = (start + chunk).min(len);
            Box::new(move || f(start, end)) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    run_tasks(tasks);
}

/// Deterministic parallel reduction: maps each fixed-size chunk of `0..len`
/// to an `f64` partial and combines the partials **in chunk order** on the
/// caller. The partitioning depends only on `len` and `chunk`, so the
/// result is bit-identical for every thread count.
pub fn reduce_chunks(len: usize, chunk: usize, map: impl Fn(usize, usize) -> f64 + Sync) -> f64 {
    if len == 0 {
        return 0.0;
    }
    let chunk = chunk.max(1);
    let n_chunks = len.div_ceil(chunk);
    let mut partials = vec![0.0f64; n_chunks];
    {
        let map = &map;
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = partials
            .iter_mut()
            .enumerate()
            .map(|(i, slot)| {
                let start = i * chunk;
                let end = (start + chunk).min(len);
                Box::new(move || *slot = map(start, end)) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        run_tasks(tasks);
    }
    partials.into_iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_threads_parses_and_falls_back() {
        assert_eq!(resolve_threads(Some("3")), 3);
        assert_eq!(resolve_threads(Some(" 12 ")), 12);
        let fallback = thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(resolve_threads(Some("0")), fallback);
        assert_eq!(resolve_threads(Some("plenty")), fallback);
        assert_eq!(resolve_threads(None), fallback);
    }

    #[test]
    fn effective_threads_matches_configuration() {
        // workers + the submitting thread == the configured concurrency.
        assert_eq!(effective_threads(), num_threads());
    }

    #[test]
    fn run_tasks_completes_all() {
        let counter = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..64)
            .map(|_| {
                let counter = &counter;
                Box::new(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        run_tasks(tasks);
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn for_each_chunk_covers_range_exactly_once() {
        let len = 1003;
        let hits: Vec<AtomicUsize> = (0..len).map(|_| AtomicUsize::new(0)).collect();
        for_each_chunk(len, 17, |start, end| {
            for slot in &hits[start..end] {
                slot.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn reduce_chunks_matches_serial_sum() {
        let data: Vec<f64> = (0..5000).map(|i| i as f64 * 0.25).collect();
        let total = reduce_chunks(data.len(), 64, |s, e| data[s..e].iter().sum());
        let serial: f64 = data.iter().sum();
        assert_eq!(total, serial);
    }

    #[test]
    fn nested_run_tasks_does_not_deadlock() {
        let counter = AtomicUsize::new(0);
        for_each_chunk(8, 1, |_, _| {
            for_each_chunk(8, 1, |_, _| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    #[should_panic(expected = "pool task panicked")]
    fn task_panics_propagate() {
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
            .map(|i| {
                Box::new(move || {
                    if i == 2 {
                        panic!("boom");
                    }
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        run_tasks(tasks);
    }
}
