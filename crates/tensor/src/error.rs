//! Error type shared by all fallible tensor operations.

use std::error::Error;
use std::fmt;

use crate::shape::Shape;

/// Error returned by fallible tensor operations.
///
/// Hot-path kernels (indexing inside loops) use panics with descriptive
/// messages instead; anything reachable from user-supplied shapes returns
/// this type so callers can use `?`.
#[derive(Debug, Clone, PartialEq)]
pub enum TensorError {
    /// Two tensors were combined but their shapes are incompatible for the
    /// requested operation.
    ShapeMismatch {
        /// Operation that was attempted (e.g. `"matmul"`).
        op: &'static str,
        /// Shape of the left-hand / first operand.
        lhs: Shape,
        /// Shape of the right-hand / second operand.
        rhs: Shape,
    },
    /// A reshape was requested to a shape with a different element count.
    ElementCountMismatch {
        /// Element count of the existing tensor.
        have: usize,
        /// Element count implied by the requested shape.
        want: usize,
    },
    /// A dimension index was out of range for the tensor's rank.
    AxisOutOfRange {
        /// The offending axis.
        axis: usize,
        /// The tensor's rank.
        rank: usize,
    },
    /// A tensor was constructed from a buffer whose length does not match
    /// the requested shape.
    BufferLengthMismatch {
        /// Length of the provided buffer.
        buffer: usize,
        /// Element count implied by the shape.
        shape: usize,
    },
    /// An operation required a non-empty tensor but received an empty one.
    Empty {
        /// Operation that was attempted.
        op: &'static str,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "shape mismatch in {op}: {lhs} vs {rhs}")
            }
            TensorError::ElementCountMismatch { have, want } => {
                write!(
                    f,
                    "cannot reshape {have} elements into a shape of {want} elements"
                )
            }
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank-{rank} tensor")
            }
            TensorError::BufferLengthMismatch { buffer, shape } => {
                write!(
                    f,
                    "buffer of length {buffer} does not match shape of {shape} elements"
                )
            }
            TensorError::Empty { op } => write!(f, "operation {op} requires a non-empty tensor"),
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let err = TensorError::ShapeMismatch {
            op: "matmul",
            lhs: Shape::d2(2, 3),
            rhs: Shape::d2(4, 5),
        };
        let text = err.to_string();
        assert!(text.starts_with("shape mismatch"));
        assert!(!text.ends_with('.'));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
