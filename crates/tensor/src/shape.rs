//! Tensor shapes and row-major index arithmetic.

use std::fmt;

/// The dimensions of a [`Tensor`](crate::Tensor), stored outermost-first.
///
/// All tensors in this library are contiguous and row-major, so a shape is
/// sufficient to describe the memory layout; strides are derived on demand.
///
/// # Example
///
/// ```
/// use hs_tensor::Shape;
///
/// let s = Shape::d4(2, 3, 4, 5); // e.g. NCHW activations
/// assert_eq!(s.len(), 120);
/// assert_eq!(s.rank(), 4);
/// assert_eq!(s.dim(1), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from an explicit dimension list.
    pub fn new(dims: impl Into<Vec<usize>>) -> Self {
        Shape { dims: dims.into() }
    }

    /// Scalar shape (rank 0, one element).
    pub fn scalar() -> Self {
        Shape { dims: Vec::new() }
    }

    /// Rank-1 shape.
    pub fn d1(a: usize) -> Self {
        Shape { dims: vec![a] }
    }

    /// Rank-2 shape (rows, cols).
    pub fn d2(a: usize, b: usize) -> Self {
        Shape { dims: vec![a, b] }
    }

    /// Rank-3 shape.
    pub fn d3(a: usize, b: usize, c: usize) -> Self {
        Shape {
            dims: vec![a, b, c],
        }
    }

    /// Rank-4 shape, conventionally NCHW in this library.
    pub fn d4(a: usize, b: usize, c: usize, d: usize) -> Self {
        Shape {
            dims: vec![a, b, c, d],
        }
    }

    /// The dimension list, outermost first.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements (product of dimensions; 1 for a scalar).
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Whether the shape contains zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// Row-major strides (in elements) for this shape.
    ///
    /// ```
    /// use hs_tensor::Shape;
    /// assert_eq!(Shape::d3(2, 3, 4).strides(), vec![12, 4, 1]);
    /// ```
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Flattens a multi-dimensional index into a linear offset.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of range.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.dims.len(),
            "index rank {} does not match shape rank {}",
            index.len(),
            self.dims.len()
        );
        let mut off = 0;
        let mut stride = 1;
        for axis in (0..self.dims.len()).rev() {
            assert!(
                index[axis] < self.dims[axis],
                "index {} out of range for dim {} of size {}",
                index[axis],
                axis,
                self.dims[axis]
            );
            off += index[axis] * stride;
            stride *= self.dims[axis];
        }
        off
    }

    /// Returns a new shape with `axis` removed.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.rank()`.
    pub fn without_axis(&self, axis: usize) -> Shape {
        assert!(axis < self.dims.len(), "axis {axis} out of range");
        let mut dims = self.dims.clone();
        dims.remove(axis);
        Shape { dims }
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape {
            dims: dims.to_vec(),
        }
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape {
            dims: dims.to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_has_one_element() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn len_is_product() {
        assert_eq!(Shape::d4(2, 3, 4, 5).len(), 120);
        assert_eq!(Shape::d1(7).len(), 7);
        assert_eq!(Shape::new(vec![3, 0, 2]).len(), 0);
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::d4(2, 3, 4, 5).strides(), vec![60, 20, 5, 1]);
        assert_eq!(Shape::d1(9).strides(), vec![1]);
        assert!(Shape::scalar().strides().is_empty());
    }

    #[test]
    fn offset_round_trips_with_strides() {
        let s = Shape::d3(2, 3, 4);
        let strides = s.strides();
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    let manual = i * strides[0] + j * strides[1] + k * strides[2];
                    assert_eq!(s.offset(&[i, j, k]), manual);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn offset_rejects_out_of_range() {
        Shape::d2(2, 2).offset(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "rank")]
    fn offset_rejects_wrong_rank() {
        Shape::d2(2, 2).offset(&[0]);
    }

    #[test]
    fn without_axis_drops_dimension() {
        assert_eq!(Shape::d3(2, 3, 4).without_axis(1), Shape::d2(2, 4));
    }

    #[test]
    fn display_lists_dims() {
        assert_eq!(Shape::d3(1, 2, 3).to_string(), "[1, 2, 3]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }

    #[test]
    fn conversion_from_arrays_and_vecs() {
        assert_eq!(Shape::from([2, 3]), Shape::d2(2, 3));
        assert_eq!(Shape::from(vec![2, 3]), Shape::d2(2, 3));
        let slice: &[usize] = &[4];
        assert_eq!(Shape::from(slice), Shape::d1(4));
    }
}
