//! Reusable scratch memory for kernels.
//!
//! im2col/col2im buffers and GEMM packing panels are needed for a few
//! microseconds per call but were allocated fresh on every forward /
//! backward in the seed. This module gives each thread a small arena of
//! reusable `Vec<f32>` buffers: after warm-up, a training step or
//! evaluator rollout performs zero scratch heap allocations.
//!
//! Buffers are checked out with [`with_scratch`] / [`with_scratch_zeroed`]
//! and returned automatically; nested checkouts (e.g. conv → im2col →
//! gemm packing) draw distinct buffers from the same arena. Capacities are
//! rounded up to powers of two so differently-sized layers share buffers
//! instead of thrashing.
//!
//! Global counters ([`alloc_count`] / [`reuse_count`]) make "zero
//! allocations after warm-up" directly testable.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of fresh heap allocations performed by all arenas since process
/// start (or the last [`reset_stats`]).
static ALLOCS: AtomicU64 = AtomicU64::new(0);
/// Number of checkout requests served from an existing buffer.
static REUSES: AtomicU64 = AtomicU64::new(0);
/// Bytes currently checked out across all threads; its peak feeds the
/// `hs_tensor_scratch_highwater_bytes` gauge.
static OUTSTANDING_BYTES: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static ARENA: RefCell<Vec<Vec<f32>>> = const { RefCell::new(Vec::new()) };
}

/// Total scratch-buffer heap allocations across all threads.
pub fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Total scratch checkouts served without allocating.
pub fn reuse_count() -> u64 {
    REUSES.load(Ordering::Relaxed)
}

/// Resets both counters to zero (test/bench hook).
pub fn reset_stats() {
    ALLOCS.store(0, Ordering::Relaxed);
    REUSES.store(0, Ordering::Relaxed);
}

fn checkout(len: usize) -> Vec<f32> {
    let want = len.next_power_of_two().max(64);
    let hit = ARENA.with(|arena| {
        let mut arena = arena.borrow_mut();
        // Prefer the smallest buffer that fits to keep big panels available
        // for big requests.
        let mut best: Option<(usize, usize)> = None;
        for (i, buf) in arena.iter().enumerate() {
            let cap = buf.capacity();
            if cap >= want && best.is_none_or(|(_, c)| cap < c) {
                best = Some((i, cap));
            }
        }
        best.map(|(i, _)| arena.swap_remove(i))
    });
    let buf = match hit {
        Some(mut buf) => {
            REUSES.fetch_add(1, Ordering::Relaxed);
            // SAFETY-free resize: set_len via resize keeps it simple; the
            // caller decides whether contents must be zeroed.
            buf.resize(len, 0.0);
            buf
        }
        None => {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            let mut buf = Vec::with_capacity(want);
            buf.resize(len, 0.0);
            buf
        }
    };
    let bytes = (buf.capacity() * std::mem::size_of::<f32>()) as u64;
    let now = OUTSTANDING_BYTES.fetch_add(bytes, Ordering::Relaxed) + bytes;
    crate::telem::scratch_highwater_bytes().record_max(now as f64);
    buf
}

fn give_back(buf: Vec<f32>) {
    let bytes = (buf.capacity() * std::mem::size_of::<f32>()) as u64;
    OUTSTANDING_BYTES.fetch_sub(bytes, Ordering::Relaxed);
    const MAX_POOLED: usize = 16;
    ARENA.with(|arena| {
        let mut arena = arena.borrow_mut();
        if arena.len() < MAX_POOLED {
            arena.push(buf);
        }
        // else: drop — bounds per-thread retained memory.
    });
}

/// Runs `f` with a scratch buffer of exactly `len` elements whose contents
/// are unspecified (stale data from a previous checkout is possible).
/// The buffer returns to this thread's arena afterwards.
pub fn with_scratch<R>(len: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    let mut buf = checkout(len);
    let out = f(&mut buf[..len]);
    give_back(buf);
    out
}

/// Like [`with_scratch`] but the buffer is zero-filled first.
pub fn with_scratch_zeroed<R>(len: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    let mut buf = checkout(len);
    buf[..len].fill(0.0);
    let out = f(&mut buf[..len]);
    give_back(buf);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_checkout_reuses_first_buffer() {
        // Use an oddball size so other tests' buffers don't interfere with
        // the alloc/reuse accounting we assert on.
        let len = 12_345;
        let before_allocs = alloc_count();
        with_scratch(len, |s| s.fill(1.0));
        let after_first = alloc_count();
        assert!(after_first > before_allocs);
        let before_reuse = reuse_count();
        with_scratch(len, |s| {
            assert_eq!(s.len(), len);
        });
        assert_eq!(
            alloc_count(),
            after_first,
            "second checkout must not allocate"
        );
        assert!(reuse_count() > before_reuse);
    }

    #[test]
    fn zeroed_scratch_is_zeroed_even_after_reuse() {
        let len = 7_777;
        with_scratch(len, |s| s.fill(3.5));
        with_scratch_zeroed(len, |s| {
            assert!(s.iter().all(|&x| x == 0.0));
        });
    }

    #[test]
    fn nested_checkouts_are_distinct() {
        with_scratch(100, |a| {
            a.fill(1.0);
            with_scratch(100, |b| {
                b.fill(2.0);
            });
            assert!(a.iter().all(|&x| x == 1.0));
        });
    }

    #[test]
    fn smaller_request_fits_in_pooled_buffer() {
        let big = 50_000;
        with_scratch(big, |_| {});
        let allocs = alloc_count();
        with_scratch(big / 2, |s| assert_eq!(s.len(), big / 2));
        assert_eq!(
            alloc_count(),
            allocs,
            "smaller request should reuse the larger buffer"
        );
    }
}
