//! Dense `f32` tensor library underpinning the HeadStart reproduction.
//!
//! The paper trains and prunes convolutional networks with PyTorch on GPUs.
//! This crate provides the minimal-but-complete substrate that replaces it:
//! a contiguous row-major N-dimensional tensor with the kernels deep
//! learning needs — elementwise arithmetic, reductions, a blocked
//! multi-threaded matrix multiply, and `im2col`/`col2im` lowering for
//! convolutions — plus a deterministic, seedable random number generator so
//! every experiment in the repository is reproducible bit-for-bit.
//!
//! # Example
//!
//! ```
//! use hs_tensor::{Tensor, Shape, Rng};
//!
//! # fn main() -> Result<(), hs_tensor::TensorError> {
//! let mut rng = Rng::seed_from(42);
//! let a = Tensor::randn(Shape::d2(4, 8), &mut rng);
//! let b = Tensor::randn(Shape::d2(8, 3), &mut rng);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.shape().dims(), &[4, 3]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod im2col;
mod init;
mod matmul;
mod ops;
pub mod pool;
mod rng;
mod shape;
mod telem;
mod tensor;
pub mod workspace;

pub use error::TensorError;
pub use im2col::{col2im, col2im_into, im2col, im2col_into, Conv2dGeometry};
pub use init::Init;
pub use matmul::gemm_ex;
pub use rng::{Rng, RngSnapshot};
pub use shape::Shape;
pub use tensor::Tensor;
