//! `im2col`/`col2im` lowering: convolution as matrix multiplication.
//!
//! This is the same strategy cuDNN-era GPU frameworks used and the reason
//! structured (channel/filter) pruning maps directly to smaller GEMMs on
//! GPGPUs — the premise of the HeadStart paper. A `[C, H, W]` input patch
//! grid becomes a `[C·kh·kw, oh·ow]` matrix; convolving with filters
//! `[N, C·kh·kw]` is then a single matmul per sample.
//!
//! The `_into` variants ([`im2col_into`], [`col2im_into`]) lower into a
//! caller-owned slice — typically scratch from [`crate::workspace`] — so
//! hot loops perform no heap allocation, and they parallelize over
//! channels on the persistent [`crate::pool`] for large feature maps.
//! Each channel owns a disjoint slice of the output, so results are
//! bit-identical for every thread count.

use crate::error::TensorError;
use crate::pool;
use crate::shape::Shape;
use crate::telem;
use crate::tensor::Tensor;

/// Lowered matrices smaller than this many elements are not worth pool
/// dispatch; they run on the calling thread.
const PARALLEL_ELEMS: usize = 1 << 16;

/// Static geometry of a 2-D convolution: input extents, kernel size,
/// stride and zero padding.
///
/// # Example
///
/// ```
/// use hs_tensor::Conv2dGeometry;
///
/// let g = Conv2dGeometry::new(3, 32, 32, 3, 1, 1);
/// assert_eq!((g.out_h(), g.out_w()), (32, 32)); // "same" convolution
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dGeometry {
    /// Input channel count.
    pub in_channels: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Square kernel extent.
    pub kernel: usize,
    /// Stride (same in both directions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub padding: usize,
}

impl Conv2dGeometry {
    /// Creates a geometry descriptor.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero, or if the padded input is
    /// smaller than the kernel.
    pub fn new(
        in_channels: usize,
        in_h: usize,
        in_w: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        assert!(kernel > 0, "kernel size must be positive");
        assert!(stride > 0, "stride must be positive");
        assert!(
            in_h + 2 * padding >= kernel && in_w + 2 * padding >= kernel,
            "padded input {}x{} smaller than kernel {}",
            in_h + 2 * padding,
            in_w + 2 * padding,
            kernel
        );
        Conv2dGeometry {
            in_channels,
            in_h,
            in_w,
            kernel,
            stride,
            padding,
        }
    }

    /// Output height.
    pub fn out_h(&self) -> usize {
        (self.in_h + 2 * self.padding - self.kernel) / self.stride + 1
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        (self.in_w + 2 * self.padding - self.kernel) / self.stride + 1
    }

    /// Rows of the lowered matrix: `C·kh·kw`.
    pub fn col_rows(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }

    /// Columns of the lowered matrix: `oh·ow`.
    pub fn col_cols(&self) -> usize {
        self.out_h() * self.out_w()
    }

    /// Elements of one `[C, H, W]` input sample.
    pub fn input_len(&self) -> usize {
        self.in_channels * self.in_h * self.in_w
    }

    /// Elements of the lowered `[C·k·k, oh·ow]` matrix.
    pub fn col_len(&self) -> usize {
        self.col_rows() * self.col_cols()
    }

    /// Geometry for the same layer after keeping only `channels` input
    /// channels (the pruning transformation).
    pub fn with_in_channels(&self, channels: usize) -> Self {
        Conv2dGeometry {
            in_channels: channels,
            ..*self
        }
    }
}

/// Gathers one input channel's patches into its `k·k` rows of the lowered
/// matrix. `out` must be pre-zeroed (padding cells stay zero).
fn im2col_channel(plane: &[f32], out_rows: &mut [f32], geom: &Conv2dGeometry) {
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let k = geom.kernel;
    let cols = oh * ow;
    let (h, w) = (geom.in_h as isize, geom.in_w as isize);
    for ky in 0..k {
        for kx in 0..k {
            let row = ky * k + kx;
            let dst = &mut out_rows[row * cols..(row + 1) * cols];
            for oy in 0..oh {
                let iy = (oy * geom.stride + ky) as isize - geom.padding as isize;
                if iy < 0 || iy >= h {
                    continue; // zero padding: leave zeros
                }
                let src_row = &plane[iy as usize * geom.in_w..(iy as usize + 1) * geom.in_w];
                let dst_row = &mut dst[oy * ow..(oy + 1) * ow];
                for (ox, d) in dst_row.iter_mut().enumerate() {
                    let ix = (ox * geom.stride + kx) as isize - geom.padding as isize;
                    if ix >= 0 && ix < w {
                        *d = src_row[ix as usize];
                    }
                }
            }
        }
    }
}

/// Scatters one channel's `k·k` lowered rows back onto its input plane.
fn col2im_channel(col_rows: &[f32], plane: &mut [f32], geom: &Conv2dGeometry) {
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let k = geom.kernel;
    let cols = oh * ow;
    let (h, w) = (geom.in_h as isize, geom.in_w as isize);
    for ky in 0..k {
        for kx in 0..k {
            let row = ky * k + kx;
            let col_row = &col_rows[row * cols..(row + 1) * cols];
            for oy in 0..oh {
                let iy = (oy * geom.stride + ky) as isize - geom.padding as isize;
                if iy < 0 || iy >= h {
                    continue;
                }
                let dst_row = &mut plane[iy as usize * geom.in_w..(iy as usize + 1) * geom.in_w];
                let src_row = &col_row[oy * ow..(oy + 1) * ow];
                for (ox, &s) in src_row.iter().enumerate() {
                    let ix = (ox * geom.stride + kx) as isize - geom.padding as isize;
                    if ix >= 0 && ix < w {
                        dst_row[ix as usize] += s;
                    }
                }
            }
        }
    }
}

/// Lowers one `[C, H, W]` sample (as a flat slice) into a caller-owned
/// `[C·k·k, oh·ow]` buffer without allocating. Large feature maps
/// parallelize over channels on the persistent pool.
///
/// # Panics
///
/// Panics if `input` or `out` lengths disagree with `geom`.
pub fn im2col_into(input: &[f32], out: &mut [f32], geom: &Conv2dGeometry) {
    assert_eq!(
        input.len(),
        geom.input_len(),
        "im2col_into: input length mismatch"
    );
    assert_eq!(
        out.len(),
        geom.col_len(),
        "im2col_into: output length mismatch"
    );
    telem::im2col_calls().inc();
    telem::im2col_bytes().add(std::mem::size_of_val(out) as u64);
    out.fill(0.0);
    let plane = geom.in_h * geom.in_w;
    let rows_per_c = geom.kernel * geom.kernel * geom.col_cols();
    let run = |c0: usize, c1: usize, out: &mut [f32]| {
        for c in c0..c1 {
            im2col_channel(
                &input[c * plane..(c + 1) * plane],
                &mut out[(c - c0) * rows_per_c..(c - c0 + 1) * rows_per_c],
                geom,
            );
        }
    };
    if out.len() < PARALLEL_ELEMS || geom.in_channels < 2 {
        run(0, geom.in_channels, out);
        return;
    }
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = out
        .chunks_mut(rows_per_c)
        .enumerate()
        .map(|(c, chunk)| {
            let run = &run;
            Box::new(move || run(c, c + 1, chunk)) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    pool::run_tasks(tasks);
}

/// Adjoint of [`im2col_into`]: scatters a `[C·k·k, oh·ow]` patch-matrix
/// gradient (flat slice) onto a caller-owned `[C, H, W]` buffer. Overlapping
/// windows accumulate; with `accumulate = false` the output is zeroed
/// first, otherwise the scatter adds to its existing contents.
///
/// # Panics
///
/// Panics if `col` or `out` lengths disagree with `geom`.
pub fn col2im_into(col: &[f32], out: &mut [f32], geom: &Conv2dGeometry, accumulate: bool) {
    assert_eq!(
        col.len(),
        geom.col_len(),
        "col2im_into: column length mismatch"
    );
    assert_eq!(
        out.len(),
        geom.input_len(),
        "col2im_into: output length mismatch"
    );
    telem::col2im_calls().inc();
    if !accumulate {
        out.fill(0.0);
    }
    let plane = geom.in_h * geom.in_w;
    let rows_per_c = geom.kernel * geom.kernel * geom.col_cols();
    let run = |c0: usize, c1: usize, out: &mut [f32]| {
        for c in c0..c1 {
            col2im_channel(
                &col[c * rows_per_c..(c + 1) * rows_per_c],
                &mut out[(c - c0) * plane..(c - c0 + 1) * plane],
                geom,
            );
        }
    };
    if col.len() < PARALLEL_ELEMS || geom.in_channels < 2 {
        run(0, geom.in_channels, out);
        return;
    }
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = out
        .chunks_mut(plane)
        .enumerate()
        .map(|(c, chunk)| {
            let run = &run;
            Box::new(move || run(c, c + 1, chunk)) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    pool::run_tasks(tasks);
}

/// Lowers one `[C, H, W]` sample to the `[C·k·k, oh·ow]` patch matrix.
///
/// Allocates a fresh tensor; hot paths should prefer [`im2col_into`] with
/// workspace scratch.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `input` is not rank 3 or its
/// dimensions disagree with the geometry.
pub fn im2col(input: &Tensor, geom: &Conv2dGeometry) -> Result<Tensor, TensorError> {
    let want = Shape::d3(geom.in_channels, geom.in_h, geom.in_w);
    if input.shape() != &want {
        return Err(TensorError::ShapeMismatch {
            op: "im2col",
            lhs: input.shape().clone(),
            rhs: want,
        });
    }
    let mut out = vec![0.0f32; geom.col_len()];
    im2col_into(input.data(), &mut out, geom);
    Tensor::from_vec(Shape::d2(geom.col_rows(), geom.col_cols()), out)
}

/// Adjoint of [`im2col`]: scatters a `[C·k·k, oh·ow]` patch-matrix gradient
/// back onto a `[C, H, W]` input gradient (overlaps accumulate).
///
/// Allocates a fresh tensor; hot paths should prefer [`col2im_into`] with
/// workspace scratch.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `col` does not have the
/// geometry's lowered shape.
pub fn col2im(col: &Tensor, geom: &Conv2dGeometry) -> Result<Tensor, TensorError> {
    let want = Shape::d2(geom.col_rows(), geom.col_cols());
    if col.shape() != &want {
        return Err(TensorError::ShapeMismatch {
            op: "col2im",
            lhs: col.shape().clone(),
            rhs: want,
        });
    }
    let mut out = vec![0.0f32; geom.input_len()];
    col2im_into(col.data(), &mut out, geom, false);
    Tensor::from_vec(Shape::d3(geom.in_channels, geom.in_h, geom.in_w), out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn geometry_same_conv() {
        let g = Conv2dGeometry::new(16, 32, 32, 3, 1, 1);
        assert_eq!(g.out_h(), 32);
        assert_eq!(g.out_w(), 32);
        assert_eq!(g.col_rows(), 16 * 9);
        assert_eq!(g.col_cols(), 32 * 32);
    }

    #[test]
    fn geometry_strided() {
        let g = Conv2dGeometry::new(3, 33, 33, 3, 2, 1);
        assert_eq!(g.out_h(), 17);
        assert_eq!(g.out_w(), 17);
    }

    #[test]
    #[should_panic(expected = "smaller than kernel")]
    fn geometry_rejects_tiny_input() {
        Conv2dGeometry::new(1, 2, 2, 5, 1, 0);
    }

    #[test]
    fn im2col_identity_kernel1() {
        // With k=1, s=1, p=0 the lowered matrix is the input reshaped.
        let mut rng = Rng::seed_from(1);
        let x = Tensor::randn(Shape::d3(4, 5, 5), &mut rng);
        let g = Conv2dGeometry::new(4, 5, 5, 1, 1, 0);
        let col = im2col(&x, &g).unwrap();
        assert_eq!(col.data(), x.data());
    }

    #[test]
    fn im2col_manual_3x3() {
        // 1 channel, 3x3 input, 3x3 kernel, no padding → single output
        // position: the column is the flattened input itself.
        let x = Tensor::from_fn(Shape::d3(1, 3, 3), |i| (i[1] * 3 + i[2]) as f32);
        let g = Conv2dGeometry::new(1, 3, 3, 3, 1, 0);
        let col = im2col(&x, &g).unwrap();
        assert_eq!(col.shape(), &Shape::d2(9, 1));
        assert_eq!(col.data(), x.data());
    }

    #[test]
    fn im2col_padding_zeros() {
        let x = Tensor::ones(Shape::d3(1, 2, 2));
        let g = Conv2dGeometry::new(1, 2, 2, 3, 1, 1);
        let col = im2col(&x, &g).unwrap();
        // Top-left output position: kernel window centered at (0,0) —
        // rows of the patch that fall outside are zero.
        // Patch row (ky=0,kx=0) reads input (-1,-1) → 0.
        assert_eq!(col.at(&[0, 0]), 0.0);
        // Patch row (ky=1,kx=1) reads input (0,0) → 1.
        assert_eq!(col.at(&[4, 0]), 1.0);
    }

    #[test]
    fn im2col_rejects_wrong_shape() {
        let x = Tensor::zeros(Shape::d3(2, 4, 4));
        let g = Conv2dGeometry::new(3, 4, 4, 3, 1, 1);
        assert!(im2col(&x, &g).is_err());
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // ⟨im2col(x), y⟩ == ⟨x, col2im(y)⟩ — the defining adjoint identity,
        // which is exactly what backprop correctness requires.
        let mut rng = Rng::seed_from(7);
        let g = Conv2dGeometry::new(3, 6, 6, 3, 2, 1);
        let x = Tensor::randn(Shape::d3(3, 6, 6), &mut rng);
        let y = Tensor::randn(Shape::d2(g.col_rows(), g.col_cols()), &mut rng);
        let lhs: f32 = im2col(&x, &g)
            .unwrap()
            .data()
            .iter()
            .zip(y.data())
            .map(|(a, b)| a * b)
            .sum();
        let rhs: f32 = x
            .data()
            .iter()
            .zip(col2im(&y, &g).unwrap().data())
            .map(|(a, b)| a * b)
            .sum();
        assert!(
            (lhs - rhs).abs() < 1e-3 * (1.0 + lhs.abs()),
            "{lhs} vs {rhs}"
        );
    }

    #[test]
    fn col2im_accumulates_overlaps() {
        // k=2, s=1, no padding on a 3-wide input: middle pixel is covered
        // by two windows; a patch matrix of ones must scatter 2 there.
        let g = Conv2dGeometry::new(1, 2, 3, 2, 1, 0);
        let ones = Tensor::ones(Shape::d2(g.col_rows(), g.col_cols()));
        let im = col2im(&ones, &g).unwrap();
        // Coverage counts: corners 1, horizontal-middle 2 (ow=2, oh=1).
        assert_eq!(im.at(&[0, 0, 0]), 1.0);
        assert_eq!(im.at(&[0, 0, 1]), 2.0);
        assert_eq!(im.at(&[0, 0, 2]), 1.0);
    }

    #[test]
    fn with_in_channels_shrinks() {
        let g = Conv2dGeometry::new(64, 8, 8, 3, 1, 1);
        let g2 = g.with_in_channels(32);
        assert_eq!(g2.in_channels, 32);
        assert_eq!(g2.out_h(), g.out_h());
    }

    #[test]
    fn parallel_im2col_matches_serial_layout() {
        // Big enough to take the pooled path; compare against per-channel
        // serial lowering.
        let mut rng = Rng::seed_from(9);
        let g = Conv2dGeometry::new(8, 40, 40, 3, 1, 1);
        let x = Tensor::randn(Shape::d3(8, 40, 40), &mut rng);
        assert!(g.col_len() >= PARALLEL_ELEMS);
        let col = im2col(&x, &g).unwrap();
        let mut want = vec![0.0f32; g.col_len()];
        let plane = g.in_h * g.in_w;
        let rows_per_c = g.kernel * g.kernel * g.col_cols();
        for c in 0..g.in_channels {
            im2col_channel(
                &x.data()[c * plane..(c + 1) * plane],
                &mut want[c * rows_per_c..(c + 1) * rows_per_c],
                &g,
            );
        }
        assert_eq!(col.data(), &want[..]);
    }

    #[test]
    fn col2im_into_accumulate_adds() {
        let g = Conv2dGeometry::new(2, 4, 4, 3, 1, 1);
        let col = vec![1.0f32; g.col_len()];
        let mut fresh = vec![0.0f32; g.input_len()];
        col2im_into(&col, &mut fresh, &g, false);
        let mut twice = fresh.clone();
        col2im_into(&col, &mut twice, &g, true);
        for (t, f) in twice.iter().zip(&fresh) {
            assert_eq!(*t, 2.0 * f);
        }
    }
}
