//! Bit-exact determinism across thread counts.
//!
//! The worker pool reads `HS_NUM_THREADS` once at startup, so the only
//! way to compare thread counts in one test run is to re-execute this
//! test binary as a subprocess per configuration. The hidden `#[ignore]`
//! test below computes a fingerprint over the parallel kernels (blocked
//! GEMM in all transpose variants, pooled reductions, elementwise maps)
//! and prints it; the driver runs it under `HS_NUM_THREADS=1` and `=4`
//! and asserts the fingerprints are identical bit for bit.

use std::process::Command;

use hs_tensor::{Rng, Shape, Tensor};

fn fnv1a(hash: &mut u64, bits: u32) {
    for byte in bits.to_le_bytes() {
        *hash ^= u64::from(byte);
        *hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

fn digest(hash: &mut u64, t: &Tensor) {
    for &v in t.data() {
        fnv1a(hash, v.to_bits());
    }
}

/// Hidden worker: prints `FINGERPRINT:<hex>` for the parallel kernels.
/// Sized so every kernel takes its pooled path (products and lengths
/// above the parallel thresholds).
#[test]
#[ignore = "subprocess worker for thread_count_does_not_change_results"]
fn fingerprint() {
    let mut rng = Rng::seed_from(7);
    let a = Tensor::randn(Shape::d2(192, 160), &mut rng);
    let b = Tensor::randn(Shape::d2(160, 176), &mut rng);
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    digest(&mut hash, &a.matmul(&b).unwrap());
    digest(
        &mut hash,
        &a.matmul_nt(&Tensor::randn(Shape::d2(176, 160), &mut rng))
            .unwrap(),
    );
    digest(
        &mut hash,
        &a.matmul_tn(&Tensor::randn(Shape::d2(192, 176), &mut rng))
            .unwrap(),
    );
    let mut big = Tensor::randn(Shape::d2(256, 300), &mut rng);
    big.map_inplace(|v| v.max(0.0) * 1.000_1);
    fnv1a(&mut hash, big.sum().to_bits());
    fnv1a(&mut hash, big.sq_norm().to_bits());
    fnv1a(&mut hash, big.l1_norm().to_bits());
    digest(&mut hash, &big);
    println!("FINGERPRINT:{hash:016x}");
}

fn fingerprint_with_threads(threads: &str) -> String {
    let exe = std::env::current_exe().expect("current test binary path");
    let out = Command::new(exe)
        .args(["--ignored", "--exact", "fingerprint", "--nocapture"])
        .env("HS_NUM_THREADS", threads)
        .output()
        .expect("spawn fingerprint subprocess");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(
        out.status.success(),
        "fingerprint subprocess failed under HS_NUM_THREADS={threads}:\n{stdout}"
    );
    stdout
        .lines()
        .find_map(|l| {
            // `--nocapture` interleaves the print with the harness's own
            // "test fingerprint ..." line, so search anywhere in the line.
            let idx = l.find("FINGERPRINT:")?;
            Some(l[idx + "FINGERPRINT:".len()..].trim().to_owned())
        })
        .unwrap_or_else(|| panic!("no fingerprint in output:\n{stdout}"))
}

#[test]
fn thread_count_does_not_change_results() {
    let serial = fingerprint_with_threads("1");
    let parallel = fingerprint_with_threads("4");
    assert_eq!(
        serial, parallel,
        "kernels produced different bits under HS_NUM_THREADS=1 vs 4"
    );
}
