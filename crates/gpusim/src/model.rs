//! The roofline latency model.

use hs_nn::Network;

use crate::error::GpuSimError;
use crate::workload::{lower_network, LayerWork, Workload};

/// A compute device described by its roofline parameters.
///
/// Construct the paper's four platforms with the [`crate::devices`]
/// functions, or build custom ones for what-if studies.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Display name.
    pub name: String,
    /// Peak single-precision throughput in GFLOP/s (1 MAC = 2 FLOPs).
    pub peak_gflops: f64,
    /// Sustained memory bandwidth in GB/s.
    pub bandwidth_gbs: f64,
    /// Fixed overhead per kernel launch, in microseconds. Dominant for
    /// small layers on discrete GPUs; ~0 for CPUs.
    pub launch_overhead_us: f64,
    /// MACs at which the device reaches half its peak utilization — the
    /// knee of the saturation curve. Wide devices need big kernels.
    pub half_utilization_macs: f64,
    /// Ceiling on achievable fraction of peak (GEMM efficiency).
    pub max_utilization: f64,
    /// Board power at full load, in watts (for energy estimates).
    pub tdp_watts: f64,
    /// Fraction of TDP drawn while idle.
    pub idle_fraction: f64,
}

impl DeviceSpec {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`GpuSimError::BadDevice`] naming the first bad field.
    // Negated comparisons are deliberate: they also reject NaN fields.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn validate(&self) -> Result<(), GpuSimError> {
        let bad = |field: &'static str, v: f64| {
            Err(GpuSimError::BadDevice {
                field,
                detail: format!("{v}"),
            })
        };
        if !(self.peak_gflops > 0.0) {
            return bad("peak_gflops", self.peak_gflops);
        }
        if !(self.bandwidth_gbs > 0.0) {
            return bad("bandwidth_gbs", self.bandwidth_gbs);
        }
        if !(self.launch_overhead_us >= 0.0) {
            return bad("launch_overhead_us", self.launch_overhead_us);
        }
        if !(self.half_utilization_macs >= 0.0) {
            return bad("half_utilization_macs", self.half_utilization_macs);
        }
        if !(self.max_utilization > 0.0 && self.max_utilization <= 1.0) {
            return bad("max_utilization", self.max_utilization);
        }
        if !(self.tdp_watts > 0.0) {
            return bad("tdp_watts", self.tdp_watts);
        }
        if !(0.0..=1.0).contains(&self.idle_fraction) {
            return bad("idle_fraction", self.idle_fraction);
        }
        Ok(())
    }

    /// Achieved fraction of peak for a kernel of `macs` work:
    /// `u(w) = u_max · w / (w + w_half)`.
    pub fn utilization(&self, macs: u64) -> f64 {
        let w = macs as f64;
        self.max_utilization * w / (w + self.half_utilization_macs.max(1e-9))
    }

    /// Latency of one kernel in seconds.
    pub fn kernel_seconds(&self, work: &LayerWork) -> f64 {
        let compute = if work.macs == 0 {
            0.0
        } else {
            2.0 * work.macs as f64 / (self.peak_gflops * 1e9 * self.utilization(work.macs))
        };
        let memory = work.bytes_total() as f64 / (self.bandwidth_gbs * 1e9);
        compute.max(memory) + self.launch_overhead_us * 1e-6
    }
}

/// Latency of one kernel, with its roofline breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerLatency {
    /// Kernel kind.
    pub kind: String,
    /// Total seconds (max of compute/memory plus launch).
    pub seconds: f64,
    /// Whether the memory side of the roofline dominated.
    pub memory_bound: bool,
}

/// A full-model latency estimate on one device.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyReport {
    /// Device name.
    pub device: String,
    /// Workload name.
    pub workload: String,
    /// Per-kernel latencies.
    pub layers: Vec<LayerLatency>,
    /// End-to-end seconds per frame (batch 1).
    pub total_seconds: f64,
}

impl LatencyReport {
    /// Frames per second at batch size 1 — the metric of Figure 6.
    pub fn fps(&self) -> f64 {
        if self.total_seconds <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / self.total_seconds
        }
    }
}

/// Estimates throughput at batch size `batch`: per-sample compute and
/// memory scale linearly, but the per-kernel launch overhead is paid
/// once per batch — the reason small models gain so much from batching
/// on discrete GPUs.
///
/// Returns frames per second.
///
/// # Errors
///
/// Returns [`GpuSimError::BadDevice`] for invalid device parameters or a
/// zero batch.
pub fn estimate_batched_fps(
    device: &DeviceSpec,
    workload: &Workload,
    batch: usize,
) -> Result<f64, GpuSimError> {
    device.validate()?;
    if batch == 0 {
        return Err(GpuSimError::BadDevice {
            field: "batch",
            detail: "batch size must be > 0".to_string(),
        });
    }
    let mut total = 0.0f64;
    for work in &workload.layers {
        let scaled = LayerWork {
            kind: work.kind.clone(),
            macs: work.macs * batch as u64,
            bytes_read: work.bytes_read * batch as u64,
            bytes_written: work.bytes_written * batch as u64,
        };
        total += device.kernel_seconds(&scaled);
    }
    Ok(batch as f64 / total)
}

/// Estimated energy per frame in joules: active power over the busy
/// time plus idle draw, i.e. `E = TDP · (u_avg + idle·(1−u_avg)) · t`
/// with `u_avg` the workload's average achieved utilization.
///
/// # Errors
///
/// Returns [`GpuSimError::BadDevice`] for invalid device parameters.
pub fn estimate_energy_per_frame(
    device: &DeviceSpec,
    workload: &Workload,
) -> Result<f64, GpuSimError> {
    device.validate()?;
    let mut energy = 0.0f64;
    for work in &workload.layers {
        let t = device.kernel_seconds(work);
        let u = if work.macs == 0 {
            0.1
        } else {
            device.utilization(work.macs)
        };
        let power = device.tdp_watts * (u + device.idle_fraction * (1.0 - u));
        energy += power * t;
    }
    Ok(energy)
}

/// Estimates inference latency of a pre-lowered workload.
///
/// # Errors
///
/// Returns [`GpuSimError::BadDevice`] for invalid device parameters.
pub fn estimate_workload(
    device: &DeviceSpec,
    workload: &Workload,
) -> Result<LatencyReport, GpuSimError> {
    device.validate()?;
    let mut layers = Vec::with_capacity(workload.layers.len());
    let mut total = 0.0f64;
    for work in &workload.layers {
        let seconds = device.kernel_seconds(work);
        let compute = if work.macs == 0 {
            0.0
        } else {
            2.0 * work.macs as f64 / (device.peak_gflops * 1e9 * device.utilization(work.macs))
        };
        let memory = work.bytes_total() as f64 / (device.bandwidth_gbs * 1e9);
        layers.push(LayerLatency {
            kind: work.kind.clone(),
            seconds,
            memory_bound: memory >= compute,
        });
        total += seconds;
    }
    Ok(LatencyReport {
        device: device.name.clone(),
        workload: workload.name.clone(),
        layers,
        total_seconds: total,
    })
}

/// Lowers `net` and estimates its inference latency on `device`.
///
/// # Errors
///
/// Propagates lowering and device-validation errors.
pub fn estimate(
    device: &DeviceSpec,
    net: &Network,
    in_channels: usize,
    input_size: usize,
) -> Result<LatencyReport, GpuSimError> {
    let workload = lower_network(&device.name, net, in_channels, input_size)?;
    estimate_workload(device, &workload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices;
    use hs_nn::models;
    use hs_tensor::Rng;

    fn toy_work(macs: u64, bytes: u64) -> Workload {
        Workload {
            name: "toy".into(),
            layers: vec![LayerWork {
                kind: "conv".into(),
                macs,
                bytes_read: bytes / 2,
                bytes_written: bytes - bytes / 2,
            }],
        }
    }

    #[test]
    fn utilization_saturates() {
        let d = devices::gtx_1080ti();
        assert!(d.utilization(1_000) < d.utilization(1_000_000_000));
        assert!(d.utilization(u64::MAX / 2) <= d.max_utilization);
    }

    #[test]
    fn more_work_is_never_faster() {
        let d = devices::gtx_1080ti();
        let mut last = 0.0;
        for macs in [1_000u64, 1_000_000, 1_000_000_000, 10_000_000_000] {
            let t = estimate_workload(&d, &toy_work(macs, 1_000_000))
                .unwrap()
                .total_seconds;
            assert!(t >= last, "latency decreased with more work: {t} < {last}");
            last = t;
        }
    }

    #[test]
    fn memory_bound_detection() {
        let d = devices::gtx_1080ti();
        // Tiny compute, huge traffic → memory bound.
        let r = estimate_workload(&d, &toy_work(10, 1_000_000_000)).unwrap();
        assert!(r.layers[0].memory_bound);
        // Huge compute, tiny traffic → compute bound.
        let r = estimate_workload(&d, &toy_work(10_000_000_000, 100)).unwrap();
        assert!(!r.layers[0].memory_bound);
    }

    #[test]
    fn pruned_model_is_faster_on_every_device() {
        let mut rng = Rng::seed_from(0);
        let full = models::vgg16(3, 100, 32, 1.0, &mut rng).unwrap();
        let half = models::vgg16(3, 100, 32, 0.5, &mut rng).unwrap();
        for d in devices::all() {
            let tf = estimate(&d, &full, 3, 32).unwrap();
            let th = estimate(&d, &half, 3, 32).unwrap();
            assert!(
                th.total_seconds < tf.total_seconds,
                "{}: pruned {} !< full {}",
                d.name,
                th.total_seconds,
                tf.total_seconds
            );
            assert!(th.fps() > tf.fps());
        }
    }

    #[test]
    fn big_gpu_beats_small_gpu_on_big_models() {
        let mut rng = Rng::seed_from(1);
        let net = models::vgg16(3, 100, 224, 1.0, &mut rng).unwrap();
        let big = estimate(&devices::gtx_1080ti(), &net, 3, 224).unwrap();
        let small = estimate(&devices::jetson_tx2_gpu(), &net, 3, 224).unwrap();
        assert!(big.fps() > small.fps());
    }

    #[test]
    fn gpu_beats_its_companion_cpu() {
        let mut rng = Rng::seed_from(2);
        let net = models::vgg16(3, 100, 64, 1.0, &mut rng).unwrap();
        let gpu = estimate(&devices::jetson_tx2_gpu(), &net, 3, 64).unwrap();
        let cpu = estimate(&devices::cortex_a57(), &net, 3, 64).unwrap();
        assert!(gpu.fps() > cpu.fps());
        let gpu = estimate(&devices::gtx_1080ti(), &net, 3, 64).unwrap();
        let cpu = estimate(&devices::xeon_e2620(), &net, 3, 64).unwrap();
        assert!(gpu.fps() > cpu.fps());
    }

    #[test]
    fn batching_improves_throughput_on_launch_bound_models() {
        // A tiny workload on a discrete GPU is launch-overhead bound;
        // batching amortizes the launches.
        let d = devices::gtx_1080ti();
        let w = Workload {
            name: "tiny".into(),
            layers: (0..20)
                .map(|_| LayerWork {
                    kind: "conv".into(),
                    macs: 10_000,
                    bytes_read: 40_000,
                    bytes_written: 40_000,
                })
                .collect(),
        };
        let b1 = estimate_batched_fps(&d, &w, 1).unwrap();
        let b32 = estimate_batched_fps(&d, &w, 32).unwrap();
        assert!(b32 > 2.0 * b1, "batch32 {b32} vs batch1 {b1}");
        assert!(estimate_batched_fps(&d, &w, 0).is_err());
    }

    #[test]
    fn batch1_matches_plain_estimate() {
        let d = devices::jetson_tx2_gpu();
        let w = toy_work(1_000_000, 500_000);
        let plain = 1.0 / estimate_workload(&d, &w).unwrap().total_seconds;
        let batched = estimate_batched_fps(&d, &w, 1).unwrap();
        assert!((plain - batched).abs() < 1e-9 * plain.abs());
    }

    #[test]
    fn pruning_reduces_energy_per_frame() {
        let mut rng = Rng::seed_from(5);
        let full = models::vgg16(3, 100, 32, 1.0, &mut rng).unwrap();
        let half = models::vgg16(3, 100, 32, 0.5, &mut rng).unwrap();
        for d in devices::all() {
            let wf = crate::lower_network("full", &full, 3, 32).unwrap();
            let wh = crate::lower_network("half", &half, 3, 32).unwrap();
            let ef = estimate_energy_per_frame(&d, &wf).unwrap();
            let eh = estimate_energy_per_frame(&d, &wh).unwrap();
            assert!(eh < ef, "{}: pruned energy {eh} !< {ef}", d.name);
            assert!(ef > 0.0);
        }
    }

    #[test]
    fn edge_device_uses_less_energy_per_frame_than_desktop_gpu_idle_floor() {
        // For a small model the TX2's 15 W envelope beats the 1080Ti's
        // 250 W envelope on energy even though the 1080Ti is faster.
        let mut rng = Rng::seed_from(6);
        let net = models::vgg11(3, 10, 32, 0.25, &mut rng).unwrap();
        let w = crate::lower_network("small", &net, 3, 32).unwrap();
        let e_tx2 = estimate_energy_per_frame(&devices::jetson_tx2_gpu(), &w).unwrap();
        let e_big = estimate_energy_per_frame(&devices::gtx_1080ti(), &w).unwrap();
        assert!(e_tx2 < e_big, "tx2 {e_tx2} J vs 1080Ti {e_big} J");
    }

    #[test]
    fn invalid_device_is_rejected() {
        let mut d = devices::gtx_1080ti();
        d.peak_gflops = 0.0;
        assert!(estimate_workload(&d, &toy_work(1, 1)).is_err());
        let mut d = devices::gtx_1080ti();
        d.max_utilization = 1.5;
        assert!(d.validate().is_err());
    }
}
