//! The four platforms of the paper's evaluation, as roofline specs.
//!
//! Peak throughput and bandwidth come from the vendors' datasheets;
//! launch overheads and utilization knees are set to typical published
//! microbenchmark values for the era's software stacks (CUDA 9/cuDNN 7,
//! MKL/OpenBLAS). These are *model parameters*, not measurements — see
//! the crate docs for what is and is not claimed.

use crate::model::DeviceSpec;

/// NVIDIA GTX 1080 Ti: 3584 CUDA cores, 11.3 TFLOP/s fp32, 484 GB/s
/// GDDR5X. The paper's "high performance GPU on the cloud".
pub fn gtx_1080ti() -> DeviceSpec {
    DeviceSpec {
        name: "GTX 1080Ti".to_string(),
        peak_gflops: 11_340.0,
        bandwidth_gbs: 484.0,
        launch_overhead_us: 5.0,
        // A wide device: needs tens of MMACs in flight to saturate.
        half_utilization_macs: 2.0e7,
        max_utilization: 0.85,
        tdp_watts: 250.0,
        idle_fraction: 0.2,
    }
}

/// NVIDIA Jetson TX2 integrated GPU: 256 Pascal cores, ~0.665 TFLOP/s
/// fp32, 59.7 GB/s shared LPDDR4. The paper's edge platform.
pub fn jetson_tx2_gpu() -> DeviceSpec {
    DeviceSpec {
        name: "Jetson TX2 GPU".to_string(),
        peak_gflops: 665.0,
        bandwidth_gbs: 59.7,
        launch_overhead_us: 12.0, // slower driver path on the SoC
        half_utilization_macs: 1.5e6,
        max_utilization: 0.80,
        tdp_watts: 15.0,
        idle_fraction: 0.25,
    }
}

/// Intel Xeon E5-2620 (the paper's "E2620"): 6 cores @ 2.0 GHz with AVX,
/// ~192 GFLOP/s fp32, ~42 GB/s DDR3.
pub fn xeon_e2620() -> DeviceSpec {
    DeviceSpec {
        name: "Xeon E2620".to_string(),
        peak_gflops: 192.0,
        bandwidth_gbs: 42.0,
        launch_overhead_us: 0.5, // function call, not a driver launch
        half_utilization_macs: 2.0e5,
        max_utilization: 0.70,
        tdp_watts: 95.0,
        idle_fraction: 0.3,
    }
}

/// ARM Cortex-A57 cluster inside the TX2: 4 cores @ 2.0 GHz with NEON,
/// ~64 GFLOP/s fp32, sharing the 59.7 GB/s LPDDR4 with the GPU.
pub fn cortex_a57() -> DeviceSpec {
    DeviceSpec {
        name: "ARM Cortex-A57".to_string(),
        peak_gflops: 64.0,
        bandwidth_gbs: 25.0, // effective CPU share of the LPDDR4
        launch_overhead_us: 0.5,
        half_utilization_macs: 1.0e5,
        max_utilization: 0.65,
        tdp_watts: 10.0,
        idle_fraction: 0.25,
    }
}

/// All four platforms of Figure 6, GPU-first.
pub fn all() -> Vec<DeviceSpec> {
    vec![gtx_1080ti(), jetson_tx2_gpu(), xeon_e2620(), cortex_a57()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_devices_validate() {
        for d in all() {
            assert!(d.validate().is_ok(), "{} failed validation", d.name);
        }
    }

    #[test]
    fn relative_ordering_of_peaks() {
        assert!(gtx_1080ti().peak_gflops > jetson_tx2_gpu().peak_gflops);
        assert!(jetson_tx2_gpu().peak_gflops > xeon_e2620().peak_gflops);
        assert!(xeon_e2620().peak_gflops > cortex_a57().peak_gflops);
    }
}
