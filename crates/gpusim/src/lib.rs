//! Analytical GPGPU/CPU inference-latency model.
//!
//! The paper's Figure 6 measures frames-per-second of original vs.
//! HeadStart-pruned models on four platforms (GTX 1080Ti, Jetson TX2's
//! integrated GPU, a Xeon E5-2620 and the TX2's ARM Cortex-A57 cluster).
//! None of that hardware is available here, so this crate substitutes a
//! *roofline* latency model: each layer costs
//!
//! ```text
//! t = max(compute, memory) + kernel launch overhead
//! compute = 2·MACs / (peak FLOP/s · utilization(MACs))
//! memory  = moved bytes / bandwidth
//! ```
//!
//! with a saturating utilization curve `u(w) = u_max · w / (w + w_half)`
//! capturing that small kernels cannot fill a wide device. The *shape*
//! of Figure 6 — pruned/original fps ratios, GPU vs. CPU behaviour, the
//! TX2 profiting more from pruning than the 1080Ti on small inputs — is
//! a function of arithmetic intensity vs. device balance, which this
//! model captures; absolute fps values are not claimed.
//!
//! # Example
//!
//! ```
//! use hs_gpusim::{devices, estimate};
//! use hs_nn::models;
//! use hs_tensor::Rng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = Rng::seed_from(0);
//! let net = models::vgg11(3, 10, 32, 1.0, &mut rng)?;
//! let report = estimate(&devices::gtx_1080ti(), &net, 3, 32)?;
//! assert!(report.fps() > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod devices;
mod error;
mod model;
mod workload;

pub use error::GpuSimError;
pub use model::{
    estimate, estimate_batched_fps, estimate_energy_per_frame, estimate_workload, DeviceSpec,
    LatencyReport, LayerLatency,
};
pub use workload::{lower_network, LayerWork, Workload};
