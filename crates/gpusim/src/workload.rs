//! Lowering a network architecture into a device-independent workload.

use hs_nn::accounting::analyze;
use hs_nn::Network;

use crate::error::GpuSimError;

/// Bytes per f32 element.
const ELEM: u64 = 4;

/// One kernel's worth of work: arithmetic plus data movement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerWork {
    /// Node kind (`"conv"`, `"linear"`, `"bn"`, …).
    pub kind: String,
    /// Multiply-accumulate operations.
    pub macs: u64,
    /// Bytes read (input activations + weights).
    pub bytes_read: u64,
    /// Bytes written (output activations).
    pub bytes_written: u64,
}

impl LayerWork {
    /// Total bytes moved.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Arithmetic intensity in MACs per byte moved.
    pub fn intensity(&self) -> f64 {
        self.macs as f64 / self.bytes_total().max(1) as f64
    }
}

/// A whole model's inference workload for one input sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workload {
    /// Human-readable model tag.
    pub name: String,
    /// Per-kernel work in execution order.
    pub layers: Vec<LayerWork>,
}

impl Workload {
    /// Total MACs.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.macs).sum()
    }

    /// Total bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.bytes_total()).sum()
    }

    /// Number of kernel launches (compute-free nodes such as ReLU are
    /// assumed fused into their producer, matching cuDNN-era practice).
    pub fn kernels(&self) -> usize {
        self.layers.len()
    }
}

/// Lowers a network into a [`Workload`] for a square input.
///
/// ReLU/pool/flatten nodes are treated as fused (no separate kernel);
/// batch norms are folded into their preceding convolution, as every
/// deployment stack does at inference time.
///
/// # Errors
///
/// Propagates accounting errors for inconsistent architectures.
pub fn lower_network(
    name: &str,
    net: &Network,
    in_channels: usize,
    input_size: usize,
) -> Result<Workload, GpuSimError> {
    let cost = analyze(net, in_channels, input_size)?;
    let mut layers = Vec::new();
    // Track the producing layer's output size as the consumer's input.
    let mut cur_bytes: u64 = (in_channels * input_size * input_size) as u64 * ELEM;
    for lc in &cost.layers {
        let out_bytes = match lc.kind.as_str() {
            "gap" | "flatten" | "linear" => (lc.out_channels) as u64 * ELEM,
            _ => (lc.out_channels * lc.out_spatial * lc.out_spatial) as u64 * ELEM,
        };
        match lc.kind.as_str() {
            "conv" | "linear" | "block" => {
                if lc.flops == 0 && lc.params == 0 {
                    // Bypassed (inactive) block: no kernel at all.
                    cur_bytes = out_bytes;
                    continue;
                }
                layers.push(LayerWork {
                    kind: lc.kind.clone(),
                    macs: lc.flops,
                    bytes_read: cur_bytes + lc.params * ELEM,
                    bytes_written: out_bytes,
                });
                cur_bytes = out_bytes;
            }
            "maxpool" | "avgpool" | "gap" => {
                // Pooling is memory-bound but does launch a kernel.
                layers.push(LayerWork {
                    kind: lc.kind.clone(),
                    macs: 0,
                    bytes_read: cur_bytes,
                    bytes_written: out_bytes,
                });
                cur_bytes = out_bytes;
            }
            // bn folded into conv, relu/flatten fused.
            _ => {
                cur_bytes = out_bytes;
            }
        }
    }
    Ok(Workload {
        name: name.to_string(),
        layers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs_nn::models;
    use hs_tensor::Rng;

    #[test]
    fn vgg_lowering_has_one_kernel_per_conv_pool_linear() {
        let mut rng = Rng::seed_from(0);
        let net = models::vgg11(3, 10, 32, 1.0, &mut rng).unwrap();
        let w = lower_network("vgg11", &net, 3, 32).unwrap();
        // 8 convs + 5 pools + 1 gap + 1 linear.
        assert_eq!(w.kernels(), 8 + 5 + 1 + 1);
        assert!(w.total_macs() > 0);
        assert!(w.total_bytes() > 0);
    }

    #[test]
    fn pruned_model_has_smaller_workload() {
        let mut rng = Rng::seed_from(1);
        let full = models::vgg11(3, 10, 32, 1.0, &mut rng).unwrap();
        let half = models::vgg11(3, 10, 32, 0.5, &mut rng).unwrap();
        let wf = lower_network("full", &full, 3, 32).unwrap();
        let wh = lower_network("half", &half, 3, 32).unwrap();
        assert!(wh.total_macs() < wf.total_macs());
        assert!(wh.total_bytes() < wf.total_bytes());
        assert_eq!(wh.kernels(), wf.kernels());
    }

    #[test]
    fn inactive_blocks_drop_their_kernels() {
        let mut rng = Rng::seed_from(2);
        let mut net = models::resnet_cifar(2, 3, 10, 0.5, &mut rng).unwrap();
        let full = lower_network("full", &net, 3, 32).unwrap();
        let blocks = net.block_indices();
        net.set_block_active(blocks[1], false).unwrap();
        let pruned = lower_network("pruned", &net, 3, 32).unwrap();
        assert_eq!(pruned.kernels(), full.kernels() - 1);
        assert!(pruned.total_macs() < full.total_macs());
    }

    #[test]
    fn conv_intensity_reflects_spatial_extent() {
        let mut rng = Rng::seed_from(3);
        let net = models::vgg11(3, 10, 32, 1.0, &mut rng).unwrap();
        let w = lower_network("vgg", &net, 3, 32).unwrap();
        let intensities: Vec<f64> = w
            .layers
            .iter()
            .filter(|l| l.kind == "conv")
            .map(|l| l.intensity())
            .collect();
        // Early convs reuse weights over many positions → high intensity;
        // the last convs run at 1×1 spatial and are weight-dominated.
        assert!(
            intensities[1] > 10.0,
            "early conv intensity {}",
            intensities[1]
        );
        assert!(
            *intensities.last().unwrap() < 2.0,
            "late conv intensity {}",
            intensities.last().unwrap()
        );
        assert!(intensities.iter().all(|&i| i > 0.0));
    }
}
