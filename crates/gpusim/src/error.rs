//! Error type for the latency model.

use std::error::Error;
use std::fmt;

use hs_nn::NnError;

/// Error returned by workload lowering and latency estimation.
#[derive(Debug, Clone, PartialEq)]
pub enum GpuSimError {
    /// The network could not be lowered (shape inconsistency).
    Nn(NnError),
    /// A device parameter is out of range.
    BadDevice {
        /// Which parameter.
        field: &'static str,
        /// Human-readable detail.
        detail: String,
    },
}

impl fmt::Display for GpuSimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpuSimError::Nn(e) => write!(f, "lowering error: {e}"),
            GpuSimError::BadDevice { field, detail } => {
                write!(f, "bad device spec ({field}): {detail}")
            }
        }
    }
}

impl Error for GpuSimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GpuSimError::Nn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for GpuSimError {
    fn from(e: NnError) -> Self {
        GpuSimError::Nn(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_field() {
        let e = GpuSimError::BadDevice {
            field: "peak_gflops",
            detail: "0".into(),
        };
        assert!(e.to_string().contains("peak_gflops"));
    }
}
