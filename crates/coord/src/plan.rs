//! The deterministic work-assignment schedule.
//!
//! A [`ShardPlan`] maps a batch of work items (candidate actions of one
//! REINFORCE episode) onto a set of workers. The schedule is a pure
//! function of `(n_items, n_workers)` — it never looks at worker load,
//! completion order or wall-clock — so the same run configuration always
//! produces the same assignment, which is what lets the coordinator fold
//! results back in schedule order and stay bit-identical for any worker
//! count.

/// A deterministic assignment of `n_items` work items to `n_workers`
/// workers: item `i` goes to worker `i % n_workers` (round-robin).
///
/// The plan is always an **exact partition**: every item index in
/// `0..n_items` appears in exactly one shard, and each shard's indices
/// are strictly increasing. `tests/proptests.rs` pins this property for
/// arbitrary item/worker counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    shards: Vec<Vec<usize>>,
}

impl ShardPlan {
    /// Builds the round-robin plan for `n_items` items over `n_workers`
    /// workers. `n_workers` is clamped to at least 1 so the plan is
    /// always a valid partition.
    pub fn assign(n_items: usize, n_workers: usize) -> ShardPlan {
        let n_workers = n_workers.max(1);
        let mut shards = vec![Vec::with_capacity(n_items.div_ceil(n_workers)); n_workers];
        for item in 0..n_items {
            shards[item % n_workers].push(item);
        }
        ShardPlan { shards }
    }

    /// The per-worker shards, indexed by worker slot. Shards may be
    /// empty when there are more workers than items.
    pub fn shards(&self) -> &[Vec<usize>] {
        &self.shards
    }

    /// Number of worker slots in the plan.
    pub fn worker_count(&self) -> usize {
        self.shards.len()
    }

    /// Total number of items across all shards.
    pub fn item_count(&self) -> usize {
        self.shards.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_is_exact_partition() {
        let plan = ShardPlan::assign(7, 3);
        assert_eq!(plan.shards(), &[vec![0, 3, 6], vec![1, 4], vec![2, 5]]);
        assert_eq!(plan.item_count(), 7);
        assert_eq!(plan.worker_count(), 3);
    }

    #[test]
    fn more_workers_than_items_leaves_empty_shards() {
        let plan = ShardPlan::assign(2, 5);
        assert_eq!(plan.shards()[0], vec![0]);
        assert_eq!(plan.shards()[1], vec![1]);
        assert!(plan.shards()[2..].iter().all(Vec::is_empty));
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let plan = ShardPlan::assign(4, 0);
        assert_eq!(plan.worker_count(), 1);
        assert_eq!(plan.shards()[0], vec![0, 1, 2, 3]);
    }

    #[test]
    fn zero_items_is_all_empty() {
        let plan = ShardPlan::assign(0, 3);
        assert_eq!(plan.item_count(), 0);
        assert!(plan.shards().iter().all(Vec::is_empty));
    }
}
