//! **hs-coord**: deterministic sharded candidate evaluation for the
//! HeadStart REINFORCE search.
//!
//! The REINFORCE episode loop is inherently sequential — each policy
//! update depends on the previous episode's rewards — but *within* one
//! episode the `k` sampled actions plus the inference action are
//! independent, RNG-free, net-restoring reward evaluations. The engine
//! exposes that batch through [`hs_core::EvalExecutor`]; this crate
//! provides the sharded implementation:
//!
//! - [`ShardPlan`] — the deterministic work-assignment schedule
//!   (round-robin by item index; an exact partition for any
//!   item/worker count).
//! - [`Coordinator`] — `N` persistent worker threads, each evaluating
//!   its shard against a worker-local clone of the network; rewards
//!   fold back in schedule order, so output is **bit-identical for any
//!   worker count**. Handles worker dropout (the `worker_lost:worker`
//!   fault site) by reassigning and replaying abandoned items, and
//!   emits `worker_start` / `worker_done` / `worker_lost` lifecycle
//!   telemetry plus `hs_coord_*` metrics.
//! - [`executor_for`] — picks [`hs_core::SerialExecutor`] for a single
//!   worker and a [`Coordinator`] otherwise.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod coordinator;
mod plan;

pub use coordinator::Coordinator;
pub use plan::ShardPlan;

use hs_core::{EvalExecutor, SerialExecutor};

/// The executor for a requested worker count: serial in-process
/// evaluation for `workers <= 1`, a sharded [`Coordinator`] otherwise.
/// Both produce bit-identical results; only wall-clock differs.
/// `trace_seed` feeds the coordinator's `worker_*` trace-id derivation
/// (pass the run's pruning seed so unit and worker events join up).
pub fn executor_for(workers: usize, trace_seed: u64) -> Box<dyn EvalExecutor> {
    if workers <= 1 {
        Box::new(SerialExecutor)
    } else {
        Box::new(Coordinator::with_trace_seed(workers, trace_seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs_core::{HeadStartError, ParallelReward, PruningUnit};
    use hs_nn::{models, Network};
    use hs_tensor::Rng;

    /// A pure, thread-safe toy unit: reward is a deterministic function
    /// of the action bits alone.
    struct ToyUnit;

    impl ToyUnit {
        fn score(action: &[bool]) -> f32 {
            let kept = action.iter().filter(|&&b| b).count() as f32;
            let weighted: f32 = action
                .iter()
                .enumerate()
                .filter(|(_, &b)| b)
                .map(|(i, _)| (i as f32 + 1.0).recip())
                .sum();
            weighted - 0.1 * kept
        }
    }

    impl PruningUnit for ToyUnit {
        fn kind(&self) -> &'static str {
            "toy"
        }
        fn unit_count(&self) -> usize {
            8
        }
        fn action_reward(
            &mut self,
            _net: &mut Network,
            action: &[bool],
        ) -> Result<f32, HeadStartError> {
            Ok(ToyUnit::score(action))
        }
        fn as_parallel(&self) -> Option<&dyn ParallelReward> {
            Some(self)
        }
    }

    impl ParallelReward for ToyUnit {
        fn reward(&self, _net: &mut Network, action: &[bool]) -> Result<f32, HeadStartError> {
            Ok(ToyUnit::score(action))
        }
    }

    /// A unit that refuses to expose a parallel view (models the test
    /// doubles in hs-core that mutate counters in `action_reward`).
    struct SerialOnlyUnit {
        calls: usize,
    }

    impl PruningUnit for SerialOnlyUnit {
        fn kind(&self) -> &'static str {
            "serial-only"
        }
        fn unit_count(&self) -> usize {
            4
        }
        fn action_reward(
            &mut self,
            _net: &mut Network,
            action: &[bool],
        ) -> Result<f32, HeadStartError> {
            self.calls += 1;
            Ok(action.iter().filter(|&&b| b).count() as f32)
        }
    }

    fn tiny_net() -> Network {
        let mut rng = Rng::seed_from(7);
        models::vgg11(3, 2, 8, 0.125, &mut rng).unwrap()
    }

    fn batch(n: usize) -> Vec<Vec<bool>> {
        (0..n)
            .map(|i| (0..8).map(|b| (i >> (b % 4)) & 1 == 1).collect())
            .collect()
    }

    #[test]
    fn coordinator_matches_serial_bitwise() {
        let mut net = tiny_net();
        let actions = batch(7);
        let serial = SerialExecutor
            .eval_batch(&mut ToyUnit, &mut net, &actions)
            .unwrap();
        for workers in [1, 2, 3, 8] {
            let mut coord = Coordinator::new(workers);
            coord.begin_unit(&net, "toy");
            let sharded = coord.eval_batch(&mut ToyUnit, &mut net, &actions).unwrap();
            assert_eq!(
                serial.iter().map(|r| r.to_bits()).collect::<Vec<_>>(),
                sharded.iter().map(|r| r.to_bits()).collect::<Vec<_>>(),
                "workers = {workers}"
            );
            coord.shutdown();
            assert_eq!(coord.live_count(), workers);
            assert!(coord.utilization() > 0.0);
        }
    }

    #[test]
    fn serial_only_units_fall_back_in_order() {
        let mut net = tiny_net();
        let mut unit = SerialOnlyUnit { calls: 0 };
        let actions = batch(5);
        let mut coord = Coordinator::new(4);
        coord.begin_unit(&net, "toy");
        let rewards = coord.eval_batch(&mut unit, &mut net, &actions).unwrap();
        assert_eq!(rewards.len(), 5);
        assert_eq!(unit.calls, 5);
        // No sharded batches ran, so no worker received items.
        assert_eq!(coord.utilization(), 0.0);
    }

    #[test]
    fn single_item_batches_stay_on_the_primary_path() {
        let mut net = tiny_net();
        let actions = batch(1);
        let mut coord = Coordinator::new(2);
        coord.begin_unit(&net, "toy");
        let rewards = coord.eval_batch(&mut ToyUnit, &mut net, &actions).unwrap();
        assert_eq!(rewards.len(), 1);
        assert_eq!(coord.utilization(), 0.0);
    }

    #[test]
    fn executor_for_picks_serial_under_two_workers() {
        // Smoke: both variants evaluate the same batch identically.
        let mut net = tiny_net();
        let actions = batch(4);
        let mut one = executor_for(1, 0);
        let mut eight = executor_for(8, 0);
        one.begin_unit(&net, "toy");
        eight.begin_unit(&net, "toy");
        let a = one.eval_batch(&mut ToyUnit, &mut net, &actions).unwrap();
        let b = eight.eval_batch(&mut ToyUnit, &mut net, &actions).unwrap();
        assert_eq!(
            a.iter().map(|r| r.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|r| r.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn shutdown_is_idempotent_and_rejects_reuse() {
        let mut net = tiny_net();
        let mut coord = Coordinator::new(2);
        coord.shutdown();
        coord.shutdown();
        let err = coord
            .eval_batch(&mut ToyUnit, &mut net, &batch(3))
            .unwrap_err();
        assert!(matches!(err, HeadStartError::BadTarget { .. }));
    }
}
