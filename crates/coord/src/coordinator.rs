//! The sharded batch-evaluation executor.
//!
//! [`Coordinator`] owns a set of persistent worker threads and implements
//! [`EvalExecutor`] by splitting each episode's candidate actions across
//! them with a [`ShardPlan`], evaluating every action against a
//! worker-local scratch clone of the network, and folding the rewards
//! back **by item index** — never by completion order. Because reward
//! evaluation is RNG-free and apply-and-restore (the [`ParallelReward`]
//! contract), the fold is bit-identical to the serial executor for any
//! worker count, including under worker loss.
//!
//! # Worker dropout
//!
//! The `worker_lost:worker` fault site (or any future real health check)
//! kills a worker mid-shard: it records its remaining item indices and
//! abandons them. The coordinator marks the worker dead for the rest of
//! the run, emits a `worker_lost` event, and replays the abandoned items
//! inline on the primary network — deterministically, in index order —
//! so the final rewards are byte-identical to an undisturbed run.
//!
//! # Telemetry
//!
//! Lifecycle events (`worker_start`, `worker_done`, `worker_lost`) and
//! the `hs_coord_*` metrics are all emitted from the coordinator thread
//! at deterministic points; worker threads never emit, so a healthy
//! fixed-`N` run produces a deterministic telemetry stream. The
//! utilization gauge is computed from item counts, not wall-clock.

use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use hs_core::{EvalExecutor, HeadStartError, ParallelReward, PruningUnit, SerialExecutor};
use hs_nn::Network;
use hs_telemetry::{emit, faults, metrics, trace, Event, EventKind, Level, TraceCtx};

use crate::plan::ShardPlan;

/// Telemetry `name` used by every coordinator event.
const EVENT_NAME: &str = "coord";

/// Buckets for the per-worker evaluation-count histogram.
const ITEM_BUCKETS: [f64; 6] = [16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0];

/// A lifetime-erased shard job. Sound because [`Coordinator::eval_batch`]
/// blocks until every dispatched job has finished (same erasure as
/// `hs_tensor::pool::run_tasks`).
type Job = Box<dyn FnOnce() + Send + 'static>;

enum Cmd {
    Run(Job),
    Exit,
}

/// One worker's private command channel.
#[derive(Default)]
struct Channel {
    queue: Mutex<VecDeque<Cmd>>,
    ready: Condvar,
}

impl Channel {
    fn send(&self, cmd: Cmd) {
        self.queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push_back(cmd);
        self.ready.notify_one();
    }
}

fn worker_loop(channel: &Channel) {
    loop {
        let cmd = {
            let mut queue = channel
                .queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            loop {
                match queue.pop_front() {
                    Some(cmd) => break cmd,
                    None => {
                        queue = channel
                            .ready
                            .wait(queue)
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                    }
                }
            }
        };
        match cmd {
            Cmd::Run(job) => job(),
            Cmd::Exit => return,
        }
    }
}

struct Worker {
    channel: Arc<Channel>,
    thread: Option<JoinHandle<()>>,
    /// Logically alive: a "lost" worker's thread keeps idling on its
    /// channel (it only abandoned its items), but it is never assigned
    /// work again and gets no `worker_done` event.
    alive: bool,
    /// Total candidate evaluations this worker completed.
    items_done: u64,
    /// Scratch clone of the network, refreshed per unit by `begin_unit`.
    net: Option<Network>,
}

/// Sharded candidate evaluation over `N` persistent worker threads.
///
/// Workers are dedicated coordinator threads, independent of the
/// `HS_NUM_THREADS` tensor pool; a worker evaluating a candidate may
/// itself lean on the shared pool for the forward passes (non-pool
/// threads enqueue and help drain, which is safe for concurrent
/// callers).
///
/// Dropping the coordinator shuts it down; [`Coordinator::shutdown`]
/// does so explicitly (and idempotently) when event ordering matters.
pub struct Coordinator {
    workers: Vec<Worker>,
    /// Worker-slots that received at least one item, across all batches.
    busy_slots: u64,
    /// Worker-slots available across all batches.
    total_slots: u64,
    finished: bool,
    /// Fleet-lifecycle root span: `worker_start` events are its children
    /// `child(id)`, `worker_done` events `child(n + id)`.
    fleet_ctx: TraceCtx,
    /// Root span of the unit currently being evaluated (set by
    /// `begin_unit`); `worker_lost` events hang off it so a loss is
    /// queryable from the owning unit's trace.
    unit_ctx: Option<TraceCtx>,
    /// Units this executor has begun — the unit ordinal fed into
    /// [`trace::unit_ctx`] (executors see units in sequence).
    units_begun: usize,
    trace_seed: u64,
}

impl Coordinator {
    /// Spawns `workers` evaluation threads (clamped to at least 1) and
    /// emits one `worker_start` event per worker. Trace ids derive from
    /// seed 0; use [`Coordinator::with_trace_seed`] to align them with a
    /// run's seed.
    pub fn new(workers: usize) -> Coordinator {
        Coordinator::with_trace_seed(workers, 0)
    }

    /// As [`Coordinator::new`], deriving every `worker_*` trace id from
    /// `trace_seed` (the same seed the engine's observer uses, so unit
    /// and worker events join up).
    pub fn with_trace_seed(workers: usize, trace_seed: u64) -> Coordinator {
        let n = workers.max(1);
        let fleet_ctx = trace::unit_ctx(trace_seed, "coord", 0);
        let mut spawned = Vec::with_capacity(n);
        for id in 0..n {
            let channel = Arc::new(Channel::default());
            let loop_channel = Arc::clone(&channel);
            let thread = std::thread::Builder::new()
                .name(format!("hs-coord-{id}"))
                .spawn(move || worker_loop(&loop_channel))
                .expect("failed to spawn hs-coord worker thread");
            emit(
                Event::new(EventKind::WorkerStart, Level::Info, EVENT_NAME)
                    .field("worker", id)
                    .traced(&fleet_ctx.child(id as u64)),
            );
            metrics::counter("hs_coord_workers_started_total").inc();
            spawned.push(Worker {
                channel,
                thread: Some(thread),
                alive: true,
                items_done: 0,
                net: None,
            });
        }
        Coordinator {
            workers: spawned,
            busy_slots: 0,
            total_slots: 0,
            finished: false,
            fleet_ctx,
            unit_ctx: None,
            units_begun: 0,
            trace_seed,
        }
    }

    /// Number of worker threads (dead or alive).
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Number of workers still accepting work.
    pub fn live_count(&self) -> usize {
        self.workers.iter().filter(|w| w.alive).count()
    }

    /// Fraction of worker-slots that received work, over every batch so
    /// far. Derived from item counts only, so it is deterministic.
    pub fn utilization(&self) -> f64 {
        if self.total_slots == 0 {
            0.0
        } else {
            self.busy_slots as f64 / self.total_slots as f64
        }
    }

    /// Joins every worker, emits `worker_done` events (for workers that
    /// survived) plus the per-worker item histogram and utilization
    /// gauge. Idempotent; also invoked by `Drop`.
    pub fn shutdown(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        for worker in &self.workers {
            worker.channel.send(Cmd::Exit);
        }
        let n = self.workers.len();
        for (id, worker) in self.workers.iter_mut().enumerate() {
            if let Some(thread) = worker.thread.take() {
                let _ = thread.join();
            }
            metrics::histogram("hs_coord_worker_items", &ITEM_BUCKETS)
                .observe(worker.items_done as f64);
            if worker.alive {
                emit(
                    Event::new(EventKind::WorkerDone, Level::Info, EVENT_NAME)
                        .field("worker", id)
                        .field("items", worker.items_done)
                        .traced(&self.fleet_ctx.child((n + id) as u64)),
                );
            }
        }
        metrics::gauge("hs_coord_utilization").set(self.utilization());
    }
}

impl Drop for Coordinator {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl fmt::Debug for Coordinator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Coordinator")
            .field("workers", &self.worker_count())
            .field("live", &self.live_count())
            .field("finished", &self.finished)
            .finish()
    }
}

/// Evaluates one worker's shard against its scratch network. On a
/// `worker_lost` fault the remaining items are recorded in `abandoned`
/// and the shard is cut short; on a reward error the shard stops (the
/// error lands in `results` before any of the worker's later `None`
/// slots, so the fold surfaces it first).
fn run_shard(
    par: &dyn ParallelReward,
    net: &mut Network,
    actions: &[Vec<bool>],
    worker_id: usize,
    items: &[usize],
    results: &Mutex<Vec<Option<Result<f32, HeadStartError>>>>,
    abandoned: &Mutex<Vec<(usize, Vec<usize>)>>,
) {
    for (pos, &item) in items.iter().enumerate() {
        if faults::armed() && faults::trip("worker_lost", "worker") {
            abandoned
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push((worker_id, items[pos..].to_vec()));
            return;
        }
        let reward = par.reward(net, &actions[item]);
        let stop = reward.is_err();
        results
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)[item] = Some(reward);
        if stop {
            return;
        }
    }
}

impl EvalExecutor for Coordinator {
    fn begin_unit(&mut self, net: &Network, unit_kind: &'static str) {
        self.unit_ctx = Some(trace::unit_ctx(
            self.trace_seed,
            unit_kind,
            self.units_begun,
        ));
        self.units_begun += 1;
        for worker in self.workers.iter_mut().filter(|w| w.alive) {
            worker.net = Some(net.clone());
        }
    }

    fn eval_batch(
        &mut self,
        unit: &mut dyn PruningUnit,
        net: &mut Network,
        actions: &[Vec<bool>],
    ) -> Result<Vec<f32>, HeadStartError> {
        if self.finished {
            return Err(HeadStartError::BadTarget {
                detail: "coordinator used after shutdown".to_string(),
            });
        }
        let live = self.live_count();
        let par = match unit.as_parallel() {
            Some(par) if live > 0 && actions.len() > 1 => par,
            // Units without a thread-safe reward (test doubles with
            // mutable counters), trivial batches, or an all-dead fleet
            // fall back to in-order serial evaluation on the primary
            // network — identical rewards, by the ParallelReward
            // contract.
            _ => return SerialExecutor.eval_batch(unit, net, actions),
        };

        metrics::counter("hs_coord_batches_total").inc();
        metrics::counter("hs_coord_items_total").add(actions.len() as u64);
        let plan = ShardPlan::assign(actions.len(), live);
        self.total_slots += live as u64;
        self.busy_slots += plan.shards().iter().filter(|s| !s.is_empty()).count() as u64;

        let results: Mutex<Vec<Option<Result<f32, HeadStartError>>>> =
            Mutex::new(vec![None; actions.len()]);
        let abandoned: Mutex<Vec<(usize, Vec<usize>)>> = Mutex::new(Vec::new());
        let pending = Mutex::new(0usize);
        let batch_done = Condvar::new();
        let panicked = AtomicBool::new(false);

        let mut slot = 0usize;
        for (id, worker) in self.workers.iter_mut().enumerate() {
            if !worker.alive {
                continue;
            }
            let items = plan.shards()[slot].clone();
            slot += 1;
            if items.is_empty() {
                continue;
            }
            *pending
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner) += 1;
            let channel = Arc::clone(&worker.channel);
            if worker.net.is_none() {
                // begin_unit normally snapshots this; cover direct use.
                worker.net = Some(net.clone());
            }
            let scratch = worker.net.as_mut().expect("scratch network present");
            let (results, abandoned) = (&results, &abandoned);
            let (pending, batch_done, panicked) = (&pending, &batch_done, &panicked);
            let job = move || {
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    run_shard(par, scratch, actions, id, &items, results, abandoned);
                }));
                if outcome.is_err() {
                    panicked.store(true, Ordering::SeqCst);
                }
                let mut left = pending
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                *left -= 1;
                if *left == 0 {
                    batch_done.notify_all();
                }
            };
            let job: Box<dyn FnOnce() + Send + '_> = Box::new(job);
            // SAFETY: every borrow the job captures (`par`, the worker's
            // scratch network, `actions`, the result/abandon slots and
            // the completion latch) outlives the job, because this
            // function blocks on `pending == 0` below before any of them
            // go out of scope. Same erasure as hs_tensor::pool.
            let job: Job = unsafe { std::mem::transmute(job) };
            channel.send(Cmd::Run(job));
        }

        {
            let mut left = pending
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            while *left > 0 {
                left = batch_done
                    .wait(left)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }
        if panicked.load(Ordering::SeqCst) {
            panic!("hs-coord worker panicked during batch evaluation");
        }

        let mut slots = results
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);

        // Credit completed items before processing losses: an abandoned
        // item has no result yet, so the filter naturally excludes it.
        let mut slot = 0usize;
        for worker in self.workers.iter_mut() {
            if !worker.alive {
                continue;
            }
            let shard = &plan.shards()[slot];
            slot += 1;
            worker.items_done += shard.iter().filter(|&&i| slots[i].is_some()).count() as u64;
        }

        // Bury lost workers and replay their abandoned items inline on
        // the primary network, in index order — rewards are apply-and-
        // restore, so the values match what the worker would have
        // produced and the output stays bit-identical under loss.
        let mut lost = abandoned
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        lost.sort_by_key(|(id, _)| *id);
        for (id, items) in lost {
            self.workers[id].alive = false;
            self.workers[id].net = None;
            // A loss belongs to the unit being evaluated; fall back to
            // the fleet trace when eval_batch was driven directly.
            let loss_ctx = self
                .unit_ctx
                .unwrap_or(self.fleet_ctx)
                .child((2 * self.workers.len() + id) as u64);
            emit(
                Event::new(EventKind::WorkerLost, Level::Warn, EVENT_NAME)
                    .message("worker lost mid-batch; items reassigned")
                    .field("worker", id)
                    .field("reassigned", items.len())
                    .traced(&loss_ctx),
            );
            metrics::counter("hs_coord_workers_lost_total").inc();
            metrics::counter("hs_coord_reassigned_items_total").add(items.len() as u64);
            for item in items {
                slots[item] = Some(par.reward(net, &actions[item]));
            }
        }

        let mut rewards = Vec::with_capacity(actions.len());
        for (item, result) in slots.into_iter().enumerate() {
            match result {
                Some(Ok(reward)) => rewards.push(reward),
                Some(Err(err)) => return Err(err),
                None => {
                    return Err(HeadStartError::BadTarget {
                        detail: format!(
                            "coordinator lost the reward for item {item} without a recorded error"
                        ),
                    })
                }
            }
        }
        Ok(rewards)
    }
}
