//! Verbosity levels, ordered from most to least severe. A sink at level
//! `L` accepts every event whose level is `<= L` in this ordering, so
//! `Level::Trace` accepts everything.

use std::fmt;

/// Event severity / verbosity. The numeric representation increases with
/// verbosity so `event_level as u8 <= sink_level as u8` is the filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable or user-visible failures.
    Error = 0,
    /// Suspicious conditions the run survives.
    Warn = 1,
    /// Progress reporting (the default stderr verbosity).
    Info = 2,
    /// Per-episode / per-span detail.
    Debug = 3,
    /// Everything, including per-kernel noise.
    Trace = 4,
}

impl Level {
    /// Lower-case name, as rendered in events and parsed from the CLI.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parses a CLI-style level name (case-insensitive).
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }

    /// Every level, in severity order (used by validators).
    pub fn all() -> [Level; 5] {
        [
            Level::Error,
            Level::Warn,
            Level::Info,
            Level::Debug,
            Level::Trace,
        ]
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for level in Level::all() {
            assert_eq!(Level::parse(level.as_str()), Some(level));
        }
        assert_eq!(Level::parse("WARNING"), Some(Level::Warn));
        assert_eq!(Level::parse("loud"), None);
    }

    #[test]
    fn ordering_is_verbosity() {
        assert!((Level::Error as u8) < (Level::Trace as u8));
        assert!(Level::Info < Level::Debug);
    }
}
