//! Pluggable event sinks: human-readable stderr (the default) and a
//! JSONL event-stream writer. The dispatcher in the crate root fans each
//! event out to every sink whose level accepts it.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use crate::event::{Event, EventKind};
use crate::level::Level;

/// Consumes events. Implementations must be cheap to call at episode
/// rate; kernel-rate data goes through the metrics registry instead.
pub trait Sink: Send + std::fmt::Debug {
    /// Most verbose level this sink accepts.
    fn level(&self) -> Level;

    /// Handles one event (already filtered to `level()`).
    fn emit(&mut self, event: &Event);

    /// Flushes buffered output.
    fn flush(&mut self) {}
}

/// The default sink: renders events as the `[target] message` stderr
/// lines the CLI always printed. Span closes and episodes only appear at
/// [`Level::Debug`] and below, keeping the default output unchanged.
#[derive(Debug, Clone)]
pub struct StderrSink {
    level: Level,
}

impl StderrSink {
    /// Creates a stderr sink at the given verbosity.
    pub fn new(level: Level) -> StderrSink {
        StderrSink { level }
    }
}

impl Sink for StderrSink {
    fn level(&self) -> Level {
        self.level
    }

    fn emit(&mut self, event: &Event) {
        match event.kind {
            EventKind::Log
            | EventKind::Artifact
            | EventKind::Recovery
            | EventKind::FaultInjected
            | EventKind::Resume
            | EventKind::ServeBreaker
            | EventKind::Degrade
            | EventKind::Restore
            | EventKind::SloBurn
            | EventKind::ReplicaHealth
            | EventKind::Failover => {
                // Durations ride in `secs` (never the message) so JSONL
                // stays deterministic; surface them here for humans.
                if let Some(secs) = event.secs {
                    eprintln!("[{}] {} in {secs:.1}s", event.name, event.message);
                } else {
                    eprintln!("[{}] {}", event.name, event.message);
                }
            }
            EventKind::Span => {
                let secs = event.secs.unwrap_or(0.0);
                eprintln!("[span] {} done in {secs:.2}s", event.name);
            }
            EventKind::Episode
            | EventKind::Metric
            | EventKind::Compact
            | EventKind::ServeRequest
            | EventKind::ServeBatch
            | EventKind::WorkerStart
            | EventKind::WorkerDone
            | EventKind::WorkerLost
            | EventKind::Hedge => {
                let fields: Vec<String> = event
                    .fields
                    .iter()
                    .map(|(k, v)| format!("{k}={v:?}"))
                    .collect();
                eprintln!("[{}] {}", event.name, fields.join(" "));
            }
        }
    }
}

/// Writes one [`Event::to_json_line`] per event to a file. Accepts every
/// level: filtering a JSONL trace is the reader's job.
#[derive(Debug)]
pub struct JsonlSink {
    out: BufWriter<File>,
}

impl JsonlSink {
    /// Creates (truncating) the file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create(path: &Path) -> io::Result<JsonlSink> {
        Ok(JsonlSink {
            out: BufWriter::new(File::create(path)?),
        })
    }
}

impl Sink for JsonlSink {
    fn level(&self) -> Level {
        Level::Trace
    }

    fn emit(&mut self, event: &Event) {
        // A failed write must not take down the pipeline; drop the line.
        let _ = writeln!(self.out, "{}", event.to_json_line());
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let dir = std::env::temp_dir();
        let path = dir.join("hs_telemetry_sink_test.jsonl");
        {
            let mut sink = JsonlSink::create(&path).unwrap();
            sink.emit(&Event::new(EventKind::Log, Level::Info, "a").message("one"));
            sink.emit(&Event::new(EventKind::Log, Level::Info, "b").message("two"));
            sink.flush();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().all(|l| l.starts_with("{\"schema\":1,")));
        let _ = std::fs::remove_file(&path);
    }
}
