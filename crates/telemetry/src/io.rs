//! Atomic artifact writes with bounded retry.
//!
//! Every durable artifact in the workspace — checkpoints, JSON reports,
//! run journals, metrics dumps — goes through [`atomic_write`] so a
//! crash mid-write can never leave a half-written file at the final
//! path. The recipe is the classic one:
//!
//! 1. write the bytes to `<path>.tmp` in the same directory,
//! 2. `fsync` the temporary file,
//! 3. `rename` it over `<path>` (atomic on POSIX filesystems),
//! 4. best-effort `fsync` of the parent directory so the rename itself
//!    is durable.
//!
//! Transient IO errors (`Interrupted`, `WouldBlock`, `TimedOut`) are
//! retried a bounded number of times with exponential backoff; anything
//! else fails immediately with the original error.
//!
//! The write path consults the [fault registry](crate::faults) so tests
//! can deterministically inject hard failures (`io_error:<site>`),
//! transient first-attempt failures recovered by the retry loop
//! (`io_flaky:<site>`), torn writes that leave half the payload at the
//! final path and fail hard (`torn_write:<site>`), and post-write
//! corruption of the renamed file (`corrupt:<site>` flips one byte,
//! `truncate:<site>` cuts the tail).

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::thread;
use std::time::Duration;

use crate::faults;

/// Maximum write attempts before a transient error is surfaced.
const MAX_ATTEMPTS: u32 = 3;

/// Backoff before retry `n` (1-based): `BASE_BACKOFF_MS << (n - 1)`.
const BASE_BACKOFF_MS: u64 = 10;

/// Atomically replaces `path` with `bytes` (see the module docs for the
/// exact recipe), under the default fault site `"artifact"`.
///
/// # Errors
///
/// Returns the underlying IO error after transient failures exhaust the
/// retry budget, or immediately for non-transient failures.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    atomic_write_as(path, "artifact", bytes)
}

/// As [`atomic_write`], with an explicit fault-injection site name
/// (`"checkpoint"`, `"journal"`, `"metrics"`, …) so tests can target
/// one class of artifact.
///
/// # Errors
///
/// Returns the underlying IO error after transient failures exhaust the
/// retry budget, or immediately for non-transient failures.
pub fn atomic_write_as(path: &Path, site: &str, bytes: &[u8]) -> io::Result<()> {
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        match write_once(path, site, bytes) {
            Ok(()) => break,
            Err(err) if is_transient(&err) && attempt < MAX_ATTEMPTS => {
                crate::log(
                    crate::Level::Warn,
                    "io",
                    format!(
                        "transient error writing {} (attempt {attempt}/{MAX_ATTEMPTS}): {err}",
                        path.display()
                    ),
                );
                thread::sleep(Duration::from_millis(BASE_BACKOFF_MS << (attempt - 1)));
            }
            Err(err) => return Err(err),
        }
    }
    if attempt > 1 {
        crate::emit(
            crate::Event::new(crate::EventKind::Recovery, crate::Level::Warn, "io")
                .message(format!(
                    "recovered write of {} after {attempt} attempts",
                    path.display()
                ))
                .field("reason", "transient_io_error")
                .field("action", "retried_write")
                .field("attempts", attempt as u64),
        );
    }
    if faults::armed() {
        corrupt_after_write(path, site)?;
    }
    Ok(())
}

/// One write attempt: tmp + fsync + rename + parent-dir sync.
fn write_once(path: &Path, site: &str, bytes: &[u8]) -> io::Result<()> {
    if faults::trip("io_error", site) {
        return Err(io::Error::other(format!(
            "injected io_error at site `{site}`"
        )));
    }
    if faults::trip("io_flaky", site) {
        return Err(io::Error::new(
            io::ErrorKind::Interrupted,
            format!("injected transient io_flaky at site `{site}`"),
        ));
    }
    if faults::trip("torn_write", site) {
        return Err(torn_write(path, site, bytes));
    }
    let parent = path.parent().filter(|p| !p.as_os_str().is_empty());
    if let Some(dir) = parent {
        fs::create_dir_all(dir)?;
    }
    let tmp = tmp_path(path)?;
    {
        let mut file = File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    if let Err(err) = fs::rename(&tmp, path) {
        let _ = fs::remove_file(&tmp);
        return Err(err);
    }
    // Make the rename itself durable. Directory fsync is best-effort:
    // not every filesystem supports opening a directory for sync.
    if let Some(dir) = parent {
        if let Ok(dirf) = File::open(dir) {
            let _ = dirf.sync_all();
        }
    }
    Ok(())
}

/// `<path>.tmp`, in the same directory so the rename stays atomic.
fn tmp_path(path: &Path) -> io::Result<std::path::PathBuf> {
    let name = path.file_name().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("cannot atomically write to {}", path.display()),
        )
    })?;
    let mut tmp_name = name.to_os_string();
    tmp_name.push(".tmp");
    Ok(path.with_file_name(tmp_name))
}

/// The `torn_write` fault: the first half of `bytes` lands *directly at
/// the final path* — no tmp file, no rename — and the write then fails
/// hard, as if the process lost power mid-`write(2)` on a filesystem
/// without the atomic-rename discipline. Unlike `truncate` (which cuts
/// a *successfully renamed* file and reports success), the caller sees
/// the failure, and the torn file must be caught by CRC on read-back.
/// The error is non-transient on purpose: the retry loop must not
/// quietly heal the tear.
fn torn_write(path: &Path, site: &str, bytes: &[u8]) -> io::Error {
    let write_half = || -> io::Result<()> {
        if let Some(dir) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            fs::create_dir_all(dir)?;
        }
        let mut file = File::create(path)?;
        file.write_all(&bytes[..bytes.len() / 2])?;
        file.sync_all()
    };
    if let Err(err) = write_half() {
        return err;
    }
    io::Error::other(format!("injected torn_write at site `{site}`"))
}

fn is_transient(err: &io::Error) -> bool {
    matches!(
        err.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Applies armed post-write corruption faults to the file that was just
/// renamed into place: `corrupt:<site>` flips one byte near the middle,
/// `truncate:<site>` drops the second half.
fn corrupt_after_write(path: &Path, site: &str) -> io::Result<()> {
    if faults::trip("corrupt", site) {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len > 0 {
            let pos = len / 2;
            file.seek(SeekFrom::Start(pos))?;
            let mut byte = [0u8; 1];
            file.read_exact(&mut byte)?;
            byte[0] ^= 0xFF;
            file.seek(SeekFrom::Start(pos))?;
            file.write_all(&byte)?;
            file.sync_all()?;
        }
    }
    if faults::trip("truncate", site) {
        let file = OpenOptions::new().write(true).open(path)?;
        let len = file.metadata()?.len();
        file.set_len(len / 2)?;
        file.sync_all()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{Fault, FaultPlan};

    use crate::faults::test_lock as fault_lock;

    /// Single-fault plan on a synthetic site (parse validates site
    /// names, so tests arm the registry directly).
    fn one_fault(kind: &str, site: &str) -> FaultPlan {
        FaultPlan {
            faults: vec![Fault {
                kind: kind.into(),
                site: site.into(),
                nth: 1,
            }],
        }
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("hs_io_test_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_replace_and_leave_no_tmp() {
        let dir = temp_dir("basic");
        let path = dir.join("out.bin");
        atomic_write(&path, b"first").unwrap();
        atomic_write(&path, b"second").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second");
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n.to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "stray tmp files: {leftovers:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn creates_missing_parent_directories() {
        let dir = temp_dir("mkdir");
        let path = dir.join("a/b/out.bin");
        atomic_write(&path, b"deep").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"deep");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn flaky_writes_are_retried_and_recovered() {
        let _guard = fault_lock();
        let dir = temp_dir("flaky");
        let path = dir.join("out.bin");
        faults::arm(one_fault("io_flaky", "flaky_site"));
        atomic_write_as(&path, "flaky_site", b"payload").unwrap();
        faults::disarm();
        assert_eq!(fs::read(&path).unwrap(), b"payload");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn hard_io_errors_are_not_retried() {
        let _guard = fault_lock();
        let dir = temp_dir("hard");
        let path = dir.join("out.bin");
        faults::arm(one_fault("io_error", "hard_site"));
        let err = atomic_write_as(&path, "hard_site", b"payload").unwrap_err();
        faults::disarm();
        assert!(err.to_string().contains("injected io_error"));
        assert!(!path.exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_faults_mutate_the_written_file() {
        let _guard = fault_lock();
        let dir = temp_dir("corrupt");
        let path = dir.join("out.bin");
        let payload = vec![0u8; 64];
        faults::arm(one_fault("corrupt", "c_site"));
        atomic_write_as(&path, "c_site", &payload).unwrap();
        faults::disarm();
        let on_disk = fs::read(&path).unwrap();
        assert_eq!(on_disk.len(), 64);
        assert_ne!(on_disk, payload, "corrupt fault left the file intact");

        faults::arm(one_fault("truncate", "t_site"));
        atomic_write_as(&path, "t_site", &payload).unwrap();
        faults::disarm();
        assert_eq!(fs::read(&path).unwrap().len(), 32);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_writes_fail_hard_and_leave_half_the_bytes_in_place() {
        let _guard = fault_lock();
        let dir = temp_dir("torn");
        let path = dir.join("out.bin");
        atomic_write_as(&path, "torn_site", b"intact-previous-contents").unwrap();

        let payload: Vec<u8> = (0..=99).collect();
        faults::arm(one_fault("torn_write", "torn_site"));
        let err = atomic_write_as(&path, "torn_site", &payload).unwrap_err();
        faults::disarm();

        // Unlike truncate, the caller *sees* the failure — and unlike
        // io_flaky, the retry loop must not have healed it.
        assert!(err.to_string().contains("injected torn_write"), "{err}");
        // The previous contents are gone and exactly the first half of
        // the new payload is visible at the final path.
        assert_eq!(fs::read(&path).unwrap(), &payload[..50]);
        // No stray tmp file: the tear bypassed the rename discipline.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n.to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "stray tmp files: {leftovers:?}");
        let _ = fs::remove_dir_all(&dir);
    }
}
