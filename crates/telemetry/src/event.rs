//! The telemetry event: the one record type every sink consumes, and its
//! single-line JSON rendering (the JSONL schema).
//!
//! # JSONL schema (version 1)
//!
//! Every line is one JSON object with these keys, in this order:
//!
//! ```json
//! {"schema":1,"kind":"span","level":"debug","name":"pipeline/pretrain",
//!  "message":"","fields":{"depth":1},"secs":0.42,"ts":1.37}
//! ```
//!
//! - `schema` — integer schema version ([`SCHEMA_VERSION`]).
//! - `kind` — `log` | `span` | `episode` | `metric` | `artifact` |
//!   `recovery` | `fault_injected` | `resume` | `serve_request` |
//!   `serve_batch` | `serve_breaker` | `degrade` | `restore` |
//!   `compact` | `worker_start` | `worker_done` | `worker_lost` |
//!   `slo_burn` | `replica_health` | `failover` | `hedge`.
//! - `level` — `error` | `warn` | `info` | `debug` | `trace`.
//! - `name` — log target, span path (`/`-joined), metric name, or
//!   episode context.
//! - `message` — human-readable text (may be empty).
//! - `fields` — flat object of structured payload values.
//! - `secs` — wall-clock duration, present on `span` events only.
//! - `ts` — seconds since the process's telemetry epoch.
//!
//! `secs` and `ts` are deliberately rendered **last** so determinism
//! tests can compare the line prefix before the first wall-clock value.

use std::fmt::Write as _;

use crate::level::Level;

/// Version stamped into every event line. Bump when the line layout or
/// key semantics change.
pub const SCHEMA_VERSION: u64 = 1;

/// What an event describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A leveled log line.
    Log,
    /// A closed span (name = `/`-joined path, `secs` = duration).
    Span,
    /// One REINFORCE episode (reward/ACC/SPD/sparsity fields).
    Episode,
    /// One metric's state at a metrics flush.
    Metric,
    /// An artifact (checkpoint, report, metrics dump) written to disk.
    Artifact,
    /// A recovery action taken after a detected failure (divergent
    /// policy reset, corrupt-checkpoint fallback, IO retry success).
    Recovery,
    /// A deterministic fault-injection site fired (testing only).
    FaultInjected,
    /// A pipeline resumed from a run journal instead of starting fresh.
    Resume,
    /// One serve request's terminal outcome (completed or rejected).
    ServeRequest,
    /// One executed (or timed-out) inference micro-batch.
    ServeBatch,
    /// A circuit-breaker state transition in the serving path.
    ServeBreaker,
    /// The service degraded from the dense model to the pruned
    /// inception under overload or a tripped breaker.
    Degrade,
    /// The service restored the dense model after recovery.
    Restore,
    /// Structural compaction physically shrank a pruned network: one
    /// event per rewritten layer (before/after shapes) plus a summary
    /// carrying the whole-network FLOP ratio.
    Compact,
    /// A coordinator evaluation worker came online (`worker` field
    /// carries its zero-based id).
    WorkerStart,
    /// A coordinator worker shut down cleanly after the run, with the
    /// total number of candidate evaluations (`items`) it performed.
    WorkerDone,
    /// A coordinator worker died mid-batch (fault-injected or real);
    /// `reassigned` counts the items replayed elsewhere.
    WorkerLost,
    /// A request class exhausted its SLO error budget over one
    /// accounting window (deadline-hit ratio fell below target).
    SloBurn,
    /// A fleet replica's health state changed (healthy → suspect →
    /// ejected → recovered, driven by the virtual-clock prober).
    ReplicaHealth,
    /// A request was moved off a dying replica: either resubmitted to a
    /// live one or shed with a typed reason when none could take it.
    Failover,
    /// A hedged-request lifecycle edge: a hedge copy was launched
    /// against a second replica, won, lost, or was rejected.
    Hedge,
}

impl EventKind {
    /// The `kind` string in the JSONL schema.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Log => "log",
            EventKind::Span => "span",
            EventKind::Episode => "episode",
            EventKind::Metric => "metric",
            EventKind::Artifact => "artifact",
            EventKind::Recovery => "recovery",
            EventKind::FaultInjected => "fault_injected",
            EventKind::Resume => "resume",
            EventKind::ServeRequest => "serve_request",
            EventKind::ServeBatch => "serve_batch",
            EventKind::ServeBreaker => "serve_breaker",
            EventKind::Degrade => "degrade",
            EventKind::Restore => "restore",
            EventKind::Compact => "compact",
            EventKind::WorkerStart => "worker_start",
            EventKind::WorkerDone => "worker_done",
            EventKind::WorkerLost => "worker_lost",
            EventKind::SloBurn => "slo_burn",
            EventKind::ReplicaHealth => "replica_health",
            EventKind::Failover => "failover",
            EventKind::Hedge => "hedge",
        }
    }

    /// Every kind (used by validators).
    pub fn all() -> [EventKind; 21] {
        [
            EventKind::Log,
            EventKind::Span,
            EventKind::Episode,
            EventKind::Metric,
            EventKind::Artifact,
            EventKind::Recovery,
            EventKind::FaultInjected,
            EventKind::Resume,
            EventKind::ServeRequest,
            EventKind::ServeBatch,
            EventKind::ServeBreaker,
            EventKind::Degrade,
            EventKind::Restore,
            EventKind::Compact,
            EventKind::WorkerStart,
            EventKind::WorkerDone,
            EventKind::WorkerLost,
            EventKind::SloBurn,
            EventKind::ReplicaHealth,
            EventKind::Failover,
            EventKind::Hedge,
        ]
    }
}

/// A structured payload value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// A finite (or not — rendered `null`) float.
    F64(f64),
    /// An unsigned integer (counters, counts, indices).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A boolean flag.
    Bool(bool),
    /// A string.
    Str(String),
}

macro_rules! field_from {
    ($($ty:ty => $variant:ident as $cast:ty),+ $(,)?) => {
        $(impl From<$ty> for FieldValue {
            fn from(v: $ty) -> FieldValue {
                FieldValue::$variant(v as $cast)
            }
        })+
    };
}

field_from!(
    f64 => F64 as f64,
    f32 => F64 as f64,
    u64 => U64 as u64,
    u32 => U64 as u64,
    usize => U64 as u64,
    i64 => I64 as i64,
    i32 => I64 as i64,
);

impl From<bool> for FieldValue {
    fn from(v: bool) -> FieldValue {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Str(v)
    }
}

/// Ordered structured payload of an event.
pub type Fields = Vec<(String, FieldValue)>;

/// One telemetry record. Built by the span/log/metrics front-ends,
/// stamped with `ts` by the dispatcher, consumed by sinks.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// What the event describes.
    pub kind: EventKind,
    /// Severity / verbosity.
    pub level: Level,
    /// Target / span path / metric name.
    pub name: String,
    /// Human-readable text (may be empty).
    pub message: String,
    /// Structured payload, rendered as a flat JSON object.
    pub fields: Fields,
    /// Wall-clock duration in seconds; `Some` on span events.
    pub secs: Option<f64>,
    /// Seconds since the telemetry epoch, stamped at emission.
    pub ts: f64,
}

impl Event {
    /// A bare event with empty message and fields.
    pub fn new(kind: EventKind, level: Level, name: impl Into<String>) -> Event {
        Event {
            kind,
            level,
            name: name.into(),
            message: String::new(),
            fields: Vec::new(),
            secs: None,
            ts: 0.0,
        }
    }

    /// Builder: sets the message.
    #[must_use]
    pub fn message(mut self, message: impl Into<String>) -> Event {
        self.message = message.into();
        self
    }

    /// Builder: appends one field.
    #[must_use]
    pub fn field(mut self, key: impl Into<String>, value: impl Into<FieldValue>) -> Event {
        self.fields.push((key.into(), value.into()));
        self
    }

    /// Builder: appends the `trace_id` / `span_id` / `parent_id` fields
    /// from a [`crate::trace::TraceCtx`] (fixed-width hex; a root span's
    /// parent renders as sixteen zeros so the fields are always present).
    #[must_use]
    pub fn traced(self, ctx: &crate::trace::TraceCtx) -> Event {
        self.field("trace_id", ctx.trace_hex())
            .field("span_id", ctx.span_hex())
            .field("parent_id", ctx.parent_hex())
    }

    /// Renders the event as one line of schema-version-1 JSON (no
    /// trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(128);
        let _ = write!(out, "{{\"schema\":{SCHEMA_VERSION},");
        let _ = write!(out, "\"kind\":\"{}\",", self.kind.as_str());
        let _ = write!(out, "\"level\":\"{}\",", self.level.as_str());
        out.push_str("\"name\":");
        write_json_str(&mut out, &self.name);
        out.push_str(",\"message\":");
        write_json_str(&mut out, &self.message);
        out.push_str(",\"fields\":{");
        for (i, (key, value)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_str(&mut out, key);
            out.push(':');
            write_field(&mut out, value);
        }
        out.push('}');
        if let Some(secs) = self.secs {
            out.push_str(",\"secs\":");
            write_json_num(&mut out, secs);
        }
        out.push_str(",\"ts\":");
        write_json_num(&mut out, self.ts);
        out.push('}');
        out
    }
}

fn write_field(out: &mut String, value: &FieldValue) {
    match value {
        FieldValue::F64(v) => write_json_num(out, *v),
        FieldValue::U64(v) => {
            let _ = write!(out, "{v}");
        }
        FieldValue::I64(v) => {
            let _ = write!(out, "{v}");
        }
        FieldValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
        FieldValue::Str(v) => write_json_str(out, v),
    }
}

/// Writes a float as JSON: integral finite values render without a
/// fraction, non-finite values render as `null`.
pub(crate) fn write_json_num(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

/// Writes a JSON string literal with the escapes the schema validator
/// understands.
pub(crate) fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_schema_ordered_line() {
        let mut e = Event::new(EventKind::Span, Level::Debug, "pipeline/pretrain")
            .field("depth", 1u64)
            .field("ok", true);
        e.secs = Some(0.5);
        e.ts = 2.0;
        let line = e.to_json_line();
        assert!(line.starts_with("{\"schema\":1,\"kind\":\"span\",\"level\":\"debug\","));
        assert!(line.contains("\"fields\":{\"depth\":1,\"ok\":true}"));
        assert!(line.ends_with(",\"secs\":0.5,\"ts\":2}"));
    }

    #[test]
    fn escapes_strings_and_nan() {
        let e = Event::new(EventKind::Log, Level::Info, "t")
            .message("a \"b\"\nc")
            .field("x", f64::NAN);
        let line = e.to_json_line();
        assert!(line.contains("\\\"b\\\"\\nc"));
        assert!(line.contains("\"x\":null"));
    }

    #[test]
    fn traced_appends_fixed_width_trace_fields() {
        let ctx = crate::trace::TraceCtx::root(0x4853, 0);
        let line = Event::new(EventKind::ServeRequest, Level::Debug, "serve")
            .traced(&ctx)
            .to_json_line();
        assert!(line.contains(&format!("\"trace_id\":\"{}\"", ctx.trace_hex())));
        assert!(line.contains(&format!("\"span_id\":\"{}\"", ctx.span_hex())));
        assert!(line.contains("\"parent_id\":\"0000000000000000\""));
    }

    #[test]
    fn field_conversions_cover_common_types() {
        assert_eq!(FieldValue::from(3usize), FieldValue::U64(3));
        assert_eq!(FieldValue::from(-3i32), FieldValue::I64(-3));
        assert_eq!(FieldValue::from(0.5f32), FieldValue::F64(0.5));
        assert_eq!(FieldValue::from("s"), FieldValue::Str("s".into()));
    }
}
