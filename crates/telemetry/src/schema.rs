//! Schema validation for the JSONL event stream: a minimal JSON parser
//! (no external dependencies — the workspace builds fully offline) plus
//! [`validate_line`], used by the test suite and the `telemetry_lint`
//! CI binary to check emitted traces against schema version 1.

use std::collections::BTreeMap;

use crate::event::EventKind;
use crate::event::SCHEMA_VERSION;
use crate::level::Level;

/// A parsed JSON value. Only what the event schema needs: objects keep
/// sorted keys, numbers are `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (key order not preserved; the schema's key *order* is
    /// checked on the raw line, not the parsed value).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The object payload, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Parses one JSON value from `input` (which must contain nothing else).
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "bad utf8".to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex =
                            std::str::from_utf8(hex).map_err(|_| "bad utf8 in \\u".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                        // Surrogates never appear in our own output; map
                        // them to U+FFFD rather than decoding pairs.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| "bad utf8 in string".to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
        }
    }
}

/// Fields every `episode` event must carry (what the paper's training
/// loop logs per episode).
pub const EPISODE_REQUIRED_FIELDS: [&str; 5] = ["reward", "acc", "spd", "l0", "baseline"];

/// Fields every `recovery` event must carry: what went wrong and what
/// the recovery action was.
pub const RECOVERY_REQUIRED_FIELDS: [&str; 2] = ["reason", "action"];

/// Fields every `fault_injected` event must carry: the fault kind, the
/// site it fired at, and which hit tripped it.
pub const FAULT_REQUIRED_FIELDS: [&str; 3] = ["fault", "site", "hit"];

/// Fields every `resume` event must carry: the journal the run resumed
/// from and how many pruned units were already complete.
pub const RESUME_REQUIRED_FIELDS: [&str; 2] = ["journal", "units_done"];

/// Fields every `serve_request` event must carry: the request id and
/// its terminal outcome (`completed` or a typed `reject:…` reason).
pub const SERVE_REQUEST_REQUIRED_FIELDS: [&str; 2] = ["id", "outcome"];

/// Fields every `serve_batch` event must carry: batch size, the model
/// slot it ran on, and whether it completed or timed out.
pub const SERVE_BATCH_REQUIRED_FIELDS: [&str; 3] = ["size", "model", "outcome"];

/// Fields every `serve_breaker` event must carry: the transition edge.
pub const SERVE_BREAKER_REQUIRED_FIELDS: [&str; 2] = ["from", "to"];

/// Fields every `degrade` / `restore` event must carry: why the swap
/// happened and which model slot is now active.
pub const DEGRADE_REQUIRED_FIELDS: [&str; 2] = ["reason", "model"];

/// Fields every `compact` event must carry: the before/after size of
/// the rewritten unit (channels for per-layer events, total MACs for
/// the network summary, which additionally carries `flop_ratio`).
pub const COMPACT_REQUIRED_FIELDS: [&str; 2] = ["before", "after"];

/// Fields every `worker_start` event must carry: the worker's
/// zero-based id.
pub const WORKER_START_REQUIRED_FIELDS: [&str; 1] = ["worker"];

/// Fields every `worker_done` event must carry: the worker id and the
/// number of candidate evaluations it performed over its lifetime.
pub const WORKER_DONE_REQUIRED_FIELDS: [&str; 2] = ["worker", "items"];

/// Fields every `worker_lost` event must carry: the dead worker's id
/// and how many of its in-flight items were reassigned and replayed.
pub const WORKER_LOST_REQUIRED_FIELDS: [&str; 2] = ["worker", "reassigned"];

/// Fields every `slo_burn` event must carry: which request class burned
/// its budget, the target deadline-hit ratio, the ratio actually
/// achieved over the window, and the window size in requests.
pub const SLO_BURN_REQUIRED_FIELDS: [&str; 4] = ["class", "target", "hit_ratio", "window"];

/// Fields every `replica_health` event must carry: which replica moved
/// and the edge it took in the health-state machine.
pub const REPLICA_HEALTH_REQUIRED_FIELDS: [&str; 3] = ["replica", "from", "to"];

/// Fields every `failover` event must carry: the request id and the
/// replica it was evicted from (the `to` field names the destination
/// replica, or `shed` when no live replica could take it).
pub const FAILOVER_REQUIRED_FIELDS: [&str; 2] = ["id", "from"];

/// Fields every `hedge` event must carry: the request id and the
/// lifecycle edge (`launched` | `win` | `loss` | `rejected`).
pub const HEDGE_REQUIRED_FIELDS: [&str; 2] = ["id", "outcome"];

/// Validates one JSONL line against schema version 1.
///
/// Checks: parses as an object; `schema` equals [`SCHEMA_VERSION`];
/// `kind` and `level` are known; `name` / `message` are strings;
/// `fields` is a flat object; `ts` is a number; `span` events carry a
/// numeric `secs`; `episode` events carry [`EPISODE_REQUIRED_FIELDS`],
/// `recovery` events [`RECOVERY_REQUIRED_FIELDS`], `fault_injected`
/// events [`FAULT_REQUIRED_FIELDS`], `resume` events
/// [`RESUME_REQUIRED_FIELDS`], `compact` events
/// [`COMPACT_REQUIRED_FIELDS`] and the coordinator's worker-lifecycle
/// events their `WORKER_*_REQUIRED_FIELDS`.
///
/// # Errors
///
/// Returns a description of the first violation.
pub fn validate_line(line: &str) -> Result<(), String> {
    let value = parse(line)?;
    let obj = value.as_obj().ok_or("line is not a JSON object")?;

    let schema = obj
        .get("schema")
        .and_then(Json::as_num)
        .ok_or("missing numeric `schema`")?;
    if schema != SCHEMA_VERSION as f64 {
        return Err(format!("unknown schema version {schema}"));
    }

    let kind = obj
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("missing string `kind`")?;
    if !EventKind::all().iter().any(|k| k.as_str() == kind) {
        return Err(format!("unknown kind `{kind}`"));
    }

    let level = obj
        .get("level")
        .and_then(Json::as_str)
        .ok_or("missing string `level`")?;
    if Level::parse(level).is_none() {
        return Err(format!("unknown level `{level}`"));
    }

    obj.get("name")
        .and_then(Json::as_str)
        .ok_or("missing string `name`")?;
    obj.get("message")
        .and_then(Json::as_str)
        .ok_or("missing string `message`")?;

    let fields = obj
        .get("fields")
        .and_then(Json::as_obj)
        .ok_or("missing object `fields`")?;
    for (key, value) in fields {
        if matches!(value, Json::Obj(_) | Json::Arr(_)) {
            return Err(format!("field `{key}` is not a flat value"));
        }
    }

    obj.get("ts")
        .and_then(Json::as_num)
        .ok_or("missing numeric `ts`")?;

    if kind == "span" {
        obj.get("secs")
            .and_then(Json::as_num)
            .ok_or("span event missing numeric `secs`")?;
    }
    let required: &[&str] = match kind {
        "episode" => &EPISODE_REQUIRED_FIELDS,
        "recovery" => &RECOVERY_REQUIRED_FIELDS,
        "fault_injected" => &FAULT_REQUIRED_FIELDS,
        "resume" => &RESUME_REQUIRED_FIELDS,
        "serve_request" => &SERVE_REQUEST_REQUIRED_FIELDS,
        "serve_batch" => &SERVE_BATCH_REQUIRED_FIELDS,
        "serve_breaker" => &SERVE_BREAKER_REQUIRED_FIELDS,
        "degrade" | "restore" => &DEGRADE_REQUIRED_FIELDS,
        "compact" => &COMPACT_REQUIRED_FIELDS,
        "worker_start" => &WORKER_START_REQUIRED_FIELDS,
        "worker_done" => &WORKER_DONE_REQUIRED_FIELDS,
        "worker_lost" => &WORKER_LOST_REQUIRED_FIELDS,
        "slo_burn" => &SLO_BURN_REQUIRED_FIELDS,
        "replica_health" => &REPLICA_HEALTH_REQUIRED_FIELDS,
        "failover" => &FAILOVER_REQUIRED_FIELDS,
        "hedge" => &HEDGE_REQUIRED_FIELDS,
        _ => &[],
    };
    for field in required {
        if !fields.contains_key(*field) {
            return Err(format!("{kind} event missing field `{field}`"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    #[test]
    fn parser_handles_nesting_and_escapes() {
        let v = parse(r#"{"a":[1,-2.5,true,null],"b":{"c":"x\n\"y\""}}"#).unwrap();
        let obj = v.as_obj().unwrap();
        assert_eq!(
            obj["a"],
            Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(-2.5),
                Json::Bool(true),
                Json::Null
            ])
        );
        assert_eq!(
            obj["b"].as_obj().unwrap()["c"],
            Json::Str("x\n\"y\"".into())
        );
        assert!(parse("{").is_err());
        assert!(parse("{}extra").is_err());
    }

    #[test]
    fn emitted_events_validate() {
        let mut span = Event::new(EventKind::Span, Level::Debug, "pipeline/pretrain");
        span.secs = Some(0.25);
        validate_line(&span.to_json_line()).unwrap();

        let log = Event::new(EventKind::Log, Level::Info, "runner")
            .message("budget \"check\" passed")
            .field("flops", 1.5e9);
        validate_line(&log.to_json_line()).unwrap();

        let episode = Event::new(EventKind::Episode, Level::Debug, "conv:0")
            .field("reward", 0.4)
            .field("acc", 0.5)
            .field("spd", 0.1)
            .field("l0", 12u64)
            .field("baseline", 0.3);
        validate_line(&episode.to_json_line()).unwrap();
    }

    #[test]
    fn robustness_kinds_validate_with_required_fields() {
        let recovery = Event::new(EventKind::Recovery, Level::Warn, "engine/layer:0")
            .field("reason", "nan_reward")
            .field("action", "policy_reset")
            .field("reset", 1u64);
        validate_line(&recovery.to_json_line()).unwrap();

        let fault = Event::new(EventKind::FaultInjected, Level::Warn, "faults")
            .field("fault", "io_error")
            .field("site", "checkpoint")
            .field("hit", 2u64);
        validate_line(&fault.to_json_line()).unwrap();

        let resume = Event::new(EventKind::Resume, Level::Info, "runner")
            .field("journal", "run/run.journal.json")
            .field("units_done", 3u64);
        validate_line(&resume.to_json_line()).unwrap();

        let request = Event::new(EventKind::ServeRequest, Level::Debug, "serve")
            .field("id", 7u64)
            .field("outcome", "reject:queue_full");
        validate_line(&request.to_json_line()).unwrap();

        let batch = Event::new(EventKind::ServeBatch, Level::Debug, "serve")
            .field("size", 4u64)
            .field("model", "dense")
            .field("outcome", "timeout");
        validate_line(&batch.to_json_line()).unwrap();

        let breaker = Event::new(EventKind::ServeBreaker, Level::Warn, "serve")
            .field("from", "closed")
            .field("to", "open");
        validate_line(&breaker.to_json_line()).unwrap();

        let degrade = Event::new(EventKind::Degrade, Level::Warn, "serve")
            .field("reason", "breaker_open")
            .field("model", "pruned");
        validate_line(&degrade.to_json_line()).unwrap();

        let restore = Event::new(EventKind::Restore, Level::Info, "serve")
            .field("reason", "recovered")
            .field("model", "dense");
        validate_line(&restore.to_json_line()).unwrap();

        let worker_start =
            Event::new(EventKind::WorkerStart, Level::Debug, "coord").field("worker", 0u64);
        validate_line(&worker_start.to_json_line()).unwrap();

        let worker_done = Event::new(EventKind::WorkerDone, Level::Debug, "coord")
            .field("worker", 0u64)
            .field("items", 128u64);
        validate_line(&worker_done.to_json_line()).unwrap();

        let worker_lost = Event::new(EventKind::WorkerLost, Level::Warn, "coord")
            .field("worker", 2u64)
            .field("reassigned", 3u64);
        validate_line(&worker_lost.to_json_line()).unwrap();

        let slo_burn = Event::new(EventKind::SloBurn, Level::Warn, "serve")
            .field("class", 0u64)
            .field("target", 0.99)
            .field("hit_ratio", 0.8)
            .field("window", 20u64);
        validate_line(&slo_burn.to_json_line()).unwrap();

        let replica_health = Event::new(EventKind::ReplicaHealth, Level::Warn, "fleet")
            .field("replica", 1u64)
            .field("from", "suspect")
            .field("to", "ejected")
            .field("at", 40_000u64);
        validate_line(&replica_health.to_json_line()).unwrap();

        let failover = Event::new(EventKind::Failover, Level::Warn, "fleet")
            .field("id", 17u64)
            .field("from", 1u64)
            .field("to", "0")
            .field("at", 40_000u64);
        validate_line(&failover.to_json_line()).unwrap();

        let hedge = Event::new(EventKind::Hedge, Level::Debug, "fleet")
            .field("id", 9u64)
            .field("outcome", "launched")
            .field("replica", 2u64);
        validate_line(&hedge.to_json_line()).unwrap();

        // Missing required fields are violations.
        let bare = Event::new(EventKind::Recovery, Level::Warn, "x").to_json_line();
        assert!(validate_line(&bare).unwrap_err().contains("reason"));
        let bare = Event::new(EventKind::FaultInjected, Level::Warn, "x").to_json_line();
        assert!(validate_line(&bare).unwrap_err().contains("fault"));
        let bare = Event::new(EventKind::Resume, Level::Info, "x").to_json_line();
        assert!(validate_line(&bare).unwrap_err().contains("journal"));
        let bare = Event::new(EventKind::ServeRequest, Level::Debug, "x").to_json_line();
        assert!(validate_line(&bare).unwrap_err().contains("id"));
        let bare = Event::new(EventKind::Degrade, Level::Warn, "x").to_json_line();
        assert!(validate_line(&bare).unwrap_err().contains("reason"));
        let bare = Event::new(EventKind::WorkerLost, Level::Warn, "x").to_json_line();
        assert!(validate_line(&bare).unwrap_err().contains("worker"));
        let bare = Event::new(EventKind::SloBurn, Level::Warn, "x").to_json_line();
        assert!(validate_line(&bare).unwrap_err().contains("class"));
        let bare = Event::new(EventKind::ReplicaHealth, Level::Warn, "x").to_json_line();
        assert!(validate_line(&bare).unwrap_err().contains("replica"));
        let bare = Event::new(EventKind::Failover, Level::Warn, "x").to_json_line();
        assert!(validate_line(&bare).unwrap_err().contains("id"));
        let bare = Event::new(EventKind::Hedge, Level::Debug, "x")
            .field("id", 9u64)
            .to_json_line();
        assert!(validate_line(&bare).unwrap_err().contains("outcome"));
    }

    #[test]
    fn violations_are_reported() {
        assert!(validate_line("not json").is_err());
        assert!(validate_line(r#"{"schema":2,"kind":"log"}"#)
            .unwrap_err()
            .contains("schema"));
        let bad_kind = r#"{"schema":1,"kind":"blip","level":"info","name":"n","message":"","fields":{},"ts":0}"#;
        assert!(validate_line(bad_kind).unwrap_err().contains("kind"));
        let span_no_secs = r#"{"schema":1,"kind":"span","level":"debug","name":"n","message":"","fields":{},"ts":0}"#;
        assert!(validate_line(span_no_secs).unwrap_err().contains("secs"));
        let episode_missing = r#"{"schema":1,"kind":"episode","level":"debug","name":"n","message":"","fields":{"reward":1},"ts":0}"#;
        assert!(validate_line(episode_missing).unwrap_err().contains("acc"));
    }
}
