//! Deterministic request-scoped trace contexts.
//!
//! A [`TraceCtx`] carries the `trace_id` / `span_id` / `parent_id`
//! triple that links every event a request (or pruning unit) touches
//! into one causal timeline. Ids are derived **only** from a seed and a
//! sequence counter through a splitmix64-style finalizer — no wall
//! clock, no randomness — so two identical seeded runs emit
//! byte-identical ids and the JSONL streams stay reproducible.
//!
//! Derivation scheme (documented in DESIGN.md § Observability):
//!
//! - root:  `trace = mix(seed ^ mix(seq ^ ROOT_TAG))`, `span =
//!   mix(trace)`, `parent = 0` (rendered as sixteen zeros).
//! - child: same `trace`, `span = mix(parent_span ^ mix(seq ^
//!   CHILD_TAG))`, `parent = parent_span`.
//! - unit:  [`unit_ctx`] folds the unit kind (FNV-1a over the kind
//!   string) into the seed so `hs-core`'s observer and `hs-coord`'s
//!   coordinator derive the *same* id for the same unit without
//!   talking to each other.
//!
//! Ids render as fixed-width 16-digit lowercase hex so field values are
//! grep-friendly and sort lexicographically like they sort numerically.

/// Domain tag folded into root-span derivation.
const ROOT_TAG: u64 = 0x48535f524f4f54; // "HS_ROOT"
/// Domain tag folded into child-span derivation.
const CHILD_TAG: u64 = 0x48535f4348494c44; // "HS_CHILD"

/// splitmix64 finalizer: a cheap, well-mixed bijection on `u64`.
#[must_use]
pub fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over a byte string; used to fold unit kinds into trace seeds.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Id 0 is reserved for "no parent"; remap the (astronomically rare)
/// zero output of the mixer to a fixed non-zero sentinel.
fn nonzero(v: u64) -> u64 {
    if v == 0 {
        0x4853 // "HS"
    } else {
        v
    }
}

/// Renders an id as fixed-width 16-digit lowercase hex (the JSONL field
/// encoding).
#[must_use]
pub fn hex(id: u64) -> String {
    format!("{id:016x}")
}

/// Parses a fixed-width hex id back to its `u64` (accepts any length
/// up to 16 digits).
#[must_use]
pub fn parse_hex(s: &str) -> Option<u64> {
    if s.is_empty() || s.len() > 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

/// A trace context: which trace an event belongs to, which span emitted
/// it, and which span caused that one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// The trace id shared by every event in one causal timeline.
    pub trace: u64,
    /// This span's id.
    pub span: u64,
    /// The parent span's id; `0` for a root span.
    pub parent: u64,
}

impl TraceCtx {
    /// A root span: the first event of a new trace (e.g. a request's
    /// admission). Fully determined by `(seed, seq)`.
    #[must_use]
    pub fn root(seed: u64, seq: u64) -> TraceCtx {
        let trace = nonzero(mix(seed ^ mix(seq ^ ROOT_TAG)));
        TraceCtx {
            trace,
            span: nonzero(mix(trace)),
            parent: 0,
        }
    }

    /// A child span under `self`, distinguished by `seq` (e.g. a
    /// request's terminal outcome, or episode `seq` within a unit).
    #[must_use]
    pub fn child(&self, seq: u64) -> TraceCtx {
        TraceCtx {
            trace: self.trace,
            span: nonzero(mix(self.span ^ mix(seq ^ CHILD_TAG))),
            parent: self.span,
        }
    }

    /// `trace` as the JSONL hex encoding.
    #[must_use]
    pub fn trace_hex(&self) -> String {
        hex(self.trace)
    }

    /// `span` as the JSONL hex encoding.
    #[must_use]
    pub fn span_hex(&self) -> String {
        hex(self.span)
    }

    /// `parent` as the JSONL hex encoding (sixteen zeros for a root).
    #[must_use]
    pub fn parent_hex(&self) -> String {
        hex(self.parent)
    }
}

/// The shared unit-trace derivation: `hs-core`'s episode observer and
/// `hs-coord`'s coordinator both call this with the same `(seed, kind,
/// ordinal)` and therefore tag their events with the same trace id —
/// that is what makes a pruning unit's episodes and its worker shards
/// queryable as one timeline.
#[must_use]
pub fn unit_ctx(seed: u64, unit_kind: &str, ordinal: usize) -> TraceCtx {
    TraceCtx::root(seed ^ fnv1a(unit_kind.as_bytes()), ordinal as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_deterministic_and_distinct() {
        let a = TraceCtx::root(0x4853, 7);
        let b = TraceCtx::root(0x4853, 7);
        assert_eq!(a, b);
        assert_ne!(a, TraceCtx::root(0x4853, 8));
        assert_ne!(a, TraceCtx::root(0x4854, 7));
        assert_eq!(a.parent, 0);
        assert_ne!(a.trace, a.span);
    }

    #[test]
    fn children_stay_in_the_trace_and_chain_parents() {
        let root = TraceCtx::root(1, 0);
        let child = root.child(0);
        assert_eq!(child.trace, root.trace);
        assert_eq!(child.parent, root.span);
        assert_ne!(child.span, root.span);
        assert_ne!(child.span, root.child(1).span);
    }

    #[test]
    fn hex_is_fixed_width_and_round_trips() {
        let ctx = TraceCtx::root(42, 0);
        assert_eq!(ctx.trace_hex().len(), 16);
        assert_eq!(parse_hex(&ctx.trace_hex()), Some(ctx.trace));
        assert_eq!(
            TraceCtx {
                trace: 1,
                span: 1,
                parent: 0
            }
            .parent_hex(),
            "0000000000000000"
        );
        assert_eq!(parse_hex(""), None);
        assert_eq!(parse_hex("zz"), None);
    }

    #[test]
    fn unit_ctx_separates_kinds_at_the_same_ordinal() {
        let layer = unit_ctx(42, "layer", 0);
        assert_eq!(layer, unit_ctx(42, "layer", 0));
        assert_ne!(layer.trace, unit_ctx(42, "block", 0).trace);
        assert_ne!(layer.trace, unit_ctx(42, "layer", 1).trace);
    }
}
