//! Nested wall-clock spans. Entering a span pushes its name onto a
//! thread-local stack; closing (or dropping) it emits one
//! [`EventKind::Span`] event whose `name` is the `/`-joined path of every
//! open ancestor — `pipeline/prune:HeadStart/finetune` — so a JSONL
//! reader can reconstruct the stage tree without matching open/close
//! pairs.
//!
//! Timing always happens ([`Span::close`] returns the elapsed seconds,
//! which the runner records as stage timings); the *event* is only built
//! when some sink accepts [`Level::Debug`].

use std::cell::RefCell;
use std::time::Instant;

use crate::event::{Event, EventKind, FieldValue, Fields};
use crate::level::Level;

thread_local! {
    /// Names of the spans currently open on this thread, outermost first.
    static STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// An open span. Close it explicitly with [`Span::close`] to get the
/// elapsed seconds, or let it drop at scope end.
#[derive(Debug)]
pub struct Span {
    path: String,
    depth: usize,
    start: Instant,
    fields: Fields,
    closed: bool,
}

/// Opens a span named `name` nested under any spans already open on this
/// thread. Prefer the [`span!`](crate::span!) macro, which also attaches
/// fields.
pub fn enter(name: &str) -> Span {
    let (path, depth) = STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let depth = stack.len();
        let path = if let Some(parent) = stack.last() {
            format!("{parent}/{name}")
        } else {
            name.to_string()
        };
        stack.push(path.clone());
        (path, depth)
    });
    Span {
        path,
        depth,
        start: Instant::now(),
        fields: Vec::new(),
        closed: false,
    }
}

impl Span {
    /// The `/`-joined path of this span (including its own name).
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Attaches a structured field, emitted with the close event.
    pub fn field(&mut self, key: impl Into<String>, value: impl Into<FieldValue>) {
        self.fields.push((key.into(), value.into()));
    }

    /// Closes the span now and returns the elapsed wall-clock seconds.
    pub fn close(mut self) -> f64 {
        self.finish()
    }

    fn finish(&mut self) -> f64 {
        self.closed = true;
        let secs = self.start.elapsed().as_secs_f64();
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Guard-style usage is LIFO; truncating to our depth also
            // recovers from spans leaked by a panic further in.
            stack.truncate(self.depth);
        });
        if crate::enabled(Level::Debug) {
            let mut event = Event::new(EventKind::Span, Level::Debug, self.path.clone());
            event.fields = std::mem::take(&mut self.fields);
            event
                .fields
                .insert(0, ("depth".to_string(), FieldValue::U64(self.depth as u64)));
            event.secs = Some(secs);
            crate::emit(event);
        }
        secs
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.closed {
            self.finish();
        }
    }
}

/// Opens a [`Span`], optionally attaching fields:
/// `span!("finetune", "epochs" => 3usize)`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::enter($name)
    };
    ($name:expr, $($key:expr => $value:expr),+ $(,)?) => {{
        let mut s = $crate::span::enter($name);
        $( s.field($key, $value); )+
        s
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paths_nest_and_unwind() {
        let outer = enter("outer");
        assert_eq!(outer.path(), "outer");
        {
            let inner = enter("inner");
            assert_eq!(inner.path(), "outer/inner");
            let secs = inner.close();
            assert!(secs >= 0.0);
        }
        let sibling = enter("sibling");
        assert_eq!(sibling.path(), "outer/sibling");
        drop(sibling);
        drop(outer);
        let fresh = enter("fresh");
        assert_eq!(fresh.path(), "fresh");
    }

    #[test]
    fn macro_attaches_fields() {
        let s = crate::span!("macro-span", "n" => 2usize, "label" => "x");
        assert_eq!(s.path(), "macro-span");
        assert_eq!(s.fields.len(), 2);
    }

    #[test]
    fn dropping_outer_before_inner_recovers() {
        let outer = enter("a");
        let inner = enter("a-child");
        drop(outer); // truncates to depth 0
        drop(inner); // must not panic
        let next = enter("b");
        assert_eq!(next.path(), "b");
    }
}
