//! Process-global metrics registry: counters, gauges and fixed-bucket
//! histograms behind relaxed atomics, cheap enough to record from the
//! `hs-tensor` worker pool's kernels on any thread.
//!
//! Metrics are registered by name on first use and live for the process
//! lifetime (`&'static` handles); cache the handle in a `OnceLock` at hot
//! call sites so the registry lock is taken once:
//!
//! ```
//! use std::sync::OnceLock;
//! use hs_telemetry::metrics::{self, Counter};
//!
//! fn calls() -> &'static Counter {
//!     static C: OnceLock<&'static Counter> = OnceLock::new();
//!     C.get_or_init(|| metrics::counter("hs_doc_calls_total"))
//! }
//! calls().inc();
//! ```
//!
//! Naming convention: `hs_<crate>_<what>[_total|_bytes|_secs]`, e.g.
//! `hs_tensor_gemm_calls_total`. Rendered either as Prometheus text
//! format ([`render_prometheus`]) or as one JSONL event per metric at a
//! metrics flush ([`crate::flush_metrics`]).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::event::{Event, EventKind, FieldValue};
use crate::level::Level;

/// A monotonically increasing `u64`.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (relaxed; ordering across metrics is not meaningful).
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// A last-write-wins `f64` (stored as bits in an `AtomicU64`), with a
/// compare-and-swap `record_max` for high-water marks.
#[derive(Debug)]
pub struct Gauge {
    name: &'static str,
    bits: AtomicU64,
}

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Raises the value to `v` if `v` is larger (high-water mark).
    pub fn record_max(&self, v: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        while v > f64::from_bits(cur) {
            match self.bits.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// A histogram over fixed, ascending bucket upper bounds. Observation is
/// a binary search plus three relaxed atomic updates; bounds are fixed at
/// registration so concurrent observers never rebalance.
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    /// Ascending upper bounds; an implicit `+Inf` bucket follows.
    bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) counts; `len == bounds.len() + 1`.
    buckets: Vec<AtomicU64>,
    sum_bits: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let idx = self.bucket_index(v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // f64 add via CAS; histograms record at span/kernel-batch rate,
        // so contention is negligible.
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Index of the bucket that counts `v`: the first bound `>= v`, or
    /// the final `+Inf` bucket.
    pub fn bucket_index(&self, v: f64) -> usize {
        self.bounds.partition_point(|&b| b < v)
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Upper bound of the bucket containing the `q`-quantile observation
    /// (`0.0 <= q <= 1.0`). Returns `0.0` when empty and the largest
    /// finite bound when the quantile falls in the `+Inf` bucket — a
    /// bucket-resolution estimate, not an exact order statistic.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            cum += bucket.load(Ordering::Relaxed);
            if cum >= target {
                return if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    self.bounds.last().copied().unwrap_or(f64::INFINITY)
                };
            }
        }
        self.bounds.last().copied().unwrap_or(f64::INFINITY)
    }

    /// Ascending finite bucket bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Non-cumulative per-bucket counts (`bounds().len() + 1` entries,
    /// last is the `+Inf` bucket).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// Log-spaced seconds buckets (1 µs → 10 s) for kernel and stage timing
/// histograms.
pub const TIME_BUCKETS_SECS: [f64; 8] = [1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0];

#[derive(Debug)]
enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

impl Metric {
    fn name(&self) -> &'static str {
        match self {
            Metric::Counter(c) => c.name,
            Metric::Gauge(g) => g.name,
            Metric::Histogram(h) => h.name,
        }
    }
}

static REGISTRY: OnceLock<Mutex<Vec<Metric>>> = OnceLock::new();

fn registry() -> &'static Mutex<Vec<Metric>> {
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Returns the counter registered under `name`, creating it on first
/// use.
///
/// # Panics
///
/// Panics if `name` is already registered as a different metric kind.
pub fn counter(name: &str) -> &'static Counter {
    let mut reg = registry()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    for metric in reg.iter() {
        if metric.name() == name {
            match metric {
                Metric::Counter(c) => return c,
                _ => panic!("metric `{name}` already registered with a different kind"),
            }
        }
    }
    let handle: &'static Counter = Box::leak(Box::new(Counter {
        name: Box::leak(name.to_string().into_boxed_str()),
        value: AtomicU64::new(0),
    }));
    reg.push(Metric::Counter(handle));
    handle
}

/// Returns the gauge registered under `name`, creating it on first use.
///
/// # Panics
///
/// Panics if `name` is already registered as a different metric kind.
pub fn gauge(name: &str) -> &'static Gauge {
    let mut reg = registry()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    for metric in reg.iter() {
        if metric.name() == name {
            match metric {
                Metric::Gauge(g) => return g,
                _ => panic!("metric `{name}` already registered with a different kind"),
            }
        }
    }
    let handle: &'static Gauge = Box::leak(Box::new(Gauge {
        name: Box::leak(name.to_string().into_boxed_str()),
        bits: AtomicU64::new(0.0f64.to_bits()),
    }));
    reg.push(Metric::Gauge(handle));
    handle
}

/// Returns the histogram registered under `name`, creating it with the
/// given ascending bucket `bounds` on first use. Later calls ignore
/// `bounds` (the first registration wins).
///
/// # Panics
///
/// Panics if `bounds` is empty or not strictly ascending, or if `name`
/// is already registered as a different metric kind.
pub fn histogram(name: &str, bounds: &[f64]) -> &'static Histogram {
    let mut reg = registry()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    for metric in reg.iter() {
        if metric.name() == name {
            match metric {
                Metric::Histogram(h) => return h,
                _ => panic!("metric `{name}` already registered with a different kind"),
            }
        }
    }
    assert!(!bounds.is_empty(), "histogram `{name}` needs bounds");
    assert!(
        bounds.windows(2).all(|w| w[0] < w[1]),
        "histogram `{name}` bounds must be strictly ascending"
    );
    let handle: &'static Histogram = Box::leak(Box::new(Histogram {
        name: Box::leak(name.to_string().into_boxed_str()),
        bounds: bounds.to_vec(),
        buckets: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
        sum_bits: AtomicU64::new(0.0f64.to_bits()),
        count: AtomicU64::new(0),
    }));
    reg.push(Metric::Histogram(handle));
    handle
}

/// Zeroes every registered metric (bench/test hook — registrations and
/// handles stay valid).
pub fn reset() {
    let reg = registry()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    for metric in reg.iter() {
        match metric {
            Metric::Counter(c) => c.value.store(0, Ordering::Relaxed),
            Metric::Gauge(g) => g.set(0.0),
            Metric::Histogram(h) => {
                for bucket in &h.buckets {
                    bucket.store(0, Ordering::Relaxed);
                }
                h.sum_bits.store(0.0f64.to_bits(), Ordering::Relaxed);
                h.count.store(0, Ordering::Relaxed);
            }
        }
    }
}

/// One metric's state, as captured by [`snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricSnapshot {
    /// A counter's name and value.
    Counter {
        /// Metric name.
        name: String,
        /// Current value.
        value: u64,
    },
    /// A gauge's name and value.
    Gauge {
        /// Metric name.
        name: String,
        /// Current value.
        value: f64,
    },
    /// A histogram's name and summary.
    Histogram {
        /// Metric name.
        name: String,
        /// Observation count.
        count: u64,
        /// Observation sum.
        sum: f64,
        /// `(upper_bound, non_cumulative_count)` per finite bucket, then
        /// `(+Inf, count)`.
        buckets: Vec<(f64, u64)>,
    },
}

impl MetricSnapshot {
    /// The metric's name.
    pub fn name(&self) -> &str {
        match self {
            MetricSnapshot::Counter { name, .. }
            | MetricSnapshot::Gauge { name, .. }
            | MetricSnapshot::Histogram { name, .. } => name,
        }
    }
}

/// Captures every registered metric, in registration order.
pub fn snapshot() -> Vec<MetricSnapshot> {
    let reg = registry()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    reg.iter()
        .map(|metric| match metric {
            Metric::Counter(c) => MetricSnapshot::Counter {
                name: c.name.to_string(),
                value: c.get(),
            },
            Metric::Gauge(g) => MetricSnapshot::Gauge {
                name: g.name.to_string(),
                value: g.get(),
            },
            Metric::Histogram(h) => {
                let counts = h.bucket_counts();
                let mut buckets: Vec<(f64, u64)> = h
                    .bounds
                    .iter()
                    .copied()
                    .zip(counts.iter().copied())
                    .collect();
                buckets.push((f64::INFINITY, *counts.last().unwrap_or(&0)));
                MetricSnapshot::Histogram {
                    name: h.name.to_string(),
                    count: h.count(),
                    sum: h.sum(),
                    buckets,
                }
            }
        })
        .collect()
}

/// Renders every registered metric in the Prometheus text exposition
/// format (counters with `# TYPE ... counter`, histograms with
/// cumulative `_bucket{le=...}` series plus `_sum` / `_count`).
pub fn render_prometheus() -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for snap in snapshot() {
        match snap {
            MetricSnapshot::Counter { name, value } => {
                let _ = writeln!(out, "# TYPE {name} counter");
                let _ = writeln!(out, "{name} {value}");
            }
            MetricSnapshot::Gauge { name, value } => {
                let _ = writeln!(out, "# TYPE {name} gauge");
                let _ = writeln!(out, "{name} {value}");
            }
            MetricSnapshot::Histogram {
                name,
                count,
                sum,
                buckets,
            } => {
                let _ = writeln!(out, "# TYPE {name} histogram");
                let mut cum = 0u64;
                for (bound, bucket_count) in &buckets[..buckets.len().saturating_sub(1)] {
                    cum += bucket_count;
                    let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cum}");
                }
                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {count}");
                let _ = writeln!(out, "{name}_sum {sum}");
                let _ = writeln!(out, "{name}_count {count}");
            }
        }
    }
    out
}

/// Builds one [`EventKind::Metric`] event per registered metric (the
/// JSONL side of a metrics flush). Used by [`crate::flush_metrics`].
pub fn flush_events() -> Vec<Event> {
    snapshot()
        .into_iter()
        .map(|snap| {
            let mut event = Event::new(EventKind::Metric, Level::Debug, snap.name());
            match snap {
                MetricSnapshot::Counter { value, .. } => {
                    event.fields.push(("metric_kind".into(), "counter".into()));
                    event.fields.push(("value".into(), FieldValue::U64(value)));
                }
                MetricSnapshot::Gauge { value, .. } => {
                    event.fields.push(("metric_kind".into(), "gauge".into()));
                    event.fields.push(("value".into(), FieldValue::F64(value)));
                }
                MetricSnapshot::Histogram {
                    count,
                    sum,
                    buckets,
                    ..
                } => {
                    event
                        .fields
                        .push(("metric_kind".into(), "histogram".into()));
                    event.fields.push(("count".into(), FieldValue::U64(count)));
                    event.fields.push(("sum".into(), FieldValue::F64(sum)));
                    // Cumulative per-bucket counts, flat so the schema's
                    // no-nested-fields rule holds; `hs_obs report`
                    // computes latency percentiles from these.
                    let mut cum = 0u64;
                    for (bound, bucket_count) in &buckets[..buckets.len().saturating_sub(1)] {
                        cum += bucket_count;
                        let key = if *bound == bound.trunc() && bound.abs() < 1e15 {
                            format!("le_{}", *bound as i64)
                        } else {
                            format!("le_{bound}")
                        };
                        event.fields.push((key, FieldValue::U64(cum)));
                    }
                    event.fields.push(("le_inf".into(), FieldValue::U64(count)));
                }
            }
            event
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_round_trip() {
        let c = counter("hs_test_counter_total");
        let before = c.get();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), before + 5);
        assert!(std::ptr::eq(c, counter("hs_test_counter_total")));

        let g = gauge("hs_test_gauge");
        g.set(2.5);
        g.record_max(1.0);
        assert_eq!(g.get(), 2.5);
        g.record_max(7.25);
        assert_eq!(g.get(), 7.25);
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper() {
        let h = histogram("hs_test_hist_bounds", &[1.0, 2.0, 4.0]);
        // v <= bound lands in that bucket; v > last bound overflows.
        assert_eq!(h.bucket_index(0.5), 0);
        assert_eq!(h.bucket_index(1.0), 0, "boundary value belongs below");
        assert_eq!(h.bucket_index(1.0001), 1);
        assert_eq!(h.bucket_index(2.0), 1);
        assert_eq!(h.bucket_index(4.0), 2);
        assert_eq!(h.bucket_index(4.1), 3, "overflow lands in +Inf bucket");
        for v in [0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 100.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.bucket_counts(), vec![2, 2, 2, 1]);
        assert!((h.sum() - 112.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantiles_track_buckets() {
        let h = histogram("hs_test_hist_quant", &[1.0, 10.0, 100.0]);
        for _ in 0..90 {
            h.observe(0.5); // bucket le=1
        }
        for _ in 0..10 {
            h.observe(50.0); // bucket le=100
        }
        assert_eq!(h.quantile(0.5), 1.0);
        assert_eq!(h.quantile(0.89), 1.0);
        assert_eq!(h.quantile(0.95), 100.0);
        assert_eq!(h.quantile(1.0), 100.0);
        let empty = histogram("hs_test_hist_empty", &[1.0]);
        assert_eq!(empty.quantile(0.5), 0.0);
    }

    #[test]
    fn prometheus_rendering_is_cumulative() {
        let c = counter("hs_test_prom_total");
        c.add(3);
        let h = histogram("hs_test_prom_secs", &[0.1, 1.0]);
        h.observe(0.05);
        h.observe(0.5);
        h.observe(5.0);
        let text = render_prometheus();
        assert!(text.contains("# TYPE hs_test_prom_total counter"));
        assert!(text.contains("hs_test_prom_secs_bucket{le=\"0.1\"} 1"));
        assert!(text.contains("hs_test_prom_secs_bucket{le=\"1\"} 2"));
        assert!(text.contains("hs_test_prom_secs_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("hs_test_prom_secs_count 3"));
    }

    #[test]
    fn flush_events_carry_cumulative_buckets() {
        let h = histogram("hs_test_flush_buckets", &[1.0, 10.0]);
        h.observe(0.5);
        h.observe(5.0);
        h.observe(50.0);
        let events = flush_events();
        let event = events
            .iter()
            .find(|e| e.name == "hs_test_flush_buckets")
            .unwrap();
        let line = event.to_json_line();
        assert!(line.contains("\"le_1\":1"));
        assert!(line.contains("\"le_10\":2"));
        assert!(line.contains("\"le_inf\":3"));
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflicts_are_rejected() {
        let _ = counter("hs_test_conflict");
        let _ = gauge("hs_test_conflict");
    }

    #[test]
    fn concurrent_counting_is_exact() {
        let c = counter("hs_test_concurrent_total");
        let before = c.get();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), before + 8000);
    }
}
