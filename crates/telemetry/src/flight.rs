//! Flight recorder: a bounded in-memory ring of the most recent events,
//! dumped (with a metrics snapshot) to a JSON file when something goes
//! wrong — breaker trips, sustained-overload degradation, divergence
//! guard recoveries.
//!
//! The recorder is disarmed by default and costs one relaxed atomic
//! load per [`crate::emit`] call while disarmed. When armed it stores
//! each event's **stable form** — the JSONL line with the wall-clock
//! `ts` zeroed and `secs` dropped — so two identical seeded runs
//! produce byte-identical `flight.json` dumps. For the same reason the
//! metrics section carries only deterministic values: counter values,
//! gauge values, and histogram *total* observation counts (per-bucket
//! counts of wall-clock time histograms vary run to run and are
//! deliberately excluded).

use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::event::Event;
use crate::level::Level;
use crate::metrics::{self, MetricSnapshot};

/// Cheap armed flag, checked by [`crate::emit`] before taking the ring
/// lock.
static ARMED: AtomicBool = AtomicBool::new(false);

static RECORDER: OnceLock<Mutex<Option<Recorder>>> = OnceLock::new();

#[derive(Debug)]
struct Recorder {
    capacity: usize,
    path: PathBuf,
    /// Stable-form JSONL lines, oldest first.
    ring: VecDeque<String>,
    /// Dumps taken since arming (stamped into the snapshot so repeated
    /// triggers are distinguishable without a wall clock).
    triggers: u64,
}

fn recorder() -> &'static Mutex<Option<Recorder>> {
    RECORDER.get_or_init(|| Mutex::new(None))
}

/// Arms the recorder: keep the last `capacity` events in memory and
/// dump them to `path` on [`trigger`]. Re-arming resets the ring and
/// the trigger counter (tests arm once per run).
pub fn arm(capacity: usize, path: impl Into<PathBuf>) {
    let mut guard = recorder()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    *guard = Some(Recorder {
        capacity: capacity.max(1),
        path: path.into(),
        ring: VecDeque::with_capacity(capacity.max(1)),
        triggers: 0,
    });
    ARMED.store(true, Ordering::Relaxed);
}

/// Disarms the recorder and drops the ring.
pub fn disarm() {
    let mut guard = recorder()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    *guard = None;
    ARMED.store(false, Ordering::Relaxed);
}

/// True when armed — one relaxed load.
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Records one event in the ring (no-op while disarmed). Called by the
/// dispatcher; the stored form zeroes `ts` and drops `secs` so dumps
/// are byte-reproducible.
pub(crate) fn record(event: &Event) {
    if !armed() {
        return;
    }
    let mut stable = event.clone();
    stable.ts = 0.0;
    stable.secs = None;
    let line = stable.to_json_line();
    let mut guard = recorder()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(rec) = guard.as_mut() {
        if rec.ring.len() == rec.capacity {
            rec.ring.pop_front();
        }
        rec.ring.push_back(line);
    }
}

/// Dumps the ring and a deterministic metrics snapshot to the armed
/// path (atomic tmp+fsync+rename, fault site `flight`), then emits one
/// debug log describing the dump. No-op while disarmed.
pub fn trigger(reason: &str) {
    let (bytes, path, events, triggers) = {
        let mut guard = recorder()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let Some(rec) = guard.as_mut() else {
            return;
        };
        rec.triggers += 1;
        (
            render_snapshot(reason, rec.triggers, &rec.ring),
            rec.path.clone(),
            rec.ring.len(),
            rec.triggers,
        )
    };
    if let Err(err) = crate::io::atomic_write_as(&path, "flight", bytes.as_bytes()) {
        crate::log(
            Level::Warn,
            "flight",
            format!("flight recorder dump failed: {err}"),
        );
        return;
    }
    crate::log_with(
        Level::Debug,
        "flight",
        format!("flight recorder dumped ({reason})"),
        vec![
            ("reason".into(), reason.into()),
            ("events".into(), events.into()),
            ("trigger".into(), triggers.into()),
        ],
    );
}

/// Renders the snapshot JSON: trigger metadata, the ring's stable-form
/// event lines (oldest first), and the deterministic slice of the
/// metrics registry, sorted by name.
fn render_snapshot(reason: &str, trigger_seq: u64, ring: &VecDeque<String>) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(4096);
    out.push_str("{\n  \"schema\": ");
    let _ = write!(out, "{}", crate::event::SCHEMA_VERSION);
    out.push_str(",\n  \"reason\": ");
    crate::event::write_json_str(&mut out, reason);
    let _ = write!(out, ",\n  \"trigger\": {trigger_seq},\n  \"events\": [");
    for (i, line) in ring.iter().enumerate() {
        out.push_str(if i == 0 { "\n    " } else { ",\n    " });
        out.push_str(line);
    }
    if !ring.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"metrics\": {");
    let mut snaps: Vec<MetricSnapshot> = metrics::snapshot();
    snaps.sort_by(|a, b| a.name().cmp(b.name()));
    for (i, snap) in snaps.iter().enumerate() {
        out.push_str(if i == 0 { "\n    " } else { ",\n    " });
        match snap {
            MetricSnapshot::Counter { name, value } => {
                crate::event::write_json_str(&mut out, name);
                let _ = write!(out, ": {value}");
            }
            MetricSnapshot::Gauge { name, value } => {
                crate::event::write_json_str(&mut out, name);
                out.push_str(": ");
                crate::event::write_json_num(&mut out, *value);
            }
            MetricSnapshot::Histogram { name, count, .. } => {
                crate::event::write_json_str(&mut out, &format!("{name}_count"));
                let _ = write!(out, ": {count}");
            }
        }
    }
    if !snaps.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("}\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn ring_is_bounded_and_dump_is_stable() {
        // Serialize against the fault/io tests, which emit warn-level
        // events that would otherwise land in the armed ring.
        let _guard = crate::faults::test_lock();
        let dir = std::env::temp_dir();
        let path = dir.join("hs_flight_test.json");
        arm(2, &path);
        for i in 0..5u64 {
            let mut e = Event::new(EventKind::Log, Level::Info, "t").field("i", i);
            e.ts = 123.0 + i as f64; // wall clock must not leak into the dump
            record(&e);
        }
        trigger("unit_test");
        disarm();
        let text = std::fs::read_to_string(&path).unwrap();
        // Only the last two events survive, with ts zeroed.
        assert!(!text.contains("\"i\":2"));
        assert!(text.contains("\"i\":3"));
        assert!(text.contains("\"i\":4"));
        assert!(text.contains("\"ts\":0}"));
        assert!(text.contains("\"reason\": \"unit_test\""));
        assert!(text.contains("\"trigger\": 1"));
        crate::schema::parse(&text).expect("flight dump parses as JSON");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn trigger_while_disarmed_is_a_no_op() {
        disarm();
        trigger("nobody_listening");
        assert!(!armed());
    }
}
