//! `hs-telemetry` — structured tracing and metrics for the HeadStart
//! workspace.
//!
//! The build is fully offline, so this crate is a zero-dependency
//! replacement for the usual `tracing` + `metrics` + `prometheus` stack,
//! scoped to exactly what the pipeline needs:
//!
//! - **Spans** ([`span`], [`span!`]): named, nested wall-clock scopes.
//!   Each close emits one schema-versioned [`Event`] carrying the span's
//!   path (`pipeline/pretrain`), depth and duration.
//! - **Metrics** ([`metrics`]): a process-global registry of counters,
//!   gauges and fixed-bucket histograms behind relaxed atomics, cheap
//!   enough to record from the `hs-tensor` worker pool's hot kernels.
//!   Rendered either as JSONL flush events or Prometheus text format
//!   ([`metrics::render_prometheus`]).
//! - **Sinks** ([`sink`]): a human-readable stderr sink (the default, so
//!   CLI output is unchanged when telemetry is off) and a JSONL
//!   event-stream writer, selected at runtime via [`configure`].
//! - **Atomic IO** ([`io::atomic_write`]): crash-safe artifact writes
//!   (tmp + fsync + rename) with bounded retry on transient errors.
//! - **Fault injection** ([`faults`]): a deterministic, disarmed-by-default
//!   registry tests use to make IO and training failures reproducible.
//!
//! Events that no sink would accept are dropped before formatting, so an
//! unconfigured process pays one relaxed atomic load per call site.
//!
//! # Example
//!
//! ```
//! use hs_telemetry::{metrics, Level};
//!
//! let calls = metrics::counter("hs_doc_example_calls_total");
//! {
//!     let _span = hs_telemetry::span!("doc-example", "n" => 3u64);
//!     calls.inc();
//! }
//! hs_telemetry::log(Level::Debug, "doc", "did a thing".to_string());
//! assert!(metrics::render_prometheus().contains("hs_doc_example_calls_total"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod event;
pub mod faults;
pub mod flight;
pub mod io;
pub mod level;
pub mod metrics;
pub mod schema;
pub mod sink;
pub mod span;
pub mod trace;

pub use event::{Event, EventKind, FieldValue, Fields, SCHEMA_VERSION};
pub use level::Level;
pub use sink::{JsonlSink, Sink, StderrSink};
pub use span::Span;
pub use trace::TraceCtx;

use std::path::PathBuf;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// The most verbose level any active sink accepts; events above it are
/// dropped before they are even built. Stored as `Level as u8`.
static MAX_LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);

/// Active sinks. Lazily initialized to a stderr sink at [`Level::Info`]
/// so the default CLI experience is unchanged.
static SINKS: OnceLock<Mutex<Vec<Box<dyn Sink>>>> = OnceLock::new();

/// Process epoch for event timestamps (seconds since first telemetry use).
static EPOCH: OnceLock<Instant> = OnceLock::new();

fn sinks() -> &'static Mutex<Vec<Box<dyn Sink>>> {
    SINKS.get_or_init(|| Mutex::new(vec![Box::new(StderrSink::new(Level::Info))]))
}

/// Seconds since the telemetry epoch (first use in this process).
pub fn now_secs() -> f64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_secs_f64()
}

/// How a process's telemetry is wired up. Passed to [`configure`].
#[derive(Debug, Clone, Default)]
pub struct TelemetryConfig {
    /// Verbosity of the human-readable stderr sink. `None` keeps the
    /// default ([`Level::Info`]).
    pub stderr_level: Option<Level>,
    /// When set, a JSONL event stream is written here (one event per
    /// line, all levels).
    pub jsonl: Option<PathBuf>,
}

/// Replaces the active sinks according to `cfg`. Previous sinks are
/// flushed and dropped. Safe to call repeatedly (e.g. once per pipeline
/// run in tests).
///
/// # Errors
///
/// Propagates I/O errors from opening the JSONL file.
pub fn configure(cfg: &TelemetryConfig) -> std::io::Result<()> {
    let stderr_level = cfg.stderr_level.unwrap_or(Level::Info);
    let mut guard = sinks().lock().expect("telemetry sinks poisoned");
    // Retire the old sinks *before* opening the new JSONL file: the new
    // path may be the same file (resume_run reconfigures in-process),
    // and `JsonlSink::create` truncates — an old buffered sink flushing
    // after the truncate would write its tail at a stale offset and
    // tear the fresh stream mid-line.
    guard.clear();
    let mut new_sinks: Vec<Box<dyn Sink>> = vec![Box::new(StderrSink::new(stderr_level))];
    if let Some(path) = &cfg.jsonl {
        match JsonlSink::create(path) {
            Ok(sink) => new_sinks.push(Box::new(sink)),
            Err(e) => {
                // Leave a sane stderr-only setup behind on failure.
                MAX_LEVEL.store(stderr_level as u8, Ordering::Relaxed);
                *guard = new_sinks;
                return Err(e);
            }
        }
    }
    let max = new_sinks
        .iter()
        .map(|s| s.level() as u8)
        .max()
        .unwrap_or(Level::Error as u8);
    *guard = new_sinks;
    MAX_LEVEL.store(max, Ordering::Relaxed);
    Ok(())
}

/// True when at least one active sink accepts events at `level`. One
/// relaxed atomic load — the cheap gate for hot call sites.
pub fn enabled(level: Level) -> bool {
    level as u8 <= MAX_LEVEL.load(Ordering::Relaxed)
}

/// Emits a fully-built event to every sink that accepts its level. The
/// timestamp is stamped here; callers leave `ts` at 0.
pub fn emit(mut event: Event) {
    if !enabled(event.level) {
        return;
    }
    event.ts = now_secs();
    flight::record(&event);
    let mut guard = sinks().lock().expect("telemetry sinks poisoned");
    for sink in guard.iter_mut() {
        if event.level as u8 <= sink.level() as u8 {
            sink.emit(&event);
        }
    }
}

/// Emits a leveled log event: `target` becomes the event name (rendered
/// as the `[target]` prefix on stderr).
pub fn log(level: Level, target: &str, message: String) {
    if !enabled(level) {
        return;
    }
    emit(Event::new(EventKind::Log, level, target).message(message));
}

/// As [`log`], with structured fields attached.
pub fn log_with(level: Level, target: &str, message: String, fields: Fields) {
    if !enabled(level) {
        return;
    }
    let mut event = Event::new(EventKind::Log, level, target).message(message);
    event.fields = fields;
    emit(event);
}

/// Records that an artifact (checkpoint, JSON report, metrics dump) was
/// written to `path`.
pub fn artifact(label: &str, path: &std::path::Path) {
    let mut event = Event::new(EventKind::Artifact, Level::Info, label)
        .message(format!("wrote {}", path.display()));
    event.fields.push((
        "path".to_string(),
        FieldValue::from(path.display().to_string()),
    ));
    emit(event);
}

/// Flushes every active sink (call before reading a JSONL file the
/// process is still holding open).
pub fn flush() {
    let mut guard = sinks().lock().expect("telemetry sinks poisoned");
    for sink in guard.iter_mut() {
        sink.flush();
    }
}

/// Emits one [`EventKind::Metric`] event per registered metric to the
/// active sinks (at [`Level::Debug`]) — the "metric flush" of the JSONL
/// schema — then flushes.
pub fn flush_metrics() {
    if enabled(Level::Debug) {
        for event in metrics::flush_events() {
            emit(event);
        }
    }
    flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_level_is_info() {
        assert!(enabled(Level::Info));
    }

    #[test]
    fn now_secs_is_monotonic() {
        let a = now_secs();
        let b = now_secs();
        assert!(b >= a);
    }

    /// Regression (found by a chaos campaign): reconfiguring onto the
    /// *same* JSONL path — which `resume_run` does in-process — used to
    /// truncate the file before the old buffered sink flushed, so its
    /// tail landed at a stale offset and tore the fresh stream mid-line.
    #[test]
    fn reconfiguring_onto_the_same_jsonl_path_never_tears_lines() {
        let _guard = faults::test_lock();
        let dir = std::env::temp_dir().join("hs_telemetry_reconfigure_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let cfg = TelemetryConfig {
            stderr_level: Some(Level::Error),
            jsonl: Some(path.clone()),
        };
        configure(&cfg).unwrap();
        // Fill well past the sink's write buffer so a partial line has
        // been auto-flushed to disk while its tail is still buffered.
        for i in 0..200 {
            log(
                Level::Info,
                "reconf-test",
                format!("padding event {i} with ballast text to cross the buffer boundary"),
            );
        }
        configure(&cfg).unwrap();
        log(Level::Info, "reconf-test", "fresh stream".to_string());
        flush();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.lines().count() >= 1);
        for (i, line) in text.lines().enumerate() {
            schema::validate_line(line).unwrap_or_else(|e| panic!("line {}: {e}\n{line}", i + 1));
        }
        configure(&TelemetryConfig::default()).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
