//! Deterministic fault injection: a process-global registry of armed
//! faults that any crate in the workspace can consult at well-defined
//! sites — no real `kill -9`, no flaky filesystem mocks.
//!
//! A fault is `kind:site:n`: the *n*-th time (1-based) a call site asks
//! [`trip`] about `(kind, site)`, the fault fires exactly once and a
//! `fault_injected` telemetry event is emitted. Several faults are armed
//! together as a comma-separated plan, e.g.
//!
//! ```text
//! HS_FAULT=io_error:checkpoint:2,kill_after:prune_unit:1
//! ```
//!
//! (the `HS_FAULT` environment variable is parsed and armed by
//! `hs-runner`; this module only owns the registry so lower layers —
//! atomic file IO, the episode engine — can consult it without a
//! dependency on the runner).
//!
//! The registry is disarmed by default and gated behind one relaxed
//! atomic load, so production call sites pay nothing. Hit counting is
//! deterministic: for a seeded single-threaded pipeline the same plan
//! always fires at the same operation.
//!
//! Fault kinds used across the workspace (the matrix CI exercises):
//!
//! | kind        | site         | effect at the consulting site            |
//! |-------------|--------------|------------------------------------------|
//! | `io_error`  | `checkpoint`, `artifact`, `journal`, `metrics` | the write fails hard with a typed IO error |
//! | `io_flaky`  | same sites   | the first write attempt fails with a transient error; bounded retry recovers |
//! | `corrupt`   | `checkpoint`, `compact_write` | the just-written file gets one byte flipped |
//! | `truncate`  | `checkpoint` | the just-written file loses its tail     |
//! | `kill_after`| `pretrain`, `prune_unit`, `finalize` | the pipeline aborts as if killed at the stage boundary |
//! | `nan_reward`| `layer`, `block`, `block-inner` | the episode's inference reward becomes NaN |
//! | `slow_infer`| `infer`      | a serve micro-batch's modeled compute time is inflated past its timeout |
//! | `load_fail` | `model_load` | a model (re)load attempt fails with a transient error; retry with backoff recovers |
//! | `torn_write` | `checkpoint`, `artifact`, `journal`, `metrics` | half the bytes land at the final path, then the write fails hard — a torn file a later read must catch by CRC |
//! | `worker_lost`| `worker`    | a coordinator evaluation worker dies mid-batch; its items are reassigned and replayed |
//! | `replica_crash`| `replica<K>` | fleet replica K goes down permanently; the prober ejects it and queued requests fail over |
//! | `replica_slow` | `replica<K>` | fleet replica K's modeled compute inflates (toggles back on a later firing) |
//! | `replica_flap` | `replica<K>` | fleet replica K flips between down and up on each firing |
//! | `probe_loss`   | `replica<K>` | one health probe of replica K returns no signal (reads as failed) without the replica going down |
//!
//! (`corrupt:model_load` is also recognised: the serving loader sees a
//! one-byte-flipped checkpoint image on that attempt and retries. The
//! replica kinds use *dynamic* sites — `replica0`, `replica1`, … keyed
//! by replica id — which the plan parser accepts alongside
//! [`KNOWN_SITES`].)

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crate::event::{Event, EventKind};
use crate::level::Level;

/// One armed fault: fires on the `nth` (1-based) [`trip`] of
/// `(kind, site)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fault {
    /// Fault kind (`io_error`, `kill_after`, `nan_reward`, …).
    pub kind: String,
    /// Site name the consulting code passes to [`trip`].
    pub site: String,
    /// 1-based hit on which the fault fires (exactly once).
    pub nth: u64,
}

/// Every fault kind a plan may name. [`FaultPlan::parse`] rejects
/// anything else, so a typo in `HS_FAULT` fails at startup instead of
/// silently running without faults.
pub const KNOWN_KINDS: [&str; 14] = [
    "io_error",
    "io_flaky",
    "corrupt",
    "truncate",
    "torn_write",
    "kill_after",
    "nan_reward",
    "slow_infer",
    "load_fail",
    "worker_lost",
    "replica_crash",
    "replica_slow",
    "replica_flap",
    "probe_loss",
];

/// Every *static* site a plan may name (the workspace's consulting call
/// sites). [`arm`]/[`trip`] stay unrestricted — tests arm synthetic
/// sites programmatically — but specs that reach [`FaultPlan::parse`]
/// must use a real site. Fleet replica sites are dynamic (`replica0`,
/// `replica1`, … — see [`is_replica_site`]) because the id space is
/// chosen at fleet construction, not compile time.
pub const KNOWN_SITES: [&str; 14] = [
    "checkpoint",
    "artifact",
    "journal",
    "metrics",
    "pretrain",
    "prune_unit",
    "finalize",
    "compact_write",
    "layer",
    "block",
    "block-inner",
    "infer",
    "model_load",
    "worker",
];

/// True for the dynamic replica-scoped sites: `replica` followed by a
/// decimal replica id (`replica0`, `replica12`, …).
#[must_use]
pub fn is_replica_site(site: &str) -> bool {
    site.strip_prefix("replica")
        .is_some_and(|id| !id.is_empty() && id.bytes().all(|b| b.is_ascii_digit()))
}

/// The static consulting sites of every fault kind — the registry's
/// kind×site vocabulary, so tooling (the `hs-chaos` schedule generator,
/// doc checks) can *discover* valid plans instead of hardcoding them.
/// Replica-scoped kinds (see [`replica_scoped`]) list no static sites:
/// their sites are the dynamic `replica<K>` family.
pub const KIND_SITES: [(&str, &[&str]); 14] = [
    (
        "io_error",
        &["checkpoint", "artifact", "journal", "metrics"],
    ),
    (
        "io_flaky",
        &["checkpoint", "artifact", "journal", "metrics"],
    ),
    ("corrupt", &["checkpoint", "compact_write", "model_load"]),
    ("truncate", &["checkpoint"]),
    (
        "torn_write",
        &["checkpoint", "artifact", "journal", "metrics"],
    ),
    ("kill_after", &["pretrain", "prune_unit", "finalize"]),
    ("nan_reward", &["layer", "block", "block-inner"]),
    ("slow_infer", &["infer"]),
    ("load_fail", &["model_load"]),
    ("worker_lost", &["worker"]),
    ("replica_crash", &[]),
    ("replica_slow", &[]),
    ("replica_flap", &[]),
    ("probe_loss", &[]),
];

/// The static sites `kind` is consulted at (empty for unknown kinds and
/// for the replica-scoped kinds, whose sites are dynamic).
#[must_use]
pub fn sites_for(kind: &str) -> &'static [&'static str] {
    KIND_SITES
        .iter()
        .find(|(k, _)| *k == kind)
        .map_or(&[], |(_, sites)| sites)
}

/// True for kinds consulted at the dynamic `replica<K>` sites instead
/// of a static site list.
#[must_use]
pub fn replica_scoped(kind: &str) -> bool {
    matches!(
        kind,
        "replica_crash" | "replica_slow" | "replica_flap" | "probe_loss"
    )
}

/// Levenshtein edit distance, for typo suggestions in parse errors.
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let mut row: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.iter().enumerate() {
        let mut prev = row[0];
        row[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = if ca == cb { prev } else { prev + 1 };
            prev = row[j + 1];
            row[j + 1] = cost.min(prev + 1).min(row[j] + 1);
        }
    }
    row[b.len()]
}

/// The registered name nearest to `input` by edit distance, for
/// "did you mean" hints. Ties break toward the earlier candidate.
fn nearest<'a>(input: &str, candidates: &[&'a str]) -> Option<&'a str> {
    candidates
        .iter()
        .map(|c| (edit_distance(input, c), *c))
        .min_by_key(|(d, _)| *d)
        .map(|(_, c)| c)
}

/// A rejected fault-plan spec: which entry was malformed and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultParseError {
    /// The entry did not have the `kind:site[:n]` shape.
    BadShape {
        /// The offending entry.
        entry: String,
    },
    /// The count was not a positive integer.
    BadCount {
        /// The offending entry.
        entry: String,
        /// The count text that failed to parse (or was zero).
        count: String,
    },
    /// The kind or site component was empty.
    EmptyComponent {
        /// The offending entry.
        entry: String,
    },
    /// The kind is not one of [`KNOWN_KINDS`].
    UnknownKind {
        /// The offending entry.
        entry: String,
        /// The unrecognised kind.
        kind: String,
    },
    /// The site is not one of [`KNOWN_SITES`].
    UnknownSite {
        /// The offending entry.
        entry: String,
        /// The unrecognised site.
        site: String,
    },
    /// The identical `(kind, site, n)` entry appeared twice. Arming it
    /// twice would be a silent no-op for the second copy (each entry
    /// fires once, and only one entry fires per hit), so the plan is
    /// rejected instead.
    DuplicateEntry {
        /// The repeated entry.
        entry: String,
    },
}

impl fmt::Display for FaultParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultParseError::BadShape { entry } => {
                write!(f, "fault `{entry}`: expected kind:site[:n]")
            }
            FaultParseError::BadCount { entry, count } => {
                write!(
                    f,
                    "fault `{entry}`: bad count `{count}` (want integer >= 1)"
                )
            }
            FaultParseError::EmptyComponent { entry } => {
                write!(f, "fault `{entry}`: empty kind or site")
            }
            FaultParseError::UnknownKind { entry, kind } => {
                write!(f, "fault `{entry}`: unknown kind `{kind}`")?;
                if let Some(hint) = nearest(kind, &KNOWN_KINDS) {
                    write!(f, " — did you mean `{hint}`?")?;
                }
                write!(f, " (valid kinds: {})", KNOWN_KINDS.join(", "))
            }
            FaultParseError::UnknownSite { entry, site } => {
                write!(f, "fault `{entry}`: unknown site `{site}`")?;
                let hint = if site.starts_with("replica") {
                    Some("replica<K>")
                } else {
                    nearest(site, &KNOWN_SITES)
                };
                if let Some(hint) = hint {
                    write!(f, " — did you mean `{hint}`?")?;
                }
                write!(
                    f,
                    " (valid sites: {}, or replica<K>)",
                    KNOWN_SITES.join(", ")
                )
            }
            FaultParseError::DuplicateEntry { entry } => {
                write!(
                    f,
                    "fault `{entry}`: duplicate entry (an identical kind:site:n is \
                     already in the plan; use a different :n to fire on another hit)"
                )
            }
        }
    }
}

impl std::error::Error for FaultParseError {}

/// A parsed set of faults, armed together with [`arm`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The faults in plan order.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// Parses a comma-separated plan like
    /// `io_error:checkpoint:2,kill_after:prune_unit:1`. The count is
    /// optional and defaults to 1 (`corrupt:checkpoint` ≡
    /// `corrupt:checkpoint:1`).
    ///
    /// # Errors
    ///
    /// Returns a typed [`FaultParseError`] for the first malformed
    /// entry — including unknown kinds and sites, which previously
    /// armed fine and then never fired.
    pub fn parse(spec: &str) -> Result<FaultPlan, FaultParseError> {
        let mut faults = Vec::new();
        for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            let parts: Vec<&str> = entry.split(':').collect();
            let (kind, site, nth) = match parts.as_slice() {
                [kind, site] => (*kind, *site, 1),
                [kind, site, n] => {
                    let nth = n.parse::<u64>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                        FaultParseError::BadCount {
                            entry: entry.to_string(),
                            count: (*n).to_string(),
                        }
                    })?;
                    (*kind, *site, nth)
                }
                _ => {
                    return Err(FaultParseError::BadShape {
                        entry: entry.to_string(),
                    })
                }
            };
            if kind.is_empty() || site.is_empty() {
                return Err(FaultParseError::EmptyComponent {
                    entry: entry.to_string(),
                });
            }
            if !KNOWN_KINDS.contains(&kind) {
                return Err(FaultParseError::UnknownKind {
                    entry: entry.to_string(),
                    kind: kind.to_string(),
                });
            }
            if !KNOWN_SITES.contains(&site) && !is_replica_site(site) {
                return Err(FaultParseError::UnknownSite {
                    entry: entry.to_string(),
                    site: site.to_string(),
                });
            }
            let fault = Fault {
                kind: kind.to_string(),
                site: site.to_string(),
                nth,
            };
            if faults.contains(&fault) {
                return Err(FaultParseError::DuplicateEntry {
                    entry: entry.to_string(),
                });
            }
            faults.push(fault);
        }
        Ok(FaultPlan { faults })
    }
}

impl fmt::Display for Fault {
    /// The canonical spec form `kind:site:n` — always with the explicit
    /// count, so formatting is a fixed point of parse∘format.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.kind, self.site, self.nth)
    }
}

impl fmt::Display for FaultPlan {
    /// The comma-separated spec form accepted by [`FaultPlan::parse`]
    /// (and `HS_FAULT`); an empty plan formats as the empty string.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, fault) in self.faults.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{fault}")?;
        }
        Ok(())
    }
}

#[derive(Debug)]
struct ArmedFault {
    fault: Fault,
    hits: u64,
    fired: bool,
}

/// Fast gate: true while any plan is armed. Lets [`trip`] cost one
/// relaxed load in production.
static ARMED: AtomicBool = AtomicBool::new(false);

static PLAN: Mutex<Vec<ArmedFault>> = Mutex::new(Vec::new());

/// Arms a fault plan, replacing any previous one and resetting all hit
/// counters.
pub fn arm(plan: FaultPlan) {
    let mut guard = PLAN.lock().expect("fault plan poisoned");
    *guard = plan
        .faults
        .into_iter()
        .map(|fault| ArmedFault {
            fault,
            hits: 0,
            fired: false,
        })
        .collect();
    ARMED.store(!guard.is_empty(), Ordering::Relaxed);
}

/// Disarms all faults. Safe to call when nothing is armed.
pub fn disarm() {
    arm(FaultPlan::default());
}

/// True while a non-empty fault plan is armed (one relaxed load).
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Records a hit at `(kind, site)` and reports whether an armed fault
/// fires on this hit. Each armed entry fires exactly once, on the
/// configured n-th hit of its `(kind, site)` pair — a plan may list the
/// same pair several times with different counts
/// (`slow_infer:infer:1,slow_infer:infer:2` fires on the first *and*
/// second hit), and every matching entry sees every hit. A
/// `fault_injected` telemetry event is emitted when an entry fires.
///
/// With nothing armed this is one relaxed atomic load and never fires —
/// production call sites can consult it unconditionally.
pub fn trip(kind: &str, site: &str) -> bool {
    if !armed() {
        return false;
    }
    let mut guard = PLAN.lock().expect("fault plan poisoned");
    let mut fired_hit = None;
    for armed in guard.iter_mut() {
        if armed.fault.kind == kind && armed.fault.site == site {
            armed.hits += 1;
            if fired_hit.is_none() && !armed.fired && armed.hits == armed.fault.nth {
                armed.fired = true;
                fired_hit = Some(armed.hits);
            }
        }
    }
    drop(guard);
    if let Some(hit) = fired_hit {
        crate::emit(
            Event::new(EventKind::FaultInjected, Level::Warn, "faults")
                .message(format!("injected {kind} at {site} (hit {hit})"))
                .field("fault", kind)
                .field("site", site)
                .field("hit", hit),
        );
        return true;
    }
    false
}

/// Serializes tests (across this crate) that arm the process-global
/// fault registry, so parallel test threads never see each other's plan.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plans_and_rejects_malformed_entries() {
        let plan = FaultPlan::parse("io_error:checkpoint:2, kill_after:prune_unit:1").unwrap();
        assert_eq!(plan.faults.len(), 2);
        assert_eq!(plan.faults[0].kind, "io_error");
        assert_eq!(plan.faults[0].site, "checkpoint");
        assert_eq!(plan.faults[0].nth, 2);
        // Count defaults to 1.
        assert_eq!(
            FaultPlan::parse("corrupt:checkpoint").unwrap().faults[0].nth,
            1
        );
        assert!(FaultPlan::parse("").unwrap().faults.is_empty());
        assert!(matches!(
            FaultPlan::parse("nonsense"),
            Err(FaultParseError::BadShape { .. })
        ));
        assert!(matches!(
            FaultPlan::parse("io_error:checkpoint:zero"),
            Err(FaultParseError::BadCount { .. })
        ));
        assert!(matches!(
            FaultPlan::parse("io_error:checkpoint:0"),
            Err(FaultParseError::BadCount { .. })
        ));
        assert!(matches!(
            FaultPlan::parse("io_error::1"),
            Err(FaultParseError::EmptyComponent { .. })
        ));
    }

    #[test]
    fn rejects_unknown_kinds_and_sites_with_the_valid_lists() {
        // A typo'd kind used to arm silently and never fire; now it is
        // a startup error naming every valid kind.
        let err = FaultPlan::parse("io_eror:checkpoint:1").unwrap_err();
        assert!(matches!(err, FaultParseError::UnknownKind { ref kind, .. } if kind == "io_eror"));
        let text = err.to_string();
        for kind in KNOWN_KINDS {
            assert!(text.contains(kind), "error text missing kind `{kind}`");
        }

        let err = FaultPlan::parse("io_error:chekpoint").unwrap_err();
        assert!(
            matches!(err, FaultParseError::UnknownSite { ref site, .. } if site == "chekpoint")
        );
        assert!(err.to_string().contains("checkpoint"));

        // The serve kinds/sites are recognised.
        let plan =
            FaultPlan::parse("slow_infer:infer:3,load_fail:model_load,corrupt:model_load").unwrap();
        assert_eq!(plan.faults.len(), 3);
    }

    #[test]
    fn replica_sites_are_dynamic() {
        // `replica<id>` sites are valid for any decimal id …
        let plan = FaultPlan::parse(
            "replica_crash:replica1:5,replica_slow:replica2,replica_flap:replica0",
        )
        .unwrap();
        assert_eq!(plan.faults.len(), 3);
        assert_eq!(plan.faults[0].site, "replica1");
        assert!(is_replica_site("replica12"));
        // … but the prefix alone, or a non-numeric suffix, is not.
        assert!(!is_replica_site("replica"));
        assert!(!is_replica_site("replicaX"));
        assert!(matches!(
            FaultPlan::parse("replica_crash:replica"),
            Err(FaultParseError::UnknownSite { .. })
        ));
        assert!(matches!(
            FaultPlan::parse("replica_crash:replicaX:1"),
            Err(FaultParseError::UnknownSite { .. })
        ));
    }

    #[test]
    fn unknown_names_suggest_the_nearest_registered_one() {
        let err = FaultPlan::parse("io_eror:checkpoint:1").unwrap_err();
        assert!(
            err.to_string().contains("did you mean `io_error`?"),
            "missing kind suggestion: {err}"
        );
        let err = FaultPlan::parse("torn_wrte:journal").unwrap_err();
        assert!(
            err.to_string().contains("did you mean `torn_write`?"),
            "missing kind suggestion: {err}"
        );
        let err = FaultPlan::parse("io_error:chekpoint").unwrap_err();
        assert!(
            err.to_string().contains("did you mean `checkpoint`?"),
            "missing site suggestion: {err}"
        );
        // A malformed replica site points at the dynamic family, not at
        // whichever static site happens to be edit-closest.
        let err = FaultPlan::parse("replica_crash:replicaX:1").unwrap_err();
        assert!(
            err.to_string().contains("did you mean `replica<K>`?"),
            "missing replica hint: {err}"
        );
    }

    #[test]
    fn duplicate_identical_entries_are_rejected() {
        let err = FaultPlan::parse("io_error:checkpoint:2,io_error:checkpoint:2").unwrap_err();
        assert!(matches!(err, FaultParseError::DuplicateEntry { ref entry }
            if entry == "io_error:checkpoint:2"));
        // The implicit :1 and the explicit :1 are the same entry.
        let err = FaultPlan::parse("corrupt:checkpoint,corrupt:checkpoint:1").unwrap_err();
        assert!(matches!(err, FaultParseError::DuplicateEntry { .. }));
        // Same pair with a *different* count is a legitimate multi-hit
        // plan, not a duplicate.
        let plan = FaultPlan::parse("slow_infer:infer:1,slow_infer:infer:2").unwrap();
        assert_eq!(plan.faults.len(), 2);
    }

    #[test]
    fn the_kind_site_table_covers_exactly_the_known_kinds() {
        let table_kinds: Vec<&str> = KIND_SITES.iter().map(|(k, _)| *k).collect();
        assert_eq!(
            table_kinds, KNOWN_KINDS,
            "KIND_SITES drifted from KNOWN_KINDS"
        );
        for (kind, sites) in KIND_SITES {
            assert_eq!(
                sites.is_empty(),
                replica_scoped(kind),
                "`{kind}`: only replica-scoped kinds may have no static sites"
            );
            for site in sites {
                assert!(
                    KNOWN_SITES.contains(site),
                    "`{kind}` lists unregistered site `{site}`"
                );
                // Every advertised pair must survive the parser — the
                // chaos generator samples straight from this table.
                FaultPlan::parse(&format!("{kind}:{site}:3")).unwrap();
            }
        }
        for kind in KNOWN_KINDS {
            if replica_scoped(kind) {
                FaultPlan::parse(&format!("{kind}:replica7:2")).unwrap();
            }
        }
        assert_eq!(
            sites_for("kill_after"),
            ["pretrain", "prune_unit", "finalize"]
        );
        assert!(sites_for("no_such_kind").is_empty());
    }

    #[test]
    fn plans_format_to_their_canonical_spec_and_round_trip() {
        let spec = "io_error:checkpoint:2,probe_loss:replica1:4,torn_write:journal:1";
        let plan = FaultPlan::parse(spec).unwrap();
        assert_eq!(plan.to_string(), spec);
        // Count-elided entries normalize to the explicit :1 form, which
        // is then a fixed point.
        let plan = FaultPlan::parse("corrupt:checkpoint, kill_after:finalize:3").unwrap();
        let canonical = plan.to_string();
        assert_eq!(canonical, "corrupt:checkpoint:1,kill_after:finalize:3");
        assert_eq!(FaultPlan::parse(&canonical).unwrap(), plan);
        assert_eq!(FaultPlan::default().to_string(), "");
    }

    #[test]
    fn same_site_entries_fire_in_plan_order_one_per_hit() {
        let _guard = test_lock();
        // Two entries on the same (kind, site) with different counts:
        // every entry sees every hit, so hits 1 and 2 each fire exactly
        // one entry, in plan order.
        arm(FaultPlan::parse("slow_infer:infer:1,slow_infer:infer:2").unwrap());
        assert!(trip("slow_infer", "infer")); // hit 1 fires entry 0
        assert!(trip("slow_infer", "infer")); // hit 2 fires entry 1
        assert!(!trip("slow_infer", "infer")); // both spent
        disarm();

        // Identical entries (armed programmatically — parse rejects
        // them): only the first ever fires, because a hit fires at most
        // one entry and both want the same hit. This pinned no-op is
        // why `FaultPlan::parse` rejects duplicates up front.
        arm(FaultPlan {
            faults: vec![
                Fault {
                    kind: "io_error".into(),
                    site: "dup_site".into(),
                    nth: 1,
                },
                Fault {
                    kind: "io_error".into(),
                    site: "dup_site".into(),
                    nth: 1,
                },
            ],
        });
        assert!(trip("io_error", "dup_site")); // entry 0 fires on hit 1
        assert!(!trip("io_error", "dup_site")); // entry 1 never fires
        assert!(!trip("io_error", "dup_site"));
        disarm();
    }

    #[test]
    fn fires_exactly_once_on_the_nth_hit() {
        let _guard = test_lock();
        // Synthetic sites are armed directly — parse-level site
        // validation only applies to user-supplied specs.
        arm(FaultPlan {
            faults: vec![Fault {
                kind: "io_error".into(),
                site: "site_a".into(),
                nth: 3,
            }],
        });
        assert!(armed());
        assert!(!trip("io_error", "site_a")); // hit 1
        assert!(!trip("io_error", "site_b")); // other site, not counted
        assert!(!trip("other", "site_a")); // other kind, not counted
        assert!(!trip("io_error", "site_a")); // hit 2
        assert!(trip("io_error", "site_a")); // hit 3: fires
        assert!(!trip("io_error", "site_a")); // never again
        disarm();
        assert!(!armed());
        assert!(!trip("io_error", "site_a"));
    }
}
