//! Deterministic fault injection: a process-global registry of armed
//! faults that any crate in the workspace can consult at well-defined
//! sites — no real `kill -9`, no flaky filesystem mocks.
//!
//! A fault is `kind:site:n`: the *n*-th time (1-based) a call site asks
//! [`trip`] about `(kind, site)`, the fault fires exactly once and a
//! `fault_injected` telemetry event is emitted. Several faults are armed
//! together as a comma-separated plan, e.g.
//!
//! ```text
//! HS_FAULT=io_error:checkpoint:2,kill_after:prune_unit:1
//! ```
//!
//! (the `HS_FAULT` environment variable is parsed and armed by
//! `hs-runner`; this module only owns the registry so lower layers —
//! atomic file IO, the episode engine — can consult it without a
//! dependency on the runner).
//!
//! The registry is disarmed by default and gated behind one relaxed
//! atomic load, so production call sites pay nothing. Hit counting is
//! deterministic: for a seeded single-threaded pipeline the same plan
//! always fires at the same operation.
//!
//! Fault kinds used across the workspace (the matrix CI exercises):
//!
//! | kind        | site         | effect at the consulting site            |
//! |-------------|--------------|------------------------------------------|
//! | `io_error`  | `checkpoint`, `artifact`, `journal`, `metrics` | the write fails hard with a typed IO error |
//! | `io_flaky`  | same sites   | the first write attempt fails with a transient error; bounded retry recovers |
//! | `corrupt`   | `checkpoint` | the just-written file gets one byte flipped |
//! | `truncate`  | `checkpoint` | the just-written file loses its tail     |
//! | `kill_after`| `pretrain`, `prune_unit`, `finalize` | the pipeline aborts as if killed at the stage boundary |
//! | `nan_reward`| `layer`, `block`, `block-inner` | the episode's inference reward becomes NaN |

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crate::event::{Event, EventKind};
use crate::level::Level;

/// One armed fault: fires on the `nth` (1-based) [`trip`] of
/// `(kind, site)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fault {
    /// Fault kind (`io_error`, `kill_after`, `nan_reward`, …).
    pub kind: String,
    /// Site name the consulting code passes to [`trip`].
    pub site: String,
    /// 1-based hit on which the fault fires (exactly once).
    pub nth: u64,
}

/// A parsed set of faults, armed together with [`arm`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The faults in plan order.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// Parses a comma-separated plan like
    /// `io_error:checkpoint:2,kill_after:prune_unit:1`. The count is
    /// optional and defaults to 1 (`corrupt:checkpoint` ≡
    /// `corrupt:checkpoint:1`).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first malformed
    /// entry.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut faults = Vec::new();
        for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            let parts: Vec<&str> = entry.split(':').collect();
            let (kind, site, nth) = match parts.as_slice() {
                [kind, site] => (*kind, *site, 1),
                [kind, site, n] => {
                    let nth: u64 = n
                        .parse()
                        .map_err(|_| format!("fault `{entry}`: bad count `{n}`"))?;
                    if nth == 0 {
                        return Err(format!("fault `{entry}`: count must be >= 1"));
                    }
                    (*kind, *site, nth)
                }
                _ => return Err(format!("fault `{entry}`: expected kind:site[:n]")),
            };
            if kind.is_empty() || site.is_empty() {
                return Err(format!("fault `{entry}`: empty kind or site"));
            }
            faults.push(Fault {
                kind: kind.to_string(),
                site: site.to_string(),
                nth,
            });
        }
        Ok(FaultPlan { faults })
    }
}

#[derive(Debug)]
struct ArmedFault {
    fault: Fault,
    hits: u64,
    fired: bool,
}

/// Fast gate: true while any plan is armed. Lets [`trip`] cost one
/// relaxed load in production.
static ARMED: AtomicBool = AtomicBool::new(false);

static PLAN: Mutex<Vec<ArmedFault>> = Mutex::new(Vec::new());

/// Arms a fault plan, replacing any previous one and resetting all hit
/// counters.
pub fn arm(plan: FaultPlan) {
    let mut guard = PLAN.lock().expect("fault plan poisoned");
    *guard = plan
        .faults
        .into_iter()
        .map(|fault| ArmedFault {
            fault,
            hits: 0,
            fired: false,
        })
        .collect();
    ARMED.store(!guard.is_empty(), Ordering::Relaxed);
}

/// Disarms all faults. Safe to call when nothing is armed.
pub fn disarm() {
    arm(FaultPlan::default());
}

/// True while a non-empty fault plan is armed (one relaxed load).
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Records a hit at `(kind, site)` and reports whether an armed fault
/// fires on this hit. Fires exactly once (on the configured n-th hit)
/// and emits a `fault_injected` telemetry event when it does.
///
/// With nothing armed this is one relaxed atomic load and never fires —
/// production call sites can consult it unconditionally.
pub fn trip(kind: &str, site: &str) -> bool {
    if !armed() {
        return false;
    }
    let mut guard = PLAN.lock().expect("fault plan poisoned");
    for armed in guard.iter_mut() {
        if armed.fault.kind == kind && armed.fault.site == site {
            armed.hits += 1;
            if !armed.fired && armed.hits == armed.fault.nth {
                armed.fired = true;
                let hit = armed.hits;
                drop(guard);
                crate::emit(
                    Event::new(EventKind::FaultInjected, Level::Warn, "faults")
                        .message(format!("injected {kind} at {site} (hit {hit})"))
                        .field("fault", kind)
                        .field("site", site)
                        .field("hit", hit),
                );
                return true;
            }
            return false;
        }
    }
    false
}

/// Serializes tests (across this crate) that arm the process-global
/// fault registry, so parallel test threads never see each other's plan.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plans_and_rejects_malformed_entries() {
        let plan = FaultPlan::parse("io_error:checkpoint:2, kill_after:prune_unit:1").unwrap();
        assert_eq!(plan.faults.len(), 2);
        assert_eq!(plan.faults[0].kind, "io_error");
        assert_eq!(plan.faults[0].site, "checkpoint");
        assert_eq!(plan.faults[0].nth, 2);
        // Count defaults to 1.
        assert_eq!(
            FaultPlan::parse("corrupt:checkpoint").unwrap().faults[0].nth,
            1
        );
        assert!(FaultPlan::parse("").unwrap().faults.is_empty());
        assert!(FaultPlan::parse("nonsense").is_err());
        assert!(FaultPlan::parse("io_error:checkpoint:zero").is_err());
        assert!(FaultPlan::parse("io_error:checkpoint:0").is_err());
        assert!(FaultPlan::parse("io_error::1").is_err());
    }

    #[test]
    fn fires_exactly_once_on_the_nth_hit() {
        let _guard = test_lock();
        arm(FaultPlan::parse("io_error:site_a:3").unwrap());
        assert!(armed());
        assert!(!trip("io_error", "site_a")); // hit 1
        assert!(!trip("io_error", "site_b")); // other site, not counted
        assert!(!trip("other", "site_a")); // other kind, not counted
        assert!(!trip("io_error", "site_a")); // hit 2
        assert!(trip("io_error", "site_a")); // hit 3: fires
        assert!(!trip("io_error", "site_a")); // never again
        disarm();
        assert!(!armed());
        assert!(!trip("io_error", "site_a"));
    }
}
