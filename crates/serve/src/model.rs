//! Model slots: the dense / pruned checkpoint pair, loaded with retry.
//!
//! Model (re)load is the serving path's riskiest IO: a checkpoint may
//! be mid-replacement, on flaky storage, or corrupt. [`load_with_retry`]
//! wraps [`hs_nn::checkpoint`] reads in a bounded retry loop with
//! exponential backoff and **deterministic jitter** (drawn from a
//! seeded [`hs_tensor::Rng`], so two runs back off identically).
//! Backoff advances the caller's *virtual* clock — nothing sleeps.
//!
//! Fault sites (exercised by `HS_FAULT`):
//!
//! - `load_fail:model_load` — the attempt fails with a transient error;
//! - `corrupt:model_load` — the attempt sees a one-byte-flipped
//!   checkpoint image, which the HSCK checksums reject; the next
//!   attempt re-reads the clean file.

use std::io;
use std::path::Path;

use hs_nn::checkpoint;
use hs_nn::infer::SharedNetwork;
use hs_telemetry::{faults, Event, EventKind, Level};
use hs_tensor::Rng;

use crate::error::ServeError;
use crate::request::Micros;

/// Which of the two checkpoints of a run a value refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotKind {
    /// The dense pre-trained model (full accuracy, full cost).
    Dense,
    /// The pruned inception (bounded accuracy drop, realised speedup).
    Pruned,
}

impl SlotKind {
    /// Stable name used in telemetry fields and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            SlotKind::Dense => "dense",
            SlotKind::Pruned => "pruned",
        }
    }
}

/// Retry policy for model (re)load.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Maximum attempts before giving up (min 1).
    pub max_attempts: u32,
    /// Backoff before retry `n` (1-based) is
    /// `base_backoff << (n - 1)` plus jitter, in virtual micros.
    pub base_backoff: Micros,
    /// Upper bound (exclusive) of the uniform jitter added to each
    /// backoff; 0 disables jitter.
    pub jitter: Micros,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: 10_000,
            jitter: 1_000,
        }
    }
}

/// Loads a checkpoint with bounded retry, exponential backoff, and
/// deterministic jitter. `clock` is the caller's virtual clock; each
/// backoff advances it instead of sleeping. Emits a `recovery` event
/// when a retry ultimately succeeds.
///
/// # Errors
///
/// [`ServeError::Load`] after `policy.max_attempts` failures.
pub fn load_with_retry(
    path: &Path,
    slot: SlotKind,
    policy: RetryPolicy,
    rng: &mut Rng,
    clock: &mut Micros,
) -> Result<SharedNetwork, ServeError> {
    let max_attempts = policy.max_attempts.max(1);
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        match load_once(path) {
            Ok(net) => {
                if attempt > 1 {
                    hs_telemetry::emit(
                        Event::new(EventKind::Recovery, Level::Warn, "serve/model")
                            .message(format!(
                                "loaded {} model after {attempt} attempts",
                                slot.as_str()
                            ))
                            .field("reason", "model_load_failure")
                            .field("action", "retried_load")
                            .field("slot", slot.as_str())
                            .field("attempts", attempt as u64),
                    );
                }
                return Ok(SharedNetwork::new(net));
            }
            Err(err) if attempt < max_attempts => {
                let backoff = policy.base_backoff << (attempt - 1);
                let jitter = if policy.jitter > 0 {
                    rng.next_u64() % policy.jitter
                } else {
                    0
                };
                *clock += backoff + jitter;
                hs_telemetry::log(
                    Level::Warn,
                    "serve/model",
                    format!(
                        "loading {} model failed (attempt {attempt}/{max_attempts}): {err}",
                        slot.as_str()
                    ),
                );
            }
            Err(err) => {
                return Err(ServeError::Load {
                    slot: slot.as_str(),
                    attempts: attempt,
                    last: err,
                })
            }
        }
    }
}

/// One load attempt, consulting the `model_load` fault site.
fn load_once(path: &Path) -> io::Result<hs_nn::Network> {
    if faults::armed() && faults::trip("load_fail", "model_load") {
        return Err(io::Error::new(
            io::ErrorKind::Interrupted,
            "injected load_fail at site `model_load`",
        ));
    }
    let mut bytes = std::fs::read(path)?;
    if faults::armed() && faults::trip("corrupt", "model_load") {
        // Flip one byte of the in-memory image; the checkpoint
        // checksums reject it and the next attempt re-reads cleanly.
        let mid = bytes.len() / 2;
        if let Some(b) = bytes.get_mut(mid) {
            *b ^= 0xFF;
        }
    }
    checkpoint::from_bytes(&bytes)
}

/// The dense/pruned pair with one active slot.
#[derive(Debug)]
pub struct ModelSlots {
    /// The dense model.
    pub dense: SharedNetwork,
    /// The pruned inception.
    pub pruned: SharedNetwork,
    active: SlotKind,
}

impl ModelSlots {
    /// A slot pair starting on the dense model.
    pub fn new(dense: SharedNetwork, pruned: SharedNetwork) -> ModelSlots {
        ModelSlots {
            dense,
            pruned,
            active: SlotKind::Dense,
        }
    }

    /// Which slot currently serves.
    pub fn active(&self) -> SlotKind {
        self.active
    }

    /// The network handle of the active slot.
    pub fn active_model(&self) -> &SharedNetwork {
        match self.active {
            SlotKind::Dense => &self.dense,
            SlotKind::Pruned => &self.pruned,
        }
    }

    /// Hot-swaps the active slot (in-memory; both models stay loaded).
    pub fn swap_to(&mut self, slot: SlotKind) {
        self.active = slot;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs_nn::models;
    use hs_telemetry::faults::{Fault, FaultPlan};
    use hs_tensor::{Rng, Shape, Tensor};

    use crate::fault_test_lock as fault_lock;

    fn plan(entries: &[(&str, u64)]) -> FaultPlan {
        FaultPlan {
            faults: entries
                .iter()
                .map(|(kind, nth)| Fault {
                    kind: (*kind).to_string(),
                    site: "model_load".to_string(),
                    nth: *nth,
                })
                .collect(),
        }
    }

    fn checkpoint_on_disk(tag: &str) -> (std::path::PathBuf, hs_nn::Network) {
        let dir = std::env::temp_dir().join(format!("hs-serve-model-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut rng = Rng::seed_from(5);
        let net = models::lenet(3, 10, 16, 1.0, &mut rng).unwrap();
        let path = dir.join("m.hsck");
        checkpoint::save(&net, &path).unwrap();
        (path, net)
    }

    #[test]
    fn load_retries_transient_failures_with_deterministic_backoff() {
        let _guard = fault_lock();
        let (path, net) = checkpoint_on_disk("flaky");
        faults::arm(plan(&[("load_fail", 1), ("corrupt", 2)]));
        // Attempt 1: injected load_fail. Attempt 2: corrupt image,
        // rejected by the checksums. Attempt 3: clean.
        let mut clock_a = 0;
        let mut rng_a = Rng::seed_from(99);
        let shared = load_with_retry(
            &path,
            SlotKind::Dense,
            RetryPolicy::default(),
            &mut rng_a,
            &mut clock_a,
        )
        .unwrap();
        faults::disarm();
        assert!(clock_a > 0, "backoff must advance the virtual clock");

        // Same seed, same faults => identical backoff schedule.
        faults::arm(plan(&[("load_fail", 1), ("corrupt", 2)]));
        let mut clock_b = 0;
        let mut rng_b = Rng::seed_from(99);
        load_with_retry(
            &path,
            SlotKind::Dense,
            RetryPolicy::default(),
            &mut rng_b,
            &mut clock_b,
        )
        .unwrap();
        faults::disarm();
        assert_eq!(clock_a, clock_b, "jitter must be deterministic");

        // The loaded model predicts like the original.
        let x = Tensor::randn(Shape::d4(2, 3, 16, 16), &mut Rng::seed_from(1));
        let mut direct = net;
        assert_eq!(
            shared.classify(&x).unwrap(),
            hs_nn::infer::predict(&mut direct, &x).unwrap()
        );
    }

    #[test]
    fn load_gives_up_after_max_attempts() {
        let _guard = fault_lock();
        let (path, _net) = checkpoint_on_disk("hard");
        faults::arm(plan(&[
            ("load_fail", 1),
            ("load_fail", 2),
            ("load_fail", 3),
        ]));
        let policy = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        };
        let err = load_with_retry(
            &path,
            SlotKind::Pruned,
            policy,
            &mut Rng::seed_from(1),
            &mut 0,
        )
        .unwrap_err();
        faults::disarm();
        match err {
            ServeError::Load { slot, attempts, .. } => {
                assert_eq!(slot, "pruned");
                assert_eq!(attempts, 3);
            }
            other => panic!("expected Load error, got {other}"),
        }
    }

    #[test]
    fn slots_swap_between_dense_and_pruned() {
        let (_path, net) = checkpoint_on_disk("swap");
        let mut slots = ModelSlots::new(SharedNetwork::new(net.clone()), SharedNetwork::new(net));
        assert_eq!(slots.active(), SlotKind::Dense);
        slots.swap_to(SlotKind::Pruned);
        assert_eq!(slots.active(), SlotKind::Pruned);
        slots.swap_to(SlotKind::Dense);
        assert_eq!(slots.active(), SlotKind::Dense);
    }
}
