//! The circuit breaker around the compute pool.
//!
//! Consecutive batch failures (timeouts, inference errors) trip the
//! breaker **open**: no batches run until a cooldown elapses, giving
//! whatever is slow a chance to recover instead of queueing more doomed
//! work behind it. After the cooldown the breaker goes **half-open**
//! and admits probe batches; the first success closes it, the first
//! failure re-opens it for another cooldown.
//!
//! Every transition emits a `serve_breaker` telemetry event and updates
//! the `hs_serve_breaker_state` gauge (0 = closed, 1 = open,
//! 2 = half-open). Time is virtual microseconds, like everything in
//! this crate.

use hs_telemetry::{metrics, trace, Event, EventKind, Level, TraceCtx};

use crate::request::Micros;

/// Breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: batches flow.
    Closed,
    /// Tripped: nothing runs until the cooldown elapses.
    Open,
    /// Cooldown elapsed: probe batches are admitted.
    HalfOpen,
}

impl BreakerState {
    /// Stable name used in telemetry fields.
    pub fn as_str(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }

    fn gauge_value(self) -> f64 {
        match self {
            BreakerState::Closed => 0.0,
            BreakerState::Open => 1.0,
            BreakerState::HalfOpen => 2.0,
        }
    }
}

/// A consecutive-failure circuit breaker in virtual time.
#[derive(Debug)]
pub struct CircuitBreaker {
    state: BreakerState,
    threshold: usize,
    cooldown: Micros,
    consecutive_failures: usize,
    open_until: Micros,
    trips: u64,
    /// Root span every transition event hangs off; transition N is the
    /// root's child(N).
    trace: TraceCtx,
    transitions: u64,
}

impl CircuitBreaker {
    /// A closed breaker tripping after `threshold` consecutive failures
    /// (min 1) and staying open for `cooldown` virtual microseconds.
    pub fn new(threshold: usize, cooldown: Micros) -> CircuitBreaker {
        metrics::gauge("hs_serve_breaker_state").set(0.0);
        CircuitBreaker {
            state: BreakerState::Closed,
            threshold: threshold.max(1),
            cooldown,
            consecutive_failures: 0,
            open_until: 0,
            trips: 0,
            trace: trace::unit_ctx(0, "serve_breaker", 0),
            transitions: 0,
        }
    }

    /// Re-derives the breaker's transition trace from the owner's seed
    /// (the default is seed 0, so events are traced either way).
    pub fn set_trace(&mut self, ctx: TraceCtx) {
        self.trace = ctx;
    }

    /// Current state (transitions happen in `allow`/`on_*`).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// How often the breaker has tripped open.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// While open: when probes become admissible. The engine folds this
    /// into its next-event time so virtual time can jump straight to it.
    pub fn gate(&self) -> Option<Micros> {
        match self.state {
            BreakerState::Open => Some(self.open_until),
            _ => None,
        }
    }

    /// May a batch execute at `now`? Transitions open → half-open when
    /// the cooldown has elapsed.
    pub fn allow(&mut self, now: Micros) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open if now >= self.open_until => {
                self.transition(BreakerState::HalfOpen, now);
                true
            }
            BreakerState::Open => false,
        }
    }

    /// Records a successful batch. A half-open probe success closes the
    /// breaker; returns true when that recovery transition happened.
    pub fn on_success(&mut self, now: Micros) -> bool {
        self.consecutive_failures = 0;
        if self.state == BreakerState::HalfOpen {
            self.transition(BreakerState::Closed, now);
            return true;
        }
        false
    }

    /// Records a failed batch (timeout or inference error). Returns
    /// true when this failure tripped the breaker open.
    pub fn on_failure(&mut self, now: Micros) -> bool {
        self.consecutive_failures += 1;
        let should_trip = self.state == BreakerState::HalfOpen
            || (self.state == BreakerState::Closed && self.consecutive_failures >= self.threshold);
        if should_trip {
            self.open_until = now + self.cooldown;
            self.trips += 1;
            metrics::counter("hs_serve_breaker_trips_total").inc();
            self.transition(BreakerState::Open, now);
        }
        should_trip
    }

    fn transition(&mut self, to: BreakerState, now: Micros) {
        let from = self.state;
        self.state = to;
        metrics::gauge("hs_serve_breaker_state").set(to.gauge_value());
        let ctx = self.trace.child(self.transitions);
        self.transitions += 1;
        hs_telemetry::emit(
            Event::new(EventKind::ServeBreaker, Level::Warn, "serve/breaker")
                .message(format!("breaker {} -> {}", from.as_str(), to.as_str()))
                .field("from", from.as_str())
                .field("to", to.as_str())
                .field("at", now)
                .field("failures", self.consecutive_failures as u64)
                .traced(&ctx),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_on_consecutive_failures_and_recovers_via_probe() {
        let mut b = CircuitBreaker::new(2, 1_000);
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow(0));
        assert!(!b.on_failure(10)); // 1/2
        assert!(!b.on_success(20)); // success resets the streak
        assert!(!b.on_failure(30)); // 1/2 again
        assert!(b.on_failure(40)); // 2/2: trips
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.gate(), Some(1_040));
        assert!(!b.allow(1_039)); // still cooling down
        assert!(b.allow(1_040)); // half-open probe
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.on_success(1_050)); // probe success closes
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn probe_exactly_at_the_transition_tick_is_admitted() {
        let mut b = CircuitBreaker::new(1, 1_000);
        assert!(b.on_failure(40));
        assert_eq!(b.gate(), Some(1_040));
        // One tick early the breaker is still open and still gated …
        assert!(!b.allow(1_039));
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(
            b.gate(),
            Some(1_040),
            "a denied probe must not move the gate"
        );
        // … and the probe arriving exactly at `open_until` is the first
        // one admitted: the transition happens on the boundary tick, not
        // one past it.
        assert!(b.allow(1_040));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.gate(), None, "half-open no longer gates the engine");
        // The admission decision is idempotent at the same tick.
        assert!(b.allow(1_040));
        assert_eq!(b.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn trip_during_half_open_restarts_the_full_cooldown() {
        let mut b = CircuitBreaker::new(2, 1_000);
        b.on_failure(0);
        assert!(b.on_failure(10)); // trips; open until 1_010
        assert!(b.allow(1_010)); // half-open probe admitted
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // A single failure during half-open re-trips regardless of the
        // threshold (2) and restarts the cooldown from the failure time,
        // not from the original trip.
        assert!(b.on_failure(1_500));
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.gate(), Some(2_500));
        assert_eq!(b.trips(), 2);
        assert!(!b.allow(2_499));
        assert!(b.allow(2_500));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // The interrupted recovery leaves no residue: the next probe
        // success still closes in one step.
        assert!(b.on_success(2_510));
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn half_open_failure_reopens_immediately() {
        let mut b = CircuitBreaker::new(3, 500);
        for t in [0, 1, 2] {
            b.on_failure(t);
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.allow(502));
        assert!(b.on_failure(510), "one half-open failure must re-trip");
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.gate(), Some(1_010));
        assert_eq!(b.trips(), 2);
    }
}
