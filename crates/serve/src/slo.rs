//! Per-class SLO burn accounting.
//!
//! Each request class (see [`crate::request::Request::class`]) gets a
//! deadline-hit budget: over every window of `window` terminal
//! outcomes, at least `target` of them must complete in deadline.
//! Completions count as hits (the batcher only completes in-deadline
//! work by construction); sheds of any reason count as misses. When a
//! window closes the tracker sets the class's burn-rate gauge
//! (`hs_serve_slo_burn_c<class>` — the fraction of the error budget
//! consumed, 1.0 = exactly exhausted) and, if the hit ratio fell below
//! target, emits one `slo_burn` event and starts the next window.
//!
//! Everything runs in virtual time with integer arithmetic feeding the
//! ratios, so two identical seeded runs burn identically.

use std::collections::BTreeMap;

use hs_telemetry::{metrics, Event, EventKind, Level, TraceCtx};

use crate::request::Micros;

/// Per-class hit/miss tally for the current window.
#[derive(Debug, Default, Clone, Copy)]
struct ClassWindow {
    hits: u64,
    misses: u64,
}

/// Sliding-window SLO accountant for all request classes.
#[derive(Debug)]
pub struct SloTracker {
    /// Required deadline-hit ratio per window (e.g. 0.9).
    target: f64,
    /// Window length in terminal outcomes; 0 disables accounting.
    window: usize,
    /// Trace context burn events are tagged with (children of the
    /// engine's SLO root span).
    ctx: TraceCtx,
    seq: u64,
    classes: BTreeMap<usize, ClassWindow>,
    burns: u64,
}

impl SloTracker {
    /// A tracker enforcing `target` over windows of `window` outcomes,
    /// deriving event trace ids from `trace_seed`.
    pub fn new(target: f64, window: usize, trace_seed: u64) -> SloTracker {
        SloTracker {
            target: target.clamp(0.0, 1.0),
            window,
            ctx: hs_telemetry::trace::unit_ctx(trace_seed, "serve_slo", 0),
            seq: 0,
            classes: BTreeMap::new(),
            burns: 0,
        }
    }

    /// Total burn events emitted so far.
    pub fn burns(&self) -> u64 {
        self.burns
    }

    /// Records one terminal outcome for `class` at virtual time `at`.
    /// Returns true when this outcome closed a window with its budget
    /// exhausted (a burn).
    pub fn record(&mut self, class: usize, hit: bool, at: Micros) -> bool {
        if self.window == 0 {
            return false;
        }
        let w = self.classes.entry(class).or_default();
        if hit {
            w.hits += 1;
        } else {
            w.misses += 1;
        }
        if w.hits + w.misses < self.window as u64 {
            return false;
        }
        let (hits, misses) = (w.hits, w.misses);
        *w = ClassWindow::default();
        let hit_ratio = hits as f64 / (hits + misses) as f64;
        let budget = 1.0 - self.target;
        let burn_rate = if budget > 0.0 {
            (1.0 - hit_ratio) / budget
        } else if hit_ratio < 1.0 {
            f64::INFINITY
        } else {
            0.0
        };
        metrics::gauge(&format!("hs_serve_slo_burn_c{class}")).set(burn_rate);
        if hit_ratio >= self.target {
            return false;
        }
        self.burns += 1;
        metrics::counter("hs_serve_slo_burns_total").inc();
        let event_ctx = self.ctx.child(self.seq);
        self.seq += 1;
        hs_telemetry::emit(
            Event::new(EventKind::SloBurn, Level::Warn, "serve/slo")
                .message(format!(
                    "class {class} burned its SLO budget: hit ratio {hit_ratio:.3} < target {:.3}",
                    self.target
                ))
                .field("class", class)
                .field("target", self.target)
                .field("hit_ratio", hit_ratio)
                .field("window", self.window)
                .field("burn_rate", burn_rate)
                .field("at", at)
                .traced(&event_ctx),
        );
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burns_only_when_a_window_misses_its_target() {
        let mut slo = SloTracker::new(0.8, 5, 7);
        // Window 1: 4/5 hits — exactly on target, no burn.
        for i in 0..4 {
            assert!(!slo.record(0, true, i));
        }
        assert!(!slo.record(0, false, 4));
        assert_eq!(slo.burns(), 0);
        // Window 2: 2/5 hits — burns.
        for i in 0..2 {
            assert!(!slo.record(0, true, 10 + i));
        }
        for i in 0..2 {
            assert!(!slo.record(0, false, 20 + i));
        }
        assert!(slo.record(0, false, 30));
        assert_eq!(slo.burns(), 1);
        assert!(metrics::gauge("hs_serve_slo_burn_c0").get() > 1.0);
    }

    #[test]
    fn classes_are_accounted_independently() {
        let mut slo = SloTracker::new(0.9, 3, 7);
        // Class 1 misses everything; class 0 stays healthy.
        for i in 0..3 {
            slo.record(0, true, i);
        }
        for i in 0..2 {
            assert!(!slo.record(1, false, i));
        }
        assert!(slo.record(1, false, 2));
        assert_eq!(slo.burns(), 1);
    }

    #[test]
    fn window_boundary_outcome_is_counted_in_exactly_one_window() {
        // Window = 3, target 0.9. The third outcome closes the window;
        // it must be tallied inside the window it closes and must NOT
        // leak into the next one.
        let mut slo = SloTracker::new(0.9, 3, 7);
        assert!(!slo.record(0, false, 0));
        assert!(!slo.record(0, false, 1));
        // The boundary outcome: a miss landing exactly on the window
        // edge. Counted in window 1 → 0/3 hits → burn.
        assert!(slo.record(0, false, 2));
        assert_eq!(slo.burns(), 1);
        // Window 2 starts from a clean tally: if the boundary miss had
        // leaked, two hits and the leaked miss would close it at 2/3
        // and burn. Instead the third *hit* closes it at 3/3 — no burn.
        assert!(!slo.record(0, true, 3));
        assert!(!slo.record(0, true, 4));
        assert!(!slo.record(0, true, 5));
        assert_eq!(slo.burns(), 1, "boundary outcome must not double-count");
        // Symmetric check with a hit on the edge: 2 misses + edge hit =
        // 1/3 < 0.9 burns once, and the hit doesn't seed window 4.
        assert!(!slo.record(0, false, 6));
        assert!(!slo.record(0, false, 7));
        assert!(slo.record(0, true, 8));
        assert_eq!(slo.burns(), 2);
        assert!(!slo.record(0, false, 9));
        assert!(!slo.record(0, false, 10));
        assert!(slo.record(0, false, 11), "fresh window needs 3 outcomes");
        assert_eq!(slo.burns(), 3);
    }

    #[test]
    fn zero_window_disables_accounting() {
        let mut slo = SloTracker::new(0.9, 0, 7);
        for i in 0..100 {
            assert!(!slo.record(0, false, i));
        }
        assert_eq!(slo.burns(), 0);
    }
}
