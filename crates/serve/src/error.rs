//! The serve crate's error type.

use std::fmt;
use std::io;

use hs_nn::NnError;

/// Anything the serving stack can fail with.
#[derive(Debug)]
pub enum ServeError {
    /// A model slot could not be loaded, even after retries.
    Load {
        /// Which slot failed (`dense` / `pruned`).
        slot: &'static str,
        /// How many attempts were made.
        attempts: u32,
        /// The final attempt's error.
        last: io::Error,
    },
    /// An inference pass failed (shape mismatch, bad checkpoint).
    Nn(NnError),
    /// Reading/writing a profile, manifest, or report failed.
    Io(io::Error),
    /// A malformed config, profile, or CLI flag.
    BadConfig(String),
    /// A structurally valid load plan with an undriveable schedule
    /// (non-monotonic timestamps, undeclared tenant).
    Plan(crate::loadgen::PlanError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Load {
                slot,
                attempts,
                last,
            } => {
                write!(
                    f,
                    "loading {slot} model failed after {attempts} attempts: {last}"
                )
            }
            ServeError::Nn(e) => write!(f, "inference error: {e}"),
            ServeError::Io(e) => write!(f, "io error: {e}"),
            ServeError::BadConfig(msg) => write!(f, "bad config: {msg}"),
            ServeError::Plan(e) => write!(f, "bad plan: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<NnError> for ServeError {
    fn from(e: NnError) -> ServeError {
        ServeError::Nn(e)
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> ServeError {
        ServeError::Io(e)
    }
}
