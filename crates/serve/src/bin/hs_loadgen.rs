//! `hs_loadgen` — write a deterministic load plan for `hs_serve`.
//!
//! ```text
//! hs_loadgen --mode open --requests 200 --gap-us 800 --deadline-us 30000 \
//!            --seed 7 --out load.json
//! ```
//!
//! `--mode open` pre-computes the full arrival schedule (arrivals keep
//! coming regardless of server health — the honest overload workload);
//! `--mode closed` records a client-simulation spec (`--concurrency`
//! clients, `--think-us` pause after each outcome). Either way the
//! output is a plain JSON file: the same flags always produce the same
//! bytes, so a serving run driven by it is replayable.

use std::path::PathBuf;
use std::process::ExitCode;

use hs_serve::LoadSpec;

fn usage() {
    eprintln!(
        "usage: hs_loadgen [--mode open|closed] [--requests N] [--gap-us N]\n\
         \x20                [--deadline-us N] [--seed N] [--concurrency N] [--think-us N]\n\
         \x20                [--classes N] [--tenants N] --out PATH.json\n\
         \n\
         \x20 --mode open    fixed arrival schedule (default)\n\
         \x20 --mode closed  think-time client simulation spec\n\
         \x20 --classes N    spread requests over N SLO classes (id % N; default 1)\n\
         \x20 --tenants N    spread requests over N fleet tenants (id % N; default 1)"
    );
}

fn run(args: &[String]) -> Result<(), String> {
    let mut mode = "open".to_string();
    let mut out: Option<PathBuf> = None;
    let mut spec = LoadSpec::default();
    let mut i = 0;
    while i < args.len() {
        let flag = &args[i];
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?;
        let bad = |what: &str| format!("{flag}: expected {what}, got `{value}`");
        match flag.as_str() {
            "--mode" => {
                if value != "open" && value != "closed" {
                    return Err(bad("`open` or `closed`"));
                }
                mode = value.clone();
            }
            "--out" => out = Some(PathBuf::from(value)),
            "--requests" => spec.requests = value.parse().map_err(|_| bad("integer"))?,
            "--gap-us" => spec.gap = value.parse().map_err(|_| bad("integer"))?,
            "--deadline-us" => spec.deadline = value.parse().map_err(|_| bad("integer"))?,
            "--seed" => spec.seed = value.parse().map_err(|_| bad("integer"))?,
            "--concurrency" => spec.concurrency = value.parse().map_err(|_| bad("integer"))?,
            "--think-us" => spec.think = value.parse().map_err(|_| bad("integer"))?,
            "--classes" => spec.classes = value.parse().map_err(|_| bad("integer"))?,
            "--tenants" => spec.tenants = value.parse().map_err(|_| bad("integer"))?,
            other => return Err(format!("unknown flag `{other}`")),
        }
        i += 2;
    }
    let out = out.ok_or("--out is required")?;
    match mode.as_str() {
        "open" => {
            let profile = spec.open_profile();
            profile.save(&out).map_err(|e| e.to_string())?;
            println!(
                "wrote open-loop plan: {} arrivals over {} us -> {}",
                profile.entries.len(),
                profile.entries.last().map(|e| e.at).unwrap_or(0),
                out.display()
            );
        }
        _ => {
            spec.save(&out).map_err(|e| e.to_string())?;
            println!(
                "wrote closed-loop plan: {} requests from {} clients (think {} us) -> {}",
                spec.requests,
                spec.concurrency,
                spec.think,
                out.display()
            );
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
        return ExitCode::SUCCESS;
    }
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("hs_loadgen: {e}");
            usage();
            ExitCode::FAILURE
        }
    }
}
