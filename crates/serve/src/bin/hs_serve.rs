//! `hs_serve` — serve a finished HeadStart run under a load plan.
//!
//! ```text
//! hs_serve --manifest runs/demo --plan load.json \
//!          --telemetry serve.jsonl --metrics serve.prom --report serve.json
//! ```
//!
//! The manifest (written by `hs_run --run-dir`) pairs the dense and
//! pruned checkpoints of one run; `hs_serve` loads both (with
//! retry/backoff — survive `HS_FAULT=load_fail:model_load` /
//! `corrupt:model_load`), builds the virtual-time serving engine over
//! the run's deterministic test split, and replays the plan written by
//! `hs_loadgen`. Overload behaviour (shedding, breaker, degradation to
//! the pruned model) is fully reproducible: same manifest + same plan
//! + same `HS_FAULT` ⇒ the same outcome sequence.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use hs_runner::report::{write_json, Json};
use hs_runner::ServeManifest;
use hs_serve::{
    load_with_retry, LoadSpec, ModelSlots, Outcome, Plan, RetryPolicy, ServeConfig, ServeEngine,
    ServeError, SlotKind,
};
use hs_telemetry::{Level, TelemetryConfig};
use hs_tensor::Rng;

struct Cli {
    manifest: PathBuf,
    plan: Option<PathBuf>,
    report: Option<PathBuf>,
    telemetry: Option<PathBuf>,
    metrics: Option<PathBuf>,
    flight: Option<PathBuf>,
    flight_events: usize,
    log_level: Option<Level>,
    seed: u64,
    cfg: ServeConfig,
}

fn usage() {
    eprintln!(
        "usage: hs_serve --manifest PATH [--plan PATH.json]\n\
         \x20              [--report PATH.json] [--telemetry PATH.jsonl] [--metrics PATH.prom]\n\
         \x20              [--flight PATH.json] [--flight-events N]\n\
         \x20              [--log-level error|warn|info|debug|trace] [--seed N] [--trace-seed N]\n\
         \x20              [--slo-target F] [--slo-window N]\n\
         \x20              [--queue-capacity N] [--batch-max N] [--linger-us N]\n\
         \x20              [--base-cost-us N] [--per-item-us N] [--batch-timeout-us N]\n\
         \x20              [--breaker-threshold N] [--breaker-cooldown-us N] [--slow-factor N]\n\
         \x20              [--degrade-high N] [--overload-strikes N]\n\
         \x20              [--recover-low N] [--recovery-batches N]\n\
         \n\
         \x20 --manifest PATH  serve manifest (or run directory) from `hs_run --run-dir`\n\
         \x20 --plan PATH      load plan from `hs_loadgen` (default: a built-in open loop)\n\
         \x20 --flight PATH    arm the flight recorder; breaker trips and sustained\n\
         \x20                  overload snapshot the last --flight-events events there\n\
         \x20 --trace-seed N   seed for request/batch/breaker trace-id derivation\n\
         \x20 --slo-target F   required deadline-hit ratio per SLO window (default 0.9)\n\
         \x20 --slo-window N   SLO window in terminal outcomes per class (0 disables)\n\
         \x20 HS_FAULT=kind:site[:n],...  arm deterministic fault injection\n\
         \x20   serve sites: slow_infer:infer, load_fail:model_load, corrupt:model_load"
    );
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        manifest: PathBuf::new(),
        plan: None,
        report: None,
        telemetry: None,
        metrics: None,
        flight: None,
        flight_events: 64,
        log_level: None,
        seed: 0x4853,
        cfg: ServeConfig::default(),
    };
    let mut i = 0;
    while i < args.len() {
        let flag = &args[i];
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?;
        let bad = |what: &str| format!("{flag}: expected {what}, got `{value}`");
        match flag.as_str() {
            "--manifest" => cli.manifest = PathBuf::from(value),
            "--plan" => cli.plan = Some(PathBuf::from(value)),
            "--report" => cli.report = Some(PathBuf::from(value)),
            "--telemetry" => cli.telemetry = Some(PathBuf::from(value)),
            "--metrics" => cli.metrics = Some(PathBuf::from(value)),
            "--flight" => cli.flight = Some(PathBuf::from(value)),
            "--flight-events" => cli.flight_events = value.parse().map_err(|_| bad("integer"))?,
            "--trace-seed" => cli.cfg.trace_seed = value.parse().map_err(|_| bad("integer"))?,
            "--slo-target" => cli.cfg.slo_target = value.parse().map_err(|_| bad("a float"))?,
            "--slo-window" => cli.cfg.slo_window = value.parse().map_err(|_| bad("integer"))?,
            "--log-level" => {
                cli.log_level = Some(Level::parse(value).ok_or_else(|| bad("a log level"))?)
            }
            "--seed" => cli.seed = value.parse().map_err(|_| bad("integer"))?,
            "--queue-capacity" => {
                cli.cfg.queue_capacity = value.parse().map_err(|_| bad("integer"))?
            }
            "--batch-max" => cli.cfg.batch_max = value.parse().map_err(|_| bad("integer"))?,
            "--linger-us" => cli.cfg.linger = value.parse().map_err(|_| bad("integer"))?,
            "--base-cost-us" => cli.cfg.base_cost = value.parse().map_err(|_| bad("integer"))?,
            "--per-item-us" => cli.cfg.per_item_cost = value.parse().map_err(|_| bad("integer"))?,
            "--batch-timeout-us" => {
                cli.cfg.batch_timeout = value.parse().map_err(|_| bad("integer"))?
            }
            "--breaker-threshold" => {
                cli.cfg.breaker_threshold = value.parse().map_err(|_| bad("integer"))?
            }
            "--breaker-cooldown-us" => {
                cli.cfg.breaker_cooldown = value.parse().map_err(|_| bad("integer"))?
            }
            "--slow-factor" => cli.cfg.slow_factor = value.parse().map_err(|_| bad("integer"))?,
            "--degrade-high" => cli.cfg.degrade_high = value.parse().map_err(|_| bad("integer"))?,
            "--overload-strikes" => {
                cli.cfg.overload_strikes = value.parse().map_err(|_| bad("integer"))?
            }
            "--recover-low" => cli.cfg.recover_low = value.parse().map_err(|_| bad("integer"))?,
            "--recovery-batches" => {
                cli.cfg.recovery_batches = value.parse().map_err(|_| bad("integer"))?
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
        i += 2;
    }
    if cli.manifest.as_os_str().is_empty() {
        return Err("--manifest is required".to_string());
    }
    Ok(cli)
}

fn serve(cli: &Cli) -> Result<(), ServeError> {
    let manifest_dir = if cli.manifest.is_dir() {
        cli.manifest.clone()
    } else {
        cli.manifest
            .parent()
            .unwrap_or(Path::new("."))
            .to_path_buf()
    };
    let manifest =
        ServeManifest::load(&cli.manifest).map_err(|e| ServeError::BadConfig(e.to_string()))?;
    let mut cfg = cli.cfg;
    cfg.pruned_cost_scale = manifest.pruned_cost_scale();
    hs_telemetry::log(
        Level::Info,
        "serve",
        format!(
            "serving `{}`: dense {} / pruned {} (cost scale {:.3})",
            manifest.label,
            hs_runner::pct(manifest.dense_accuracy),
            hs_runner::pct(manifest.pruned_accuracy),
            cfg.pruned_cost_scale,
        ),
    );

    let ds =
        hs_data::cached(&manifest.data.spec()).map_err(|e| ServeError::BadConfig(e.to_string()))?;
    let inputs = ds.test_images.clone();

    let mut rng = Rng::seed_from(cli.seed);
    let mut clock = 0;
    let policy = RetryPolicy::default();
    let dense = load_with_retry(
        &manifest.dense_path(&manifest_dir),
        SlotKind::Dense,
        policy,
        &mut rng,
        &mut clock,
    )?;
    // Prefer the structurally compacted variant for the degraded tier —
    // it runs dense kernels at physically reduced shapes — and fall
    // back to the masked-dense pruned checkpoint when the manifest
    // predates the compact stage or the file is gone.
    let pruned_path = match manifest.pruned_compact_path(&manifest_dir) {
        Some(p) if p.exists() => {
            hs_telemetry::log(
                Level::Info,
                "serve",
                format!("degraded tier: compacted checkpoint {}", p.display()),
            );
            p
        }
        Some(p) => {
            hs_telemetry::log(
                Level::Warn,
                "serve",
                format!(
                    "manifest names compacted checkpoint {} but it is missing; \
                     falling back to masked-dense pruned model",
                    p.display()
                ),
            );
            manifest.pruned_path(&manifest_dir)
        }
        None => manifest.pruned_path(&manifest_dir),
    };
    let pruned = load_with_retry(&pruned_path, SlotKind::Pruned, policy, &mut rng, &mut clock)?;

    let plan = match &cli.plan {
        Some(path) => Plan::load(path)?,
        None => Plan::Open(
            LoadSpec {
                seed: cli.seed,
                ..LoadSpec::default()
            }
            .open_profile(),
        ),
    };
    let mut engine = ServeEngine::new(cfg, ModelSlots::new(dense, pruned), inputs)?;
    let outcomes = plan.drive(&mut engine)?;
    let s = engine.summary();

    println!(
        "{}: {} requests -> {} completed, {} shed ({} queue_full, {} deadline_unmeetable, \
         {} deadline_expired) | {} batches, {} timeouts, {} breaker trips, \
         {} degrades, {} restores",
        manifest.label,
        s.submitted,
        s.completed,
        s.rejected_total(),
        s.rejected_queue_full,
        s.rejected_unmeetable,
        s.rejected_expired,
        s.batches,
        s.batch_timeouts,
        s.breaker_trips,
        s.degrades,
        s.restores,
    );

    if let Some(path) = &cli.report {
        write_json(path, &report_json(&manifest, &s, &outcomes))?;
        hs_telemetry::artifact(&manifest.label, path);
    }
    Ok(())
}

fn report_json(manifest: &ServeManifest, s: &hs_serve::ServeSummary, outcomes: &[Outcome]) -> Json {
    let mean_latency = if s.completed > 0 {
        s.total_latency_micros as f64 / s.completed as f64
    } else {
        0.0
    };
    let pruned_served = outcomes
        .iter()
        .filter(|o| matches!(o, Outcome::Completed(r) if r.model == SlotKind::Pruned))
        .count();
    Json::Obj(vec![
        ("label".into(), Json::str(manifest.label.clone())),
        ("submitted".into(), Json::num(s.submitted as f64)),
        ("completed".into(), Json::num(s.completed as f64)),
        ("completed_pruned".into(), Json::num(pruned_served as f64)),
        (
            "rejected_queue_full".into(),
            Json::num(s.rejected_queue_full as f64),
        ),
        (
            "rejected_deadline_unmeetable".into(),
            Json::num(s.rejected_unmeetable as f64),
        ),
        (
            "rejected_deadline_expired".into(),
            Json::num(s.rejected_expired as f64),
        ),
        ("batches".into(), Json::num(s.batches as f64)),
        ("batch_timeouts".into(), Json::num(s.batch_timeouts as f64)),
        ("breaker_trips".into(), Json::num(s.breaker_trips as f64)),
        ("degrades".into(), Json::num(s.degrades as f64)),
        ("restores".into(), Json::num(s.restores as f64)),
        (
            "mean_latency_micros".into(),
            Json::num((mean_latency * 1e3).round() / 1e3),
        ),
        (
            "max_latency_micros".into(),
            Json::num(s.max_latency_micros as f64),
        ),
        ("slo_burns".into(), Json::num(s.slo_burns as f64)),
    ])
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
        return ExitCode::SUCCESS;
    }
    if let Err(e) = hs_runner::arm_from_env() {
        eprintln!("hs_serve: {e}");
        return ExitCode::FAILURE;
    }
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("hs_serve: {e}");
            usage();
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = hs_telemetry::configure(&TelemetryConfig {
        stderr_level: cli.log_level,
        jsonl: cli.telemetry.clone(),
    }) {
        eprintln!("hs_serve: telemetry: {e}");
        return ExitCode::FAILURE;
    }
    if let Some(path) = &cli.flight {
        hs_telemetry::flight::arm(cli.flight_events, path.clone());
    }
    let result = serve(&cli);
    hs_telemetry::flush_metrics();
    if let Some(path) = &cli.metrics {
        if let Err(e) = hs_telemetry::io::atomic_write_as(
            path,
            "metrics",
            hs_telemetry::metrics::render_prometheus().as_bytes(),
        ) {
            eprintln!("hs_serve: metrics: {e}");
        }
    }
    hs_telemetry::flush();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("hs_serve: {e}");
            ExitCode::FAILURE
        }
    }
}
