//! The bounded admission queue: reject-with-reason, never OOM.
//!
//! Admission is the first line of defence under overload. The queue
//! holds at most `capacity` requests; anything beyond that is shed
//! *immediately* with a typed [`RejectReason::QueueFull`] instead of
//! growing without bound until the allocator kills the process. Depth
//! is tracked in a gauge and a histogram so overload shows up in
//! metrics before it shows up in latency.

use std::collections::VecDeque;

use hs_telemetry::metrics;

use crate::request::{Micros, RejectReason, Request};

/// Histogram bounds for queue depth observations.
const DEPTH_BUCKETS: [f64; 7] = [0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0];

/// A FIFO of admitted requests with a hard capacity.
#[derive(Debug)]
pub struct AdmissionQueue {
    items: VecDeque<Request>,
    capacity: usize,
}

impl AdmissionQueue {
    /// An empty queue holding at most `capacity` requests (min 1).
    pub fn new(capacity: usize) -> AdmissionQueue {
        AdmissionQueue {
            items: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The `i`-th oldest queued request, if any.
    pub fn peek(&self, i: usize) -> Option<&Request> {
        self.items.get(i)
    }

    /// Admits a request, or sheds it with [`RejectReason::QueueFull`]
    /// when at capacity.
    ///
    /// # Errors
    ///
    /// Returns the typed rejection reason; the caller wraps it with the
    /// request id and time.
    pub fn push(&mut self, req: Request) -> Result<(), RejectReason> {
        if self.items.len() >= self.capacity {
            return Err(RejectReason::QueueFull {
                depth: self.items.len(),
                capacity: self.capacity,
            });
        }
        self.items.push_back(req);
        self.observe_depth();
        Ok(())
    }

    /// Returns a request to the *front* of the queue (a timed-out batch
    /// putting its requests back for retry). Bypasses the capacity
    /// check: these requests were already admitted once.
    pub fn push_front(&mut self, req: Request) {
        self.items.push_front(req);
        self.observe_depth();
    }

    /// Pops the oldest request.
    pub fn pop(&mut self) -> Option<Request> {
        let req = self.items.pop_front();
        if req.is_some() {
            metrics::gauge("hs_serve_queue_depth").set(self.items.len() as f64);
        }
        req
    }

    /// When the oldest queued request arrived (the linger clock).
    pub fn oldest_arrival(&self) -> Option<Micros> {
        self.items.front().map(|r| r.arrival)
    }

    fn observe_depth(&self) {
        let depth = self.items.len() as f64;
        metrics::gauge("hs_serve_queue_depth").set(depth);
        metrics::histogram("hs_serve_queue_depth_hist", &DEPTH_BUCKETS).observe(depth);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, arrival: Micros) -> Request {
        Request {
            id,
            sample: 0,
            class: 0,
            tenant: 0,
            arrival,
            deadline: arrival + 1_000,
        }
    }

    #[test]
    fn sheds_typed_when_full() {
        let mut q = AdmissionQueue::new(2);
        q.push(req(0, 10)).unwrap();
        q.push(req(1, 20)).unwrap();
        match q.push(req(2, 30)) {
            Err(RejectReason::QueueFull { depth, capacity }) => {
                assert_eq!((depth, capacity), (2, 2));
            }
            other => panic!("expected QueueFull, got {other:?}"),
        }
        assert_eq!(q.len(), 2);
        assert_eq!(q.oldest_arrival(), Some(10));
    }

    #[test]
    fn fifo_order_with_front_requeue() {
        let mut q = AdmissionQueue::new(4);
        q.push(req(0, 0)).unwrap();
        q.push(req(1, 5)).unwrap();
        let first = q.pop().unwrap();
        assert_eq!(first.id, 0);
        // A timed-out batch puts its requests back at the front.
        q.push_front(first);
        assert_eq!(q.pop().unwrap().id, 0);
        assert_eq!(q.pop().unwrap().id, 1);
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }
}
