//! Deterministic load generation: seeded open- and closed-loop drivers.
//!
//! An **open-loop** profile is a fixed arrival schedule generated from
//! a seed (arrivals keep coming regardless of how the server copes —
//! the honest way to measure overload). A **closed-loop** driver
//! simulates `concurrency` clients that each wait for their previous
//! request's outcome plus a think time before issuing the next one
//! (back-pressure reaches the clients, like a connection-pooled RPC
//! caller).
//!
//! Profiles serialise to JSON so `hs_loadgen` can write a schedule once
//! and `hs_serve` can replay it byte-for-byte; both sides use the
//! workspace's own JSON reader/writer — no external crates.

use std::collections::BTreeMap;
use std::path::Path;

use hs_runner::report::{write_json, Json};
use hs_telemetry::schema;
use hs_tensor::Rng;

use crate::engine::ServeEngine;
use crate::error::ServeError;
use crate::request::{Micros, Outcome, Request};

/// Profile format version (bumped on breaking layout changes).
pub const PROFILE_VERSION: u64 = 1;

/// One scheduled arrival in an open-loop profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileEntry {
    /// Request id (unique within the profile).
    pub id: u64,
    /// Arrival time.
    pub at: Micros,
    /// Absolute deadline.
    pub deadline: Micros,
    /// Sample index into the serving input pool.
    pub sample: usize,
    /// SLO class the request is accounted under.
    pub class: usize,
    /// Tenant the request is billed to (must be < the profile's
    /// declared `tenants` count).
    pub tenant: usize,
}

/// A fixed, replayable arrival schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadProfile {
    /// The seed the schedule was generated from (recorded for
    /// provenance; replay uses the entries, not the seed).
    pub seed: u64,
    /// Size of the tenant id space: every entry's `tenant` must be
    /// below this (min 1).
    pub tenants: usize,
    /// Arrivals in nondecreasing `at` order.
    pub entries: Vec<ProfileEntry>,
}

/// A structurally valid but *semantically* undriveable plan: the
/// schedule would be undefined (time running backwards) or would bill
/// a tenant the plan never declared. Each variant carries the offending
/// entry's index and its 1-based line in the plan file so the fix is
/// one `sed -n` away.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// An entry's arrival time precedes the previous entry's.
    NonMonotonic {
        /// Zero-based index of the offending entry.
        index: usize,
        /// 1-based line of the offending entry in the plan file.
        line: usize,
        /// The previous entry's arrival time.
        prev_at: Micros,
        /// The offending (earlier) arrival time.
        at: Micros,
    },
    /// An entry names a tenant id outside the declared tenant space.
    UnknownTenant {
        /// Zero-based index of the offending entry.
        index: usize,
        /// 1-based line of the offending entry in the plan file.
        line: usize,
        /// The unknown tenant id.
        tenant: usize,
        /// The declared tenant-space size (valid ids are `0..tenants`).
        tenants: usize,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::NonMonotonic {
                index,
                line,
                prev_at,
                at,
            } => write!(
                f,
                "entry {index} (line {line}): non-monotonic timestamp {at} \
                 (previous entry arrives at {prev_at})"
            ),
            PlanError::UnknownTenant {
                index,
                line,
                tenant,
                tenants,
            } => write!(
                f,
                "entry {index} (line {line}): unknown tenant {tenant} \
                 (plan declares {tenants} tenant{})",
                if *tenants == 1 { "" } else { "s" }
            ),
        }
    }
}

impl std::error::Error for PlanError {}

/// Knobs for generating load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadSpec {
    /// Total requests to issue.
    pub requests: u64,
    /// Open loop: mean inter-arrival gap.
    pub gap: Micros,
    /// Relative deadline given to every request.
    pub deadline: Micros,
    /// RNG seed (arrival jitter, sample choice).
    pub seed: u64,
    /// Closed loop: number of concurrent clients.
    pub concurrency: usize,
    /// Closed loop: pause between an outcome and the client's next
    /// request.
    pub think: Micros,
    /// SLO classes requests are spread across (request `id % classes`;
    /// min 1). Deliberately not drawn from the RNG so adding classes
    /// never perturbs an existing seeded schedule.
    pub classes: usize,
    /// Tenants requests are spread across (request `id % tenants`; min
    /// 1). Like `classes`, not RNG-drawn, so adding tenants never
    /// perturbs an existing seeded schedule.
    pub tenants: usize,
}

impl Default for LoadSpec {
    fn default() -> LoadSpec {
        LoadSpec {
            requests: 64,
            gap: 1_000,
            deadline: 50_000,
            seed: 0x4853,
            concurrency: 4,
            think: 2_000,
            classes: 1,
            tenants: 1,
        }
    }
}

impl LoadSpec {
    /// Generates the open-loop arrival schedule: inter-arrival steps
    /// are `gap ± 25%`, jittered by the seeded RNG, so the same spec
    /// always yields the same profile.
    pub fn open_profile(&self) -> LoadProfile {
        let mut rng = Rng::seed_from(self.seed);
        let mut at: Micros = 0;
        let jitter_span = self.gap / 2 + 1;
        let entries = (0..self.requests)
            .map(|id| {
                at += self.gap - self.gap / 4 + rng.next_u64() % jitter_span;
                ProfileEntry {
                    id,
                    at,
                    deadline: at + self.deadline,
                    sample: (rng.next_u64() % 4096) as usize,
                    class: (id % self.classes.max(1) as u64) as usize,
                    tenant: (id % self.tenants.max(1) as u64) as usize,
                }
            })
            .collect();
        LoadProfile {
            seed: self.seed,
            tenants: self.tenants.max(1),
            entries,
        }
    }

    /// Renders a closed-loop spec as a JSON value.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("version".into(), Json::num(PROFILE_VERSION as f64)),
            ("mode".into(), Json::str("closed")),
            ("seed".into(), Json::str(format!("{:#x}", self.seed))),
            ("requests".into(), Json::num(self.requests as f64)),
            ("gap".into(), Json::num(self.gap as f64)),
            ("deadline".into(), Json::num(self.deadline as f64)),
            ("concurrency".into(), Json::num(self.concurrency as f64)),
            ("think".into(), Json::num(self.think as f64)),
            ("classes".into(), Json::num(self.classes as f64)),
            ("tenants".into(), Json::num(self.tenants as f64)),
        ])
    }

    /// Writes the spec to `path` (pretty JSON, trailing newline).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: &Path) -> Result<(), ServeError> {
        write_json(path, &self.to_json())?;
        Ok(())
    }

    /// Parses a closed-loop spec from a JSON value.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem.
    pub fn from_json(value: &schema::Json) -> Result<LoadSpec, String> {
        let obj = value.as_obj().ok_or("spec is not a JSON object")?;
        let version = field_num(obj, "version")? as u64;
        if version != PROFILE_VERSION {
            return Err(format!("unsupported profile version {version}"));
        }
        let seed_str = obj
            .get("seed")
            .and_then(schema::Json::as_str)
            .ok_or("missing string `seed`")?;
        let seed = seed_str
            .strip_prefix("0x")
            .and_then(|d| u64::from_str_radix(d, 16).ok())
            .ok_or_else(|| format!("`{seed_str}` is not a 0x-prefixed hex u64"))?;
        Ok(LoadSpec {
            requests: field_num(obj, "requests")? as u64,
            gap: field_num(obj, "gap")? as Micros,
            deadline: field_num(obj, "deadline")? as Micros,
            seed,
            concurrency: field_num(obj, "concurrency")? as usize,
            think: field_num(obj, "think")? as Micros,
            // Absent in pre-class plans: everything is class 0.
            classes: opt_field_num(obj, "classes").map_or(1, |n| (n as usize).max(1)),
            // Absent in pre-tenant plans: everything is tenant 0.
            tenants: opt_field_num(obj, "tenants").map_or(1, |n| (n as usize).max(1)),
        })
    }
}

/// A saved load plan: either a fixed open-loop schedule or a
/// closed-loop spec replayed by simulating its clients.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// Replay a fixed arrival schedule.
    Open(LoadProfile),
    /// Simulate `concurrency` think-time clients.
    Closed(LoadSpec),
}

impl Plan {
    /// Loads a plan written by `hs_loadgen` (dispatching on its
    /// `mode` field).
    ///
    /// # Errors
    ///
    /// [`ServeError::BadConfig`] when the file is missing, unparsable,
    /// or structurally wrong.
    pub fn load(path: &Path) -> Result<Plan, ServeError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ServeError::BadConfig(format!("{}: {e}", path.display())))?;
        let value = schema::parse(&text)
            .map_err(|e| ServeError::BadConfig(format!("{}: {e}", path.display())))?;
        let mode = value
            .as_obj()
            .and_then(|o| o.get("mode"))
            .and_then(schema::Json::as_str)
            .unwrap_or("open")
            .to_string();
        let plan = match mode.as_str() {
            "open" => {
                let profile = LoadProfile::from_json(&value).map_err(err_at(path))?;
                profile.validate(&text).map_err(ServeError::Plan)?;
                Plan::Open(profile)
            }
            "closed" => Plan::Closed(LoadSpec::from_json(&value).map_err(err_at(path))?),
            other => {
                return Err(ServeError::BadConfig(format!(
                    "{}: unknown mode `{other}` (expected `open` or `closed`)",
                    path.display()
                )))
            }
        };
        Ok(plan)
    }

    /// Drives `engine` with this plan.
    ///
    /// # Errors
    ///
    /// Propagates engine errors (see [`ServeEngine::tick`]).
    pub fn drive(&self, engine: &mut ServeEngine) -> Result<Vec<Outcome>, ServeError> {
        match self {
            Plan::Open(profile) => drive_open(engine, profile),
            Plan::Closed(spec) => drive_closed(engine, spec),
        }
    }
}

fn err_at(path: &Path) -> impl Fn(String) -> ServeError + '_ {
    move |e| ServeError::BadConfig(format!("{}: {e}", path.display()))
}

impl LoadProfile {
    /// Renders the profile as a JSON value.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("version".into(), Json::num(PROFILE_VERSION as f64)),
            ("mode".into(), Json::str("open")),
            ("seed".into(), Json::str(format!("{:#x}", self.seed))),
            ("tenants".into(), Json::num(self.tenants as f64)),
            (
                "entries".into(),
                Json::Arr(
                    self.entries
                        .iter()
                        .map(|e| {
                            Json::Obj(vec![
                                ("id".into(), Json::num(e.id as f64)),
                                ("at".into(), Json::num(e.at as f64)),
                                ("deadline".into(), Json::num(e.deadline as f64)),
                                ("sample".into(), Json::num(e.sample as f64)),
                                ("class".into(), Json::num(e.class as f64)),
                                ("tenant".into(), Json::num(e.tenant as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Writes the profile to `path` (pretty JSON, trailing newline).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: &Path) -> Result<(), ServeError> {
        write_json(path, &self.to_json())?;
        Ok(())
    }

    /// Loads a profile written by [`save`](LoadProfile::save).
    ///
    /// # Errors
    ///
    /// [`ServeError::BadConfig`] when the file is missing, unparsable,
    /// or structurally wrong.
    pub fn load(path: &Path) -> Result<LoadProfile, ServeError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ServeError::BadConfig(format!("{}: {e}", path.display())))?;
        let value = schema::parse(&text)
            .map_err(|e| ServeError::BadConfig(format!("{}: {e}", path.display())))?;
        let profile = LoadProfile::from_json(&value)
            .map_err(|e| ServeError::BadConfig(format!("{}: {e}", path.display())))?;
        profile.validate(&text).map_err(ServeError::Plan)?;
        Ok(profile)
    }

    /// Checks the schedule invariants replay depends on: arrivals must
    /// be nondecreasing (the drivers advance virtual time monotonically
    /// — an out-of-order entry would silently warp it backwards) and
    /// every entry's tenant must be inside the declared tenant space.
    /// `raw` is the plan file's text, used only to report the offending
    /// entry's line number.
    ///
    /// # Errors
    ///
    /// The typed [`PlanError`] for the first offending entry.
    pub fn validate(&self, raw: &str) -> Result<(), PlanError> {
        let mut prev_at: Option<Micros> = None;
        for (index, e) in self.entries.iter().enumerate() {
            if let Some(prev) = prev_at {
                if e.at < prev {
                    return Err(PlanError::NonMonotonic {
                        index,
                        line: entry_line(raw, index),
                        prev_at: prev,
                        at: e.at,
                    });
                }
            }
            prev_at = Some(e.at);
            if e.tenant >= self.tenants.max(1) {
                return Err(PlanError::UnknownTenant {
                    index,
                    line: entry_line(raw, index),
                    tenant: e.tenant,
                    tenants: self.tenants.max(1),
                });
            }
        }
        Ok(())
    }

    /// Parses a profile from a JSON value.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem.
    pub fn from_json(value: &schema::Json) -> Result<LoadProfile, String> {
        let obj = value.as_obj().ok_or("profile is not a JSON object")?;
        let version = field_num(obj, "version")? as u64;
        if version != PROFILE_VERSION {
            return Err(format!("unsupported profile version {version}"));
        }
        let seed_str = obj
            .get("seed")
            .and_then(schema::Json::as_str)
            .ok_or("missing string `seed`")?;
        let seed = seed_str
            .strip_prefix("0x")
            .and_then(|d| u64::from_str_radix(d, 16).ok())
            .ok_or_else(|| format!("`{seed_str}` is not a 0x-prefixed hex u64"))?;
        let entries = match obj.get("entries") {
            Some(schema::Json::Arr(items)) => items
                .iter()
                .map(|item| {
                    let e = item.as_obj().ok_or("entry is not a JSON object")?;
                    Ok(ProfileEntry {
                        id: field_num(e, "id")? as u64,
                        at: field_num(e, "at")? as Micros,
                        deadline: field_num(e, "deadline")? as Micros,
                        sample: field_num(e, "sample")? as usize,
                        // Absent in pre-class profiles: class 0.
                        class: opt_field_num(e, "class").map_or(0, |n| n as usize),
                        // Absent in pre-tenant profiles: tenant 0.
                        tenant: opt_field_num(e, "tenant").map_or(0, |n| n as usize),
                    })
                })
                .collect::<Result<Vec<_>, String>>()?,
            _ => return Err("missing array `entries`".to_string()),
        };
        Ok(LoadProfile {
            seed,
            // Absent in pre-tenant profiles: a single tenant.
            tenants: opt_field_num(obj, "tenants").map_or(1, |n| (n as usize).max(1)),
            entries,
        })
    }
}

/// The 1-based line of the `index`-th profile entry in the raw plan
/// text, located via the entry's `"id"` key (the first key of every
/// entry object the writer emits). Falls back to line 1 when the text
/// has fewer entries than the parsed profile (e.g. minified JSON).
fn entry_line(raw: &str, index: usize) -> usize {
    raw.match_indices("\"id\"")
        .nth(index)
        .map_or(1, |(pos, _)| raw[..pos].matches('\n').count() + 1)
}

fn field_num(obj: &BTreeMap<String, schema::Json>, key: &str) -> Result<f64, String> {
    obj.get(key)
        .and_then(schema::Json::as_num)
        .ok_or_else(|| format!("missing numeric `{key}`"))
}

fn opt_field_num(obj: &BTreeMap<String, schema::Json>, key: &str) -> Option<f64> {
    obj.get(key).and_then(schema::Json::as_num)
}

/// Replays an open-loop profile against the engine: tick to each
/// arrival, submit, then drain whatever is still queued. Returns every
/// terminal outcome (completions, typed rejections) in event order.
///
/// # Errors
///
/// Propagates engine errors (see [`ServeEngine::tick`]).
pub fn drive_open(
    engine: &mut ServeEngine,
    profile: &LoadProfile,
) -> Result<Vec<Outcome>, ServeError> {
    let mut outcomes = Vec::new();
    for e in &profile.entries {
        outcomes.extend(engine.tick(e.at)?);
        let req = Request {
            id: e.id,
            sample: e.sample,
            class: e.class,
            tenant: e.tenant,
            arrival: e.at,
            deadline: e.deadline,
        };
        if let Some(rej) = engine.submit(req, e.at) {
            outcomes.push(Outcome::Rejected(rej));
        }
    }
    outcomes.extend(engine.drain()?);
    Ok(outcomes)
}

/// Runs a closed loop: `spec.concurrency` virtual clients that each
/// wait for their previous request's outcome plus `spec.think` before
/// issuing the next, until `spec.requests` have been issued in total.
///
/// # Errors
///
/// Propagates engine errors (see [`ServeEngine::tick`]).
pub fn drive_closed(engine: &mut ServeEngine, spec: &LoadSpec) -> Result<Vec<Outcome>, ServeError> {
    let concurrency = spec.concurrency.max(1);
    let mut rng = Rng::seed_from(spec.seed);
    // Stagger client starts so they don't arrive as one burst.
    let mut next_issue: Vec<Option<Micros>> = (0..concurrency)
        .map(|c| Some(c as Micros * spec.think.max(1) / concurrency as Micros))
        .collect();
    let mut pending: BTreeMap<u64, usize> = BTreeMap::new();
    let mut outcomes = Vec::new();
    let mut issued: u64 = 0;
    let mut now: Micros = 0;

    loop {
        let client = if issued < spec.requests {
            next_issue
                .iter()
                .enumerate()
                .filter_map(|(c, t)| t.map(|t| (t, c)))
                .min()
        } else {
            None
        };
        let engine_next = engine.next_event();
        let (t, issue_from) = match (client, engine_next) {
            (Some((ct, c)), Some(et)) if ct <= et => (ct, Some(c)),
            (Some(_), Some(et)) => (et, None),
            (Some((ct, c)), None) => (ct, Some(c)),
            (None, Some(et)) => (et, None),
            (None, None) => break,
        };
        now = now.max(t);
        let produced = engine.tick(now)?;
        settle(&produced, &mut pending, &mut next_issue, spec.think);
        outcomes.extend(produced);
        if let Some(c) = issue_from {
            let id = issued;
            issued += 1;
            next_issue[c] = None;
            let req = Request {
                id,
                sample: (rng.next_u64() % 4096) as usize,
                class: (id % spec.classes.max(1) as u64) as usize,
                tenant: (id % spec.tenants.max(1) as u64) as usize,
                arrival: now,
                deadline: now + spec.deadline,
            };
            match engine.submit(req, now) {
                Some(rej) => {
                    // Shed at admission: the client backs off a full
                    // think time and tries again with a new request.
                    next_issue[c] = Some(now + spec.think);
                    outcomes.push(Outcome::Rejected(rej));
                }
                None => {
                    pending.insert(id, c);
                }
            }
        }
    }
    let produced = engine.drain()?;
    settle(&produced, &mut pending, &mut next_issue, spec.think);
    outcomes.extend(produced);
    Ok(outcomes)
}

/// Wakes up the clients whose requests just reached an outcome.
fn settle(
    produced: &[Outcome],
    pending: &mut BTreeMap<u64, usize>,
    next_issue: &mut [Option<Micros>],
    think: Micros,
) {
    for o in produced {
        if let Some(c) = pending.remove(&o.id()) {
            let finished = match o {
                Outcome::Completed(r) => r.completed,
                Outcome::Rejected(r) => r.at,
            };
            next_issue[c] = Some(finished + think);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ServeConfig;
    use crate::model::ModelSlots;
    use hs_nn::infer::SharedNetwork;
    use hs_nn::models;
    use hs_tensor::{Shape, Tensor};

    fn engine() -> ServeEngine {
        let mut rng = Rng::seed_from(7);
        let net = models::lenet(1, 4, 8, 0.5, &mut rng).unwrap();
        let slots = ModelSlots::new(SharedNetwork::new(net.clone()), SharedNetwork::new(net));
        let inputs = Tensor::randn(Shape::d4(6, 1, 8, 8), &mut Rng::seed_from(3));
        ServeEngine::new(ServeConfig::default(), slots, inputs).unwrap()
    }

    #[test]
    fn profile_round_trips_through_json() {
        let spec = LoadSpec {
            requests: 12,
            ..LoadSpec::default()
        };
        let profile = spec.open_profile();
        assert_eq!(profile, spec.open_profile(), "generation must be seeded");
        let path = std::env::temp_dir().join(format!("hs-profile-{}.json", std::process::id()));
        profile.save(&path).unwrap();
        assert_eq!(LoadProfile::load(&path).unwrap(), profile);
        assert_eq!(Plan::load(&path).unwrap(), Plan::Open(profile));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn closed_spec_round_trips_as_a_plan() {
        let spec = LoadSpec {
            requests: 9,
            concurrency: 2,
            think: 700,
            ..LoadSpec::default()
        };
        let path = std::env::temp_dir().join(format!("hs-spec-{}.json", std::process::id()));
        spec.save(&path).unwrap();
        assert_eq!(Plan::load(&path).unwrap(), Plan::Closed(spec));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_non_monotonic_timestamps_with_the_offending_line() {
        let mut profile = LoadSpec {
            requests: 5,
            ..LoadSpec::default()
        }
        .open_profile();
        // Warp entry 3 before entry 2: replay would move time backwards.
        profile.entries[3].at = profile.entries[2].at - 1;
        let path = std::env::temp_dir().join(format!("hs-nonmono-{}.json", std::process::id()));
        profile.save(&path).unwrap();
        let err = Plan::load(&path).unwrap_err();
        let ServeError::Plan(plan_err) = err else {
            panic!("expected ServeError::Plan, got {err:?}");
        };
        match plan_err {
            PlanError::NonMonotonic {
                index,
                line,
                prev_at,
                at,
            } => {
                assert_eq!(index, 3);
                assert_eq!(prev_at, profile.entries[2].at);
                assert_eq!(at, profile.entries[2].at - 1);
                // The reported line must be the offending entry's line
                // in the file the writer produced.
                let text = std::fs::read_to_string(&path).unwrap();
                let id_line = text
                    .lines()
                    .enumerate()
                    .filter(|(_, l)| l.contains("\"id\""))
                    .nth(3)
                    .map(|(n, _)| n + 1)
                    .unwrap();
                assert_eq!(line, id_line);
                assert!(plan_err.to_string().contains(&format!("line {line}")));
            }
            other => panic!("expected NonMonotonic, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_unknown_tenants_with_the_offending_line() {
        let mut profile = LoadSpec {
            requests: 4,
            tenants: 2,
            ..LoadSpec::default()
        }
        .open_profile();
        profile.entries[1].tenant = 7; // plan only declares tenants 0..2
        let path = std::env::temp_dir().join(format!("hs-tenant-{}.json", std::process::id()));
        profile.save(&path).unwrap();
        let err = Plan::load(&path).unwrap_err();
        let ServeError::Plan(plan_err) = err else {
            panic!("expected ServeError::Plan, got {err:?}");
        };
        match &plan_err {
            PlanError::UnknownTenant {
                index,
                line,
                tenant,
                tenants,
            } => {
                assert_eq!((*index, *tenant, *tenants), (1, 7, 2));
                assert!(*line > 1, "line must point into the entries array");
                assert!(plan_err.to_string().contains("unknown tenant 7"));
            }
            other => panic!("expected UnknownTenant, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn tenants_spread_deterministically_without_perturbing_the_schedule() {
        let base = LoadSpec {
            requests: 6,
            ..LoadSpec::default()
        };
        let single = base.open_profile();
        let multi = LoadSpec { tenants: 3, ..base }.open_profile();
        // Adding tenants must not move arrivals/samples (not RNG-drawn).
        for (a, b) in single.entries.iter().zip(&multi.entries) {
            assert_eq!((a.at, a.sample, a.deadline), (b.at, b.sample, b.deadline));
        }
        let tenants: Vec<usize> = multi.entries.iter().map(|e| e.tenant).collect();
        assert_eq!(tenants, vec![0, 1, 2, 0, 1, 2]);
        assert!(single.entries.iter().all(|e| e.tenant == 0));
    }

    #[test]
    fn open_loop_accounts_for_every_request() {
        let spec = LoadSpec {
            requests: 20,
            gap: 500,
            deadline: 100_000,
            ..LoadSpec::default()
        };
        let profile = spec.open_profile();
        let mut eng = engine();
        let outcomes = drive_open(&mut eng, &profile).unwrap();
        assert_eq!(outcomes.len(), 20, "every request needs a terminal outcome");
        let mut ids: Vec<u64> = outcomes.iter().map(Outcome::id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn closed_loop_issues_exactly_the_requested_count() {
        let spec = LoadSpec {
            requests: 15,
            concurrency: 3,
            think: 1_500,
            deadline: 100_000,
            ..LoadSpec::default()
        };
        let mut eng = engine();
        let outcomes = drive_closed(&mut eng, &spec).unwrap();
        assert_eq!(outcomes.len(), 15);
        let completed = outcomes
            .iter()
            .filter(|o| matches!(o, Outcome::Completed(_)))
            .count();
        assert!(
            completed > 0,
            "a lightly loaded closed loop must complete work"
        );
        assert_eq!(eng.summary().submitted, 15);
    }
}
