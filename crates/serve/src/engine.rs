//! The serving engine: admission → batcher → breaker → model slots.
//!
//! The engine is a **virtual-time discrete-event machine**. The driver
//! owns the clock: it calls [`ServeEngine::submit`] with each arrival
//! and [`ServeEngine::tick`] with a monotone `now`; the engine executes
//! every batch whose flush time has been reached and returns the
//! terminal [`Outcome`]s. [`ServeEngine::next_event`] exposes the next
//! flush instant so a driver can jump time straight to it instead of
//! polling.
//!
//! Batching is dynamic: a batch flushes when it is full
//! (`batch_max` requests queued) or when the oldest request has
//! lingered `linger` micros — whichever comes first — but never before
//! the previous batch finished (`busy_until`) or while the breaker is
//! open. Compute cost is *modeled* (`base_cost + per_item_cost * len`,
//! scaled per model slot, multiplied by `slow_factor` when a
//! `slow_infer` fault fires), while the predictions themselves come
//! from a real forward pass — so tests get genuine model outputs under
//! a deterministic clock.

use std::collections::BTreeMap;

use hs_telemetry::{faults, flight, metrics, trace, Event, EventKind, Level, TraceCtx};
use hs_tensor::Tensor;

use crate::breaker::{BreakerState, CircuitBreaker};
use crate::error::ServeError;
use crate::model::{ModelSlots, SlotKind};
use crate::queue::AdmissionQueue;
use crate::request::{Micros, Outcome, RejectReason, Rejection, Request, Response};
use crate::slo::SloTracker;

/// Histogram bounds for per-request latency, in virtual micros.
const LATENCY_BUCKETS: [f64; 6] = [1e3, 5e3, 1e4, 5e4, 1e5, 5e5];

/// Engine knobs. Every duration is in virtual microseconds.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Admission queue capacity; arrivals beyond it are shed.
    pub queue_capacity: usize,
    /// Maximum requests per batch.
    pub batch_max: usize,
    /// How long the oldest request may linger before a partial batch
    /// flushes anyway.
    pub linger: Micros,
    /// Fixed cost of any batch on the dense model.
    pub base_cost: Micros,
    /// Marginal cost per batched request on the dense model.
    pub per_item_cost: Micros,
    /// A batch running longer than this is abandoned: its requests are
    /// requeued and the breaker records a failure.
    pub batch_timeout: Micros,
    /// Consecutive failures that trip the breaker open.
    pub breaker_threshold: usize,
    /// How long the breaker stays open before admitting probes.
    pub breaker_cooldown: Micros,
    /// Cost multiplier applied when a `slow_infer:infer` fault fires.
    pub slow_factor: u64,
    /// Pruned-model cost relative to dense (from the serve manifest's
    /// FLOP ratio; < 1.0 is what makes degradation worth it).
    pub pruned_cost_scale: f64,
    /// Queue depth at flush time counting as an overload strike.
    pub degrade_high: usize,
    /// Consecutive overload strikes that trigger degradation.
    pub overload_strikes: usize,
    /// Queue depth at or below which a successful batch counts toward
    /// recovery.
    pub recover_low: usize,
    /// Healthy successful batches (breaker closed, queue drained)
    /// required before restoring the dense model.
    pub recovery_batches: usize,
    /// Seed every request/batch/breaker trace id is derived from; two
    /// runs with the same seed emit byte-identical trace ids.
    pub trace_seed: u64,
    /// Required deadline-hit ratio per SLO accounting window.
    pub slo_target: f64,
    /// SLO window length in terminal outcomes per class (0 disables
    /// burn accounting).
    pub slo_window: usize,
    /// Fleet replica id this engine serves as, if any. When set, every
    /// request/batch/degrade/restore event carries a `replica` field so
    /// `hs_obs` can attribute traffic per replica.
    pub replica: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            queue_capacity: 32,
            batch_max: 8,
            linger: 2_000,
            base_cost: 500,
            per_item_cost: 250,
            batch_timeout: 50_000,
            breaker_threshold: 3,
            breaker_cooldown: 100_000,
            slow_factor: 20,
            pruned_cost_scale: 0.25,
            degrade_high: 24,
            overload_strikes: 3,
            recover_low: 4,
            recovery_batches: 4,
            trace_seed: 0x4853,
            slo_target: 0.9,
            slo_window: 20,
            replica: None,
        }
    }
}

/// Aggregate counters for a serving session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Requests submitted.
    pub submitted: u64,
    /// Requests served with a prediction.
    pub completed: u64,
    /// Requests shed because the queue was full.
    pub rejected_queue_full: u64,
    /// Requests shed because the deadline was hopeless at admission.
    pub rejected_unmeetable: u64,
    /// Requests dropped because the deadline expired while queued.
    pub rejected_expired: u64,
    /// Batches that ran to completion.
    pub batches: u64,
    /// Batches abandoned at the timeout.
    pub batch_timeouts: u64,
    /// Times the breaker tripped open.
    pub breaker_trips: u64,
    /// Times the engine degraded to the pruned model.
    pub degrades: u64,
    /// Times the engine restored the dense model.
    pub restores: u64,
    /// Worst completed-request latency.
    pub max_latency_micros: Micros,
    /// Sum of completed-request latencies (for means).
    pub total_latency_micros: Micros,
    /// SLO windows that closed with their error budget exhausted.
    pub slo_burns: u64,
}

impl ServeSummary {
    /// All shed requests, regardless of reason.
    pub fn rejected_total(&self) -> u64 {
        self.rejected_queue_full + self.rejected_unmeetable + self.rejected_expired
    }
}

/// Trace bookkeeping for one in-flight request: its root span, its SLO
/// class, and whether it made it past admission (admitted requests get
/// child terminal spans; admission sheds terminate on the root).
#[derive(Debug, Clone, Copy)]
struct TraceState {
    ctx: TraceCtx,
    class: usize,
    admitted: bool,
}

/// The serving engine. See the module docs for the time model.
#[derive(Debug)]
pub struct ServeEngine {
    cfg: ServeConfig,
    slots: ModelSlots,
    inputs: Tensor,
    pool: usize,
    queue: AdmissionQueue,
    breaker: CircuitBreaker,
    busy_until: Micros,
    degraded: bool,
    /// Externally-imposed compute inflation (1 = nominal). The fleet
    /// sets this while a `replica_slow` fault is active on this replica.
    cost_multiplier: u64,
    overload_strikes: usize,
    healthy_streak: usize,
    stats: ServeSummary,
    /// Root trace per in-flight request id, dropped at the terminal
    /// outcome (survives timeout-requeues, which keep the request).
    traces: BTreeMap<u64, TraceState>,
    /// Submission counter feeding request trace-id derivation.
    trace_seq: u64,
    /// Batch ordinal feeding batch trace-id derivation and the `batch`
    /// linkage field on completion events.
    batch_seq: u64,
    /// Root span for engine-lifecycle events (degrade/restore).
    engine_ctx: TraceCtx,
    engine_seq: u64,
    slo: SloTracker,
}

impl ServeEngine {
    /// An idle engine serving `slots` over the sample pool `inputs`
    /// (axis 0 indexes samples; request `sample` values are taken
    /// modulo the pool size).
    ///
    /// # Errors
    ///
    /// [`ServeError::BadConfig`] when the input pool is empty.
    pub fn new(
        cfg: ServeConfig,
        slots: ModelSlots,
        inputs: Tensor,
    ) -> Result<ServeEngine, ServeError> {
        let pool = inputs.shape().dims().first().copied().unwrap_or(0);
        if pool == 0 || inputs.is_empty() {
            return Err(ServeError::BadConfig("empty input pool".to_string()));
        }
        let mut breaker = CircuitBreaker::new(cfg.breaker_threshold, cfg.breaker_cooldown);
        breaker.set_trace(trace::unit_ctx(cfg.trace_seed, "serve_breaker", 0));
        Ok(ServeEngine {
            queue: AdmissionQueue::new(cfg.queue_capacity),
            breaker,
            slots,
            inputs,
            pool,
            busy_until: 0,
            degraded: false,
            cost_multiplier: 1,
            overload_strikes: 0,
            healthy_streak: 0,
            stats: ServeSummary::default(),
            traces: BTreeMap::new(),
            trace_seq: 0,
            batch_seq: 0,
            engine_ctx: trace::unit_ctx(cfg.trace_seed, "serve_engine", 0),
            engine_seq: 0,
            slo: SloTracker::new(cfg.slo_target, cfg.slo_window, cfg.trace_seed),
            cfg,
        })
    }

    /// The slot currently serving.
    pub fn active(&self) -> SlotKind {
        self.slots.active()
    }

    /// True while degraded to the pruned model.
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// Breaker state.
    pub fn breaker_state(&self) -> BreakerState {
        self.breaker.state()
    }

    /// Current queue depth.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Counters so far.
    pub fn summary(&self) -> ServeSummary {
        self.stats
    }

    /// Sets the externally-imposed compute inflation (1 = nominal).
    /// The fleet uses this to model a slow replica without touching the
    /// `slow_infer` fault path.
    pub fn set_cost_multiplier(&mut self, multiplier: u64) {
        self.cost_multiplier = multiplier.max(1);
    }

    /// The current externally-imposed compute inflation.
    pub fn cost_multiplier(&self) -> u64 {
        self.cost_multiplier
    }

    /// Evicts everything still queued, returning the requests and
    /// forgetting their trace state **without** emitting terminal
    /// events — the fleet calls this when ejecting a replica and either
    /// resubmits the requests elsewhere (new trace on the destination)
    /// or sheds them at the fleet level with a typed reason.
    pub fn evict_queued(&mut self) -> Vec<Request> {
        let mut evicted = Vec::with_capacity(self.queue.len());
        while let Some(req) = self.queue.pop() {
            self.traces.remove(&req.id);
            evicted.push(req);
        }
        evicted
    }

    /// Offers a request for admission at `now` (call [`tick`] with the
    /// same `now` first so the queue reflects the present). Returns the
    /// typed rejection when the request is shed, `None` when admitted.
    ///
    /// [`tick`]: ServeEngine::tick
    pub fn submit(&mut self, req: Request, now: Micros) -> Option<Rejection> {
        self.stats.submitted += 1;
        metrics::counter("hs_serve_requests_total").inc();
        // Every submission opens a trace, derived purely from the
        // configured seed and the submission sequence number.
        let root = TraceCtx::root(self.cfg.trace_seed, self.trace_seq);
        self.trace_seq += 1;
        self.traces.insert(
            req.id,
            TraceState {
                ctx: root,
                class: req.class,
                admitted: false,
            },
        );
        if self.queue.len() >= self.queue.capacity() {
            let reason = RejectReason::QueueFull {
                depth: self.queue.len(),
                capacity: self.queue.capacity(),
            };
            return Some(self.shed(req.id, reason, now));
        }
        let projected = self.projected_completion(now);
        if projected > req.deadline {
            let reason = RejectReason::DeadlineUnmeetable {
                projected,
                deadline: req.deadline,
            };
            return Some(self.shed(req.id, reason, now));
        }
        let id = req.id;
        let class = req.class;
        if let Err(reason) = self.queue.push(req) {
            return Some(self.shed(id, reason, now));
        }
        if let Some(state) = self.traces.get_mut(&id) {
            state.admitted = true;
        }
        self.emit_request(id, "accepted", Level::Info, &root, |e| {
            e.field("slo_class", class)
                .field("at", now)
                .field("depth", self.queue.len())
        });
        None
    }

    /// When the next batch will flush, if anything is queued. Drivers
    /// jump virtual time straight to this instant.
    pub fn next_event(&self) -> Option<Micros> {
        let flush_candidate = if self.queue.len() >= self.cfg.batch_max {
            self.queue.peek(self.cfg.batch_max - 1)?.arrival
        } else {
            self.queue.oldest_arrival()? + self.cfg.linger
        };
        let gate = self.breaker.gate().unwrap_or(0);
        Some(flush_candidate.max(self.busy_until).max(gate))
    }

    /// Advances virtual time to `now`, executing every batch whose
    /// flush time has been reached. Returns the terminal outcomes
    /// produced along the way.
    ///
    /// # Errors
    ///
    /// [`ServeError::Nn`] when a forward pass fails (a startup shape
    /// mismatch — not a load-shedding condition).
    pub fn tick(&mut self, now: Micros) -> Result<Vec<Outcome>, ServeError> {
        let mut out = Vec::new();
        while let Some(t) = self.next_event() {
            if t > now {
                break;
            }
            if !self.run_batch(t, &mut out)? {
                break;
            }
        }
        Ok(out)
    }

    /// Drains everything still queued after the last arrival, advancing
    /// virtual time as far as the remaining work needs.
    ///
    /// # Errors
    ///
    /// Same as [`tick`](ServeEngine::tick).
    pub fn drain(&mut self) -> Result<Vec<Outcome>, ServeError> {
        let mut out = Vec::new();
        while let Some(t) = self.next_event() {
            if !self.run_batch(t, &mut out)? {
                break;
            }
        }
        Ok(out)
    }

    /// Modeled duration of a `len`-request batch on `slot`.
    fn batch_cost(&self, len: usize, slot: SlotKind, slowed: bool) -> Micros {
        let nominal = self.cfg.base_cost + self.cfg.per_item_cost * len as Micros;
        let scale = match slot {
            SlotKind::Dense => 1.0,
            SlotKind::Pruned => self.cfg.pruned_cost_scale,
        };
        let scaled = ((nominal as f64) * scale).round().max(1.0) as Micros * self.cost_multiplier;
        if slowed {
            scaled * self.cfg.slow_factor.max(1)
        } else {
            scaled
        }
    }

    /// Admission-time completion estimate for one more request: the
    /// engine frees up at `busy_until` (or the breaker's gate), then
    /// needs a whole number of full batches to reach the newcomer.
    fn projected_completion(&self, now: Micros) -> Micros {
        let start = now
            .max(self.busy_until)
            .max(self.breaker.gate().unwrap_or(0));
        let queued = self.queue.len() + 1;
        let batches = queued.div_ceil(self.cfg.batch_max) as Micros;
        start + batches * self.batch_cost(self.cfg.batch_max, self.slots.active(), false)
    }

    /// Executes one batch at flush time `t`. Returns whether progress
    /// was made (always true today; the bool guards `tick` against any
    /// future stall path looping forever).
    fn run_batch(&mut self, t: Micros, out: &mut Vec<Outcome>) -> Result<bool, ServeError> {
        if !self.breaker.allow(t) {
            return Ok(false);
        }
        self.note_overload(t);

        let mut batch = Vec::with_capacity(self.cfg.batch_max);
        while batch.len() < self.cfg.batch_max {
            match self.queue.pop() {
                Some(req) => batch.push(req),
                None => break,
            }
        }
        if batch.is_empty() {
            return Ok(true);
        }

        // Drop requests whose deadline the batch cannot meet even at
        // nominal speed; cost shrinks with the batch, so iterate.
        self.drop_expired(&mut batch, t, false, out);
        if batch.is_empty() {
            return Ok(true);
        }

        // One fault sample per batch execution attempt.
        let slowed = faults::armed() && faults::trip("slow_infer", "infer");
        let duration = self.batch_cost(batch.len(), self.slots.active(), slowed);

        if duration > self.cfg.batch_timeout {
            // Abandon the batch: record the failure, hold the lane for
            // the timeout, and requeue the requests for retry.
            self.stats.batch_timeouts += 1;
            metrics::counter("hs_serve_batch_timeouts_total").inc();
            self.busy_until = t + self.cfg.batch_timeout;
            self.healthy_streak = 0;
            self.emit_batch(batch.len(), "timeout", Level::Warn, t, duration);
            for req in batch.into_iter().rev() {
                self.queue.push_front(req);
            }
            let tripped = self.breaker.on_failure(t);
            self.stats.breaker_trips = self.breaker.trips();
            if tripped {
                flight::trigger("breaker_trip");
                if !self.degraded {
                    self.degrade("breaker_open", t);
                }
            }
            return Ok(true);
        }

        // A slow-but-within-timeout batch may still blow deadlines;
        // re-drop against the actual duration so every completed
        // response is in deadline by construction.
        if slowed {
            self.drop_expired(&mut batch, t, true, out);
            if batch.is_empty() {
                return Ok(true);
            }
        }

        let duration = self.batch_cost(batch.len(), self.slots.active(), slowed);
        let completed = t + duration;
        let indices: Vec<usize> = batch.iter().map(|r| r.sample % self.pool).collect();
        let batch_input = self
            .inputs
            .index_select(0, &indices)
            .map_err(|e| ServeError::Nn(hs_nn::NnError::Tensor(e)))?;
        let classes = self.slots.active_model().classify(&batch_input)?;

        self.busy_until = completed;
        self.stats.batches += 1;
        metrics::counter("hs_serve_batches_total").inc();
        let batch_ordinal = self.emit_batch(batch.len(), "ok", Level::Info, t, duration);

        for (req, class) in batch.into_iter().zip(classes) {
            let latency = completed - req.arrival;
            self.stats.completed += 1;
            self.stats.total_latency_micros += latency;
            self.stats.max_latency_micros = self.stats.max_latency_micros.max(latency);
            metrics::counter("hs_serve_completed_total").inc();
            metrics::histogram("hs_serve_latency_micros", &LATENCY_BUCKETS).observe(latency as f64);
            let model = self.slots.active();
            let ctx = match self.traces.remove(&req.id) {
                Some(s) => s.ctx.child(1),
                None => TraceCtx::root(self.cfg.trace_seed, u64::MAX),
            };
            if self.slo.record(req.class, true, completed) {
                self.stats.slo_burns += 1;
            }
            self.emit_request(req.id, "completed", Level::Info, &ctx, |e| {
                e.field("class", class)
                    .field("slo_class", req.class)
                    .field("model", model.as_str())
                    .field("batch", batch_ordinal)
                    .field("latency", latency)
            });
            out.push(Outcome::Completed(Response {
                id: req.id,
                class,
                model,
                completed,
                deadline: req.deadline,
                queued_micros: t - req.arrival,
                infer_micros: duration,
            }));
        }

        let recovered = self.breaker.on_success(completed);
        if recovered {
            self.healthy_streak = 0;
        }
        self.note_health(completed);
        Ok(true)
    }

    /// Iteratively drops queued-past-deadline requests from `batch`,
    /// recomputing the (shrinking) batch cost each round.
    fn drop_expired(
        &mut self,
        batch: &mut Vec<Request>,
        t: Micros,
        slowed: bool,
        out: &mut Vec<Outcome>,
    ) {
        loop {
            let duration = self.batch_cost(batch.len(), self.slots.active(), slowed);
            let finish = t + duration;
            let before = batch.len();
            let mut kept = Vec::with_capacity(before);
            for req in batch.drain(..) {
                if req.deadline < finish {
                    out.push(Outcome::Rejected(self.shed(
                        req.id,
                        RejectReason::DeadlineExpired {
                            now: t,
                            deadline: req.deadline,
                        },
                        t,
                    )));
                } else {
                    kept.push(req);
                }
            }
            *batch = kept;
            if batch.len() == before || batch.is_empty() {
                return;
            }
        }
    }

    /// Counts an overload strike when the queue is deep at flush time;
    /// enough consecutive strikes degrade to the pruned model.
    fn note_overload(&mut self, t: Micros) {
        if self.queue.len() >= self.cfg.degrade_high {
            self.overload_strikes += 1;
            if self.overload_strikes >= self.cfg.overload_strikes && !self.degraded {
                self.degrade("sustained_overload", t);
            }
        } else {
            self.overload_strikes = 0;
        }
    }

    /// Counts a healthy batch toward recovery; enough of them restore
    /// the dense model.
    fn note_health(&mut self, t: Micros) {
        if !self.degraded {
            return;
        }
        if self.breaker.state() == BreakerState::Closed && self.queue.len() <= self.cfg.recover_low
        {
            self.healthy_streak += 1;
            if self.healthy_streak >= self.cfg.recovery_batches {
                self.restore(t);
            }
        } else {
            self.healthy_streak = 0;
        }
    }

    fn degrade(&mut self, reason: &str, t: Micros) {
        self.degraded = true;
        self.healthy_streak = 0;
        self.slots.swap_to(SlotKind::Pruned);
        self.stats.degrades += 1;
        metrics::counter("hs_serve_degrades_total").inc();
        let ctx = self.engine_ctx.child(self.engine_seq);
        self.engine_seq += 1;
        let mut event = Event::new(EventKind::Degrade, Level::Warn, "serve/degrade")
            .message(format!("degrading to pruned model: {reason}"))
            .field("reason", reason)
            .field("model", SlotKind::Pruned.as_str())
            .field("at", t)
            .traced(&ctx);
        if let Some(replica) = self.cfg.replica {
            event = event.field("replica", replica);
        }
        hs_telemetry::emit(event);
        if reason == "sustained_overload" {
            flight::trigger("sustained_overload");
        }
    }

    fn restore(&mut self, t: Micros) {
        self.degraded = false;
        self.healthy_streak = 0;
        self.slots.swap_to(SlotKind::Dense);
        self.stats.restores += 1;
        metrics::counter("hs_serve_restores_total").inc();
        let ctx = self.engine_ctx.child(self.engine_seq);
        self.engine_seq += 1;
        let mut event = Event::new(EventKind::Restore, Level::Info, "serve/restore")
            .message("restoring dense model: recovered")
            .field("reason", "recovered")
            .field("model", SlotKind::Dense.as_str())
            .field("at", t)
            .traced(&ctx);
        if let Some(replica) = self.cfg.replica {
            event = event.field("replica", replica);
        }
        hs_telemetry::emit(event);
    }

    /// Records a typed rejection (event + counters + SLO miss) and
    /// returns it. The terminal event is a child of the request's root
    /// span when the request was admitted, or the root itself when it
    /// was shed at admission (the shed is then the trace's only event).
    fn shed(&mut self, id: u64, reason: RejectReason, at: Micros) -> Rejection {
        match reason {
            RejectReason::QueueFull { .. } => self.stats.rejected_queue_full += 1,
            RejectReason::DeadlineUnmeetable { .. } => self.stats.rejected_unmeetable += 1,
            RejectReason::DeadlineExpired { .. } => self.stats.rejected_expired += 1,
        }
        metrics::counter("hs_serve_rejected_total").inc();
        let (ctx, class) = match self.traces.remove(&id) {
            Some(s) => (if s.admitted { s.ctx.child(1) } else { s.ctx }, s.class),
            // A shed for an id never submitted (impossible today);
            // derive a stable orphan trace rather than panic.
            None => (TraceCtx::root(self.cfg.trace_seed, u64::MAX), 0),
        };
        if self.slo.record(class, false, at) {
            self.stats.slo_burns += 1;
        }
        let name = reason.as_str();
        self.emit_request(id, name, Level::Warn, &ctx, |e| {
            e.field("slo_class", class).field("at", at)
        });
        Rejection { id, reason, at }
    }

    fn emit_request(
        &self,
        id: u64,
        outcome: &str,
        level: Level,
        ctx: &TraceCtx,
        extra: impl FnOnce(Event) -> Event,
    ) {
        let mut event = Event::new(EventKind::ServeRequest, level, "serve/request")
            .field("id", id)
            .field("outcome", outcome)
            .traced(ctx);
        if let Some(replica) = self.cfg.replica {
            event = event.field("replica", replica);
        }
        hs_telemetry::emit(extra(event));
    }

    /// Emits one batch event under its own per-batch trace and returns
    /// the batch ordinal (echoed on completion events for linkage).
    fn emit_batch(
        &mut self,
        size: usize,
        outcome: &str,
        level: Level,
        t: Micros,
        duration: Micros,
    ) -> u64 {
        let ordinal = self.batch_seq;
        self.batch_seq += 1;
        let ctx = trace::unit_ctx(self.cfg.trace_seed, "serve_batch", ordinal as usize);
        let mut event = Event::new(EventKind::ServeBatch, level, "serve/batch")
            .field("size", size)
            .field("model", self.slots.active().as_str())
            .field("outcome", outcome)
            .field("batch", ordinal)
            .field("at", t)
            .field("duration", duration)
            .traced(&ctx);
        if let Some(replica) = self.cfg.replica {
            event = event.field("replica", replica);
        }
        hs_telemetry::emit(event);
        ordinal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs_nn::infer::SharedNetwork;
    use hs_nn::models;
    use hs_tensor::{Rng, Shape};

    fn tiny_engine(cfg: ServeConfig) -> ServeEngine {
        let mut rng = Rng::seed_from(7);
        let net = models::lenet(1, 4, 8, 0.5, &mut rng).unwrap();
        let slots = ModelSlots::new(SharedNetwork::new(net.clone()), SharedNetwork::new(net));
        let inputs = Tensor::randn(Shape::d4(6, 1, 8, 8), &mut Rng::seed_from(3));
        ServeEngine::new(cfg, slots, inputs).unwrap()
    }

    fn req(id: u64, arrival: Micros, deadline: Micros) -> Request {
        Request {
            id,
            sample: id as usize,
            class: 0,
            tenant: 0,
            arrival,
            deadline,
        }
    }

    #[test]
    fn full_batch_flushes_at_arrival_partial_batch_lingers() {
        let cfg = ServeConfig {
            queue_capacity: 8,
            batch_max: 2,
            linger: 1_000,
            base_cost: 100,
            per_item_cost: 50,
            ..ServeConfig::default()
        };
        let mut eng = tiny_engine(cfg);
        assert!(eng.submit(req(0, 10, 100_000), 10).is_none());
        // Partial batch: flush when the oldest request has lingered.
        assert_eq!(eng.next_event(), Some(1_010));
        assert!(eng.submit(req(1, 20, 100_000), 20).is_none());
        // Full batch: flush at the closing request's arrival.
        assert_eq!(eng.next_event(), Some(20));
        let outcomes = eng.tick(20).unwrap();
        assert_eq!(outcomes.len(), 2);
        for o in &outcomes {
            match o {
                Outcome::Completed(r) => {
                    assert_eq!(r.completed, 20 + 100 + 2 * 50);
                    assert!(r.completed <= r.deadline);
                }
                other => panic!("expected completion, got {other:?}"),
            }
        }
        assert_eq!(eng.summary().completed, 2);
    }

    #[test]
    fn sheds_hopeless_deadlines_at_admission() {
        let cfg = ServeConfig {
            batch_max: 2,
            base_cost: 1_000,
            per_item_cost: 1_000,
            ..ServeConfig::default()
        };
        let mut eng = tiny_engine(cfg);
        // A full dense batch costs 3_000; deadline 100 is hopeless.
        let rej = eng.submit(req(0, 0, 100), 0).expect("must be shed");
        match rej.reason {
            RejectReason::DeadlineUnmeetable {
                projected,
                deadline,
            } => {
                assert_eq!(projected, 3_000);
                assert_eq!(deadline, 100);
            }
            other => panic!("expected DeadlineUnmeetable, got {other:?}"),
        }
        assert_eq!(eng.summary().rejected_unmeetable, 1);
        assert_eq!(eng.queue_depth(), 0);
    }

    #[test]
    fn predictions_match_direct_inference() {
        let cfg = ServeConfig {
            batch_max: 4,
            linger: 10,
            ..ServeConfig::default()
        };
        let mut eng = tiny_engine(cfg);
        for id in 0..3u64 {
            assert!(eng.submit(req(id, id, 1_000_000), id).is_none());
        }
        let outcomes = eng.drain().unwrap();
        let expected = {
            let mut rng = Rng::seed_from(7);
            let mut net = models::lenet(1, 4, 8, 0.5, &mut rng).unwrap();
            let inputs = Tensor::randn(Shape::d4(6, 1, 8, 8), &mut Rng::seed_from(3));
            hs_nn::infer::predict(&mut net, &inputs).unwrap()
        };
        assert_eq!(outcomes.len(), 3);
        for o in outcomes {
            match o {
                Outcome::Completed(r) => {
                    assert_eq!(r.class, expected[(r.id as usize) % expected.len()]);
                }
                other => panic!("expected completion, got {other:?}"),
            }
        }
    }

    #[test]
    fn slow_fault_trips_breaker_and_degrades_then_recovers() {
        use hs_telemetry::faults::{Fault, FaultPlan};
        let _guard = crate::fault_test_lock();
        let cfg = ServeConfig {
            queue_capacity: 8,
            batch_max: 2,
            linger: 500,
            base_cost: 1_000,
            per_item_cost: 1_000,
            batch_timeout: 10_000,
            breaker_threshold: 2,
            breaker_cooldown: 20_000,
            slow_factor: 20,
            pruned_cost_scale: 0.25,
            recover_low: 8,
            recovery_batches: 1,
            ..ServeConfig::default()
        };
        let mut eng = tiny_engine(cfg);
        faults::arm(FaultPlan {
            faults: [1u64, 2]
                .iter()
                .map(|nth| Fault {
                    kind: "slow_infer".to_string(),
                    site: "infer".to_string(),
                    nth: *nth,
                })
                .collect(),
        });
        for id in 0..4u64 {
            assert!(eng.submit(req(id, id * 10, 1_000_000), id * 10).is_none());
        }
        let outcomes = eng.drain().unwrap();
        faults::disarm();
        // Two slowed batches time out back to back, tripping the
        // breaker and degrading; after the cooldown the requeued
        // requests complete on the pruned model, and the healthy batch
        // restores dense.
        let s = eng.summary();
        assert_eq!(s.batch_timeouts, 2);
        assert_eq!(s.breaker_trips, 1);
        assert_eq!(s.degrades, 1);
        assert_eq!(s.restores, 1);
        assert_eq!(s.completed, 4);
        assert!(!eng.degraded());
        assert_eq!(eng.active(), SlotKind::Dense);
        let completions = outcomes
            .iter()
            .filter(|o| matches!(o, Outcome::Completed(_)))
            .count();
        assert_eq!(completions, 4);
        for o in outcomes {
            if let Outcome::Completed(r) = o {
                // ids 0/1 complete on the degraded (pruned) probe
                // batch; the restore then puts 2/3 back on dense.
                let expected = if r.id < 2 {
                    SlotKind::Pruned
                } else {
                    SlotKind::Dense
                };
                assert_eq!(r.model, expected);
                assert!(r.completed <= r.deadline);
            }
        }
    }
}
