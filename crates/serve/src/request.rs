//! Typed requests, responses, and rejections.
//!
//! Time is **virtual**: integer microseconds since the start of the
//! serving session, supplied by whoever drives the engine. The engine
//! never reads a wall clock, which is what makes every overload test
//! reproducible byte-for-byte.

/// Virtual time in integer microseconds.
pub type Micros = u64;

/// One inference request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Caller-assigned id, echoed in the response/rejection.
    pub id: u64,
    /// Index into the engine's input pool (taken modulo the pool size),
    /// selecting which image this request asks about.
    pub sample: usize,
    /// SLO class this request is accounted under (0 = default class).
    /// Distinct from [`Response::class`], the *predicted* class.
    pub class: usize,
    /// Tenant this request is billed to (0 = default tenant). Single
    /// replicas ignore it; the fleet front-end enforces per-tenant
    /// admission quotas on it.
    pub tenant: usize,
    /// When the request arrived.
    pub arrival: Micros,
    /// Absolute deadline: a response completed after this instant is
    /// worthless to the caller.
    pub deadline: Micros,
}

/// A completed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The request id.
    pub id: u64,
    /// Predicted class (argmax of the model's logits).
    pub class: usize,
    /// Which model slot produced the prediction.
    pub model: crate::model::SlotKind,
    /// When the batch carrying this request finished.
    pub completed: Micros,
    /// The request's absolute deadline (always >= `completed`).
    pub deadline: Micros,
    /// Time spent queued before its batch started.
    pub queued_micros: Micros,
    /// Modeled compute time of its batch.
    pub infer_micros: Micros,
}

/// Why a request was shed instead of served. Every rejection is typed —
/// the caller can tell back-pressure (`QueueFull`) from a hopeless
/// deadline at admission (`DeadlineUnmeetable`) from a deadline that
/// expired while waiting (`DeadlineExpired`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded admission queue is at capacity.
    QueueFull {
        /// Queue depth at rejection (== capacity).
        depth: usize,
        /// Configured capacity.
        capacity: usize,
    },
    /// Admission-time estimate says the deadline cannot be met even if
    /// everything goes well — shedding now is cheaper than timing out
    /// later.
    DeadlineUnmeetable {
        /// Estimated completion time.
        projected: Micros,
        /// The request's deadline.
        deadline: Micros,
    },
    /// The deadline passed while the request waited in the queue (the
    /// batcher drops it rather than burn compute on a dead request).
    DeadlineExpired {
        /// When the drop decision was made.
        now: Micros,
        /// The request's deadline.
        deadline: Micros,
    },
}

impl RejectReason {
    /// Stable short name used in telemetry fields and reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            RejectReason::QueueFull { .. } => "queue_full",
            RejectReason::DeadlineUnmeetable { .. } => "deadline_unmeetable",
            RejectReason::DeadlineExpired { .. } => "deadline_expired",
        }
    }
}

/// A shed request: which one, why, and when.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rejection {
    /// The request id.
    pub id: u64,
    /// Why it was shed.
    pub reason: RejectReason,
    /// When the decision was made.
    pub at: Micros,
}

/// A request's terminal outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Served with a prediction, in deadline.
    Completed(Response),
    /// Shed with a typed reason.
    Rejected(Rejection),
}

impl Outcome {
    /// The request id this outcome belongs to.
    pub fn id(&self) -> u64 {
        match self {
            Outcome::Completed(r) => r.id,
            Outcome::Rejected(r) => r.id,
        }
    }
}
