//! `hs-serve`: an overload-hardened, request-level inference service
//! over HeadStart checkpoints.
//!
//! The HeadStart pipeline produces *two* models per run: the dense
//! pre-trained network and the pruned inception that trades a bounded
//! accuracy drop for a realised speedup. This crate is the deploy-time
//! payoff of that pair — a serving stack that keeps answering under
//! overload by shedding load early and, when pressure persists,
//! **hot-swapping to the pruned inception** instead of falling over:
//!
//! ```text
//!            ┌────────────────────────────── hs-serve ─────────────────────────────┐
//! requests → │ admission queue → micro-batcher → circuit breaker → model slots     │ → responses
//!            │  (bounded,         (flush on        (trips on         dense ⇄ pruned│
//!            │   typed shed)       size/deadline)   timeouts)        degradation)  │
//!            └─────────────────────────────────────────────────────────────────────┘
//! ```
//!
//! Everything is driven in **virtual time** (integer microseconds):
//! the engine never reads the wall clock, compute cost comes from a
//! deterministic model, and faults come from the workspace's seeded
//! registry (`HS_FAULT=slow_infer:infer:…`). The same load profile
//! therefore produces a byte-identical telemetry event sequence
//! (modulo wall-clock `secs`/`ts` suffixes) on every run — overload,
//! breaker, and degradation behaviour are all testable in CI. Real
//! inference still happens: each executed batch runs an actual forward
//! pass through the checkpointed network, so responses carry genuine
//! predictions.
//!
//! Modules mirror the diagram: [`queue`] (bounded admission),
//! [`engine`] (batcher + degradation state machine), [`breaker`]
//! (circuit breaker), [`model`] (checkpoint slots with retry/backoff
//! loading), [`request`] (typed requests/rejections), [`loadgen`]
//! (deterministic open/closed-loop load generation).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod breaker;
pub mod engine;
pub mod error;
pub mod loadgen;
pub mod model;
pub mod queue;
pub mod request;
pub mod slo;

/// Serializes tests (across this crate) that arm the process-global
/// fault registry, so parallel test threads never see each other's plan.
#[cfg(test)]
pub(crate) fn fault_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

pub use breaker::{BreakerState, CircuitBreaker};
pub use engine::{ServeConfig, ServeEngine, ServeSummary};
pub use error::ServeError;
pub use loadgen::{drive_closed, drive_open, LoadProfile, LoadSpec, Plan, PlanError, ProfileEntry};
pub use model::{load_with_retry, ModelSlots, RetryPolicy, SlotKind};
pub use queue::AdmissionQueue;
pub use request::{Micros, Outcome, RejectReason, Rejection, Request, Response};
pub use slo::SloTracker;
