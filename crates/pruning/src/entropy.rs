//! Entropy-based channel pruning (Luo & Wu, 2017).

use crate::criterion::{PruningCriterion, ScoreContext};
use crate::error::PruneError;

/// Luo & Wu (2017): a channel whose spatially-pooled activation takes
/// nearly the same value on every input is uninformative. The importance
/// score is the Shannon entropy of the per-image pooled activation,
/// estimated with a fixed-width histogram over the scoring set.
#[derive(Debug, Clone, Copy)]
pub struct EntropyCriterion {
    bins: usize,
}

impl EntropyCriterion {
    /// Creates the criterion with the default 32 histogram bins.
    pub fn new() -> Self {
        EntropyCriterion { bins: 32 }
    }

    /// Overrides the histogram bin count (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `bins < 2`.
    pub fn bins(mut self, bins: usize) -> Self {
        assert!(bins >= 2, "entropy histogram needs at least 2 bins");
        self.bins = bins;
        self
    }
}

impl Default for EntropyCriterion {
    fn default() -> Self {
        EntropyCriterion::new()
    }
}

impl PruningCriterion for EntropyCriterion {
    fn name(&self) -> &'static str {
        "Entropy"
    }

    fn score(&mut self, ctx: &mut ScoreContext<'_>) -> Result<Vec<f32>, PruneError> {
        let channels = ctx.channels()?;
        let acts = ctx.site_activations()?;
        let shape = acts.shape();
        if shape.rank() != 4 || shape.dim(1) != channels {
            return Err(PruneError::BadScoringSet {
                detail: format!(
                    "site activations have shape {shape}, expected [N, {channels}, H, W]"
                ),
            });
        }
        let (n, plane) = (shape.dim(0), shape.dim(2) * shape.dim(3));
        if n < 2 {
            return Err(PruneError::BadScoringSet {
                detail: format!("entropy estimation needs >= 2 scoring images, got {n}"),
            });
        }
        let mut scores = Vec::with_capacity(channels);
        let mut pooled = vec![0.0f32; n];
        for c in 0..channels {
            for (b, p) in pooled.iter_mut().enumerate() {
                let base = (b * channels + c) * plane;
                *p = acts.data()[base..base + plane].iter().sum::<f32>() / plane as f32;
            }
            let lo = pooled.iter().copied().fold(f32::INFINITY, f32::min);
            let hi = pooled.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            if hi - lo < 1e-9 {
                // Constant channel → zero entropy.
                scores.push(0.0);
                continue;
            }
            let mut hist = vec![0usize; self.bins];
            let scale = self.bins as f32 / (hi - lo);
            for &v in &pooled {
                let bin = (((v - lo) * scale) as usize).min(self.bins - 1);
                hist[bin] += 1;
            }
            let mut h = 0.0f32;
            for &count in &hist {
                if count > 0 {
                    let p = count as f32 / n as f32;
                    h -= p * p.ln();
                }
            }
            scores.push(h);
        }
        Ok(scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs_nn::layer::{Conv2d, ReLU};
    use hs_nn::surgery::conv_sites;
    use hs_nn::{Network, Node};
    use hs_tensor::{Rng, Shape, Tensor};

    #[test]
    fn constant_channel_has_zero_entropy() {
        let mut rng = Rng::seed_from(0);
        let mut net = Network::new();
        let mut conv = Conv2d::new(1, 2, 1, 1, 0, &mut rng);
        // Filter 0 ignores the input entirely (weight 0, bias 5) →
        // constant. Filter 1 passes input through → varies per image.
        conv.weight.value = Tensor::from_vec(Shape::d4(2, 1, 1, 1), vec![0.0, 1.0]).unwrap();
        conv.bias.value = Tensor::from_vec(Shape::d1(2), vec![5.0, 0.0]).unwrap();
        net.push(Node::Conv(conv));
        net.push(Node::Relu(ReLU::new()));
        let site = conv_sites(&net)[0];
        let images = Tensor::randn(Shape::d4(16, 1, 4, 4), &mut rng);
        let labels = [0usize; 16];
        let mut ctx = ScoreContext::new(&mut net, site, &images, &labels, &mut rng);
        let scores = EntropyCriterion::new().score(&mut ctx).unwrap();
        assert_eq!(scores[0], 0.0);
        assert!(scores[1] > 0.5, "informative channel entropy {}", scores[1]);
        let keep = EntropyCriterion::new().keep_set(&mut ctx, 1).unwrap();
        assert_eq!(keep, vec![1]);
    }

    #[test]
    fn needs_multiple_images() {
        let mut rng = Rng::seed_from(1);
        let mut net = Network::new();
        net.push(Node::Conv(Conv2d::new(1, 2, 1, 1, 0, &mut rng)));
        let site = conv_sites(&net)[0];
        let images = Tensor::randn(Shape::d4(1, 1, 4, 4), &mut rng);
        let labels = [0usize];
        let mut ctx = ScoreContext::new(&mut net, site, &images, &labels, &mut rng);
        assert!(matches!(
            EntropyCriterion::new().score(&mut ctx),
            Err(PruneError::BadScoringSet { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "at least 2 bins")]
    fn rejects_degenerate_bins() {
        let _ = EntropyCriterion::new().bins(1);
    }
}
