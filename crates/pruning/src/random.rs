//! Uniform-random pruning, the control baseline.

use crate::criterion::{PruningCriterion, ScoreContext};
use crate::error::PruneError;

/// Assigns i.i.d. uniform scores, so `keep_set` retains a uniformly
/// random subset of feature maps. The "RANDOM" row of the paper's
/// Tables 2–3 and the grey bars of Figure 3.
#[derive(Debug, Clone, Copy, Default)]
pub struct Random;

impl Random {
    /// Creates the criterion.
    pub fn new() -> Self {
        Random
    }
}

impl PruningCriterion for Random {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn score(&mut self, ctx: &mut ScoreContext<'_>) -> Result<Vec<f32>, PruneError> {
        let channels = ctx.channels()?;
        Ok((0..channels).map(|_| ctx.rng.uniform()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs_nn::layer::Conv2d;
    use hs_nn::surgery::conv_sites;
    use hs_nn::{Network, Node};
    use hs_tensor::{Rng, Shape, Tensor};

    #[test]
    fn different_rng_states_give_different_subsets() {
        let mut rng = Rng::seed_from(0);
        let mut net = Network::new();
        net.push(Node::Conv(Conv2d::new(1, 32, 1, 1, 0, &mut rng)));
        let site = conv_sites(&net)[0];
        let images = Tensor::zeros(Shape::d4(1, 1, 4, 4));
        let labels = [0usize];
        let mut crit = Random::new();
        let a = {
            let mut ctx = ScoreContext::new(&mut net, site, &images, &labels, &mut rng);
            crit.keep_set(&mut ctx, 16).unwrap()
        };
        let b = {
            let mut ctx = ScoreContext::new(&mut net, site, &images, &labels, &mut rng);
            crit.keep_set(&mut ctx, 16).unwrap()
        };
        assert_ne!(a, b);
        assert_eq!(a.len(), 16);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "keep set must be sorted");
    }
}
