//! Baseline structured-pruning methods the HeadStart paper compares
//! against, behind one [`PruningCriterion`] interface:
//!
//! | Criterion | Paper | Idea |
//! |---|---|---|
//! | [`L1Norm`] | Li et al., ICLR'17 | prune filters with the smallest absolute weight sum |
//! | [`Apoz`] | Hu et al., 2016 | prune maps with the highest average percentage of zeros |
//! | [`EntropyCriterion`] | Luo & Wu, 2017 | prune maps whose activation distribution carries little entropy |
//! | [`Random`] | — | uniform-random control |
//! | [`ThiNet`] | Luo et al., ICCV'17 | greedy channel subset minimizing next-layer reconstruction error, plus least-squares rescale |
//! | [`AutoPruner`] | Luo & Wu, 2018 | end-to-end trained sigmoid channel gates with temperature annealing |
//! | [`LassoChannel`] | He et al., ICCV'17 | LASSO channel selection + least-squares reconstruction |
//! | [`Slimming`] | Liu et al., ICCV'17 | prune maps with the smallest batch-norm scale `γ` |
//! | [`TaylorCriterion`] | Molchanov et al., 2016 | first-order Taylor saliency `|Σ ∂L/∂a · a|` |
//!
//! All of these are *inception-agnostic* in the paper's terminology: they
//! decide what to prune from layer-local statistics, not from the effect
//! on the final output — which is precisely what `hs-core`'s HeadStart
//! pruner does differently.
//!
//! The [`driver`] module runs whole-model prune→fine-tune pipelines and
//! produces the per-layer traces of the paper's Table 1.
//!
//! # Example
//!
//! ```
//! use hs_pruning::{L1Norm, PruningCriterion, ScoreContext};
//! use hs_nn::{models, surgery};
//! use hs_tensor::{Rng, Tensor, Shape};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = Rng::seed_from(0);
//! let mut net = models::vgg11(3, 4, 8, 0.25, &mut rng)?;
//! let site = surgery::conv_sites(&net)[0];
//! let images = Tensor::randn(Shape::d4(4, 3, 8, 8), &mut rng);
//! let labels = vec![0, 1, 2, 3];
//! let mut ctx = ScoreContext::new(&mut net, site, &images, &labels, &mut rng);
//! let keep = L1Norm::new().keep_set(&mut ctx, 8)?;
//! assert_eq!(keep.len(), 8);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod apoz;
mod autopruner;
mod criterion;
pub mod driver;
mod entropy;
mod error;
mod l1;
mod lasso;
mod linalg;
mod random;
mod slimming;
mod taylor;
mod thinet;

pub use apoz::Apoz;
pub use autopruner::AutoPruner;
pub use criterion::{top_k_indices, PruningCriterion, ScoreContext};
pub use entropy::EntropyCriterion;
pub use error::PruneError;
pub use l1::L1Norm;
pub use lasso::LassoChannel;
pub use random::Random;
pub use slimming::Slimming;
pub use taylor::TaylorCriterion;
pub use thinet::ThiNet;
