//! ThiNet: greedy channel selection by next-layer reconstruction
//! (Luo, Wu & Lin, ICCV 2017).

use hs_nn::surgery::ConvSite;
use hs_nn::{Network, Node};
use hs_tensor::Tensor;

use crate::criterion::{PruningCriterion, ScoreContext};
use crate::error::PruneError;
use crate::linalg::ridge_least_squares;

/// ThiNet prunes the channels whose removal least perturbs the *next*
/// layer's output: it samples random output locations of the consumer
/// convolution, decomposes each into per-input-channel contributions, and
/// greedily grows the prune set that minimizes the reconstruction error.
/// After surgery it refits per-channel scales on the kept channels by
/// ridge least squares (the paper's weight-update step).
#[derive(Debug, Clone)]
pub struct ThiNet {
    samples: usize,
    rescale: bool,
    pending_scales: Option<Vec<f32>>,
}

impl ThiNet {
    /// Creates ThiNet with 256 sampled reconstruction locations and the
    /// least-squares rescale enabled.
    pub fn new() -> Self {
        ThiNet {
            samples: 256,
            rescale: true,
            pending_scales: None,
        }
    }

    /// Overrides the number of sampled locations (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is zero.
    pub fn samples(mut self, samples: usize) -> Self {
        assert!(samples > 0, "ThiNet needs at least one sampled location");
        self.samples = samples;
        self
    }

    /// Disables the post-surgery least-squares rescale (builder style).
    pub fn without_rescale(mut self) -> Self {
        self.rescale = false;
        self
    }
}

/// Builds the `[L, C]` contribution matrix: entry `(l, c)` is input
/// channel `c`'s additive contribution to the consumer's output at a
/// randomly sampled location `l`. Shared by the reconstruction-based
/// criteria (ThiNet, He'17 LASSO).
pub(crate) fn contribution_matrix(
    ctx: &mut ScoreContext<'_>,
    acts: &Tensor,
    samples: usize,
) -> Result<(Vec<f32>, usize), PruneError> {
    let channels = acts.shape().dim(1);
    let consumer = ctx.site.consumer.ok_or_else(|| PruneError::BadScoringSet {
        detail: "reconstruction criteria need a consumer layer after the pruned conv".to_string(),
    })?;
    let n = acts.shape().dim(0);
    let (h, w) = (acts.shape().dim(2), acts.shape().dim(3));
    let mut contrib = vec![0.0f32; samples * channels];
    match ctx.net.node(consumer) {
        Node::Conv(conv) => {
            let (k, s, p) = (conv.kernel(), conv.stride(), conv.padding());
            let m_filters = conv.out_channels();
            let oh = (h + 2 * p - k) / s + 1;
            let ow = (w + 2 * p - k) / s + 1;
            let weight = conv.weight.value.clone();
            for l in 0..samples {
                let b = ctx.rng.below(n);
                let m = ctx.rng.below(m_filters);
                let oy = ctx.rng.below(oh);
                let ox = ctx.rng.below(ow);
                for c in 0..channels {
                    let mut acc = 0.0f32;
                    for ky in 0..k {
                        let iy = (oy * s + ky) as isize - p as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..k {
                            let ix = (ox * s + kx) as isize - p as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            acc += weight.at(&[m, c, ky, kx])
                                * acts.at(&[b, c, iy as usize, ix as usize]);
                        }
                    }
                    contrib[l * channels + c] = acc;
                }
            }
        }
        Node::Linear(lin) => {
            // GAP head: channel c contributes W[m, c] · mean(A_c).
            let weight = lin.weight.value.clone();
            let outs = lin.out_features();
            for l in 0..samples {
                let b = ctx.rng.below(n);
                let m = ctx.rng.below(outs);
                for c in 0..channels {
                    let mut mean = 0.0f32;
                    for y in 0..h {
                        for x in 0..w {
                            mean += acts.at(&[b, c, y, x]);
                        }
                    }
                    mean /= (h * w) as f32;
                    contrib[l * channels + c] = weight.at(&[m, c]) * mean;
                }
            }
        }
        _ => {
            return Err(PruneError::BadScoringSet {
                detail: "consumer must be a conv or linear layer".to_string(),
            })
        }
    }
    Ok((contrib, channels))
}

impl Default for ThiNet {
    fn default() -> Self {
        ThiNet::new()
    }
}

impl PruningCriterion for ThiNet {
    fn name(&self) -> &'static str {
        "ThiNet'17"
    }

    /// Fallback scoring (used only if `keep_set` is bypassed): a
    /// channel's mean squared contribution magnitude.
    fn score(&mut self, ctx: &mut ScoreContext<'_>) -> Result<Vec<f32>, PruneError> {
        let acts = ctx.site_activations()?;
        let (contrib, channels) = contribution_matrix(ctx, &acts, self.samples)?;
        let mut scores = vec![0.0f32; channels];
        for l in 0..self.samples {
            for (c, sc) in scores.iter_mut().enumerate() {
                *sc += contrib[l * channels + c].powi(2);
            }
        }
        Ok(scores)
    }

    fn keep_set(
        &mut self,
        ctx: &mut ScoreContext<'_>,
        keep: usize,
    ) -> Result<Vec<usize>, PruneError> {
        let channels = ctx.channels()?;
        if keep == 0 || keep > channels {
            return Err(PruneError::BadKeepCount {
                keep,
                available: channels,
            });
        }
        let acts = ctx.site_activations()?;
        let (contrib, _) = contribution_matrix(ctx, &acts, self.samples)?;
        let prune_count = channels - keep;

        // Greedy: grow the prune set, always adding the channel whose
        // inclusion keeps the summed removed-contribution norm smallest.
        let mut pruned = vec![false; channels];
        let mut residual = vec![0.0f32; self.samples];
        for _ in 0..prune_count {
            let mut best: Option<(usize, f32)> = None;
            for c in 0..channels {
                if pruned[c] {
                    continue;
                }
                let mut err = 0.0f32;
                for l in 0..self.samples {
                    let v = residual[l] + contrib[l * channels + c];
                    err += v * v;
                }
                if best.map(|(_, e)| err < e).unwrap_or(true) {
                    best = Some((c, err));
                }
            }
            let (c, _) = best.expect("prune_count < channels");
            pruned[c] = true;
            for l in 0..self.samples {
                residual[l] += contrib[l * channels + c];
            }
        }
        let keep_set: Vec<usize> = (0..channels).filter(|&c| !pruned[c]).collect();

        if self.rescale {
            // Fit scales s so that Σ_{kept} s_c · contrib_c ≈ full output.
            let mut g = vec![0.0f32; self.samples * keep_set.len()];
            let mut y = vec![0.0f32; self.samples];
            for l in 0..self.samples {
                for (j, &c) in keep_set.iter().enumerate() {
                    g[l * keep_set.len() + j] = contrib[l * channels + c];
                }
                y[l] = (0..channels).map(|c| contrib[l * channels + c]).sum();
            }
            match ridge_least_squares(&g, &y, self.samples, keep_set.len(), 1e-4) {
                Ok(scales) => self.pending_scales = Some(scales),
                Err(_) => self.pending_scales = None, // degenerate fit: skip rescale
            }
        }
        Ok(keep_set)
    }

    fn post_surgery(
        &mut self,
        net: &mut Network,
        site: ConvSite,
        keep: &[usize],
    ) -> Result<(), PruneError> {
        let Some(scales) = self.pending_scales.take() else {
            return Ok(());
        };
        if scales.len() != keep.len() {
            return Err(PruneError::BadScoringSet {
                detail: format!("{} scales for {} kept channels", scales.len(), keep.len()),
            });
        }
        let Some(consumer) = site.consumer else {
            return Ok(());
        };
        // Clamp pathological fits; small datasets can produce wild scales.
        let scales: Vec<f32> = scales.iter().map(|s| s.clamp(0.1, 10.0)).collect();
        match net.node_mut(consumer) {
            Node::Conv(conv) => {
                let shape = conv.weight.value.shape().clone();
                let (m, c_in, k) = (shape.dim(0), shape.dim(1), shape.dim(2));
                if c_in != keep.len() {
                    return Err(PruneError::BadScoringSet {
                        detail: format!("consumer has {c_in} channels, expected {}", keep.len()),
                    });
                }
                let data = conv.weight.value.data_mut();
                for mi in 0..m {
                    for (ci, &s) in scales.iter().enumerate() {
                        let base = (mi * c_in + ci) * k * k;
                        for v in &mut data[base..base + k * k] {
                            *v *= s;
                        }
                    }
                }
            }
            Node::Linear(lin) => {
                let in_features = lin.in_features();
                if in_features != keep.len() {
                    return Err(PruneError::BadScoringSet {
                        detail: format!(
                            "consumer has {in_features} inputs, expected {}",
                            keep.len()
                        ),
                    });
                }
                let outs = lin.out_features();
                let data = lin.weight.value.data_mut();
                for o in 0..outs {
                    for (ci, &s) in scales.iter().enumerate() {
                        data[o * in_features + ci] *= s;
                    }
                }
            }
            _ => {}
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs_nn::layer::{Conv2d, GlobalAvgPool, Linear, ReLU};
    use hs_nn::surgery::{conv_sites, prune_feature_maps};
    use hs_nn::{Network, Node};
    use hs_tensor::{Rng, Shape};

    fn net_with_consumer(rng: &mut Rng) -> Network {
        let mut net = Network::new();
        net.push(Node::Conv(Conv2d::new(1, 6, 3, 1, 1, rng)));
        net.push(Node::Relu(ReLU::new()));
        net.push(Node::Conv(Conv2d::new(6, 4, 3, 1, 1, rng)));
        net.push(Node::Relu(ReLU::new()));
        net.push(Node::Gap(GlobalAvgPool::new()));
        net.push(Node::Linear(Linear::new(4, 3, rng)));
        net
    }

    #[test]
    fn prunes_zero_contribution_channels_first() {
        let mut rng = Rng::seed_from(0);
        let mut net = net_with_consumer(&mut rng);
        // Kill the consumer's sensitivity to input channels 1 and 4: the
        // optimal reconstruction prunes exactly those.
        if let Node::Conv(conv) = net.node_mut(2) {
            let shape = conv.weight.value.shape().clone();
            let (m, c_in, k) = (shape.dim(0), shape.dim(1), shape.dim(2));
            let data = conv.weight.value.data_mut();
            for mi in 0..m {
                for dead in [1usize, 4] {
                    let base = (mi * c_in + dead) * k * k;
                    for v in &mut data[base..base + k * k] {
                        *v = 0.0;
                    }
                }
            }
        }
        let site = conv_sites(&net)[0];
        let images = hs_tensor::Tensor::randn(Shape::d4(4, 1, 8, 8), &mut rng);
        let labels = [0usize; 4];
        let mut crit = ThiNet::new().samples(128);
        let mut ctx = ScoreContext::new(&mut net, site, &images, &labels, &mut rng);
        let keep = crit.keep_set(&mut ctx, 4).unwrap();
        assert_eq!(keep, vec![0, 2, 3, 5]);
    }

    #[test]
    fn full_pipeline_with_rescale_runs() {
        let mut rng = Rng::seed_from(1);
        let mut net = net_with_consumer(&mut rng);
        let site = conv_sites(&net)[0];
        let images = hs_tensor::Tensor::randn(Shape::d4(4, 1, 8, 8), &mut rng);
        let labels = [0usize; 4];
        let mut crit = ThiNet::new().samples(64);
        let keep = {
            let mut ctx = ScoreContext::new(&mut net, site, &images, &labels, &mut rng);
            crit.keep_set(&mut ctx, 3).unwrap()
        };
        prune_feature_maps(&mut net, site.conv, &keep).unwrap();
        crit.post_surgery(&mut net, site, &keep).unwrap();
        assert!(net.forward(&images, false).is_ok());
    }

    #[test]
    fn last_conv_uses_linear_consumer() {
        let mut rng = Rng::seed_from(2);
        let mut net = net_with_consumer(&mut rng);
        let site = conv_sites(&net)[1]; // consumer is the linear head
        let images = hs_tensor::Tensor::randn(Shape::d4(4, 1, 8, 8), &mut rng);
        let labels = [0usize; 4];
        let mut crit = ThiNet::new().samples(64);
        let mut ctx = ScoreContext::new(&mut net, site, &images, &labels, &mut rng);
        let keep = crit.keep_set(&mut ctx, 2).unwrap();
        assert_eq!(keep.len(), 2);
    }

    #[test]
    fn keep_set_validates_count() {
        let mut rng = Rng::seed_from(3);
        let mut net = net_with_consumer(&mut rng);
        let site = conv_sites(&net)[0];
        let images = hs_tensor::Tensor::randn(Shape::d4(2, 1, 8, 8), &mut rng);
        let labels = [0usize; 2];
        let mut ctx = ScoreContext::new(&mut net, site, &images, &labels, &mut rng);
        assert!(ThiNet::new().keep_set(&mut ctx, 0).is_err());
        assert!(ThiNet::new().keep_set(&mut ctx, 7).is_err());
    }
}
