//! Error type for pruning operations.

use std::error::Error;
use std::fmt;

use hs_nn::NnError;
use hs_tensor::TensorError;

/// Error returned by pruning criteria and drivers.
#[derive(Debug, Clone, PartialEq)]
pub enum PruneError {
    /// An underlying network operation failed.
    Nn(NnError),
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// The requested keep count is invalid for the layer.
    BadKeepCount {
        /// Requested number of maps to keep.
        keep: usize,
        /// Available feature maps.
        available: usize,
    },
    /// The criterion needs data but the scoring set is unusable.
    BadScoringSet {
        /// Human-readable detail.
        detail: String,
    },
}

impl fmt::Display for PruneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PruneError::Nn(e) => write!(f, "network error: {e}"),
            PruneError::Tensor(e) => write!(f, "tensor error: {e}"),
            PruneError::BadKeepCount { keep, available } => {
                write!(f, "cannot keep {keep} of {available} feature maps")
            }
            PruneError::BadScoringSet { detail } => write!(f, "bad scoring set: {detail}"),
        }
    }
}

impl Error for PruneError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PruneError::Nn(e) => Some(e),
            PruneError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for PruneError {
    fn from(e: NnError) -> Self {
        PruneError::Nn(e)
    }
}

impl From<TensorError> for PruneError {
    fn from(e: TensorError) -> Self {
        PruneError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e = PruneError::BadKeepCount {
            keep: 9,
            available: 4,
        };
        assert!(e.to_string().contains("9 of 4"));
        let e: PruneError = TensorError::Empty { op: "stack" }.into();
        assert!(Error::source(&e).is_some());
    }
}
