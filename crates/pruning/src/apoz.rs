//! APoZ: average percentage of zeros (Hu et al., 2016).

use crate::criterion::{PruningCriterion, ScoreContext};
use crate::error::PruneError;

/// Hu et al. (2016), "Network Trimming": feature maps whose post-ReLU
/// activations are mostly zero carry little signal and are pruned first.
/// The importance score here is `1 − APoZ`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Apoz;

impl Apoz {
    /// Creates the criterion.
    pub fn new() -> Self {
        Apoz
    }
}

impl PruningCriterion for Apoz {
    fn name(&self) -> &'static str {
        "APoZ"
    }

    fn score(&mut self, ctx: &mut ScoreContext<'_>) -> Result<Vec<f32>, PruneError> {
        let channels = ctx.channels()?;
        let acts = ctx.site_activations()?;
        let shape = acts.shape();
        if shape.rank() != 4 || shape.dim(1) != channels {
            return Err(PruneError::BadScoringSet {
                detail: format!(
                    "site activations have shape {shape}, expected [N, {channels}, H, W]"
                ),
            });
        }
        let (n, plane) = (shape.dim(0), shape.dim(2) * shape.dim(3));
        let mut zeros = vec![0u64; channels];
        for b in 0..n {
            for (c, z) in zeros.iter_mut().enumerate() {
                let base = (b * channels + c) * plane;
                *z += acts.data()[base..base + plane]
                    .iter()
                    .filter(|&&v| v <= 0.0)
                    .count() as u64;
            }
        }
        let total = (n * plane) as f32;
        Ok(zeros.iter().map(|&z| 1.0 - z as f32 / total).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs_nn::layer::{Conv2d, ReLU};
    use hs_nn::surgery::conv_sites;
    use hs_nn::{Network, Node};
    use hs_tensor::{Rng, Shape, Tensor};

    #[test]
    fn dead_channels_score_lowest() {
        let mut rng = Rng::seed_from(0);
        let mut net = Network::new();
        let mut conv = Conv2d::new(1, 3, 1, 1, 0, &mut rng);
        // Filter 0: large negative bias → always zero after ReLU.
        // Filter 1: passes input through. Filter 2: large positive bias.
        conv.weight.value = Tensor::from_vec(Shape::d4(3, 1, 1, 1), vec![0.0, 1.0, 0.0]).unwrap();
        conv.bias.value = Tensor::from_vec(Shape::d1(3), vec![-10.0, 0.0, 10.0]).unwrap();
        net.push(Node::Conv(conv));
        net.push(Node::Relu(ReLU::new()));
        let site = conv_sites(&net)[0];
        let images = Tensor::randn(Shape::d4(4, 1, 5, 5), &mut rng);
        let labels = [0usize; 4];
        let mut ctx = ScoreContext::new(&mut net, site, &images, &labels, &mut rng);
        let scores = Apoz::new().score(&mut ctx).unwrap();
        assert!(
            scores[0] < 1e-6,
            "dead channel must score ~0, got {}",
            scores[0]
        );
        assert!(
            (scores[2] - 1.0).abs() < 1e-6,
            "always-on channel must score 1"
        );
        assert!(
            scores[1] > 0.2 && scores[1] < 0.8,
            "pass-through ~half zeros: {}",
            scores[1]
        );
        // keep_set drops the dead channel first.
        let keep = Apoz::new().keep_set(&mut ctx, 2).unwrap();
        assert_eq!(keep, vec![1, 2]);
    }
}
