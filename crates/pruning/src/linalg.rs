//! Minimal dense linear algebra for ThiNet's least-squares rescale.

use crate::error::PruneError;

/// Solves the ridge-regularized least-squares problem
/// `min_s ‖G·s − y‖² + λ‖s‖²` via the normal equations
/// `(GᵀG + λI)·s = Gᵀy`, with `G` given row-major as `rows × cols`.
///
/// # Errors
///
/// Returns [`PruneError::BadScoringSet`] if the dimensions are
/// inconsistent or the normal matrix is numerically singular even after
/// regularization.
pub fn ridge_least_squares(
    g: &[f32],
    y: &[f32],
    rows: usize,
    cols: usize,
    lambda: f32,
) -> Result<Vec<f32>, PruneError> {
    if g.len() != rows * cols || y.len() != rows || cols == 0 {
        return Err(PruneError::BadScoringSet {
            detail: format!(
                "least squares dims: g {} (want {rows}x{cols}), y {}",
                g.len(),
                y.len()
            ),
        });
    }
    // Normal matrix and right-hand side in f64 for stability.
    let mut a = vec![0.0f64; cols * cols];
    let mut b = vec![0.0f64; cols];
    for r in 0..rows {
        let row = &g[r * cols..(r + 1) * cols];
        for i in 0..cols {
            let gi = row[i] as f64;
            if gi == 0.0 {
                continue;
            }
            b[i] += gi * y[r] as f64;
            for (j, &gj) in row.iter().enumerate() {
                a[i * cols + j] += gi * gj as f64;
            }
        }
    }
    for i in 0..cols {
        a[i * cols + i] += lambda.max(1e-8) as f64;
    }
    solve_in_place(&mut a, &mut b, cols)?;
    Ok(b.into_iter().map(|v| v as f32).collect())
}

/// Gaussian elimination with partial pivoting; `a` is `n × n` row-major,
/// `b` the right-hand side; the solution overwrites `b`.
fn solve_in_place(a: &mut [f64], b: &mut [f64], n: usize) -> Result<(), PruneError> {
    for col in 0..n {
        // Pivot.
        let mut pivot = col;
        for row in col + 1..n {
            if a[row * n + col].abs() > a[pivot * n + col].abs() {
                pivot = row;
            }
        }
        if a[pivot * n + col].abs() < 1e-12 {
            return Err(PruneError::BadScoringSet {
                detail: "singular normal matrix in least squares".to_string(),
            });
        }
        if pivot != col {
            for k in 0..n {
                a.swap(col * n + k, pivot * n + k);
            }
            b.swap(col, pivot);
        }
        // Eliminate below.
        let diag = a[col * n + col];
        for row in col + 1..n {
            let factor = a[row * n + col] / diag;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[row * n + k] -= factor * a[col * n + k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    for col in (0..n).rev() {
        let mut acc = b[col];
        for k in col + 1..n {
            acc -= a[col * n + k] * b[k];
        }
        b[col] = acc / a[col * n + col];
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_solution() {
        // G = [[1,0],[0,2],[1,1]], s* = [3, -1] → y = [3, -2, 2].
        let g = [1.0, 0.0, 0.0, 2.0, 1.0, 1.0];
        let y = [3.0, -2.0, 2.0];
        let s = ridge_least_squares(&g, &y, 3, 2, 1e-8).unwrap();
        assert!((s[0] - 3.0).abs() < 1e-3, "{s:?}");
        assert!((s[1] + 1.0).abs() < 1e-3, "{s:?}");
    }

    #[test]
    fn overdetermined_noisy_fit_is_reasonable() {
        // y ≈ 2·g with noise; the fit should land near 2.
        let g: Vec<f32> = (0..50).map(|i| (i as f32) / 10.0).collect();
        let y: Vec<f32> = g
            .iter()
            .enumerate()
            .map(|(i, &v)| 2.0 * v + if i % 2 == 0 { 0.05 } else { -0.05 })
            .collect();
        let s = ridge_least_squares(&g, &y, 50, 1, 1e-6).unwrap();
        assert!((s[0] - 2.0).abs() < 0.02, "{s:?}");
    }

    #[test]
    fn regularization_handles_collinear_columns() {
        // Two identical columns: singular without ridge.
        let g = [1.0, 1.0, 2.0, 2.0, 3.0, 3.0];
        let y = [2.0, 4.0, 6.0];
        let s = ridge_least_squares(&g, &y, 3, 2, 1e-3).unwrap();
        // Together they must act like a coefficient of ~2.
        assert!((s[0] + s[1] - 2.0).abs() < 0.05, "{s:?}");
    }

    #[test]
    fn rejects_bad_dims() {
        assert!(ridge_least_squares(&[1.0; 5], &[1.0; 2], 2, 2, 0.0).is_err());
        assert!(ridge_least_squares(&[], &[], 0, 0, 0.0).is_err());
    }
}
