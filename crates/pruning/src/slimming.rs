//! Network Slimming: batch-norm scale-factor pruning (Liu et al.,
//! ICCV 2017 — the paper's reference [7]).

use hs_nn::Node;

use crate::criterion::{PruningCriterion, ScoreContext};
use crate::error::PruneError;

/// Liu et al. (2017), "Learning Efficient Convolutional Networks through
/// Network Slimming": each feature map's importance is the magnitude of
/// its batch-norm scale factor `|γ|` — a channel whose γ has shrunk
/// towards zero barely influences the output and is pruned first.
///
/// The original trains with an L1 penalty on γ to *induce* that
/// sparsity; here the criterion reads the γ values the ordinary
/// weight-decayed training produced (weight decay on BN affine terms is
/// off by default in this repository, matching common practice, so γ
/// magnitudes reflect learned channel utility).
#[derive(Debug, Clone, Copy, Default)]
pub struct Slimming;

impl Slimming {
    /// Creates the criterion.
    pub fn new() -> Self {
        Slimming
    }
}

impl PruningCriterion for Slimming {
    fn name(&self) -> &'static str {
        "Slimming'17"
    }

    fn score(&mut self, ctx: &mut ScoreContext<'_>) -> Result<Vec<f32>, PruneError> {
        let bn_idx = ctx.site.bn.ok_or_else(|| PruneError::BadScoringSet {
            detail: "network slimming needs a batch norm after the conv".to_string(),
        })?;
        match ctx.net.node(bn_idx) {
            Node::Bn(bn) => Ok(bn.gamma.value.data().iter().map(|g| g.abs()).collect()),
            _ => Err(PruneError::BadScoringSet {
                detail: format!("site.bn index {bn_idx} is not a batch norm"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs_nn::layer::{BatchNorm2d, Conv2d, ReLU};
    use hs_nn::surgery::conv_sites;
    use hs_nn::{Network, Node};
    use hs_tensor::{Rng, Shape, Tensor};

    #[test]
    fn scores_are_gamma_magnitudes() {
        let mut rng = Rng::seed_from(0);
        let mut net = Network::new();
        net.push(Node::Conv(Conv2d::new(1, 3, 3, 1, 1, &mut rng)));
        let mut bn = BatchNorm2d::new(3);
        bn.gamma.value = Tensor::from_vec(Shape::d1(3), vec![0.1, -2.0, 0.5]).unwrap();
        net.push(Node::Bn(bn));
        net.push(Node::Relu(ReLU::new()));
        let site = conv_sites(&net)[0];
        let images = Tensor::zeros(Shape::d4(1, 1, 4, 4));
        let labels = [0usize];
        let mut ctx = ScoreContext::new(&mut net, site, &images, &labels, &mut rng);
        let mut crit = Slimming::new();
        assert_eq!(crit.score(&mut ctx).unwrap(), vec![0.1, 2.0, 0.5]);
        assert_eq!(crit.keep_set(&mut ctx, 2).unwrap(), vec![1, 2]);
    }

    #[test]
    fn requires_batch_norm() {
        let mut rng = Rng::seed_from(1);
        let mut net = Network::new();
        net.push(Node::Conv(Conv2d::new(1, 3, 3, 1, 1, &mut rng)));
        net.push(Node::Relu(ReLU::new()));
        let site = conv_sites(&net)[0];
        let images = Tensor::zeros(Shape::d4(1, 1, 4, 4));
        let labels = [0usize];
        let mut ctx = ScoreContext::new(&mut net, site, &images, &labels, &mut rng);
        assert!(matches!(
            Slimming::new().score(&mut ctx),
            Err(PruneError::BadScoringSet { .. })
        ));
    }
}
