//! The common interface of all baseline pruning criteria.

use hs_nn::surgery::ConvSite;
use hs_nn::Network;
use hs_tensor::{Rng, Tensor};

use crate::error::PruneError;

/// Everything a criterion may look at when scoring one convolution's
/// feature maps: the network, the conv's location, and a labelled scoring
/// batch (a subset of the training set).
#[derive(Debug)]
pub struct ScoreContext<'a> {
    /// The network under pruning (criteria may run forward passes).
    pub net: &'a mut Network,
    /// Site of the convolution being pruned.
    pub site: ConvSite,
    /// Scoring images, `[N, C, H, W]`.
    pub images: &'a Tensor,
    /// Scoring labels.
    pub labels: &'a [usize],
    /// Criterion-private randomness.
    pub rng: &'a mut Rng,
}

impl<'a> ScoreContext<'a> {
    /// Bundles the borrowed pieces into a context.
    pub fn new(
        net: &'a mut Network,
        site: ConvSite,
        images: &'a Tensor,
        labels: &'a [usize],
        rng: &'a mut Rng,
    ) -> Self {
        ScoreContext {
            net,
            site,
            images,
            labels,
            rng,
        }
    }

    /// Feature-map count of the conv at this site.
    ///
    /// # Errors
    ///
    /// Returns an error if the site's conv index is stale.
    pub fn channels(&self) -> Result<usize, PruneError> {
        Ok(self.net.conv(self.site.conv)?.out_channels())
    }

    /// Runs the scoring batch through the network and returns the
    /// activations at the site's mask node (post conv/bn/relu).
    ///
    /// # Errors
    ///
    /// Propagates network errors.
    pub fn site_activations(&mut self) -> Result<Tensor, PruneError> {
        let (_, mut captured) =
            self.net
                .forward_capture(self.images, &[self.site.mask_node], false)?;
        Ok(captured.remove(0))
    }
}

/// A structured-pruning criterion: given a conv site, decide which
/// feature maps to keep.
///
/// Implementors either override [`keep_set`](Self::keep_set) directly
/// (subset-selection methods like ThiNet) or implement
/// [`score`](Self::score) and inherit top-k selection.
pub trait PruningCriterion: std::fmt::Debug {
    /// Short display name (`"Li'17"`, `"APoZ"`, …).
    fn name(&self) -> &'static str;

    /// Per-feature-map importance scores (higher = more worth keeping).
    ///
    /// # Errors
    ///
    /// Returns [`PruneError`] when the criterion cannot compute scores
    /// (bad site, failed forward pass, …).
    fn score(&mut self, ctx: &mut ScoreContext<'_>) -> Result<Vec<f32>, PruneError>;

    /// The sorted indices of the `keep` feature maps to retain.
    ///
    /// # Errors
    ///
    /// Returns [`PruneError::BadKeepCount`] if `keep` is zero or exceeds
    /// the layer's map count, plus anything [`score`](Self::score) can
    /// return.
    fn keep_set(
        &mut self,
        ctx: &mut ScoreContext<'_>,
        keep: usize,
    ) -> Result<Vec<usize>, PruneError> {
        let channels = ctx.channels()?;
        if keep == 0 || keep > channels {
            return Err(PruneError::BadKeepCount {
                keep,
                available: channels,
            });
        }
        let scores = self.score(ctx)?;
        if scores.len() != channels {
            return Err(PruneError::BadScoringSet {
                detail: format!(
                    "criterion returned {} scores for {channels} maps",
                    scores.len()
                ),
            });
        }
        Ok(top_k_indices(&scores, keep))
    }

    /// Hook invoked by the pruning driver *after* physical surgery, with
    /// the keep set that was applied. Reconstruction methods (ThiNet) use
    /// it to rewrite the consumer's weights; the default is a no-op.
    ///
    /// # Errors
    ///
    /// Implementations may propagate network errors.
    fn post_surgery(
        &mut self,
        net: &mut Network,
        site: ConvSite,
        keep: &[usize],
    ) -> Result<(), PruneError> {
        let _ = (net, site, keep);
        Ok(())
    }
}

/// Indices of the `k` largest scores, returned sorted ascending.
/// Ties break towards the lower index, so results are deterministic.
///
/// # Panics
///
/// Panics if `k > scores.len()`.
pub fn top_k_indices(scores: &[f32], k: usize) -> Vec<usize> {
    assert!(k <= scores.len(), "k {} exceeds {} scores", k, scores.len());
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut keep: Vec<usize> = order[..k].to_vec();
    keep.sort_unstable();
    keep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_selects_largest() {
        assert_eq!(top_k_indices(&[0.1, 0.9, 0.5, 0.7], 2), vec![1, 3]);
        assert_eq!(top_k_indices(&[3.0, 2.0, 1.0], 3), vec![0, 1, 2]);
    }

    #[test]
    fn top_k_breaks_ties_deterministically() {
        assert_eq!(top_k_indices(&[1.0, 1.0, 1.0, 1.0], 2), vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn top_k_rejects_oversize() {
        top_k_indices(&[1.0], 2);
    }

    #[test]
    fn top_k_handles_nan_without_panicking() {
        let keep = top_k_indices(&[f32::NAN, 1.0, 0.5], 1);
        assert_eq!(keep.len(), 1);
    }
}
