//! AutoPruner: end-to-end trained channel gates (Luo & Wu, 2018).

use hs_nn::loss::softmax_cross_entropy;

use crate::criterion::{PruningCriterion, ScoreContext};
use crate::error::PruneError;

/// AutoPruner attaches a scaled-sigmoid gate `σ(T·α_c)` to each feature
/// map and trains the gate parameters `α` end-to-end against the task
/// loss plus a sparsity penalty that pulls the mean gate towards the
/// target keep ratio. The temperature `T` is annealed upward so the
/// gates polarize towards 0/1; the final gate values are the importance
/// scores.
///
/// The gate gradient is obtained through the network's mask-gradient
/// recording ([`hs_nn::Network::take_mask_grad`]).
#[derive(Debug, Clone)]
pub struct AutoPruner {
    iterations: usize,
    lr: f32,
    sparsity_weight: f32,
    temp_start: f32,
    temp_end: f32,
    target_keep_ratio: f32,
}

impl AutoPruner {
    /// Creates AutoPruner with 30 gate-training iterations targeting a
    /// 50% keep ratio.
    pub fn new() -> Self {
        AutoPruner {
            iterations: 30,
            lr: 0.5,
            sparsity_weight: 2.0,
            temp_start: 1.0,
            temp_end: 10.0,
            target_keep_ratio: 0.5,
        }
    }

    /// Sets the gate-training iteration count (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `iterations` is zero.
    pub fn iterations(mut self, iterations: usize) -> Self {
        assert!(iterations > 0, "AutoPruner needs at least one iteration");
        self.iterations = iterations;
        self
    }

    /// Sets the keep ratio the sparsity penalty targets (builder style).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < ratio <= 1`.
    pub fn target_keep_ratio(mut self, ratio: f32) -> Self {
        assert!(ratio > 0.0 && ratio <= 1.0, "keep ratio must be in (0, 1]");
        self.target_keep_ratio = ratio;
        self
    }
}

impl Default for AutoPruner {
    fn default() -> Self {
        AutoPruner::new()
    }
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

impl PruningCriterion for AutoPruner {
    fn name(&self) -> &'static str {
        "AutoPruner'18"
    }

    fn score(&mut self, ctx: &mut ScoreContext<'_>) -> Result<Vec<f32>, PruneError> {
        let channels = ctx.channels()?;
        let site = ctx.site;
        // Gate parameters start slightly positive: all channels initially
        // pass (σ(0.5) ≈ 0.62), matching the original's "start open".
        let mut alpha = vec![0.5f32; channels];
        ctx.net.set_mask_grad_enabled(true);
        let result = (|| -> Result<Vec<f32>, PruneError> {
            for it in 0..self.iterations {
                let t = self.temp_start
                    + (self.temp_end - self.temp_start) * it as f32 / self.iterations.max(1) as f32;
                let gates: Vec<f32> = alpha.iter().map(|&a| sigmoid(t * a)).collect();
                ctx.net
                    .set_channel_mask(site.mask_node, Some(gates.clone()));
                let logits = ctx.net.forward(ctx.images, true)?;
                let (_, grad) = softmax_cross_entropy(&logits, ctx.labels)?;
                ctx.net.backward(&grad)?;
                // Gates are the only thing we train here: discard the
                // parameter gradients the backward pass accumulated.
                ctx.net.zero_grad();
                let dmask = ctx.net.take_mask_grad(site.mask_node).ok_or_else(|| {
                    PruneError::BadScoringSet {
                        detail: "mask gradient was not recorded".to_string(),
                    }
                })?;
                // Sparsity penalty: (mean(g) − r)².
                let mean_gate: f32 = gates.iter().sum::<f32>() / channels as f32;
                let sparsity_pull =
                    2.0 * self.sparsity_weight * (mean_gate - self.target_keep_ratio)
                        / channels as f32;
                for ((a, &g), &dm) in alpha.iter_mut().zip(&gates).zip(&dmask) {
                    let dsig = t * g * (1.0 - g);
                    let grad_a = (dm + sparsity_pull) * dsig;
                    *a -= self.lr * grad_a;
                }
            }
            let t = self.temp_end;
            Ok(alpha.iter().map(|&a| sigmoid(t * a)).collect())
        })();
        // Always restore the network, even on error.
        ctx.net.set_channel_mask(site.mask_node, None);
        ctx.net.set_mask_grad_enabled(false);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs_nn::layer::{Conv2d, GlobalAvgPool, Linear, ReLU};
    use hs_nn::surgery::conv_sites;
    use hs_nn::{Network, Node};
    use hs_tensor::{Rng, Shape, Tensor};

    fn gate_test_net(rng: &mut Rng) -> Network {
        let mut net = Network::new();
        net.push(Node::Conv(Conv2d::new(1, 6, 3, 1, 1, rng)));
        net.push(Node::Relu(ReLU::new()));
        net.push(Node::Gap(GlobalAvgPool::new()));
        net.push(Node::Linear(Linear::new(6, 2, rng)));
        net
    }

    #[test]
    fn gates_train_and_polarize() {
        let mut rng = Rng::seed_from(0);
        let mut net = gate_test_net(&mut rng);
        let site = conv_sites(&net)[0];
        let images = Tensor::randn(Shape::d4(8, 1, 6, 6), &mut rng);
        let labels: Vec<usize> = (0..8).map(|i| i % 2).collect();
        let mut crit = AutoPruner::new().iterations(40).target_keep_ratio(0.5);
        let mut ctx = ScoreContext::new(&mut net, site, &images, &labels, &mut rng);
        let scores = crit.score(&mut ctx).unwrap();
        assert_eq!(scores.len(), 6);
        assert!(scores.iter().all(|s| (0.0..=1.0).contains(s)));
        // The sparsity penalty must actually bite: not all gates stay at
        // their initial wide-open value.
        let spread = scores.iter().cloned().fold(f32::NEG_INFINITY, f32::max)
            - scores.iter().cloned().fold(f32::INFINITY, f32::min);
        assert!(spread > 0.01, "gates did not differentiate: {scores:?}");
    }

    #[test]
    fn network_is_restored_after_scoring() {
        let mut rng = Rng::seed_from(1);
        let mut net = gate_test_net(&mut rng);
        let site = conv_sites(&net)[0];
        let images = Tensor::randn(Shape::d4(4, 1, 6, 6), &mut rng);
        let labels = vec![0usize, 1, 0, 1];
        let before = net.forward(&images, false).unwrap();
        let mut crit = AutoPruner::new().iterations(5);
        {
            let mut ctx = ScoreContext::new(&mut net, site, &images, &labels, &mut rng);
            crit.score(&mut ctx).unwrap();
        }
        assert!(
            net.channel_mask(site.mask_node).is_none(),
            "mask must be cleared"
        );
        let after = net.forward(&images, false).unwrap();
        // BN running stats move during gate training (train-mode
        // forwards), so compare only approximately.
        for (a, b) in before.data().iter().zip(after.data()) {
            assert!((a - b).abs() < 0.5, "network drifted too far: {a} vs {b}");
        }
    }

    #[test]
    fn keep_set_comes_from_gate_ranking() {
        let mut rng = Rng::seed_from(2);
        let mut net = gate_test_net(&mut rng);
        let site = conv_sites(&net)[0];
        let images = Tensor::randn(Shape::d4(8, 1, 6, 6), &mut rng);
        let labels: Vec<usize> = (0..8).map(|i| i % 2).collect();
        let mut crit = AutoPruner::new().iterations(15).target_keep_ratio(0.5);
        let mut ctx = ScoreContext::new(&mut net, site, &images, &labels, &mut rng);
        let keep = crit.keep_set(&mut ctx, 3).unwrap();
        assert_eq!(keep.len(), 3);
        assert!(keep.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn builder_validates() {
        let r = std::panic::catch_unwind(|| AutoPruner::new().iterations(0));
        assert!(r.is_err());
        let r = std::panic::catch_unwind(|| AutoPruner::new().target_keep_ratio(0.0));
        assert!(r.is_err());
    }
}
