//! Li'17: filter pruning by absolute weight sum.

use crate::criterion::{PruningCriterion, ScoreContext};
use crate::error::PruneError;

/// Li et al. (ICLR 2017): a filter's importance is the L1 norm of its
/// weights; the smallest-norm filters are pruned.
///
/// This is the paper's main baseline ("Li'17" in every table).
#[derive(Debug, Clone, Copy, Default)]
pub struct L1Norm;

impl L1Norm {
    /// Creates the criterion.
    pub fn new() -> Self {
        L1Norm
    }
}

impl PruningCriterion for L1Norm {
    fn name(&self) -> &'static str {
        "Li'17"
    }

    fn score(&mut self, ctx: &mut ScoreContext<'_>) -> Result<Vec<f32>, PruneError> {
        let conv = ctx.net.conv(ctx.site.conv)?;
        let weight = &conv.weight.value;
        let n = conv.out_channels();
        let per_filter = weight.len() / n;
        let mut scores = Vec::with_capacity(n);
        for f in 0..n {
            let slice = &weight.data()[f * per_filter..(f + 1) * per_filter];
            scores.push(slice.iter().map(|w| w.abs()).sum());
        }
        Ok(scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs_nn::layer::Conv2d;
    use hs_nn::surgery::conv_sites;
    use hs_nn::{Network, Node};
    use hs_tensor::{Rng, Shape, Tensor};

    #[test]
    fn scores_are_filter_l1_norms() {
        let mut rng = Rng::seed_from(0);
        let mut net = Network::new();
        let mut conv = Conv2d::new(1, 3, 1, 1, 0, &mut rng);
        conv.weight.value = Tensor::from_vec(Shape::d4(3, 1, 1, 1), vec![0.5, -2.0, 1.0]).unwrap();
        net.push(Node::Conv(conv));
        let site = conv_sites(&net)[0];
        let images = Tensor::zeros(Shape::d4(1, 1, 4, 4));
        let labels = [0usize];
        let mut ctx = ScoreContext::new(&mut net, site, &images, &labels, &mut rng);
        let mut crit = L1Norm::new();
        assert_eq!(crit.score(&mut ctx).unwrap(), vec![0.5, 2.0, 1.0]);
        // keep_set keeps the two largest-norm filters.
        assert_eq!(crit.keep_set(&mut ctx, 2).unwrap(), vec![1, 2]);
        assert_eq!(crit.name(), "Li'17");
    }

    #[test]
    fn keep_set_validates_count() {
        let mut rng = Rng::seed_from(1);
        let mut net = Network::new();
        net.push(Node::Conv(Conv2d::new(1, 3, 1, 1, 0, &mut rng)));
        let site = conv_sites(&net)[0];
        let images = Tensor::zeros(Shape::d4(1, 1, 4, 4));
        let labels = [0usize];
        let mut ctx = ScoreContext::new(&mut net, site, &images, &labels, &mut rng);
        assert!(L1Norm::new().keep_set(&mut ctx, 0).is_err());
        assert!(L1Norm::new().keep_set(&mut ctx, 4).is_err());
    }
}
