//! Whole-model pruning pipelines: iterate layers front-to-back, prune
//! each with a criterion, fine-tune, and record the per-layer trace the
//! paper reports in Table 1.

use hs_data::Dataset;
use hs_nn::accounting::{analyze, NetworkCost};
use hs_nn::optim::Sgd;
use hs_nn::surgery::{conv_sites, prune_feature_maps};
use hs_nn::{models, train, Network};
use hs_tensor::{Rng, Tensor};

use crate::criterion::{PruningCriterion, ScoreContext};
use crate::error::PruneError;

/// Fine-tuning configuration used between pruning steps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FineTune {
    /// Epochs of SGD after each pruned layer.
    pub epochs: usize,
    /// Learning rate (constant, as in the paper).
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// L2 weight decay (the paper uses 5e-4).
    pub weight_decay: f32,
    /// Mini-batch size.
    pub batch_size: usize,
}

impl Default for FineTune {
    fn default() -> Self {
        FineTune {
            epochs: 4,
            lr: 0.02,
            momentum: 0.9,
            weight_decay: 5e-4,
            batch_size: 32,
        }
    }
}

impl FineTune {
    /// Runs this fine-tuning schedule on a network.
    ///
    /// # Errors
    ///
    /// Propagates training errors.
    pub fn run(
        &self,
        net: &mut Network,
        images: &Tensor,
        labels: &[usize],
        rng: &mut Rng,
    ) -> Result<(), PruneError> {
        if self.epochs == 0 {
            return Ok(());
        }
        let mut opt = Sgd::new(self.lr)
            .momentum(self.momentum)
            .weight_decay(self.weight_decay);
        train::fit(
            net,
            &mut opt,
            images,
            labels,
            self.batch_size,
            self.epochs,
            rng,
        )?;
        Ok(())
    }
}

/// Per-layer record of an iterative whole-model pruning run — one row of
/// the paper's Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerTrace {
    /// Node index of the pruned convolution.
    pub conv_node: usize,
    /// Position of the conv among the network's convs (0-based).
    pub conv_ordinal: usize,
    /// Feature maps before pruning this layer.
    pub maps_before: usize,
    /// Feature maps kept.
    pub maps_after: usize,
    /// Total model parameters after pruning this layer.
    pub params_after: u64,
    /// Total model MACs after pruning this layer.
    pub flops_after: u64,
    /// Test accuracy immediately after surgery, before fine-tuning —
    /// the *inception* accuracy ("ACC. (%, INC)").
    pub inception_accuracy: f32,
    /// Test accuracy after this layer's fine-tuning ("ACC. (%, W/FT)").
    pub finetuned_accuracy: f32,
}

/// Outcome of a whole-model pruning run.
#[derive(Debug, Clone, PartialEq)]
pub struct PruneOutcome {
    /// Name of the criterion that produced this run.
    pub criterion: &'static str,
    /// Per-layer trace in pruning order.
    pub traces: Vec<LayerTrace>,
    /// Final test accuracy.
    pub final_accuracy: f32,
    /// Final cost breakdown.
    pub cost: NetworkCost,
}

/// How many scoring images criteria see (a subset of the training set —
/// class-balanced because the generators interleave classes).
const SCORING_IMAGES: usize = 64;

/// Prunes every convolution of `net` front-to-back with `criterion`,
/// keeping `keep_ratio` of each layer's feature maps (the paper's
/// compression ratio: `keep_ratio = 1/sp`), fine-tuning after each layer.
///
/// # Errors
///
/// Propagates criterion, surgery and training errors.
pub fn prune_whole_model(
    net: &mut Network,
    criterion: &mut dyn PruningCriterion,
    keep_ratio: f32,
    ds: &Dataset,
    ft: &FineTune,
    rng: &mut Rng,
) -> Result<PruneOutcome, PruneError> {
    if !(0.0..=1.0).contains(&keep_ratio) || keep_ratio == 0.0 {
        return Err(PruneError::BadKeepCount {
            keep: 0,
            available: 0,
        });
    }
    let scoring_n = SCORING_IMAGES.min(ds.train_labels.len());
    let scoring_idx: Vec<usize> = (0..scoring_n).collect();
    let scoring_images = ds.train_images.index_select(0, &scoring_idx)?;
    let scoring_labels: Vec<usize> = ds.train_labels[..scoring_n].to_vec();

    let mut traces = Vec::new();
    let conv_count = net.conv_indices().len();
    for ordinal in 0..conv_count {
        let site = conv_sites(net)[ordinal];
        let maps_before = net.conv(site.conv)?.out_channels();
        let keep_count = ((maps_before as f32 * keep_ratio).round() as usize).clamp(1, maps_before);
        let keep = {
            let mut ctx = ScoreContext::new(net, site, &scoring_images, &scoring_labels, rng);
            criterion.keep_set(&mut ctx, keep_count)?
        };
        prune_feature_maps(net, site.conv, &keep)?;
        criterion.post_surgery(net, site, &keep)?;
        let inception_accuracy = train::evaluate(net, &ds.test_images, &ds.test_labels, 64)?;
        ft.run(net, &ds.train_images, &ds.train_labels, rng)?;
        let finetuned_accuracy = train::evaluate(net, &ds.test_images, &ds.test_labels, 64)?;
        let cost = analyze(net, ds.channels(), ds.image_size())?;
        traces.push(LayerTrace {
            conv_node: site.conv,
            conv_ordinal: ordinal,
            maps_before,
            maps_after: keep.len(),
            params_after: cost.total_params,
            flops_after: cost.total_flops,
            inception_accuracy,
            finetuned_accuracy,
        });
    }
    let final_accuracy = train::evaluate(net, &ds.test_images, &ds.test_labels, 64)?;
    let cost = analyze(net, ds.channels(), ds.image_size())?;
    Ok(PruneOutcome {
        criterion: criterion.name(),
        traces,
        final_accuracy,
        cost,
    })
}

/// Prunes a *single* layer (no fine-tuning) and reports the inception
/// accuracy — the measurement behind the paper's Figure 3.
///
/// The network is pruned in place; callers who need the original should
/// clone first.
///
/// # Errors
///
/// Propagates criterion and surgery errors.
pub fn prune_single_layer(
    net: &mut Network,
    criterion: &mut dyn PruningCriterion,
    conv_ordinal: usize,
    keep_ratio: f32,
    ds: &Dataset,
    rng: &mut Rng,
) -> Result<f32, PruneError> {
    let sites = conv_sites(net);
    let site = *sites.get(conv_ordinal).ok_or(PruneError::BadScoringSet {
        detail: format!(
            "conv ordinal {conv_ordinal} out of range ({} convs)",
            sites.len()
        ),
    })?;
    let maps = net.conv(site.conv)?.out_channels();
    let keep_count = ((maps as f32 * keep_ratio).round() as usize).clamp(1, maps);
    let scoring_n = SCORING_IMAGES.min(ds.train_labels.len());
    let idx: Vec<usize> = (0..scoring_n).collect();
    let scoring_images = ds.train_images.index_select(0, &idx)?;
    let scoring_labels: Vec<usize> = ds.train_labels[..scoring_n].to_vec();
    let keep = {
        let mut ctx = ScoreContext::new(net, site, &scoring_images, &scoring_labels, rng);
        criterion.keep_set(&mut ctx, keep_count)?
    };
    prune_feature_maps(net, site.conv, &keep)?;
    criterion.post_surgery(net, site, &keep)?;
    Ok(train::evaluate(net, &ds.test_images, &ds.test_labels, 64)?)
}

/// The "from scratch" baseline: re-initializes the (already pruned)
/// architecture and trains it with the given budget, returning the final
/// test accuracy.
///
/// # Errors
///
/// Propagates training errors.
pub fn train_from_scratch(
    net: &Network,
    ds: &Dataset,
    epochs: usize,
    ft: &FineTune,
    rng: &mut Rng,
) -> Result<f32, PruneError> {
    let mut fresh = net.clone();
    models::reinitialize(&mut fresh, rng);
    let schedule = FineTune { epochs, ..*ft };
    schedule.run(&mut fresh, &ds.train_images, &ds.train_labels, rng)?;
    Ok(train::evaluate(
        &mut fresh,
        &ds.test_images,
        &ds.test_labels,
        64,
    )?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::l1::L1Norm;
    use crate::random::Random;
    use hs_data::DatasetSpec;

    fn tiny_ds() -> Dataset {
        Dataset::generate(
            &DatasetSpec::cifar_like()
                .classes(4)
                .train_per_class(8)
                .test_per_class(4)
                .image_size(8),
        )
        .unwrap()
    }

    fn tiny_vgg(ds: &Dataset, rng: &mut Rng) -> Network {
        models::vgg11(ds.channels(), ds.num_classes(), ds.image_size(), 0.125, rng).unwrap()
    }

    #[test]
    fn whole_model_prune_halves_every_layer() {
        let ds = tiny_ds();
        let mut rng = Rng::seed_from(0);
        let mut net = tiny_vgg(&ds, &mut rng);
        let before = analyze(&net, 3, 8).unwrap();
        let ft = FineTune {
            epochs: 1,
            ..FineTune::default()
        };
        let outcome =
            prune_whole_model(&mut net, &mut L1Norm::new(), 0.5, &ds, &ft, &mut rng).unwrap();
        assert_eq!(outcome.traces.len(), 8); // VGG-11 has 8 convs
        for t in &outcome.traces {
            assert_eq!(t.maps_after, t.maps_before.div_ceil(2));
        }
        assert!(outcome.cost.total_params < before.total_params);
        assert!(outcome.cost.total_flops < before.total_flops);
        // Params must be monotonically non-increasing along the trace.
        for pair in outcome.traces.windows(2) {
            assert!(pair[1].params_after <= pair[0].params_after);
        }
        assert_eq!(outcome.criterion, "Li'17");
    }

    #[test]
    fn single_layer_prune_reports_accuracy() {
        let ds = tiny_ds();
        let mut rng = Rng::seed_from(1);
        let mut net = tiny_vgg(&ds, &mut rng);
        let acc = prune_single_layer(&mut net, &mut Random::new(), 0, 0.5, &ds, &mut rng).unwrap();
        assert!((0.0..=1.0).contains(&acc));
        // Out-of-range ordinal errors.
        let mut net2 = tiny_vgg(&ds, &mut rng);
        assert!(prune_single_layer(&mut net2, &mut Random::new(), 99, 0.5, &ds, &mut rng).is_err());
    }

    #[test]
    fn from_scratch_trains_the_same_architecture() {
        let ds = tiny_ds();
        let mut rng = Rng::seed_from(2);
        let mut net = tiny_vgg(&ds, &mut rng);
        let ft = FineTune {
            epochs: 0,
            ..FineTune::default()
        };
        prune_whole_model(&mut net, &mut L1Norm::new(), 0.5, &ds, &ft, &mut rng).unwrap();
        let acc = train_from_scratch(&net, &ds, 1, &FineTune::default(), &mut rng).unwrap();
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn rejects_bad_keep_ratio() {
        let ds = tiny_ds();
        let mut rng = Rng::seed_from(3);
        let mut net = tiny_vgg(&ds, &mut rng);
        let ft = FineTune::default();
        assert!(prune_whole_model(&mut net, &mut L1Norm::new(), 0.0, &ds, &ft, &mut rng).is_err());
        assert!(prune_whole_model(&mut net, &mut L1Norm::new(), 1.5, &ds, &ft, &mut rng).is_err());
    }
}
