//! He et al. (ICCV 2017) channel pruning: LASSO channel selection +
//! least-squares reconstruction (the paper's reference [6]).

use hs_nn::surgery::ConvSite;
use hs_nn::{Network, Node};

use crate::criterion::{top_k_indices, PruningCriterion, ScoreContext};
use crate::error::PruneError;
use crate::linalg::ridge_least_squares;
use crate::thinet; // shares the contribution-matrix machinery conceptually

/// He, Zhang & Sun (2017): solve
///
/// ```text
/// min_β ‖y − Σ_c β_c · x_c‖² + λ‖β‖₁
/// ```
///
/// over sampled next-layer output locations, where `x_c` is channel `c`'s
/// additive contribution; channels whose LASSO coefficient is driven to
/// zero are pruned, and the survivors' weights are rescaled by a ridge
/// least-squares fit (their "reconstruction" step).
///
/// The LASSO is solved by cyclic coordinate descent with soft
/// thresholding; `λ` is found by bisection so that the requested number
/// of channels survives, exactly as the original does.
#[derive(Debug, Clone)]
pub struct LassoChannel {
    samples: usize,
    sweeps: usize,
    rescale: bool,
    pending_scales: Option<Vec<f32>>,
}

impl LassoChannel {
    /// Creates the criterion with 256 sampled locations and 30
    /// coordinate-descent sweeps per λ.
    pub fn new() -> Self {
        LassoChannel {
            samples: 256,
            sweeps: 30,
            rescale: true,
            pending_scales: None,
        }
    }

    /// Overrides the number of sampled reconstruction locations
    /// (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is zero.
    pub fn samples(mut self, samples: usize) -> Self {
        assert!(samples > 0, "need at least one sampled location");
        self.samples = samples;
        self
    }

    /// Disables the post-surgery least-squares rescale (builder style).
    pub fn without_rescale(mut self) -> Self {
        self.rescale = false;
        self
    }

    /// Solves the LASSO for a given λ by cyclic coordinate descent.
    /// `contrib` is `[L, C]` row-major; returns β.
    fn lasso(&self, contrib: &[f32], l: usize, c: usize, lambda: f32) -> Vec<f32> {
        // Precompute column norms ‖x_c‖² and start from β = 0 with the
        // full signal as residual: y = Σ_c x_c (reconstruct the total).
        let mut col_sq = vec![0.0f32; c];
        let mut residual = vec![0.0f32; l];
        for row in 0..l {
            let mut y = 0.0f32;
            for ch in 0..c {
                let v = contrib[row * c + ch];
                col_sq[ch] += v * v;
                y += v;
            }
            residual[row] = y;
        }
        let mut beta = vec![0.0f32; c];
        for _ in 0..self.sweeps {
            for ch in 0..c {
                if col_sq[ch] < 1e-12 {
                    continue;
                }
                // ρ = x_cᵀ(residual + β_c·x_c)
                let mut rho = 0.0f32;
                for row in 0..l {
                    rho += contrib[row * c + ch] * residual[row];
                }
                rho += beta[ch] * col_sq[ch];
                let new_beta = soft_threshold(rho, lambda) / col_sq[ch];
                let delta = new_beta - beta[ch];
                if delta != 0.0 {
                    for row in 0..l {
                        residual[row] -= delta * contrib[row * c + ch];
                    }
                    beta[ch] = new_beta;
                }
            }
        }
        beta
    }
}

fn soft_threshold(x: f32, lambda: f32) -> f32 {
    if x > lambda {
        x - lambda
    } else if x < -lambda {
        x + lambda
    } else {
        0.0
    }
}

impl Default for LassoChannel {
    fn default() -> Self {
        LassoChannel::new()
    }
}

impl PruningCriterion for LassoChannel {
    fn name(&self) -> &'static str {
        "He'17"
    }

    /// Scores are |β| at a mild fixed λ (used only when `keep_set` is
    /// bypassed).
    fn score(&mut self, ctx: &mut ScoreContext<'_>) -> Result<Vec<f32>, PruneError> {
        let acts = ctx.site_activations()?;
        let (contrib, channels) = thinet::contribution_matrix(ctx, &acts, self.samples)?;
        let beta = self.lasso(&contrib, self.samples, channels, 1e-3);
        Ok(beta.iter().map(|b| b.abs()).collect())
    }

    fn keep_set(
        &mut self,
        ctx: &mut ScoreContext<'_>,
        keep: usize,
    ) -> Result<Vec<usize>, PruneError> {
        let channels = ctx.channels()?;
        if keep == 0 || keep > channels {
            return Err(PruneError::BadKeepCount {
                keep,
                available: channels,
            });
        }
        let acts = ctx.site_activations()?;
        let (contrib, _) = thinet::contribution_matrix(ctx, &acts, self.samples)?;

        // Bisection on λ to land on the requested survivor count (the
        // original increases λ until the constraint is met).
        let mut lo = 0.0f32;
        let mut hi = {
            // An upper bound: max |ρ| at β = 0 kills every channel.
            let mut max_rho = 0.0f32;
            for ch in 0..channels {
                let mut rho = 0.0f32;
                for row in 0..self.samples {
                    let y: f32 = (0..channels).map(|c| contrib[row * channels + c]).sum();
                    rho += contrib[row * channels + ch] * y;
                }
                max_rho = max_rho.max(rho.abs());
            }
            max_rho.max(1e-6)
        };
        let mut best_beta = self.lasso(&contrib, self.samples, channels, lo);
        for _ in 0..24 {
            let mid = 0.5 * (lo + hi);
            let beta = self.lasso(&contrib, self.samples, channels, mid);
            let nonzero = beta.iter().filter(|b| b.abs() > 1e-9).count();
            if nonzero > keep {
                lo = mid;
            } else {
                hi = mid;
            }
            best_beta = beta;
            if nonzero == keep {
                break;
            }
        }
        // Rank by |β| and take exactly `keep` (bisection may straddle).
        let scores: Vec<f32> = best_beta.iter().map(|b| b.abs()).collect();
        let keep_set = top_k_indices(&scores, keep);

        if self.rescale {
            let mut g = vec![0.0f32; self.samples * keep_set.len()];
            let mut y = vec![0.0f32; self.samples];
            for row in 0..self.samples {
                for (j, &c) in keep_set.iter().enumerate() {
                    g[row * keep_set.len() + j] = contrib[row * channels + c];
                }
                y[row] = (0..channels).map(|c| contrib[row * channels + c]).sum();
            }
            self.pending_scales =
                ridge_least_squares(&g, &y, self.samples, keep_set.len(), 1e-4).ok();
        }
        Ok(keep_set)
    }

    fn post_surgery(
        &mut self,
        net: &mut Network,
        site: ConvSite,
        keep: &[usize],
    ) -> Result<(), PruneError> {
        let Some(scales) = self.pending_scales.take() else {
            return Ok(());
        };
        if scales.len() != keep.len() {
            return Ok(()); // stale fit; skip silently rather than corrupt
        }
        let Some(consumer) = site.consumer else {
            return Ok(());
        };
        let scales: Vec<f32> = scales.iter().map(|s| s.clamp(0.1, 10.0)).collect();
        match net.node_mut(consumer) {
            Node::Conv(conv) => {
                let shape = conv.weight.value.shape().clone();
                let (m, c_in, k) = (shape.dim(0), shape.dim(1), shape.dim(2));
                if c_in != keep.len() {
                    return Ok(());
                }
                let data = conv.weight.value.data_mut();
                for mi in 0..m {
                    for (ci, &s) in scales.iter().enumerate() {
                        let base = (mi * c_in + ci) * k * k;
                        for v in &mut data[base..base + k * k] {
                            *v *= s;
                        }
                    }
                }
            }
            Node::Linear(lin) => {
                let in_features = lin.in_features();
                if in_features != keep.len() {
                    return Ok(());
                }
                let outs = lin.out_features();
                let data = lin.weight.value.data_mut();
                for o in 0..outs {
                    for (ci, &s) in scales.iter().enumerate() {
                        data[o * in_features + ci] *= s;
                    }
                }
            }
            _ => {}
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs_nn::layer::{Conv2d, GlobalAvgPool, Linear, ReLU};
    use hs_nn::surgery::{conv_sites, prune_feature_maps};
    use hs_nn::{Network, Node};
    use hs_tensor::{Rng, Shape, Tensor};

    fn net_with_consumer(rng: &mut Rng) -> Network {
        let mut net = Network::new();
        net.push(Node::Conv(Conv2d::new(1, 6, 3, 1, 1, rng)));
        net.push(Node::Relu(ReLU::new()));
        net.push(Node::Conv(Conv2d::new(6, 4, 3, 1, 1, rng)));
        net.push(Node::Relu(ReLU::new()));
        net.push(Node::Gap(GlobalAvgPool::new()));
        net.push(Node::Linear(Linear::new(4, 3, rng)));
        net
    }

    #[test]
    fn soft_threshold_shrinks_towards_zero() {
        assert_eq!(soft_threshold(3.0, 1.0), 2.0);
        assert_eq!(soft_threshold(-3.0, 1.0), -2.0);
        assert_eq!(soft_threshold(0.5, 1.0), 0.0);
    }

    #[test]
    fn lasso_zeroes_useless_channels_first() {
        let mut rng = Rng::seed_from(0);
        let mut net = net_with_consumer(&mut rng);
        // Channels 1 and 4 contribute nothing to the consumer.
        if let Node::Conv(conv) = net.node_mut(2) {
            let shape = conv.weight.value.shape().clone();
            let (m, c_in, k) = (shape.dim(0), shape.dim(1), shape.dim(2));
            let data = conv.weight.value.data_mut();
            for mi in 0..m {
                for dead in [1usize, 4] {
                    let base = (mi * c_in + dead) * k * k;
                    for v in &mut data[base..base + k * k] {
                        *v = 0.0;
                    }
                }
            }
        }
        let site = conv_sites(&net)[0];
        let images = Tensor::randn(Shape::d4(4, 1, 8, 8), &mut rng);
        let labels = [0usize; 4];
        let mut crit = LassoChannel::new().samples(128);
        let mut ctx = ScoreContext::new(&mut net, site, &images, &labels, &mut rng);
        let keep = crit.keep_set(&mut ctx, 4).unwrap();
        assert_eq!(keep, vec![0, 2, 3, 5]);
    }

    #[test]
    fn full_pipeline_with_rescale_runs() {
        let mut rng = Rng::seed_from(1);
        let mut net = net_with_consumer(&mut rng);
        let site = conv_sites(&net)[0];
        let images = Tensor::randn(Shape::d4(4, 1, 8, 8), &mut rng);
        let labels = [0usize; 4];
        let mut crit = LassoChannel::new().samples(64);
        let keep = {
            let mut ctx = ScoreContext::new(&mut net, site, &images, &labels, &mut rng);
            crit.keep_set(&mut ctx, 3).unwrap()
        };
        assert_eq!(keep.len(), 3);
        prune_feature_maps(&mut net, site.conv, &keep).unwrap();
        crit.post_surgery(&mut net, site, &keep).unwrap();
        assert!(net.forward(&images, false).is_ok());
    }

    #[test]
    fn keep_set_validates_count() {
        let mut rng = Rng::seed_from(2);
        let mut net = net_with_consumer(&mut rng);
        let site = conv_sites(&net)[0];
        let images = Tensor::randn(Shape::d4(2, 1, 8, 8), &mut rng);
        let labels = [0usize; 2];
        let mut ctx = ScoreContext::new(&mut net, site, &images, &labels, &mut rng);
        assert!(LassoChannel::new().keep_set(&mut ctx, 0).is_err());
        assert!(LassoChannel::new().keep_set(&mut ctx, 7).is_err());
    }
}
