//! Taylor-expansion channel saliency (Molchanov et al., 2016 — the
//! paper's reference [8]).

use hs_nn::loss::softmax_cross_entropy;

use crate::criterion::{PruningCriterion, ScoreContext};
use crate::error::PruneError;

/// Molchanov et al. (2016), "Pruning Convolutional Neural Networks for
/// Resource Efficient Inference": the first-order Taylor estimate of the
/// loss change from removing feature map `c` is
/// `|Σ (∂L/∂a_c) · a_c|` — the gradient-activation product summed over
/// the map. Channels with the smallest estimate are pruned first.
///
/// Implemented through the network's mask-gradient recording: with an
/// all-ones mask attached at the site, `∂L/∂mask_c` *is* the
/// gradient-activation inner product of channel `c`.
#[derive(Debug, Clone, Copy)]
pub struct TaylorCriterion {
    batches: usize,
}

impl TaylorCriterion {
    /// Creates the criterion, averaging saliency over 4 scoring passes.
    pub fn new() -> Self {
        TaylorCriterion { batches: 4 }
    }

    /// Overrides the number of scoring passes (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `batches` is zero.
    pub fn batches(mut self, batches: usize) -> Self {
        assert!(batches > 0, "need at least one scoring pass");
        self.batches = batches;
        self
    }
}

impl Default for TaylorCriterion {
    fn default() -> Self {
        TaylorCriterion::new()
    }
}

impl PruningCriterion for TaylorCriterion {
    fn name(&self) -> &'static str {
        "Taylor'16"
    }

    fn score(&mut self, ctx: &mut ScoreContext<'_>) -> Result<Vec<f32>, PruneError> {
        let channels = ctx.channels()?;
        let site = ctx.site;
        ctx.net.set_mask_grad_enabled(true);
        let result = (|| -> Result<Vec<f32>, PruneError> {
            let mut saliency = vec![0.0f64; channels];
            let n = ctx.images.shape().dim(0);
            let per = n.div_ceil(self.batches).max(1);
            let indices: Vec<usize> = (0..n).collect();
            ctx.net
                .set_channel_mask(site.mask_node, Some(vec![1.0; channels]));
            for chunk in indices.chunks(per) {
                let x = ctx.images.index_select(0, chunk)?;
                let y: Vec<usize> = chunk.iter().map(|&i| ctx.labels[i]).collect();
                let logits = ctx.net.forward(&x, true)?;
                let (_, grad) = softmax_cross_entropy(&logits, &y)?;
                ctx.net.backward(&grad)?;
                ctx.net.zero_grad(); // gates only; discard weight grads
                let dmask = ctx.net.take_mask_grad(site.mask_node).ok_or_else(|| {
                    PruneError::BadScoringSet {
                        detail: "mask gradient was not recorded".to_string(),
                    }
                })?;
                for (s, &g) in saliency.iter_mut().zip(&dmask) {
                    // With mask ≡ 1, ∂L/∂mask_c = Σ (∂L/∂a_c)·a_c.
                    *s += g.abs() as f64;
                }
            }
            Ok(saliency.into_iter().map(|s| s as f32).collect())
        })();
        ctx.net.set_channel_mask(site.mask_node, None);
        ctx.net.set_mask_grad_enabled(false);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs_nn::layer::{Conv2d, GlobalAvgPool, Linear, ReLU};
    use hs_nn::surgery::conv_sites;
    use hs_nn::{Network, Node};
    use hs_tensor::{Rng, Shape, Tensor};

    fn net(rng: &mut Rng) -> Network {
        let mut net = Network::new();
        net.push(Node::Conv(Conv2d::new(1, 4, 3, 1, 1, rng)));
        net.push(Node::Relu(ReLU::new()));
        net.push(Node::Gap(GlobalAvgPool::new()));
        net.push(Node::Linear(Linear::new(4, 2, rng)));
        net
    }

    #[test]
    fn dead_channel_has_zero_saliency() {
        let mut rng = Rng::seed_from(0);
        let mut n = net(&mut rng);
        // Disconnect channel 1 from the classifier: its gradient is zero.
        if let Node::Linear(lin) = n.node_mut(3) {
            for o in 0..2 {
                lin.weight.value.data_mut()[o * 4 + 1] = 0.0;
            }
        }
        let site = conv_sites(&n)[0];
        let images = Tensor::randn(Shape::d4(8, 1, 6, 6), &mut rng);
        let labels: Vec<usize> = (0..8).map(|i| i % 2).collect();
        let mut ctx = ScoreContext::new(&mut n, site, &images, &labels, &mut rng);
        let scores = TaylorCriterion::new().score(&mut ctx).unwrap();
        assert!(
            scores[1] < 1e-9,
            "disconnected channel saliency {}",
            scores[1]
        );
        assert!(scores.iter().enumerate().any(|(i, &s)| i != 1 && s > 1e-6));
        // keep_set drops the dead channel.
        let keep = TaylorCriterion::new().keep_set(&mut ctx, 3).unwrap();
        assert!(!keep.contains(&1), "{keep:?}");
    }

    #[test]
    fn network_restored_after_scoring() {
        let mut rng = Rng::seed_from(1);
        let mut n = net(&mut rng);
        let site = conv_sites(&n)[0];
        let images = Tensor::randn(Shape::d4(4, 1, 6, 6), &mut rng);
        let labels = vec![0usize, 1, 0, 1];
        {
            let mut ctx = ScoreContext::new(&mut n, site, &images, &labels, &mut rng);
            TaylorCriterion::new().batches(2).score(&mut ctx).unwrap();
        }
        assert!(n.channel_mask(site.mask_node).is_none());
        // Weight gradients were discarded.
        let mut grad_norm = 0.0;
        n.visit_params(&mut |p| grad_norm += p.grad.l1_norm());
        assert_eq!(grad_norm, 0.0);
    }
}
