//! Trainable parameters: a value tensor paired with its gradient
//! accumulator.

use hs_tensor::{Shape, Tensor};

/// A trainable parameter: value plus gradient accumulator of equal shape.
///
/// Layers expose their parameters to optimizers through
/// [`Network::visit_params`](crate::Network::visit_params); the visit
/// order is deterministic, which is how optimizers associate per-parameter
/// state (momentum buffers etc.) without global IDs.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Current value.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
    /// Whether weight decay applies (true for weights, false for biases
    /// and batch-norm affine parameters, following common practice).
    pub decay: bool,
}

impl Param {
    /// Wraps a value tensor with a zeroed gradient, with weight decay on.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape().clone());
        Param {
            value,
            grad,
            decay: true,
        }
    }

    /// Wraps a value tensor with weight decay off (biases, BN affine).
    pub fn new_no_decay(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape().clone());
        Param {
            value,
            grad,
            decay: false,
        }
    }

    /// Zeroes the gradient accumulator.
    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }

    /// Parameter element count.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// The parameter's shape.
    pub fn shape(&self) -> &Shape {
        self.value.shape()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad() {
        let p = Param::new(Tensor::ones(Shape::d2(2, 3)));
        assert_eq!(p.grad, Tensor::zeros(Shape::d2(2, 3)));
        assert!(p.decay);
        assert_eq!(p.len(), 6);
    }

    #[test]
    fn zero_grad_resets() {
        let mut p = Param::new_no_decay(Tensor::ones(Shape::d1(4)));
        assert!(!p.decay);
        p.grad.fill(3.0);
        p.zero_grad();
        assert!(p.grad.data().iter().all(|&g| g == 0.0));
    }
}
