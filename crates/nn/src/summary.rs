//! Human-readable architecture summaries.

use crate::accounting::{analyze, NetworkCost};
use crate::error::NnError;
use crate::network::Network;

/// Renders a Keras-style text summary of a network for a square input:
/// one row per cost-bearing node plus totals.
///
/// # Errors
///
/// Propagates accounting errors for inconsistent architectures.
///
/// # Example
///
/// ```
/// use hs_nn::{models, summary};
/// use hs_tensor::Rng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = Rng::seed_from(0);
/// let net = models::lenet(1, 10, 16, 1.0, &mut rng)?;
/// let text = summary::render(&net, 1, 16)?;
/// assert!(text.contains("conv"));
/// assert!(text.contains("total"));
/// # Ok(())
/// # }
/// ```
pub fn render(net: &Network, in_channels: usize, input_size: usize) -> Result<String, NnError> {
    let cost = analyze(net, in_channels, input_size)?;
    Ok(render_cost(&cost, in_channels, input_size))
}

/// Renders a summary from an already-computed [`NetworkCost`].
pub fn render_cost(cost: &NetworkCost, in_channels: usize, input_size: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "input: [{in_channels}, {input_size}, {input_size}]\n"
    ));
    out.push_str(&format!(
        "{:<6} {:<9} {:>10} {:>9} {:>12} {:>14}\n",
        "node", "kind", "channels", "spatial", "params", "macs"
    ));
    for l in &cost.layers {
        if l.params == 0 && l.flops == 0 {
            continue;
        }
        out.push_str(&format!(
            "{:<6} {:<9} {:>10} {:>9} {:>12} {:>14}\n",
            l.node_index, l.kind, l.out_channels, l.out_spatial, l.params, l.flops
        ));
    }
    out.push_str(&format!(
        "total: {} parameters ({:.4}M), {} MACs ({:.5}B)\n",
        cost.total_params,
        cost.params_millions(),
        cost.total_flops,
        cost.flops_billions()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use hs_tensor::Rng;

    #[test]
    fn summary_lists_every_costed_node_and_totals() {
        let mut rng = Rng::seed_from(0);
        let net = models::vgg11(3, 10, 16, 0.25, &mut rng).unwrap();
        let text = render(&net, 3, 16).unwrap();
        // 8 convs + 8 bns + 1 linear rows (relu/pool are cost-free).
        let rows = text
            .lines()
            .filter(|l| l.contains("conv") || l.contains("linear"))
            .count();
        assert_eq!(rows, 9, "{text}");
        assert!(text.starts_with("input: [3, 16, 16]"));
        assert!(text.trim_end().ends_with('B') || text.contains("total:"));
        // Totals agree with direct accounting.
        let cost = analyze(&net, 3, 16).unwrap();
        assert!(text.contains(&cost.total_params.to_string()));
    }

    #[test]
    fn summary_reflects_pruning() {
        let mut rng = Rng::seed_from(1);
        let mut net = models::vgg11(3, 10, 16, 0.25, &mut rng).unwrap();
        let before = render(&net, 3, 16).unwrap();
        let site = crate::surgery::conv_sites(&net)[0];
        crate::surgery::prune_feature_maps(&mut net, site.conv, &[0, 1, 2, 3]).unwrap();
        let after = render(&net, 3, 16).unwrap();
        assert_ne!(before, after);
    }

    #[test]
    fn summary_rejects_inconsistent_input() {
        let mut rng = Rng::seed_from(2);
        let net = models::vgg11(3, 10, 16, 0.25, &mut rng).unwrap();
        assert!(render(&net, 5, 16).is_err());
    }
}
