//! Training and evaluation loops.
//!
//! These helpers operate on plain `(images, labels)` tensors so they stay
//! independent of any dataset crate: `images` is `[N, C, H, W]`, `labels`
//! is one integer class per sample.

use hs_tensor::{Rng, Tensor};

use crate::error::NnError;
use crate::loss::{accuracy, softmax_cross_entropy};
use crate::network::Network;
use crate::optim::Optimizer;

/// Summary of one training epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Mean cross-entropy loss over the epoch.
    pub loss: f32,
    /// Top-1 training accuracy over the epoch.
    pub accuracy: f32,
}

fn check_dataset(images: &Tensor, labels: &[usize]) -> Result<usize, NnError> {
    if images.shape().rank() != 4 {
        return Err(NnError::BadInput {
            what: "train/evaluate",
            detail: format!("images must be [N, C, H, W], got {}", images.shape()),
        });
    }
    let n = images.shape().dim(0);
    if n != labels.len() {
        return Err(NnError::BadInput {
            what: "train/evaluate",
            detail: format!("{n} images but {} labels", labels.len()),
        });
    }
    if n == 0 {
        return Err(NnError::BadInput {
            what: "train/evaluate",
            detail: "empty dataset".to_string(),
        });
    }
    Ok(n)
}

/// Runs one epoch of mini-batch SGD training with shuffling.
///
/// # Errors
///
/// Returns [`NnError::BadInput`] for inconsistent `images`/`labels` and
/// propagates any layer error.
pub fn train_epoch(
    net: &mut Network,
    opt: &mut dyn Optimizer,
    images: &Tensor,
    labels: &[usize],
    batch_size: usize,
    rng: &mut Rng,
) -> Result<EpochStats, NnError> {
    let n = check_dataset(images, labels)?;
    let batch_size = batch_size.clamp(1, n);
    let mut order: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut order);
    let mut total_loss = 0.0f64;
    let mut total_hits = 0.0f64;
    let mut batches = 0usize;
    for chunk in order.chunks(batch_size) {
        let x = images.index_select(0, chunk)?;
        let y: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();
        net.zero_grad();
        let logits = net.forward(&x, true)?;
        let (loss, grad) = softmax_cross_entropy(&logits, &y)?;
        net.backward(&grad)?;
        opt.step(net);
        total_loss += loss as f64;
        total_hits += accuracy(&logits, &y)? as f64;
        batches += 1;
    }
    Ok(EpochStats {
        loss: (total_loss / batches as f64) as f32,
        accuracy: (total_hits / batches as f64) as f32,
    })
}

/// Evaluates top-1 accuracy in inference mode (no gradient, running BN
/// statistics).
///
/// # Errors
///
/// Returns [`NnError::BadInput`] for inconsistent inputs and propagates
/// layer errors.
pub fn evaluate(
    net: &mut Network,
    images: &Tensor,
    labels: &[usize],
    batch_size: usize,
) -> Result<f32, NnError> {
    let n = check_dataset(images, labels)?;
    let batch_size = batch_size.clamp(1, n);
    let mut hits = 0.0f64;
    let mut count = 0usize;
    let indices: Vec<usize> = (0..n).collect();
    for chunk in indices.chunks(batch_size) {
        let x = images.index_select(0, chunk)?;
        let y: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();
        let logits = net.forward(&x, false)?;
        hits += accuracy(&logits, &y)? as f64 * chunk.len() as f64;
        count += chunk.len();
    }
    Ok((hits / count as f64) as f32)
}

/// Evaluates mean cross-entropy loss in inference mode.
///
/// # Errors
///
/// Same conditions as [`evaluate`].
pub fn evaluate_loss(
    net: &mut Network,
    images: &Tensor,
    labels: &[usize],
    batch_size: usize,
) -> Result<f32, NnError> {
    let n = check_dataset(images, labels)?;
    let batch_size = batch_size.clamp(1, n);
    let mut total = 0.0f64;
    let mut count = 0usize;
    let indices: Vec<usize> = (0..n).collect();
    for chunk in indices.chunks(batch_size) {
        let x = images.index_select(0, chunk)?;
        let y: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();
        let logits = net.forward(&x, false)?;
        let (loss, _) = softmax_cross_entropy(&logits, &y)?;
        total += loss as f64 * chunk.len() as f64;
        count += chunk.len();
    }
    Ok((total / count as f64) as f32)
}

/// Re-estimates batch-norm running statistics by running training-mode
/// forward passes (no gradients, no weight updates).
///
/// After channel surgery the distributions flowing into downstream batch
/// norms shift, and the stored running statistics go stale; a few
/// recalibration passes restore meaningful inference-mode behaviour
/// without any fine-tuning. This is standard deployment practice and is
/// *not* used inside the paper-reproduction measurements (the paper
/// reports raw post-pruning accuracy), but is provided for users who
/// ship pruned models.
///
/// # Errors
///
/// Returns [`NnError::BadInput`] for inconsistent inputs and propagates
/// layer errors.
pub fn recalibrate_bn(
    net: &mut Network,
    images: &Tensor,
    batch_size: usize,
    passes: usize,
) -> Result<(), NnError> {
    if images.shape().rank() != 4 || images.shape().dim(0) == 0 {
        return Err(NnError::BadInput {
            what: "recalibrate_bn",
            detail: format!(
                "images must be non-empty [N, C, H, W], got {}",
                images.shape()
            ),
        });
    }
    let n = images.shape().dim(0);
    let batch_size = batch_size.clamp(1, n);
    let indices: Vec<usize> = (0..n).collect();
    for _ in 0..passes.max(1) {
        for chunk in indices.chunks(batch_size) {
            let x = images.index_select(0, chunk)?;
            net.forward(&x, true)?;
        }
    }
    Ok(())
}

/// Trains for `epochs` epochs, returning the stats of each.
///
/// # Errors
///
/// Same conditions as [`train_epoch`].
pub fn fit(
    net: &mut Network,
    opt: &mut dyn Optimizer,
    images: &Tensor,
    labels: &[usize],
    batch_size: usize,
    epochs: usize,
    rng: &mut Rng,
) -> Result<Vec<EpochStats>, NnError> {
    let mut stats = Vec::with_capacity(epochs);
    for _ in 0..epochs {
        stats.push(train_epoch(net, opt, images, labels, batch_size, rng)?);
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Conv2d, GlobalAvgPool, Linear, ReLU};
    use crate::network::{Network, Node};
    use crate::optim::Sgd;
    use hs_tensor::Shape;

    /// Two well-separated Gaussian blobs rendered as 1-channel images.
    fn blob_dataset(n: usize, rng: &mut Rng) -> (Tensor, Vec<usize>) {
        let mut images = Vec::with_capacity(n * 16);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % 2;
            let mean = if class == 0 { -1.0 } else { 1.0 };
            for _ in 0..16 {
                images.push(rng.normal_with(mean, 0.3));
            }
            labels.push(class);
        }
        (
            Tensor::from_vec(Shape::d4(n, 1, 4, 4), images).unwrap(),
            labels,
        )
    }

    fn tiny_classifier(rng: &mut Rng) -> Network {
        let mut net = Network::new();
        net.push(Node::Conv(Conv2d::new(1, 4, 3, 1, 1, rng)));
        net.push(Node::Relu(ReLU::new()));
        net.push(Node::Gap(GlobalAvgPool::new()));
        net.push(Node::Linear(Linear::new(4, 2, rng)));
        net
    }

    #[test]
    fn training_learns_separable_blobs() {
        let mut rng = Rng::seed_from(0);
        let (images, labels) = blob_dataset(64, &mut rng);
        let mut net = tiny_classifier(&mut rng);
        let mut opt = Sgd::new(0.1).momentum(0.9);
        let before = evaluate(&mut net, &images, &labels, 16).unwrap();
        let stats = fit(&mut net, &mut opt, &images, &labels, 16, 15, &mut rng).unwrap();
        let after = evaluate(&mut net, &images, &labels, 16).unwrap();
        assert!(after > 0.95, "accuracy {after} (was {before})");
        assert!(stats.last().unwrap().loss < stats[0].loss);
    }

    #[test]
    fn evaluate_loss_decreases_with_training() {
        let mut rng = Rng::seed_from(1);
        let (images, labels) = blob_dataset(32, &mut rng);
        let mut net = tiny_classifier(&mut rng);
        let mut opt = Sgd::new(0.1);
        let loss0 = evaluate_loss(&mut net, &images, &labels, 8).unwrap();
        fit(&mut net, &mut opt, &images, &labels, 8, 10, &mut rng).unwrap();
        let loss1 = evaluate_loss(&mut net, &images, &labels, 8).unwrap();
        assert!(loss1 < loss0);
    }

    #[test]
    fn bn_recalibration_restores_pruned_accuracy() {
        use crate::layer::BatchNorm2d;
        use crate::surgery;

        let mut rng = Rng::seed_from(5);
        let (images, labels) = blob_dataset(64, &mut rng);
        // conv-bn-relu-conv-relu-gap-linear so surgery hits a BN consumer.
        let mut net = Network::new();
        net.push(Node::Conv(Conv2d::new(1, 8, 3, 1, 1, &mut rng)));
        net.push(Node::Bn(BatchNorm2d::new(8)));
        net.push(Node::Relu(ReLU::new()));
        net.push(Node::Conv(Conv2d::new(8, 6, 3, 1, 1, &mut rng)));
        net.push(Node::Bn(BatchNorm2d::new(6)));
        net.push(Node::Relu(ReLU::new()));
        net.push(Node::Gap(GlobalAvgPool::new()));
        net.push(Node::Linear(Linear::new(6, 2, &mut rng)));
        let mut opt = Sgd::new(0.1).momentum(0.9);
        fit(&mut net, &mut opt, &images, &labels, 16, 10, &mut rng).unwrap();
        // Prune half of conv0's maps; downstream BN stats are now stale.
        let site = surgery::conv_sites(&net)[0];
        surgery::prune_feature_maps(&mut net, site.conv, &[0, 2, 4, 6]).unwrap();
        let stale = evaluate(&mut net, &images, &labels, 16).unwrap();
        recalibrate_bn(&mut net, &images, 16, 2).unwrap();
        let fresh = evaluate(&mut net, &images, &labels, 16).unwrap();
        assert!(
            fresh >= stale,
            "recalibration made things worse: {fresh} < {stale}"
        );
    }

    #[test]
    fn recalibrate_rejects_empty_input() {
        let mut rng = Rng::seed_from(6);
        let mut net = tiny_classifier(&mut rng);
        let empty = Tensor::zeros(hs_tensor::Shape::d4(0, 1, 4, 4));
        assert!(recalibrate_bn(&mut net, &empty, 4, 1).is_err());
    }

    #[test]
    fn rejects_mismatched_labels() {
        let mut rng = Rng::seed_from(2);
        let (images, _) = blob_dataset(8, &mut rng);
        let mut net = tiny_classifier(&mut rng);
        let mut opt = Sgd::new(0.1);
        assert!(train_epoch(&mut net, &mut opt, &images, &[0, 1], 4, &mut rng).is_err());
        assert!(evaluate(&mut net, &images, &[0, 1], 4).is_err());
    }

    #[test]
    fn rejects_empty_dataset() {
        let mut rng = Rng::seed_from(3);
        let mut net = tiny_classifier(&mut rng);
        let images = Tensor::zeros(Shape::d4(0, 1, 4, 4));
        assert!(evaluate(&mut net, &images, &[], 4).is_err());
    }
}
