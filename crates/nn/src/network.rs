//! The network container: a sequence of nodes with masking, capture and
//! block-level control.

use hs_tensor::Tensor;

use crate::block::ResidualBlock;
use crate::error::NnError;
use crate::layer::{
    AvgPool2d, BatchNorm2d, Conv2d, Dropout, Flatten, GlobalAvgPool, Linear, MaxPool2d, ReLU,
};
use crate::param::Param;

/// One node of a [`Network`].
///
/// The enum (rather than trait objects) keeps surgery, accounting and
/// serialization straightforward: pruning code can pattern-match on the
/// exact layer kinds it needs to rewrite.
#[derive(Debug, Clone)]
#[allow(missing_docs)]
// Nodes live in one short Vec per network; boxing the residual-block
// variant would complicate every match for a negligible size win.
#[allow(clippy::large_enum_variant)]
pub enum Node {
    Conv(Conv2d),
    Bn(BatchNorm2d),
    Relu(ReLU),
    Dropout(Dropout),
    MaxPool(MaxPool2d),
    AvgPool(AvgPool2d),
    Gap(GlobalAvgPool),
    Flatten(Flatten),
    Linear(Linear),
    Block(ResidualBlock),
}

impl Node {
    /// Short kind name, used in summaries and error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Node::Conv(_) => "conv",
            Node::Bn(_) => "bn",
            Node::Relu(_) => "relu",
            Node::Dropout(_) => "dropout",
            Node::MaxPool(_) => "maxpool",
            Node::AvgPool(_) => "avgpool",
            Node::Gap(_) => "gap",
            Node::Flatten(_) => "flatten",
            Node::Linear(_) => "linear",
            Node::Block(_) => "block",
        }
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor, NnError> {
        match self {
            Node::Conv(l) => l.forward(x, train),
            Node::Bn(l) => l.forward(x, train),
            Node::Relu(l) => Ok(l.forward(x, train)),
            Node::Dropout(l) => Ok(l.forward(x, train)),
            Node::MaxPool(l) => l.forward(x, train),
            Node::AvgPool(l) => l.forward(x, train),
            Node::Gap(l) => l.forward(x, train),
            Node::Flatten(l) => l.forward(x, train),
            Node::Linear(l) => l.forward(x, train),
            Node::Block(l) => l.forward(x, train),
        }
    }

    fn backward(&mut self, g: &Tensor) -> Result<Tensor, NnError> {
        match self {
            Node::Conv(l) => l.backward(g),
            Node::Bn(l) => l.backward(g),
            Node::Relu(l) => l.backward(g),
            Node::Dropout(l) => l.backward(g),
            Node::MaxPool(l) => l.backward(g),
            Node::AvgPool(l) => l.backward(g),
            Node::Gap(l) => l.backward(g),
            Node::Flatten(l) => l.backward(g),
            Node::Linear(l) => l.backward(g),
            Node::Block(l) => l.backward(g),
        }
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        match self {
            Node::Conv(l) => l.visit_params(f),
            Node::Bn(l) => l.visit_params(f),
            Node::Linear(l) => l.visit_params(f),
            Node::Block(l) => l.visit_params(f),
            Node::Relu(_)
            | Node::Dropout(_)
            | Node::MaxPool(_)
            | Node::AvgPool(_)
            | Node::Gap(_)
            | Node::Flatten(_) => {}
        }
    }
}

/// A feed-forward network: an ordered list of [`Node`]s with optional
/// per-node output channel masks.
///
/// Masks simulate feature-map pruning without touching weights: a masked
/// channel is multiplied by zero on the forward pass (and its gradient is
/// zeroed on the backward pass). This is how HeadStart evaluates candidate
/// inceptions cheaply before committing to physical surgery.
#[derive(Debug, Clone)]
pub struct Network {
    nodes: Vec<Node>,
    masks: Vec<Option<Vec<f32>>>,
    /// When true, training forward passes cache pre-mask activations so
    /// that [`Network::take_mask_grad`] can report `∂L/∂mask` after the
    /// backward pass (used by learned-gate pruning such as AutoPruner).
    mask_grad_enabled: bool,
    premask: Vec<Option<Tensor>>,
    mask_grads: Vec<Option<Vec<f32>>>,
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Self {
        Network {
            nodes: Vec::new(),
            masks: Vec::new(),
            mask_grad_enabled: false,
            premask: Vec::new(),
            mask_grads: Vec::new(),
        }
    }

    /// Appends a node, returning its index.
    pub fn push(&mut self, node: Node) -> usize {
        self.nodes.push(node);
        self.masks.push(None);
        self.premask.push(None);
        self.mask_grads.push(None);
        self.nodes.len() - 1
    }

    /// Removes and returns the node at `index`, shifting later nodes
    /// down. The per-node mask/premask/gradient bookkeeping shrinks in
    /// lockstep, so masks attached to other nodes follow them to their
    /// new indices. Used by structural compaction to drop inactive
    /// residual blocks (whose forward pass is the identity).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn remove_node(&mut self, index: usize) -> Node {
        self.masks.remove(index);
        self.premask.remove(index);
        self.mask_grads.remove(index);
        self.nodes.remove(index)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Immutable access to a node.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn node(&self, index: usize) -> &Node {
        &self.nodes[index]
    }

    /// Mutable access to a node.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn node_mut(&mut self, index: usize) -> &mut Node {
        &mut self.nodes[index]
    }

    /// Iterates over the nodes in execution order.
    pub fn iter(&self) -> std::slice::Iter<'_, Node> {
        self.nodes.iter()
    }

    /// Indices of all convolution nodes, in execution order.
    pub fn conv_indices(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| matches!(n, Node::Conv(_)).then_some(i))
            .collect()
    }

    /// Indices of all residual-block nodes, in execution order.
    pub fn block_indices(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| matches!(n, Node::Block(_)).then_some(i))
            .collect()
    }

    /// Sets (or clears, with `None`) the channel mask applied to the
    /// output of node `index`.
    ///
    /// Mask length is validated lazily on the next forward pass (the
    /// channel count depends on the input shape for some nodes).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn set_channel_mask(&mut self, index: usize, mask: Option<Vec<f32>>) {
        self.masks[index] = mask;
    }

    /// Clears every mask.
    pub fn clear_masks(&mut self) {
        for m in &mut self.masks {
            *m = None;
        }
    }

    /// The mask currently attached to node `index`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn channel_mask(&self, index: usize) -> Option<&[f32]> {
        self.masks[index].as_deref()
    }

    fn apply_mask(output: &mut Tensor, mask: &[f32], node: usize) -> Result<(), NnError> {
        let shape = output.shape();
        let (channels, inner) = match shape.rank() {
            4 => (shape.dim(1), shape.dim(2) * shape.dim(3)),
            2 => (shape.dim(1), 1),
            _ => {
                return Err(NnError::BadMask {
                    detail: format!("mask on node {node} with unsupported output shape {shape}"),
                })
            }
        };
        if mask.len() != channels {
            return Err(NnError::BadMask {
                detail: format!(
                    "mask of length {} on node {node} with {channels} channels",
                    mask.len()
                ),
            });
        }
        let batch = shape.dim(0);
        let data = output.data_mut();
        for b in 0..batch {
            for (c, &m) in mask.iter().enumerate() {
                if m != 1.0 {
                    let base = (b * channels + c) * inner;
                    for v in &mut data[base..base + inner] {
                        *v *= m;
                    }
                }
            }
        }
        Ok(())
    }

    /// Forward pass through all nodes.
    ///
    /// # Errors
    ///
    /// Propagates layer shape errors and mask validation errors.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor, NnError> {
        let mut x = input.clone();
        for i in 0..self.nodes.len() {
            x = self.nodes[i].forward(&x, train)?;
            if let Some(mask) = &self.masks[i] {
                if train && self.mask_grad_enabled {
                    self.premask[i] = Some(x.clone());
                }
                let mask = mask.clone();
                Self::apply_mask(&mut x, &mask, i)?;
            }
        }
        Ok(x)
    }

    /// Enables or disables recording of `∂L/∂mask` for masked nodes
    /// during training passes (see [`Network::take_mask_grad`]).
    pub fn set_mask_grad_enabled(&mut self, enabled: bool) {
        self.mask_grad_enabled = enabled;
        // Serde skips these caches, so re-size defensively in case the
        // network was deserialized.
        self.premask.resize(self.nodes.len(), None);
        self.mask_grads.resize(self.nodes.len(), None);
        if !enabled {
            for p in &mut self.premask {
                *p = None;
            }
            for g in &mut self.mask_grads {
                *g = None;
            }
        }
    }

    /// Takes the gradient of the loss with respect to the channel mask at
    /// node `index`, recorded by the most recent backward pass. Returns
    /// `None` when mask-grad recording is off, the node is unmasked, or
    /// no backward has run since the last take.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn take_mask_grad(&mut self, index: usize) -> Option<Vec<f32>> {
        self.mask_grads[index].take()
    }

    /// Runs only the nodes `start..len` on `input` (which must be shaped
    /// like node `start`'s expected input). Masks attached to the executed
    /// nodes still apply.
    ///
    /// This is the fast path for action evaluation in RL pruning: the
    /// activations *before* the pruned layer never change across candidate
    /// actions, so they are computed once and only the suffix re-runs.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadNodeIndex`] if `start > len`, plus any layer
    /// error.
    pub fn forward_range(
        &mut self,
        input: &Tensor,
        start: usize,
        train: bool,
    ) -> Result<Tensor, NnError> {
        if start > self.nodes.len() {
            return Err(NnError::BadNodeIndex {
                index: start,
                expected: "node range start",
            });
        }
        let mut x = input.clone();
        for i in start..self.nodes.len() {
            x = self.nodes[i].forward(&x, train)?;
            if let Some(mask) = &self.masks[i] {
                if train && self.mask_grad_enabled {
                    self.premask[i] = Some(x.clone());
                }
                let mask = mask.clone();
                Self::apply_mask(&mut x, &mask, i)?;
            }
        }
        Ok(x)
    }

    /// Forward pass that additionally returns the outputs of the requested
    /// nodes (post-mask). Used by activation-statistics pruning criteria
    /// (APoZ, entropy, ThiNet).
    ///
    /// # Errors
    ///
    /// Propagates layer errors; requesting an out-of-range node returns
    /// [`NnError::BadNodeIndex`].
    pub fn forward_capture(
        &mut self,
        input: &Tensor,
        capture: &[usize],
        train: bool,
    ) -> Result<(Tensor, Vec<Tensor>), NnError> {
        for &c in capture {
            if c >= self.nodes.len() {
                return Err(NnError::BadNodeIndex {
                    index: c,
                    expected: "existing node",
                });
            }
        }
        let mut captured: Vec<Option<Tensor>> = vec![None; capture.len()];
        let mut x = input.clone();
        for i in 0..self.nodes.len() {
            x = self.nodes[i].forward(&x, train)?;
            if let Some(mask) = &self.masks[i] {
                let mask = mask.clone();
                Self::apply_mask(&mut x, &mask, i)?;
            }
            for (slot, &c) in captured.iter_mut().zip(capture) {
                if c == i {
                    *slot = Some(x.clone());
                }
            }
        }
        let captured = captured
            .into_iter()
            .map(|t| t.expect("validated above"))
            .collect();
        Ok((x, captured))
    }

    /// Backward pass; must follow a `forward(.., train = true)`.
    ///
    /// # Errors
    ///
    /// Propagates layer errors ([`NnError::NoForwardCache`] if the forward
    /// pass is missing).
    pub fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
        let mut g = grad_output.clone();
        for i in (0..self.nodes.len()).rev() {
            if let Some(mask) = &self.masks[i] {
                // `g` here is ∂L/∂(post-mask output). The mask gradient is
                // ∂L/∂mask_c = Σ_{batch, spatial} g · (pre-mask activation).
                if self.mask_grad_enabled {
                    if let Some(pre) = self.premask[i].take() {
                        self.mask_grads[i] = Some(channel_inner_products(&g, &pre, mask.len())?);
                    }
                }
                let mask = mask.clone();
                Self::apply_mask(&mut g, &mask, i)?;
            }
            g = self.nodes[i].backward(&g)?;
        }
        Ok(g)
    }

    /// Visits every trainable parameter in deterministic order.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for node in &mut self.nodes {
            node.visit_params(f);
        }
    }

    /// Zeroes all gradient accumulators.
    pub fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Total number of trainable scalar parameters.
    pub fn param_count(&mut self) -> usize {
        let mut count = 0;
        self.visit_params(&mut |p| count += p.len());
        count
    }

    /// Activates/deactivates the residual block at node `index`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadNodeIndex`] if the node is not a block, or
    /// [`NnError::BadMask`] when deactivating a downsample block.
    pub fn set_block_active(&mut self, index: usize, active: bool) -> Result<(), NnError> {
        match self.nodes.get_mut(index) {
            Some(Node::Block(b)) => b.set_active(active),
            _ => Err(NnError::BadNodeIndex {
                index,
                expected: "residual block",
            }),
        }
    }

    /// Returns the conv layer at `index`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadNodeIndex`] if the node is not a convolution.
    pub fn conv(&self, index: usize) -> Result<&Conv2d, NnError> {
        match self.nodes.get(index) {
            Some(Node::Conv(c)) => Ok(c),
            _ => Err(NnError::BadNodeIndex {
                index,
                expected: "conv",
            }),
        }
    }
}

/// Per-channel inner product of two equal-shape activation tensors:
/// `out[c] = Σ_{b, spatial} a[b,c,..] · b[b,c,..]`.
fn channel_inner_products(a: &Tensor, b: &Tensor, channels: usize) -> Result<Vec<f32>, NnError> {
    if a.shape() != b.shape() {
        return Err(NnError::BadInput {
            what: "channel_inner_products",
            detail: format!("{} vs {}", a.shape(), b.shape()),
        });
    }
    let shape = a.shape();
    let (batch, c, inner) = match shape.rank() {
        4 => (shape.dim(0), shape.dim(1), shape.dim(2) * shape.dim(3)),
        2 => (shape.dim(0), shape.dim(1), 1),
        _ => {
            return Err(NnError::BadInput {
                what: "channel_inner_products",
                detail: format!("unsupported shape {shape}"),
            })
        }
    };
    if c != channels {
        return Err(NnError::BadMask {
            detail: format!("mask has {channels} channels, activation has {c}"),
        });
    }
    let mut out = vec![0.0f32; c];
    for bi in 0..batch {
        for (ch, o) in out.iter_mut().enumerate() {
            let base = (bi * c + ch) * inner;
            let mut acc = 0.0f32;
            for k in base..base + inner {
                acc += a.data()[k] * b.data()[k];
            }
            *o += acc;
        }
    }
    Ok(out)
}

impl Default for Network {
    fn default() -> Self {
        Network::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs_tensor::{Rng, Shape};

    fn tiny_net(rng: &mut Rng) -> Network {
        let mut net = Network::new();
        net.push(Node::Conv(Conv2d::new(1, 4, 3, 1, 1, rng)));
        net.push(Node::Bn(BatchNorm2d::new(4)));
        net.push(Node::Relu(ReLU::new()));
        net.push(Node::MaxPool(MaxPool2d::new(2)));
        net.push(Node::Gap(GlobalAvgPool::new()));
        net.push(Node::Linear(Linear::new(4, 3, rng)));
        net
    }

    #[test]
    fn forward_produces_logits() {
        let mut rng = Rng::seed_from(0);
        let mut net = tiny_net(&mut rng);
        let x = Tensor::randn(Shape::d4(2, 1, 8, 8), &mut rng);
        let y = net.forward(&x, false).unwrap();
        assert_eq!(y.shape(), &Shape::d2(2, 3));
    }

    #[test]
    fn backward_runs_after_training_forward() {
        let mut rng = Rng::seed_from(1);
        let mut net = tiny_net(&mut rng);
        let x = Tensor::randn(Shape::d4(2, 1, 8, 8), &mut rng);
        let y = net.forward(&x, true).unwrap();
        let dx = net.backward(&Tensor::ones(y.shape().clone())).unwrap();
        assert_eq!(dx.shape(), x.shape());
        // Some parameter gradient must be non-zero.
        let mut total = 0.0;
        net.visit_params(&mut |p| total += p.grad.l1_norm());
        assert!(total > 0.0);
    }

    #[test]
    fn mask_zeroes_channels() {
        let mut rng = Rng::seed_from(2);
        let mut net = tiny_net(&mut rng);
        let x = Tensor::randn(Shape::d4(1, 1, 8, 8), &mut rng);
        // Mask all 4 channels after the ReLU → GAP output is zero →
        // logits equal the linear bias (zero at init).
        net.set_channel_mask(2, Some(vec![0.0; 4]));
        let y = net.forward(&x, false).unwrap();
        assert!(y.data().iter().all(|&v| v == 0.0));
        net.clear_masks();
        let y2 = net.forward(&x, false).unwrap();
        assert!(y2.data().iter().any(|&v| v != 0.0));
    }

    #[test]
    fn partial_mask_only_affects_masked_channels() {
        let mut rng = Rng::seed_from(3);
        let mut net = tiny_net(&mut rng);
        let x = Tensor::randn(Shape::d4(1, 1, 8, 8), &mut rng);
        let base = net.forward(&x, false).unwrap();
        net.set_channel_mask(2, Some(vec![1.0, 1.0, 1.0, 1.0]));
        let same = net.forward(&x, false).unwrap();
        assert_eq!(base, same, "all-ones mask must be a no-op");
    }

    #[test]
    fn wrong_mask_length_errors() {
        let mut rng = Rng::seed_from(4);
        let mut net = tiny_net(&mut rng);
        net.set_channel_mask(2, Some(vec![1.0; 3]));
        let x = Tensor::randn(Shape::d4(1, 1, 8, 8), &mut rng);
        assert!(matches!(
            net.forward(&x, false),
            Err(NnError::BadMask { .. })
        ));
    }

    #[test]
    fn capture_returns_intermediate() {
        let mut rng = Rng::seed_from(5);
        let mut net = tiny_net(&mut rng);
        let x = Tensor::randn(Shape::d4(2, 1, 8, 8), &mut rng);
        let (y, caps) = net.forward_capture(&x, &[2, 4], false).unwrap();
        assert_eq!(y.shape(), &Shape::d2(2, 3));
        assert_eq!(caps.len(), 2);
        assert_eq!(caps[0].shape(), &Shape::d4(2, 4, 8, 8)); // post-ReLU
        assert_eq!(caps[1].shape(), &Shape::d2(2, 4)); // post-GAP
        assert!(caps[0].data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn capture_rejects_bad_index() {
        let mut rng = Rng::seed_from(6);
        let mut net = tiny_net(&mut rng);
        let x = Tensor::randn(Shape::d4(1, 1, 8, 8), &mut rng);
        assert!(net.forward_capture(&x, &[99], false).is_err());
    }

    #[test]
    fn conv_indices_finds_convs() {
        let mut rng = Rng::seed_from(7);
        let net = tiny_net(&mut rng);
        assert_eq!(net.conv_indices(), vec![0]);
        assert!(net.block_indices().is_empty());
        assert!(net.conv(0).is_ok());
        assert!(net.conv(1).is_err());
    }

    #[test]
    fn masked_backward_matches_finite_difference() {
        // The mask participates in the chain rule: check dL/dx numerically
        // with a half-masked network.
        let mut rng = Rng::seed_from(8);
        let mut net = tiny_net(&mut rng);
        net.set_channel_mask(2, Some(vec![1.0, 0.0, 1.0, 0.0]));
        let x = Tensor::randn(Shape::d4(1, 1, 8, 8), &mut rng);
        let w = Tensor::randn(Shape::d2(1, 3), &mut rng);
        let y = net.forward(&x, true).unwrap();
        let _ = y;
        let dx = net.backward(&w).unwrap();
        let eps = 1e-2;
        let snap = net.clone();
        let obj = |net: &mut Network, x: &Tensor| -> f32 {
            net.forward(x, true)
                .unwrap()
                .data()
                .iter()
                .zip(w.data())
                .map(|(a, b)| a * b)
                .sum()
        };
        for probe in [3usize, 30, 60] {
            let mut xp = x.clone();
            xp.data_mut()[probe] += eps;
            let mut xm = x.clone();
            xm.data_mut()[probe] -= eps;
            let mut n1 = snap.clone();
            let mut n2 = snap.clone();
            let numeric = (obj(&mut n1, &xp) - obj(&mut n2, &xm)) / (2.0 * eps);
            assert!(
                (numeric - dx.data()[probe]).abs() < 5e-2 * (1.0 + numeric.abs()),
                "probe {probe}: numeric {numeric} analytic {}",
                dx.data()[probe]
            );
        }
    }

    #[test]
    fn forward_range_matches_full_forward() {
        let mut rng = Rng::seed_from(12);
        let mut net = tiny_net(&mut rng);
        let x = Tensor::randn(Shape::d4(2, 1, 8, 8), &mut rng);
        let full = net.forward(&x, false).unwrap();
        // Split at the ReLU (node 2): prefix = nodes 0..=2.
        let (_, caps) = net.forward_capture(&x, &[2], false).unwrap();
        let suffix = net.forward_range(&caps[0], 3, false).unwrap();
        assert_eq!(full, suffix);
        // Whole range from 0 equals plain forward.
        assert_eq!(net.forward_range(&x, 0, false).unwrap(), full);
        // Degenerate start == len is the identity.
        let id = net.forward_range(&full, net.len(), false).unwrap();
        assert_eq!(id, full);
        assert!(net.forward_range(&x, net.len() + 1, false).is_err());
    }

    #[test]
    fn mask_grad_matches_finite_difference() {
        let mut rng = Rng::seed_from(10);
        let mut net = tiny_net(&mut rng);
        net.set_mask_grad_enabled(true);
        let mask = vec![1.0f32, 0.8, 0.5, 0.2];
        net.set_channel_mask(2, Some(mask.clone()));
        let x = Tensor::randn(Shape::d4(2, 1, 8, 8), &mut rng);
        let w = Tensor::randn(Shape::d2(2, 3), &mut rng);
        net.forward(&x, true).unwrap();
        net.backward(&w).unwrap();
        let analytic = net.take_mask_grad(2).expect("mask grad recorded");
        // Second take returns None until another backward pass runs.
        assert!(net.take_mask_grad(2).is_none());
        let eps = 1e-2;
        let snap = net.clone();
        let obj = |net: &mut Network, m: &[f32]| -> f32 {
            net.set_channel_mask(2, Some(m.to_vec()));
            net.forward(&x, true)
                .unwrap()
                .data()
                .iter()
                .zip(w.data())
                .map(|(a, b)| a * b)
                .sum()
        };
        for probe in 0..4 {
            let mut mp = mask.clone();
            mp[probe] += eps;
            let mut mm = mask.clone();
            mm[probe] -= eps;
            let mut n1 = snap.clone();
            let mut n2 = snap.clone();
            let numeric = (obj(&mut n1, &mp) - obj(&mut n2, &mm)) / (2.0 * eps);
            assert!(
                (numeric - analytic[probe]).abs() < 5e-2 * (1.0 + numeric.abs()),
                "channel {probe}: numeric {numeric}, analytic {}",
                analytic[probe]
            );
        }
    }

    #[test]
    fn mask_grad_disabled_records_nothing() {
        let mut rng = Rng::seed_from(11);
        let mut net = tiny_net(&mut rng);
        net.set_channel_mask(2, Some(vec![1.0; 4]));
        let x = Tensor::randn(Shape::d4(1, 1, 8, 8), &mut rng);
        net.forward(&x, true).unwrap();
        net.backward(&Tensor::ones(Shape::d2(1, 3))).unwrap();
        assert!(net.take_mask_grad(2).is_none());
    }

    #[test]
    fn param_count_sums_everything() {
        let mut rng = Rng::seed_from(9);
        let mut net = tiny_net(&mut rng);
        // conv: 4*1*9 + 4; bn: 4 + 4; linear: 3*4 + 3.
        assert_eq!(net.param_count(), 36 + 4 + 8 + 12 + 3);
    }
}
