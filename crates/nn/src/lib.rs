//! Neural-network substrate for the HeadStart reproduction: layers with
//! full backpropagation, optimizers, a model zoo (VGG / CIFAR-ResNet),
//! parameter & FLOP accounting, channel masking and physical channel
//! surgery.
//!
//! The paper prunes *feature maps*: deciding to drop map `m` of layer `i`
//! removes filter `m` of layer `i` **and** input channel `m` of layer
//! `i+1`. This crate provides four views of that operation:
//!
//! 1. **Masking** ([`Network::set_channel_mask`]) — multiply feature maps
//!    by a 0/1 vector. Cheap, reversible, used while the HeadStart policy
//!    is still *exploring* actions.
//! 2. **Surgery** ([`surgery::prune_feature_maps`]) — physically shrink
//!    the weight tensors once an inception is chosen, so the pruned model
//!    really is smaller and faster.
//! 3. **Accounting** ([`accounting`]) — exact parameter and FLOP counts
//!    for any (possibly pruned) architecture, the quantities reported in
//!    the paper's tables.
//! 4. **Compaction** ([`compact`]) — realize *every* remaining logical
//!    pruning decision at once (channel masks, deactivated blocks, block
//!    inner masks), yielding a mask-free network whose forward pass runs
//!    the dense kernels at physically reduced shapes.
//!
//! # Example
//!
//! ```
//! use hs_nn::{models, loss::softmax_cross_entropy};
//! use hs_tensor::{Rng, Tensor, Shape};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = Rng::seed_from(0);
//! let mut net = models::vgg11(3, 10, 8, 0.25, &mut rng)?; // 8x8 input, quarter width
//! let x = Tensor::randn(Shape::d4(2, 3, 8, 8), &mut rng);
//! let logits = net.forward(&x, true)?;
//! let (loss, grad) = softmax_cross_entropy(&logits, &[1, 7])?;
//! assert!(loss > 0.0);
//! net.backward(&grad)?;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod accounting;
pub mod block;
pub mod checkpoint;
pub mod compact;
pub mod error;
pub mod infer;
pub mod layer;
pub mod loss;
pub mod models;
pub mod network;
pub mod optim;
pub mod param;
pub mod summary;
pub mod surgery;
pub mod train;

pub use compact::{CompactError, CompactNetwork, CompactReport};
pub use error::NnError;
pub use network::{Network, Node};
pub use param::Param;
