//! Thread-safe shared inference over a [`Network`].
//!
//! Serving code wants many request handlers (and reference checkers in
//! tests) to classify against *one* model instance, but
//! [`Network::forward`] takes `&mut self` — batch-norm layers update
//! running statistics in training mode and every layer caches
//! activations for backprop. [`SharedNetwork`] wraps the network in an
//! `Arc<Mutex<…>>` so handles can be cloned freely across threads; each
//! inference takes the lock for exactly one forward pass in inference
//! mode (`train = false`, so the pass is a pure function of the
//! weights).
//!
//! The lock recovers from poisoning: a panicking caller mid-forward
//! cannot take the model down with it. Inference mode never leaves
//! half-updated state behind (weights are only read), so continuing
//! with the poisoned network is sound — the serving path must keep
//! answering, not propagate one request's panic forever.

use std::sync::{Arc, Mutex};

use hs_tensor::Tensor;

use crate::error::NnError;
use crate::network::Network;

/// Classifies a batch: one inference-mode forward pass, then per-row
/// argmax over the logits.
///
/// # Errors
///
/// Propagates layer errors, and [`NnError::BadInput`] if the logits are
/// not a non-empty `[N, classes]` matrix.
///
/// # Example
///
/// ```
/// use hs_nn::{infer::predict, models};
/// use hs_tensor::{Rng, Shape, Tensor};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = Rng::seed_from(7);
/// let mut net = models::lenet(3, 10, 32, 1.0, &mut rng)?;
/// let x = Tensor::randn(Shape::d4(2, 3, 32, 32), &mut rng);
/// let classes = predict(&mut net, &x)?;
/// assert_eq!(classes.len(), 2);
/// assert!(classes.iter().all(|&c| c < 10));
/// # Ok(())
/// # }
/// ```
pub fn predict(net: &mut Network, images: &Tensor) -> Result<Vec<usize>, NnError> {
    let logits = net.forward(images, false)?;
    argmax_rows(&logits)
}

/// Per-row argmax of a `[N, classes]` logits matrix. Ties break toward
/// the lower class index, matching the accuracy computation in
/// [`crate::train`].
///
/// # Errors
///
/// Returns [`NnError::BadInput`] unless the tensor is a rank-2 matrix
/// with at least one column.
pub fn argmax_rows(logits: &Tensor) -> Result<Vec<usize>, NnError> {
    if logits.shape().rank() != 2 || logits.shape().dim(1) == 0 {
        return Err(NnError::BadInput {
            what: "argmax_rows",
            detail: format!("logits must be [N, classes], got {}", logits.shape()),
        });
    }
    let (n, classes) = (logits.shape().dim(0), logits.shape().dim(1));
    let data = logits.data();
    let mut out = Vec::with_capacity(n);
    for row in 0..n {
        let row = &data[row * classes..(row + 1) * classes];
        let mut best = 0usize;
        for (i, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = i;
            }
        }
        out.push(best);
    }
    Ok(out)
}

/// A cloneable, thread-safe handle to one network used for inference.
#[derive(Debug, Clone)]
pub struct SharedNetwork {
    inner: Arc<Mutex<Network>>,
}

impl SharedNetwork {
    /// Wraps a network for shared inference.
    pub fn new(net: Network) -> SharedNetwork {
        SharedNetwork {
            inner: Arc::new(Mutex::new(net)),
        }
    }

    /// Locks the model, recovering from poisoning (see module docs).
    fn lock(&self) -> std::sync::MutexGuard<'_, Network> {
        self.inner.lock().unwrap_or_else(|poisoned| {
            self.inner.clear_poison();
            poisoned.into_inner()
        })
    }

    /// Classifies a `[N, C, H, W]` batch under the lock; see [`predict`].
    ///
    /// # Errors
    ///
    /// Propagates [`predict`] errors.
    pub fn classify(&self, images: &Tensor) -> Result<Vec<usize>, NnError> {
        predict(&mut self.lock(), images)
    }

    /// Runs `f` with exclusive access to the underlying network (e.g.
    /// summaries or accounting on a live serving model).
    pub fn with<R>(&self, f: impl FnOnce(&mut Network) -> R) -> R {
        f(&mut self.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use hs_tensor::{Rng, Shape};

    fn net_and_batch() -> (Network, Tensor) {
        let mut rng = Rng::seed_from(11);
        let net = models::lenet(3, 10, 16, 1.0, &mut rng).unwrap();
        let x = Tensor::randn(Shape::d4(3, 3, 16, 16), &mut rng);
        (net, x)
    }

    #[test]
    fn shared_classification_matches_direct_prediction() {
        let (mut net, x) = net_and_batch();
        let direct = predict(&mut net, &x).unwrap();
        let shared = SharedNetwork::new(net);
        assert_eq!(shared.classify(&x).unwrap(), direct);
        // Inference is read-only: a second pass is identical.
        assert_eq!(shared.classify(&x).unwrap(), direct);
    }

    #[test]
    fn handles_share_one_model_across_threads() {
        let (net, x) = net_and_batch();
        let shared = SharedNetwork::new(net);
        let reference = shared.classify(&x).unwrap();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let shared = shared.clone();
                let x = x.clone();
                std::thread::spawn(move || shared.classify(&x).unwrap())
            })
            .collect();
        for handle in handles {
            assert_eq!(handle.join().unwrap(), reference);
        }
    }

    #[test]
    fn classification_survives_a_poisoned_lock() {
        let (net, x) = net_and_batch();
        let shared = SharedNetwork::new(net);
        let reference = shared.classify(&x).unwrap();
        let poisoner = shared.clone();
        let _ = std::thread::spawn(move || {
            poisoner.with(|_net| panic!("panic while holding the model lock"))
        })
        .join();
        assert_eq!(
            shared.classify(&x).unwrap(),
            reference,
            "a caller panic must not take the serving model down"
        );
    }

    #[test]
    fn argmax_rejects_non_matrix_logits() {
        let t = Tensor::zeros(Shape::d1(4));
        assert!(argmax_rows(&t).is_err());
    }
}
