//! Classification loss and metrics.

use hs_tensor::{pool, Tensor};

use crate::error::NnError;

/// Softmax batches smaller than this many elements are normalized on the
/// calling thread; larger ones run row-chunked on the worker pool.
const SOFTMAX_PARALLEL_ELEMS: usize = 1 << 15;

/// Rows are handed to the pool in fixed groups of this size (independent
/// of the thread count; each row is normalized independently anyway).
const SOFTMAX_ROW_CHUNK: usize = 64;

fn softmax_rows(rows: &mut [f32], k: usize) {
    for row in rows.chunks_mut(k) {
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

/// Numerically stable row-wise softmax of a `[B, K]` logit matrix.
///
/// # Errors
///
/// Returns [`NnError::BadInput`] if `logits` is not rank 2.
pub fn softmax(logits: &Tensor) -> Result<Tensor, NnError> {
    if logits.shape().rank() != 2 {
        return Err(NnError::BadInput {
            what: "softmax",
            detail: format!("expected [B, K], got {}", logits.shape()),
        });
    }
    let k = logits.shape().dim(1);
    let mut out = logits.clone();
    if out.len() < SOFTMAX_PARALLEL_ELEMS || k == 0 {
        softmax_rows(out.data_mut(), k);
    } else {
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = out
            .data_mut()
            .chunks_mut(SOFTMAX_ROW_CHUNK * k)
            .map(|rows| Box::new(move || softmax_rows(rows, k)) as Box<dyn FnOnce() + Send + '_>)
            .collect();
        pool::run_tasks(tasks);
    }
    Ok(out)
}

/// Mean cross-entropy loss over a batch and its gradient w.r.t. the
/// logits.
///
/// Returns `(loss, dlogits)` where `dlogits = (softmax - onehot) / B`, so
/// feeding it straight into [`Network::backward`](crate::Network::backward)
/// performs standard classification training.
///
/// # Errors
///
/// Returns [`NnError::BadInput`] if the logits are not `[B, K]`, if
/// `targets.len() != B`, or if any target is `>= K`.
pub fn softmax_cross_entropy(logits: &Tensor, targets: &[usize]) -> Result<(f32, Tensor), NnError> {
    let probs = softmax(logits)?;
    let (b, k) = (logits.shape().dim(0), logits.shape().dim(1));
    if targets.len() != b {
        return Err(NnError::BadInput {
            what: "softmax_cross_entropy",
            detail: format!("{} targets for a batch of {b}", targets.len()),
        });
    }
    let mut grad = probs.clone();
    let mut loss = 0.0f64;
    for (i, &t) in targets.iter().enumerate() {
        if t >= k {
            return Err(NnError::BadInput {
                what: "softmax_cross_entropy",
                detail: format!("target {t} out of range for {k} classes"),
            });
        }
        let p = probs.data()[i * k + t].max(1e-12);
        loss -= (p as f64).ln();
        grad.data_mut()[i * k + t] -= 1.0;
    }
    grad.scale(1.0 / b as f32);
    Ok(((loss / b as f64) as f32, grad))
}

/// Top-1 accuracy of a `[B, K]` logit matrix against integer targets.
///
/// # Errors
///
/// Returns [`NnError::BadInput`] on shape mismatch.
pub fn accuracy(logits: &Tensor, targets: &[usize]) -> Result<f32, NnError> {
    if logits.shape().rank() != 2 || logits.shape().dim(0) != targets.len() {
        return Err(NnError::BadInput {
            what: "accuracy",
            detail: format!("logits {} vs {} targets", logits.shape(), targets.len()),
        });
    }
    let k = logits.shape().dim(1);
    let mut hits = 0usize;
    for (i, &t) in targets.iter().enumerate() {
        let row = &logits.data()[i * k..(i + 1) * k];
        let mut best = 0;
        for (j, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = j;
            }
        }
        if best == t {
            hits += 1;
        }
    }
    Ok(hits as f32 / targets.len().max(1) as f32)
}

/// Top-k accuracy: a prediction counts if the target is among the `k`
/// highest logits.
///
/// # Errors
///
/// Returns [`NnError::BadInput`] on shape mismatch or `k == 0`.
pub fn top_k_accuracy(logits: &Tensor, targets: &[usize], k: usize) -> Result<f32, NnError> {
    if logits.shape().rank() != 2 || logits.shape().dim(0) != targets.len() || k == 0 {
        return Err(NnError::BadInput {
            what: "top_k_accuracy",
            detail: format!(
                "logits {}, {} targets, k {k}",
                logits.shape(),
                targets.len()
            ),
        });
    }
    let classes = logits.shape().dim(1);
    let k = k.min(classes);
    let mut hits = 0usize;
    for (i, &t) in targets.iter().enumerate() {
        let row = &logits.data()[i * classes..(i + 1) * classes];
        let target_score = row[t];
        // The target is in the top k iff fewer than k entries strictly
        // beat it (ties resolved in the target's favour, deterministic).
        let better = row.iter().filter(|&&v| v > target_score).count();
        if better < k {
            hits += 1;
        }
    }
    Ok(hits as f32 / targets.len().max(1) as f32)
}

/// A confusion matrix over integer classes: `entry[t][p]` counts samples
/// of true class `t` predicted as class `p`.
///
/// # Errors
///
/// Returns [`NnError::BadInput`] on shape mismatch.
pub fn confusion_matrix(logits: &Tensor, targets: &[usize]) -> Result<Vec<Vec<usize>>, NnError> {
    let (b, k) = logit_dims(logits)?;
    if b != targets.len() {
        return Err(NnError::BadInput {
            what: "confusion_matrix",
            detail: format!("{b} logit rows, {} targets", targets.len()),
        });
    }
    let mut matrix = vec![vec![0usize; k]; k];
    for (i, &t) in targets.iter().enumerate() {
        if t >= k {
            return Err(NnError::BadInput {
                what: "confusion_matrix",
                detail: format!("target {t} out of range for {k} classes"),
            });
        }
        let row = &logits.data()[i * k..(i + 1) * k];
        let mut best = 0;
        for (j, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = j;
            }
        }
        matrix[t][best] += 1;
    }
    Ok(matrix)
}

/// Convenience: the shape `[B, K]` validated and split out.
///
/// # Errors
///
/// Returns [`NnError::BadInput`] if `logits` is not rank 2.
pub fn logit_dims(logits: &Tensor) -> Result<(usize, usize), NnError> {
    if logits.shape().rank() != 2 {
        return Err(NnError::BadInput {
            what: "logit_dims",
            detail: format!("expected [B, K], got {}", logits.shape()),
        });
    }
    Ok((logits.shape().dim(0), logits.shape().dim(1)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs_tensor::{Rng, Shape};

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut rng = Rng::seed_from(0);
        let logits = Tensor::randn(Shape::d2(5, 7), &mut rng);
        let p = softmax(&logits).unwrap();
        for row in p.data().chunks(7) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(row.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let logits = Tensor::from_vec(Shape::d2(1, 3), vec![1.0, 2.0, 3.0]).unwrap();
        let shifted = Tensor::from_vec(Shape::d2(1, 3), vec![1001.0, 1002.0, 1003.0]).unwrap();
        let a = softmax(&logits).unwrap();
        let b = softmax(&shifted).unwrap();
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn cross_entropy_of_perfect_prediction_is_small() {
        let logits = Tensor::from_vec(Shape::d2(1, 3), vec![20.0, 0.0, 0.0]).unwrap();
        let (loss, _) = softmax_cross_entropy(&logits, &[0]).unwrap();
        assert!(loss < 1e-3);
    }

    #[test]
    fn cross_entropy_uniform_is_log_k() {
        let logits = Tensor::zeros(Shape::d2(4, 10));
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 1, 2, 3]).unwrap();
        assert!((loss - (10.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_gradient_is_probs_minus_onehot() {
        let logits = Tensor::zeros(Shape::d2(1, 4));
        let (_, grad) = softmax_cross_entropy(&logits, &[2]).unwrap();
        assert!((grad.data()[0] - 0.25).abs() < 1e-6);
        assert!((grad.data()[2] + 0.75).abs() < 1e-6);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut rng = Rng::seed_from(1);
        let logits = Tensor::randn(Shape::d2(3, 5), &mut rng);
        let targets = [4usize, 0, 2];
        let (_, grad) = softmax_cross_entropy(&logits, &targets).unwrap();
        let eps = 1e-3;
        for probe in [0usize, 7, 14] {
            let mut lp = logits.clone();
            lp.data_mut()[probe] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[probe] -= eps;
            let (fp, _) = softmax_cross_entropy(&lp, &targets).unwrap();
            let (fm, _) = softmax_cross_entropy(&lm, &targets).unwrap();
            let numeric = (fp - fm) / (2.0 * eps);
            assert!((numeric - grad.data()[probe]).abs() < 1e-3);
        }
    }

    #[test]
    fn rejects_bad_targets() {
        let logits = Tensor::zeros(Shape::d2(2, 3));
        assert!(softmax_cross_entropy(&logits, &[0]).is_err());
        assert!(softmax_cross_entropy(&logits, &[0, 3]).is_err());
    }

    #[test]
    fn top_k_accuracy_widens_with_k() {
        let logits = Tensor::from_vec(
            Shape::d2(2, 4),
            vec![
                4.0, 3.0, 2.0, 1.0, // target 1 is 2nd best
                0.0, 1.0, 2.0, 3.0, // target 0 is 4th best
            ],
        )
        .unwrap();
        let targets = [1usize, 0];
        assert_eq!(top_k_accuracy(&logits, &targets, 1).unwrap(), 0.0);
        assert_eq!(top_k_accuracy(&logits, &targets, 2).unwrap(), 0.5);
        assert_eq!(top_k_accuracy(&logits, &targets, 4).unwrap(), 1.0);
        // k beyond the class count clamps.
        assert_eq!(top_k_accuracy(&logits, &targets, 99).unwrap(), 1.0);
        assert!(top_k_accuracy(&logits, &targets, 0).is_err());
    }

    #[test]
    fn top1_of_top_k_matches_accuracy() {
        let mut rng = Rng::seed_from(3);
        let logits = Tensor::randn(Shape::d2(20, 6), &mut rng);
        let targets: Vec<usize> = (0..20).map(|i| i % 6).collect();
        let a = accuracy(&logits, &targets).unwrap();
        let t1 = top_k_accuracy(&logits, &targets, 1).unwrap();
        assert!((a - t1).abs() < 1e-6);
    }

    #[test]
    fn confusion_matrix_rows_sum_to_class_counts() {
        let logits = Tensor::from_vec(Shape::d2(3, 2), vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0]).unwrap();
        let m = confusion_matrix(&logits, &[0, 0, 1]).unwrap();
        assert_eq!(m[0], vec![1, 1]); // one class-0 correct, one → 1
        assert_eq!(m[1], vec![1, 0]); // the class-1 sample predicted 0
        assert!(confusion_matrix(&logits, &[0, 0, 5]).is_err());
    }

    #[test]
    fn accuracy_counts_argmax_hits() {
        let logits =
            Tensor::from_vec(Shape::d2(3, 2), vec![1.0, 0.0, 0.0, 1.0, 5.0, -1.0]).unwrap();
        let acc = accuracy(&logits, &[0, 1, 1]).unwrap();
        assert!((acc - 2.0 / 3.0).abs() < 1e-6);
    }
}
