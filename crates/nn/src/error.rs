//! Error type for network construction and execution.

use std::error::Error;
use std::fmt;

use hs_tensor::TensorError;

/// Error returned by network construction, execution and surgery.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// An underlying tensor operation failed (shape mismatch etc.).
    Tensor(TensorError),
    /// The input fed to a layer/network does not match its expected shape.
    BadInput {
        /// Which component rejected the input.
        what: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// `backward` was called without a preceding `forward` (no cache).
    NoForwardCache {
        /// Layer kind that was asked to backpropagate.
        layer: &'static str,
    },
    /// A node index passed to masking/surgery/capture does not refer to a
    /// node of the required kind.
    BadNodeIndex {
        /// The offending index.
        index: usize,
        /// What kind of node was required.
        expected: &'static str,
    },
    /// A pruning mask or keep-set is invalid (wrong length, empty, or out
    /// of range).
    BadMask {
        /// Human-readable detail.
        detail: String,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::BadInput { what, detail } => write!(f, "bad input to {what}: {detail}"),
            NnError::NoForwardCache { layer } => {
                write!(
                    f,
                    "backward called on {layer} without a cached forward pass"
                )
            }
            NnError::BadNodeIndex { index, expected } => {
                write!(f, "node index {index} is not a {expected}")
            }
            NnError::BadMask { detail } => write!(f, "bad mask: {detail}"),
        }
    }
}

impl Error for NnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_tensor_error_with_source() {
        let inner = TensorError::Empty { op: "stack" };
        let e = NnError::from(inner.clone());
        assert_eq!(e, NnError::Tensor(inner));
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<NnError>();
    }
}
