//! Structural compaction: turning a *logically* pruned network (masks,
//! deactivated blocks) into a *physically* smaller one that the dense
//! kernels run at reduced shapes — the step that converts the paper's
//! FLOP-reduction claims into measured wall-clock speedup.
//!
//! A pruned checkpoint carries up to three kinds of logical sparsity:
//!
//! 1. **Channel masks** at a conv site's mask node (per-layer pruning):
//!    realized by [`crate::surgery::prune_feature_maps`] — conv filters,
//!    the following batch norm, and the consumer's input channels (or
//!    the classifier's input columns) all shrink to the kept set.
//! 2. **Deactivated residual blocks** (block pruning): an inactive
//!    block's forward pass is the identity, so the node is removed
//!    outright — an exact transformation.
//! 3. **Block inner masks** (intra-block pruning): realized by
//!    [`crate::block::ResidualBlock::prune_inner_maps`] — conv1's
//!    filters, bn1, and conv2's input channels shrink; the block's
//!    output shape is unchanged.
//!
//! Compaction applies all three and then asserts the invariant that
//! makes the result fast: **no masks survive**. The compacted forward
//! pass is pure dense kernels on reduced shapes, with zero masking
//! work. Equivalence to the masked-dense forward is enforced by the
//! seeded parity suite (`tests/compact_parity.rs`); masks must be
//! binary (exactly 0.0 / 1.0) for the equivalence to hold, and
//! non-binary masks are rejected with a typed error instead of being
//! silently mis-realized.
//!
//! Every rewritten unit emits a `compact` telemetry event with its
//! before/after shape, a summary event carries the whole-network FLOP
//! ratio, and the `hs_nn_compact_flops_saved_total` counter accumulates
//! the MACs removed.

use std::fmt;
use std::sync::OnceLock;

use hs_telemetry::metrics::{self, Counter};
use hs_telemetry::{Event, EventKind, Level};

use crate::accounting::analyze;
use crate::error::NnError;
use crate::network::{Network, Node};
use crate::surgery::{conv_sites, keep_from_mask, prune_feature_maps};

/// Why a network could not be compacted.
#[derive(Debug, Clone, PartialEq)]
pub enum CompactError {
    /// Every filter of a unit is masked out: compacting would produce a
    /// zero-dimension GEMM. The caller should keep at least one filter
    /// (or skip the unit) before compacting.
    DegenerateUnit {
        /// Node index of the degenerate unit.
        node: usize,
        /// Unit kind (`"conv"` or `"block-inner"`).
        kind: &'static str,
    },
    /// A mask carries values other than exactly 0.0 / 1.0; dropping its
    /// zero channels would not reproduce the masked forward pass.
    NonBinaryMask {
        /// Node index the mask is attached to.
        node: usize,
    },
    /// A sparsity pattern this pass cannot realize (e.g. two masks on
    /// one conv site, or a mask on a node with no surgery rule).
    Unsupported {
        /// Node index of the offending structure.
        node: usize,
        /// Human-readable detail.
        detail: String,
    },
    /// An underlying surgery or shape-analysis failure.
    Nn(NnError),
}

impl fmt::Display for CompactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompactError::DegenerateUnit { node, kind } => write!(
                f,
                "compaction of {kind} node {node} would leave zero channels; \
                 keep at least one filter"
            ),
            CompactError::NonBinaryMask { node } => write!(
                f,
                "node {node} carries a non-binary mask; compaction requires 0/1 masks"
            ),
            CompactError::Unsupported { node, detail } => {
                write!(f, "cannot compact node {node}: {detail}")
            }
            CompactError::Nn(e) => write!(f, "compaction failed: {e}"),
        }
    }
}

impl std::error::Error for CompactError {}

impl From<NnError> for CompactError {
    fn from(e: NnError) -> CompactError {
        CompactError::Nn(e)
    }
}

/// One unit rewritten by compaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactChange {
    /// Node index in the network *as compacted so far* (block removals
    /// shift later indices down).
    pub node: usize,
    /// Unit kind: `"conv"` (channel-mask surgery), `"block"` (inactive
    /// block removed), `"block-inner"` (inner-mask surgery).
    pub kind: &'static str,
    /// Channels before: conv output maps, block width, or inner maps.
    pub before: usize,
    /// Channels after (`0` for a removed block).
    pub after: usize,
}

/// What compaction did: the per-unit rewrites plus whole-network cost
/// before and after, measured by [`crate::accounting::analyze`].
///
/// The *before* numbers describe the **stored structure**: inactive
/// blocks and masked channels are counted at their dense shapes,
/// because that is what the checkpoint physically carries and what a
/// naive dense executor would run. The *after* numbers describe the
/// compacted network, where stored == executed by construction. The
/// difference is exactly what compaction removed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactReport {
    /// Every rewritten unit, in compaction order.
    pub changes: Vec<CompactChange>,
    /// Stored trainable parameters before compaction.
    pub params_before: u64,
    /// Stored trainable parameters after compaction.
    pub params_after: u64,
    /// Stored-structure MACs per sample before compaction.
    pub flops_before: u64,
    /// MACs per sample after compaction.
    pub flops_after: u64,
}

impl CompactReport {
    /// `flops_after / flops_before` in (0, 1]; `1.0` for an empty net.
    pub fn flop_ratio(&self) -> f64 {
        if self.flops_before == 0 {
            1.0
        } else {
            self.flops_after as f64 / self.flops_before as f64
        }
    }

    /// MACs removed per sample.
    pub fn flops_saved(&self) -> u64 {
        self.flops_before.saturating_sub(self.flops_after)
    }

    /// `flops_before / flops_after` — the model-level speedup the
    /// compacted shapes should realize on a compute-bound device.
    pub fn speedup(&self) -> f64 {
        if self.flops_after == 0 {
            1.0
        } else {
            self.flops_before as f64 / self.flops_after as f64
        }
    }
}

/// A physically compacted network paired with the report of what
/// changed. The wrapped network carries **no masks, no inactive blocks,
/// no inner masks** — its forward pass is dense kernels on reduced
/// shapes only.
#[derive(Debug, Clone)]
pub struct CompactNetwork {
    /// The compacted network.
    pub net: Network,
    /// What compaction did.
    pub report: CompactReport,
}

fn compact_flops_saved() -> &'static Counter {
    static C: OnceLock<&'static Counter> = OnceLock::new();
    C.get_or_init(|| metrics::counter("hs_nn_compact_flops_saved_total"))
}

/// Returns the binary keep set of `mask`, or the appropriate typed
/// error for all-zero / non-binary masks.
fn binary_keep(mask: &[f32], node: usize, kind: &'static str) -> Result<Vec<usize>, CompactError> {
    if mask.iter().any(|&m| m != 0.0 && m != 1.0) {
        return Err(CompactError::NonBinaryMask { node });
    }
    let keep = keep_from_mask(mask);
    if keep.is_empty() {
        return Err(CompactError::DegenerateUnit { node, kind });
    }
    Ok(keep)
}

/// Compacts `net` in place (see the module docs for the three rewrite
/// rules) and returns the report. `in_channels`/`input_size` describe
/// the input the network was trained on (needed for cost analysis).
///
/// # Errors
///
/// [`CompactError::DegenerateUnit`] when a unit has every filter
/// masked, [`CompactError::NonBinaryMask`] for soft masks,
/// [`CompactError::Unsupported`] for sparsity this pass cannot realize
/// (the network is left partially compacted only on error paths that
/// say so), and [`CompactError::Nn`] for underlying surgery failures.
pub fn compact_in_place(
    net: &mut Network,
    in_channels: usize,
    input_size: usize,
) -> Result<CompactReport, CompactError> {
    // Cost the *stored* structure: `analyze` skips inactive blocks (they
    // execute nothing), but their weights are still in the checkpoint
    // and a naive dense executor would still run them — reactivate every
    // block in a throwaway clone so `before` counts what compaction is
    // about to physically remove.
    let before = {
        let mut stored = net.clone();
        for idx in stored.block_indices() {
            stored.set_block_active(idx, true)?;
        }
        analyze(&stored, in_channels, input_size)?
    };
    let mut changes = Vec::new();

    // 1. Inactive residual blocks: the forward pass is the identity, so
    // removal is exact. Walk backwards so indices stay valid.
    for idx in net.block_indices().into_iter().rev() {
        let Node::Block(block) = net.node(idx) else {
            unreachable!("block_indices returns blocks");
        };
        if !block.is_active() {
            let width = block.out_channels();
            net.remove_node(idx);
            changes.push(CompactChange {
                node: idx,
                kind: "block",
                before: width,
                after: 0,
            });
        }
    }
    changes.reverse(); // removals were collected back-to-front

    // 2. Inner masks on the surviving blocks.
    for idx in net.block_indices() {
        let Node::Block(block) = net.node_mut(idx) else {
            unreachable!("block_indices returns blocks");
        };
        if let Some(mask) = block.inner_mask().map(<[f32]>::to_vec) {
            let inner_before = block.inner_channels();
            let keep = binary_keep(&mask, idx, "block-inner")?;
            if keep.len() == inner_before {
                block.set_inner_mask(None)?;
                continue; // full keep: the mask was a no-op
            }
            block.prune_inner_maps(&keep)?;
            changes.push(CompactChange {
                node: idx,
                kind: "block-inner",
                before: inner_before,
                after: keep.len(),
            });
        }
    }

    // 3. Channel masks at the top-level conv sites.
    for site in conv_sites(net) {
        let mut masked: Vec<usize> = [Some(site.conv), site.bn, site.relu]
            .into_iter()
            .flatten()
            .filter(|&i| net.channel_mask(i).is_some())
            .collect();
        let Some(mask_node) = masked.pop() else {
            continue;
        };
        if !masked.is_empty() {
            return Err(CompactError::Unsupported {
                node: site.conv,
                detail: "conv site carries more than one channel mask".to_string(),
            });
        }
        let mask = net
            .channel_mask(mask_node)
            .expect("mask present by construction")
            .to_vec();
        let maps_before = net.conv(site.conv)?.out_channels();
        let keep = binary_keep(&mask, mask_node, "conv")?;
        if keep.len() == maps_before {
            net.set_channel_mask(mask_node, None); // full keep: no-op mask
            continue;
        }
        prune_feature_maps(net, site.conv, &keep)?;
        changes.push(CompactChange {
            node: site.conv,
            kind: "conv",
            before: maps_before,
            after: keep.len(),
        });
    }

    // Invariant: nothing logical survives. A leftover mask means a
    // sparsity pattern without a surgery rule (e.g. a mask on a linear
    // node) — refuse rather than ship a "compacted" net that still
    // masks on every forward pass.
    for i in 0..net.len() {
        if net.channel_mask(i).is_some() {
            return Err(CompactError::Unsupported {
                node: i,
                detail: format!(
                    "a mask survived compaction on {} node {i}",
                    net.node(i).kind()
                ),
            });
        }
    }

    let after = analyze(net, in_channels, input_size)?;
    let report = CompactReport {
        changes,
        params_before: before.total_params,
        params_after: after.total_params,
        flops_before: before.total_flops,
        flops_after: after.total_flops,
    };
    emit_events(&report);
    Ok(report)
}

/// Clones and compacts `net`, returning the [`CompactNetwork`] pair.
///
/// # Errors
///
/// See [`compact_in_place`].
pub fn compact(
    net: &Network,
    in_channels: usize,
    input_size: usize,
) -> Result<CompactNetwork, CompactError> {
    let mut compacted = net.clone();
    let report = compact_in_place(&mut compacted, in_channels, input_size)?;
    Ok(CompactNetwork {
        net: compacted,
        report,
    })
}

/// One `compact` event per rewritten unit plus a network summary, and
/// the saved-FLOPs counter. Field values are derived only from shapes,
/// so seeded runs emit byte-identical streams (modulo `ts`).
fn emit_events(report: &CompactReport) {
    for change in &report.changes {
        hs_telemetry::emit(
            Event::new(
                EventKind::Compact,
                Level::Debug,
                format!("compact/{}:{}", change.kind, change.node),
            )
            .field("kind", change.kind)
            .field("before", change.before as u64)
            .field("after", change.after as u64),
        );
    }
    hs_telemetry::emit(
        Event::new(EventKind::Compact, Level::Info, "compact/network")
            .message(format!(
                "compacted {} unit(s): {} -> {} MACs",
                report.changes.len(),
                report.flops_before,
                report.flops_after
            ))
            .field("before", report.flops_before)
            .field("after", report.flops_after)
            .field("flop_ratio", report.flop_ratio())
            .field("params_before", report.params_before)
            .field("params_after", report.params_after)
            .field("units", report.changes.len() as u64),
    );
    compact_flops_saved().add(report.flops_saved());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use hs_tensor::{Rng, Shape, Tensor};

    /// Masks half the channels of every conv site of a single-branch net.
    fn mask_half(net: &mut Network) {
        for site in conv_sites(net) {
            let c = net.conv(site.conv).unwrap().out_channels();
            let mask: Vec<f32> = (0..c).map(|i| if i < c / 2 { 1.0 } else { 0.0 }).collect();
            net.set_channel_mask(site.mask_node, Some(mask));
        }
    }

    #[test]
    fn compaction_shrinks_masked_convs_and_clears_masks() {
        let mut rng = Rng::seed_from(7);
        let mut net = models::lenet(1, 10, 16, 1.0, &mut rng).unwrap();
        mask_half(&mut net);
        let report = compact_in_place(&mut net, 1, 16).unwrap();
        assert_eq!(report.changes.len(), 2);
        assert!(report.flops_after < report.flops_before);
        assert!(report.flop_ratio() < 0.5);
        for i in 0..net.len() {
            assert!(net.channel_mask(i).is_none());
        }
        let x = Tensor::randn(Shape::d4(1, 1, 16, 16), &mut rng);
        assert!(net.forward(&x, false).is_ok());
    }

    #[test]
    fn inactive_blocks_are_removed() {
        let mut rng = Rng::seed_from(8);
        let mut net = models::resnet_cifar(2, 3, 10, 0.25, &mut rng).unwrap();
        let blocks = net.block_indices();
        // Deactivate the prunable (identity-shortcut) second block.
        net.set_block_active(blocks[1], false).unwrap();
        let nodes_before = net.len();
        let report = compact_in_place(&mut net, 3, 8).unwrap();
        assert_eq!(net.len(), nodes_before - 1);
        assert_eq!(report.changes.len(), 1);
        assert_eq!(report.changes[0].kind, "block");
        assert_eq!(report.changes[0].after, 0);
        // The bypassed block executed nothing, but its weights were
        // stored; removal shrinks both the FLOP and parameter footprint.
        assert!(report.flops_after < report.flops_before);
        assert!(report.params_after < report.params_before);
        let x = Tensor::randn(Shape::d4(1, 3, 8, 8), &mut rng);
        assert!(net.forward(&x, false).is_ok());
    }

    #[test]
    fn inner_masks_shrink_block_interiors() {
        let mut rng = Rng::seed_from(9);
        let mut net = models::resnet_cifar(1, 3, 10, 0.5, &mut rng).unwrap();
        let idx = net.block_indices()[0];
        let inner = match net.node(idx) {
            Node::Block(b) => b.inner_channels(),
            _ => unreachable!(),
        };
        let mask: Vec<f32> = (0..inner)
            .map(|i| if i % 2 == 0 { 1.0 } else { 0.0 })
            .collect();
        match net.node_mut(idx) {
            Node::Block(b) => b.set_inner_mask(Some(mask)).unwrap(),
            _ => unreachable!(),
        }
        let report = compact_in_place(&mut net, 3, 8).unwrap();
        assert_eq!(report.changes.len(), 1);
        assert_eq!(report.changes[0].kind, "block-inner");
        assert_eq!(report.changes[0].before, inner);
        assert_eq!(report.changes[0].after, inner.div_ceil(2));
        match net.node(idx) {
            Node::Block(b) => {
                assert_eq!(b.inner_channels(), inner.div_ceil(2));
                assert!(b.inner_mask().is_none());
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn degenerate_all_zero_mask_is_a_typed_error() {
        let mut rng = Rng::seed_from(10);
        let mut net = models::lenet(1, 10, 16, 1.0, &mut rng).unwrap();
        let site = conv_sites(&net)[0];
        let c = net.conv(site.conv).unwrap().out_channels();
        net.set_channel_mask(site.mask_node, Some(vec![0.0; c]));
        let err = compact(&net, 1, 16).unwrap_err();
        assert!(matches!(
            err,
            CompactError::DegenerateUnit { kind: "conv", .. }
        ));
    }

    #[test]
    fn non_binary_masks_are_rejected() {
        let mut rng = Rng::seed_from(11);
        let mut net = models::lenet(1, 10, 16, 1.0, &mut rng).unwrap();
        let site = conv_sites(&net)[0];
        let c = net.conv(site.conv).unwrap().out_channels();
        let mut mask = vec![1.0f32; c];
        mask[0] = 0.5;
        net.set_channel_mask(site.mask_node, Some(mask));
        assert!(matches!(
            compact(&net, 1, 16).unwrap_err(),
            CompactError::NonBinaryMask { .. }
        ));
    }

    #[test]
    fn full_masks_compact_to_a_noop() {
        let mut rng = Rng::seed_from(12);
        let mut net = models::lenet(1, 10, 16, 1.0, &mut rng).unwrap();
        let site = conv_sites(&net)[0];
        let c = net.conv(site.conv).unwrap().out_channels();
        net.set_channel_mask(site.mask_node, Some(vec![1.0; c]));
        let report = compact_in_place(&mut net, 1, 16).unwrap();
        assert!(report.changes.is_empty());
        assert_eq!(report.flops_before, report.flops_after);
        assert!((report.flop_ratio() - 1.0).abs() < 1e-12);
        assert!(net.channel_mask(site.mask_node).is_none());
    }

    #[test]
    fn leftover_masks_without_a_surgery_rule_are_refused() {
        let mut rng = Rng::seed_from(13);
        let mut net = models::lenet(1, 10, 16, 1.0, &mut rng).unwrap();
        let linear = net.len() - 1;
        let mask: Vec<f32> = (0..10).map(|i| (i % 2 == 0) as u32 as f32).collect();
        net.set_channel_mask(linear, Some(mask));
        assert!(matches!(
            compact(&net, 1, 16).unwrap_err(),
            CompactError::Unsupported { .. }
        ));
    }
}
