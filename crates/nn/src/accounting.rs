//! Parameter and FLOP accounting — the `#PARAMETERS` and `#FLOPS` columns
//! of the paper's tables, computed analytically from an architecture
//! without running it.
//!
//! Following the paper ("#FLOPS denotes the computation intensity,
//! measured by the floating point multiply-and-accumulate"), `flops`
//! counts *multiply-accumulate operations* (MACs), not separate
//! multiplies and adds.

use crate::error::NnError;
use crate::network::{Network, Node};

/// Cost of one network node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerCost {
    /// Index of the node in the network.
    pub node_index: usize,
    /// Node kind (`"conv"`, `"linear"`, …).
    pub kind: String,
    /// Output channels (or features for flat outputs).
    pub out_channels: usize,
    /// Output spatial extent (`1` for flat outputs).
    pub out_spatial: usize,
    /// Trainable parameter count.
    pub params: u64,
    /// Multiply-accumulate count for one input sample.
    pub flops: u64,
}

/// Whole-network cost: per-node breakdown plus totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkCost {
    /// Per-node costs in execution order.
    pub layers: Vec<LayerCost>,
    /// Total trainable parameters.
    pub total_params: u64,
    /// Total MACs per input sample.
    pub total_flops: u64,
}

impl NetworkCost {
    /// Total parameters in millions (the unit of the paper's tables).
    pub fn params_millions(&self) -> f64 {
        self.total_params as f64 / 1e6
    }

    /// Total MACs in billions (the unit of the paper's tables).
    pub fn flops_billions(&self) -> f64 {
        self.total_flops as f64 / 1e9
    }

    /// Sums params over an arbitrary subset of node indices.
    pub fn params_of(&self, node_indices: &[usize]) -> u64 {
        self.layers
            .iter()
            .filter(|l| node_indices.contains(&l.node_index))
            .map(|l| l.params)
            .sum()
    }

    /// Sums MACs over an arbitrary subset of node indices.
    pub fn flops_of(&self, node_indices: &[usize]) -> u64 {
        self.layers
            .iter()
            .filter(|l| node_indices.contains(&l.node_index))
            .map(|l| l.flops)
            .sum()
    }
}

#[derive(Debug, Clone, Copy)]
enum ShapeState {
    Spatial { c: usize, h: usize, w: usize },
    Flat { f: usize },
}

/// Computes the per-node and total parameter/MAC cost of a network for a
/// square `input_size`×`input_size` input with `in_channels` channels.
///
/// Inactive residual blocks contribute zero cost (their computation is
/// bypassed at inference), which is exactly how the paper accounts for
/// block-pruned ResNets in Table 4 and Figures 4–5.
///
/// # Errors
///
/// Returns [`NnError::BadInput`] if the architecture is inconsistent with
/// the input shape (e.g. a channel mismatch mid-network).
pub fn analyze(
    net: &Network,
    in_channels: usize,
    input_size: usize,
) -> Result<NetworkCost, NnError> {
    let mut state = ShapeState::Spatial {
        c: in_channels,
        h: input_size,
        w: input_size,
    };
    let mut layers = Vec::with_capacity(net.len());
    for (i, node) in net.iter().enumerate() {
        let (cost, next) = node_cost(i, node, state)?;
        if let Some(c) = cost {
            layers.push(c);
        }
        state = next;
    }
    let total_params = layers.iter().map(|l| l.params).sum();
    let total_flops = layers.iter().map(|l| l.flops).sum();
    Ok(NetworkCost {
        layers,
        total_params,
        total_flops,
    })
}

fn bad(detail: String) -> NnError {
    NnError::BadInput {
        what: "accounting::analyze",
        detail,
    }
}

fn conv_out(h: usize, kernel: usize, stride: usize, padding: usize) -> usize {
    (h + 2 * padding - kernel) / stride + 1
}

fn node_cost(
    index: usize,
    node: &Node,
    state: ShapeState,
) -> Result<(Option<LayerCost>, ShapeState), NnError> {
    match node {
        Node::Conv(conv) => {
            let ShapeState::Spatial { c, h, w } = state else {
                return Err(bad(format!("conv node {index} fed a flat tensor")));
            };
            if c != conv.in_channels() {
                return Err(bad(format!(
                    "conv node {index} expects {} channels, got {c}",
                    conv.in_channels()
                )));
            }
            let oh = conv_out(h, conv.kernel(), conv.stride(), conv.padding());
            let ow = conv_out(w, conv.kernel(), conv.stride(), conv.padding());
            let n = conv.out_channels() as u64;
            let ck2 = (conv.in_channels() * conv.kernel() * conv.kernel()) as u64;
            let cost = LayerCost {
                node_index: index,
                kind: "conv".to_string(),
                out_channels: conv.out_channels(),
                out_spatial: oh,
                params: n * ck2 + n,
                flops: n * ck2 * (oh * ow) as u64,
            };
            Ok((
                Some(cost),
                ShapeState::Spatial {
                    c: conv.out_channels(),
                    h: oh,
                    w: ow,
                },
            ))
        }
        Node::Bn(bn) => {
            let ShapeState::Spatial { c, h, w } = state else {
                return Err(bad(format!("bn node {index} fed a flat tensor")));
            };
            if c != bn.channels() {
                return Err(bad(format!(
                    "bn node {index} expects {} channels, got {c}",
                    bn.channels()
                )));
            }
            let cost = LayerCost {
                node_index: index,
                kind: "bn".to_string(),
                out_channels: c,
                out_spatial: h,
                params: 2 * c as u64,
                flops: 2 * (c * h * w) as u64,
            };
            Ok((Some(cost), state))
        }
        Node::Relu(_) | Node::Dropout(_) => {
            let (c, s) = match state {
                ShapeState::Spatial { c, h, .. } => (c, h),
                ShapeState::Flat { f } => (f, 1),
            };
            let cost = LayerCost {
                node_index: index,
                kind: node.kind().to_string(),
                out_channels: c,
                out_spatial: s,
                params: 0,
                flops: 0,
            };
            Ok((Some(cost), state))
        }
        Node::MaxPool(pool) => {
            let ShapeState::Spatial { c, h, w } = state else {
                return Err(bad(format!("maxpool node {index} fed a flat tensor")));
            };
            let win = pool.window();
            if h % win != 0 || w % win != 0 {
                return Err(bad(format!(
                    "maxpool node {index}: {h}x{w} not divisible by {win}"
                )));
            }
            let next = ShapeState::Spatial {
                c,
                h: h / win,
                w: w / win,
            };
            let cost = LayerCost {
                node_index: index,
                kind: "maxpool".to_string(),
                out_channels: c,
                out_spatial: h / win,
                params: 0,
                flops: 0,
            };
            Ok((Some(cost), next))
        }
        Node::AvgPool(pool) => {
            let ShapeState::Spatial { c, h, w } = state else {
                return Err(bad(format!("avgpool node {index} fed a flat tensor")));
            };
            let win = pool.window();
            if h % win != 0 || w % win != 0 {
                return Err(bad(format!(
                    "avgpool node {index}: {h}x{w} not divisible by {win}"
                )));
            }
            let next = ShapeState::Spatial {
                c,
                h: h / win,
                w: w / win,
            };
            let cost = LayerCost {
                node_index: index,
                kind: "avgpool".to_string(),
                out_channels: c,
                out_spatial: h / win,
                params: 0,
                flops: 0,
            };
            Ok((Some(cost), next))
        }
        Node::Gap(_) => {
            let ShapeState::Spatial { c, .. } = state else {
                return Err(bad(format!("gap node {index} fed a flat tensor")));
            };
            let cost = LayerCost {
                node_index: index,
                kind: "gap".to_string(),
                out_channels: c,
                out_spatial: 1,
                params: 0,
                flops: 0,
            };
            Ok((Some(cost), ShapeState::Flat { f: c }))
        }
        Node::Flatten(_) => {
            let f = match state {
                ShapeState::Spatial { c, h, w } => c * h * w,
                ShapeState::Flat { f } => f,
            };
            let cost = LayerCost {
                node_index: index,
                kind: "flatten".to_string(),
                out_channels: f,
                out_spatial: 1,
                params: 0,
                flops: 0,
            };
            Ok((Some(cost), ShapeState::Flat { f }))
        }
        Node::Linear(lin) => {
            let f = match state {
                ShapeState::Flat { f } => f,
                ShapeState::Spatial { c, h, w } => c * h * w,
            };
            if f != lin.in_features() {
                return Err(bad(format!(
                    "linear node {index} expects {} features, got {f}",
                    lin.in_features()
                )));
            }
            let cost = LayerCost {
                node_index: index,
                kind: "linear".to_string(),
                out_channels: lin.out_features(),
                out_spatial: 1,
                params: (lin.out_features() * lin.in_features() + lin.out_features()) as u64,
                flops: (lin.out_features() * lin.in_features()) as u64,
            };
            Ok((
                Some(cost),
                ShapeState::Flat {
                    f: lin.out_features(),
                },
            ))
        }
        Node::Block(block) => {
            let ShapeState::Spatial { c, h, w } = state else {
                return Err(bad(format!("block node {index} fed a flat tensor")));
            };
            if c != block.in_channels() {
                return Err(bad(format!(
                    "block node {index} expects {} channels, got {c}",
                    block.in_channels()
                )));
            }
            let stride = block.stride();
            let (oh, ow) = (conv_out(h, 3, stride, 1), conv_out(w, 3, stride, 1));
            let next = ShapeState::Spatial {
                c: block.out_channels(),
                h: oh,
                w: ow,
            };
            if !block.is_active() {
                // Bypassed block: no parameters deployed, no computation.
                let cost = LayerCost {
                    node_index: index,
                    kind: "block".to_string(),
                    out_channels: block.out_channels(),
                    out_spatial: oh,
                    params: 0,
                    flops: 0,
                };
                return Ok((Some(cost), next));
            }
            // Every convolution in a basic block (conv1, conv2 and the
            // optional 1×1 downsample) produces an oh×ow output plane.
            let mut flops = 0u64;
            for (out_c, in_c, k, _stride) in block.conv_specs() {
                flops += (out_c * in_c * k * k) as u64 * (oh * ow) as u64;
            }
            // Two BNs (+ one for the downsample) over the output plane.
            let bn_count = if block.can_prune() { 2 } else { 3 };
            flops += bn_count as u64 * 2 * (block.out_channels() * oh * ow) as u64;
            let cost = LayerCost {
                node_index: index,
                kind: "block".to_string(),
                out_channels: block.out_channels(),
                out_spatial: oh,
                params: block.param_count() as u64,
                flops,
            };
            Ok((Some(cost), next))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use hs_tensor::Rng;

    #[test]
    fn vgg16_full_width_params_match_hand_count() {
        let mut rng = Rng::seed_from(0);
        let net = models::vgg16(3, 100, 32, 1.0, &mut rng).unwrap();
        let cost = analyze(&net, 3, 32).unwrap();
        // Conv stack of VGG-16 (with biases):
        let convs: &[(usize, usize)] = &[
            (3, 64),
            (64, 64),
            (64, 128),
            (128, 128),
            (128, 256),
            (256, 256),
            (256, 256),
            (256, 512),
            (512, 512),
            (512, 512),
            (512, 512),
            (512, 512),
            (512, 512),
        ];
        let mut expected: u64 = convs.iter().map(|&(i, o)| (o * i * 9 + o) as u64).sum();
        // BN affine params.
        expected += convs.iter().map(|&(_, o)| 2 * o as u64).sum::<u64>();
        // Classifier.
        expected += (100 * 512 + 100) as u64;
        assert_eq!(cost.total_params, expected);
        // Ballpark of the paper's Table 3 "14.77 M" (they exclude
        // BN/classifier bookkeeping differences): within 5%.
        assert!(
            (cost.params_millions() - 14.77).abs() / 14.77 < 0.05,
            "{}",
            cost.params_millions()
        );
    }

    #[test]
    fn conv_flops_formula() {
        let mut rng = Rng::seed_from(1);
        let mut net = Network::new();
        net.push(Node::Conv(crate::layer::Conv2d::new(
            3, 8, 3, 1, 1, &mut rng,
        )));
        let cost = analyze(&net, 3, 10).unwrap();
        assert_eq!(cost.layers[0].flops, (8 * 3 * 9 * 10 * 10) as u64);
        assert_eq!(cost.layers[0].params, (8 * 3 * 9 + 8) as u64);
    }

    #[test]
    fn inactive_block_costs_nothing() {
        let mut rng = Rng::seed_from(2);
        let mut net = models::resnet_cifar(2, 3, 10, 1.0, &mut rng).unwrap();
        let full = analyze(&net, 3, 32).unwrap();
        let blocks = net.block_indices();
        // Deactivate the second block of group 1 (identity).
        net.set_block_active(blocks[1], false).unwrap();
        let pruned = analyze(&net, 3, 32).unwrap();
        assert!(pruned.total_params < full.total_params);
        assert!(pruned.total_flops < full.total_flops);
        // The difference equals that block's standalone cost.
        let block_cost = full
            .layers
            .iter()
            .find(|l| l.node_index == blocks[1])
            .unwrap();
        assert_eq!(full.total_params - pruned.total_params, block_cost.params);
        assert_eq!(full.total_flops - pruned.total_flops, block_cost.flops);
    }

    #[test]
    fn channel_mismatch_is_detected() {
        let mut rng = Rng::seed_from(3);
        let net = models::vgg11(3, 10, 32, 0.5, &mut rng).unwrap();
        assert!(analyze(&net, 4, 32).is_err());
    }

    #[test]
    fn subset_sums() {
        let mut rng = Rng::seed_from(4);
        let net = models::vgg11(3, 10, 32, 0.25, &mut rng).unwrap();
        let cost = analyze(&net, 3, 32).unwrap();
        let convs = net.conv_indices();
        let conv_params = cost.params_of(&convs);
        assert!(conv_params > 0);
        assert!(conv_params < cost.total_params);
        assert!(cost.flops_of(&convs) > 0);
    }

    #[test]
    fn resnet_flops_scale_with_depth() {
        let mut rng = Rng::seed_from(5);
        let shallow = models::resnet_cifar(2, 3, 10, 0.5, &mut rng).unwrap();
        let deep = models::resnet_cifar(4, 3, 10, 0.5, &mut rng).unwrap();
        let cs = analyze(&shallow, 3, 32).unwrap();
        let cd = analyze(&deep, 3, 32).unwrap();
        assert!(cd.total_flops > cs.total_flops);
        assert!(cd.total_params > cs.total_params);
    }
}
