//! Physical channel surgery: turning a pruning decision into a genuinely
//! smaller network.
//!
//! Dropping feature map `m` of convolution `i` rewrites three places, the
//! `ΔN×C×k×k` + `M×ΔN×k×k` bookkeeping of the paper's Figure 2:
//!
//! 1. filter `m` of conv `i` (weight axis 0, plus its bias entry);
//! 2. channel `m` of the batch-norm that follows conv `i`;
//! 3. input channel `m` of the *consumer* — the next convolution, or the
//!    classifier's input features when conv `i` is the last one (our
//!    models bridge with global average pooling, so feature maps map
//!    one-to-one onto classifier inputs).

use crate::error::NnError;
use crate::layer::{BatchNorm2d, Conv2d, Linear};
use crate::network::{Network, Node};

/// Where a convolution's feature maps live inside a network: the conv
/// node, its (optional) following batch norm and ReLU, and the node that
/// consumes its output channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvSite {
    /// Node index of the convolution.
    pub conv: usize,
    /// Node index of the batch norm that immediately follows, if any.
    pub bn: Option<usize>,
    /// Node index of the ReLU after the conv (or conv+bn), if any.
    pub relu: Option<usize>,
    /// The node where a channel mask should be attached to simulate
    /// pruning this conv's feature maps (after all per-channel ops).
    pub mask_node: usize,
    /// Node index of the consumer whose input channels correspond to this
    /// conv's feature maps (next conv or linear), if any.
    pub consumer: Option<usize>,
}

/// Discovers every top-level convolution's site in a sequential network.
///
/// Residual blocks are opaque to this analysis (block-level pruning has
/// its own path); only `Node::Conv` entries at the top level are listed.
pub fn conv_sites(net: &Network) -> Vec<ConvSite> {
    let n = net.len();
    let mut sites = Vec::new();
    for conv in net.conv_indices() {
        let mut bn = None;
        let mut relu = None;
        let mut cursor = conv + 1;
        if cursor < n {
            if let Node::Bn(_) = net.node(cursor) {
                bn = Some(cursor);
                cursor += 1;
            }
        }
        if cursor < n {
            if let Node::Relu(_) = net.node(cursor) {
                relu = Some(cursor);
            }
        }
        let mut consumer = None;
        for j in conv + 1..n {
            match net.node(j) {
                Node::Conv(_) | Node::Linear(_) | Node::Block(_) => {
                    consumer = Some(j);
                    break;
                }
                _ => {}
            }
        }
        let mask_node = relu.or(bn).unwrap_or(conv);
        sites.push(ConvSite {
            conv,
            bn,
            relu,
            mask_node,
            consumer,
        });
    }
    sites
}

/// Converts a 0/1 mask into the sorted list of kept channel indices.
pub fn keep_from_mask(mask: &[f32]) -> Vec<usize> {
    mask.iter()
        .enumerate()
        .filter_map(|(i, &m)| (m != 0.0).then_some(i))
        .collect()
}

fn validate_keep(keep: &[usize], channels: usize) -> Result<(), NnError> {
    if keep.is_empty() {
        return Err(NnError::BadMask {
            detail: "keep set is empty".to_string(),
        });
    }
    let mut prev = None;
    for &k in keep {
        if k >= channels {
            return Err(NnError::BadMask {
                detail: format!("keep index {k} out of range for {channels} channels"),
            });
        }
        if let Some(p) = prev {
            if k <= p {
                return Err(NnError::BadMask {
                    detail: "keep indices must be strictly increasing".to_string(),
                });
            }
        }
        prev = Some(k);
    }
    Ok(())
}

fn shrink_conv_filters(conv: &Conv2d, keep: &[usize]) -> Result<Conv2d, NnError> {
    let weight = conv.weight.value.index_select(0, keep)?;
    let bias = conv.bias.value.index_select(0, keep)?;
    Conv2d::from_parts(weight, bias, conv.stride(), conv.padding())
}

fn shrink_conv_channels(conv: &Conv2d, keep: &[usize]) -> Result<Conv2d, NnError> {
    let weight = conv.weight.value.index_select(1, keep)?;
    Conv2d::from_parts(
        weight,
        conv.bias.value.clone(),
        conv.stride(),
        conv.padding(),
    )
}

fn shrink_bn(bn: &BatchNorm2d, keep: &[usize]) -> Result<BatchNorm2d, NnError> {
    BatchNorm2d::from_parts(
        bn.gamma.value.index_select(0, keep)?,
        bn.beta.value.index_select(0, keep)?,
        bn.running_mean.index_select(0, keep)?,
        bn.running_var.index_select(0, keep)?,
    )
}

fn shrink_linear_inputs(lin: &Linear, keep: &[usize]) -> Result<Linear, NnError> {
    let weight = lin.weight.value.index_select(1, keep)?;
    Linear::from_parts(weight, lin.bias.value.clone())
}

/// Physically removes the feature maps of convolution node `conv_index`
/// that are not listed in `keep` (strictly increasing indices).
///
/// Rewrites the conv itself, its following batch norm, and the consumer's
/// input channels. Any mask attached to the rewritten nodes is cleared.
///
/// # Errors
///
/// * [`NnError::BadNodeIndex`] if `conv_index` is not a convolution.
/// * [`NnError::BadMask`] if `keep` is empty, unsorted or out of range,
///   or if the consumer is a residual block or a flatten-fed linear layer
///   (unsupported topologies — the models in this repository bridge with
///   global average pooling).
pub fn prune_feature_maps(
    net: &mut Network,
    conv_index: usize,
    keep: &[usize],
) -> Result<(), NnError> {
    let site = conv_sites(net)
        .into_iter()
        .find(|s| s.conv == conv_index)
        .ok_or(NnError::BadNodeIndex {
            index: conv_index,
            expected: "conv",
        })?;
    let old_channels = net.conv(conv_index)?.out_channels();
    validate_keep(keep, old_channels)?;

    // Check for a flatten between the conv and a linear consumer: that
    // topology needs spatial bookkeeping we deliberately don't support.
    if let Some(consumer) = site.consumer {
        if matches!(net.node(consumer), Node::Linear(_)) {
            for j in conv_index + 1..consumer {
                if matches!(net.node(j), Node::Flatten(_)) {
                    let flat_ok = flatten_is_identity(net, j);
                    if !flat_ok {
                        return Err(NnError::BadMask {
                            detail: "pruning through a non-trivial flatten is unsupported; \
                                     use a global-average-pool head"
                                .to_string(),
                        });
                    }
                }
            }
        }
        if matches!(net.node(consumer), Node::Block(_)) {
            return Err(NnError::BadMask {
                detail: "pruning channels into a residual block is unsupported; \
                         use block-level pruning for ResNets"
                    .to_string(),
            });
        }
    }

    // 1. The conv's own filters.
    let new_conv = shrink_conv_filters(net.conv(conv_index)?, keep)?;
    *net.node_mut(conv_index) = Node::Conv(new_conv);
    net.set_channel_mask(conv_index, None);

    // 2. The following batch norm.
    if let Some(bn_idx) = site.bn {
        if let Node::Bn(bn) = net.node(bn_idx) {
            let new_bn = shrink_bn(bn, keep)?;
            *net.node_mut(bn_idx) = Node::Bn(new_bn);
        }
        net.set_channel_mask(bn_idx, None);
    }
    if let Some(relu_idx) = site.relu {
        net.set_channel_mask(relu_idx, None);
    }

    // 3. The consumer's input channels.
    if let Some(consumer) = site.consumer {
        let new_node = match net.node(consumer) {
            Node::Conv(conv) => {
                if conv.in_channels() != old_channels {
                    return Err(NnError::BadMask {
                        detail: format!(
                            "consumer conv has {} input channels but producer had {old_channels} maps",
                            conv.in_channels()
                        ),
                    });
                }
                Node::Conv(shrink_conv_channels(conv, keep)?)
            }
            Node::Linear(lin) => {
                if lin.in_features() != old_channels {
                    return Err(NnError::BadMask {
                        detail: format!(
                            "consumer linear has {} inputs but producer had {old_channels} maps",
                            lin.in_features()
                        ),
                    });
                }
                Node::Linear(shrink_linear_inputs(lin, keep)?)
            }
            _ => unreachable!("consumer is conv or linear by construction"),
        };
        *net.node_mut(consumer) = new_node;
    }
    Ok(())
}

/// A flatten is an identity on channels when its input is `[B, C, 1, 1]`;
/// we cannot prove that statically, so be conservative and treat every
/// flatten as non-trivial.
fn flatten_is_identity(_net: &Network, _flatten_idx: usize) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{GlobalAvgPool, MaxPool2d, ReLU};
    use crate::models;
    use hs_tensor::{Rng, Shape};

    fn two_conv_net(rng: &mut Rng) -> Network {
        let mut net = Network::new();
        net.push(Node::Conv(Conv2d::new(3, 8, 3, 1, 1, rng)));
        net.push(Node::Bn(BatchNorm2d::new(8)));
        net.push(Node::Relu(ReLU::new()));
        net.push(Node::Conv(Conv2d::new(8, 6, 3, 1, 1, rng)));
        net.push(Node::Bn(BatchNorm2d::new(6)));
        net.push(Node::Relu(ReLU::new()));
        net.push(Node::MaxPool(MaxPool2d::new(2)));
        net.push(Node::Gap(GlobalAvgPool::new()));
        net.push(Node::Linear(Linear::new(6, 4, rng)));
        net
    }

    #[test]
    fn sites_are_discovered() {
        let mut rng = Rng::seed_from(0);
        let net = two_conv_net(&mut rng);
        let sites = conv_sites(&net);
        assert_eq!(sites.len(), 2);
        assert_eq!(sites[0].conv, 0);
        assert_eq!(sites[0].bn, Some(1));
        assert_eq!(sites[0].relu, Some(2));
        assert_eq!(sites[0].mask_node, 2);
        assert_eq!(sites[0].consumer, Some(3));
        assert_eq!(sites[1].conv, 3);
        assert_eq!(sites[1].consumer, Some(8));
    }

    #[test]
    fn keep_from_mask_extracts_indices() {
        assert_eq!(keep_from_mask(&[1.0, 0.0, 1.0, 0.0]), vec![0, 2]);
        assert!(keep_from_mask(&[0.0, 0.0]).is_empty());
    }

    #[test]
    fn pruning_mid_conv_shrinks_both_sides() {
        let mut rng = Rng::seed_from(1);
        let mut net = two_conv_net(&mut rng);
        prune_feature_maps(&mut net, 0, &[0, 2, 5, 7]).unwrap();
        assert_eq!(net.conv(0).unwrap().out_channels(), 4);
        assert_eq!(net.conv(3).unwrap().in_channels(), 4);
        match net.node(1) {
            Node::Bn(bn) => assert_eq!(bn.channels(), 4),
            _ => panic!("bn expected"),
        }
        // The pruned network still runs.
        let x = hs_tensor::Tensor::randn(Shape::d4(1, 3, 8, 8), &mut rng);
        assert!(net.forward(&x, false).is_ok());
    }

    #[test]
    fn pruning_last_conv_shrinks_classifier() {
        let mut rng = Rng::seed_from(2);
        let mut net = two_conv_net(&mut rng);
        prune_feature_maps(&mut net, 3, &[1, 4]).unwrap();
        assert_eq!(net.conv(3).unwrap().out_channels(), 2);
        match net.node(8) {
            Node::Linear(lin) => assert_eq!(lin.in_features(), 2),
            _ => panic!("linear expected"),
        }
        let x = hs_tensor::Tensor::randn(Shape::d4(2, 3, 8, 8), &mut rng);
        assert_eq!(net.forward(&x, false).unwrap().shape(), &Shape::d2(2, 4));
    }

    #[test]
    fn surgery_matches_masked_network_exactly() {
        // The defining property: a surgically pruned network computes the
        // same function as the masked original (in eval mode).
        let mut rng = Rng::seed_from(3);
        let mut net = two_conv_net(&mut rng);
        let x = hs_tensor::Tensor::randn(Shape::d4(2, 3, 8, 8), &mut rng);
        // Warm the BN running stats so eval mode is meaningful.
        for _ in 0..5 {
            net.forward(&x, true).unwrap();
        }
        let keep = vec![0usize, 3, 4, 6];
        let mask: Vec<f32> = (0..8)
            .map(|c| if keep.contains(&c) { 1.0 } else { 0.0 })
            .collect();
        let mut masked = net.clone();
        masked.set_channel_mask(2, Some(mask)); // after ReLU
        let y_masked = masked.forward(&x, false).unwrap();
        let mut pruned = net.clone();
        prune_feature_maps(&mut pruned, 0, &keep).unwrap();
        let y_pruned = pruned.forward(&x, false).unwrap();
        for (a, b) in y_masked.data().iter().zip(y_pruned.data()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn rejects_bad_keep_sets() {
        let mut rng = Rng::seed_from(4);
        let mut net = two_conv_net(&mut rng);
        assert!(prune_feature_maps(&mut net, 0, &[]).is_err());
        assert!(prune_feature_maps(&mut net, 0, &[3, 1]).is_err());
        assert!(prune_feature_maps(&mut net, 0, &[0, 99]).is_err());
        assert!(
            prune_feature_maps(&mut net, 1, &[0]).is_err(),
            "node 1 is a bn"
        );
    }

    #[test]
    fn vgg_sites_chain_through_the_whole_model() {
        let mut rng = Rng::seed_from(5);
        let net = models::vgg16(3, 10, 32, 0.25, &mut rng).unwrap();
        let sites = conv_sites(&net);
        assert_eq!(sites.len(), 13);
        // Every conv except the last consumes into the next conv; the
        // last one consumes into the classifier.
        for pair in sites.windows(2) {
            assert_eq!(pair[0].consumer, Some(pair[1].conv));
        }
        let last = sites.last().unwrap();
        assert!(matches!(net.node(last.consumer.unwrap()), Node::Linear(_)));
    }

    #[test]
    fn iterative_pruning_halves_every_vgg_layer() {
        let mut rng = Rng::seed_from(6);
        let mut net = models::vgg11(3, 10, 16, 0.25, &mut rng).unwrap();
        let sites = conv_sites(&net);
        let original: Vec<usize> = sites
            .iter()
            .map(|s| net.conv(s.conv).unwrap().out_channels())
            .collect();
        for site in &sites {
            let c = net.conv(site.conv).unwrap().out_channels();
            let keep: Vec<usize> = (0..c / 2).collect();
            prune_feature_maps(&mut net, site.conv, &keep).unwrap();
        }
        let x = hs_tensor::Tensor::randn(Shape::d4(1, 3, 16, 16), &mut rng);
        assert!(net.forward(&x, false).is_ok());
        for (site, &orig) in conv_sites(&net).iter().zip(&original) {
            assert_eq!(net.conv(site.conv).unwrap().out_channels(), orig / 2);
        }
    }
}
