//! Residual blocks for the CIFAR ResNet family.
//!
//! HeadStart's ResNet experiment (Table 4, Figures 4–5) prunes at the
//! granularity of *whole residual blocks*: an inactive block is bypassed —
//! activations flow through the identity shortcut and the block's two
//! convolutions disappear from the computation, exactly the
//! BlockDrop/stochastic-depth observation the paper cites.

use hs_tensor::{Rng, Tensor};

use crate::error::NnError;
use crate::layer::{BatchNorm2d, Conv2d, ReLU};
use crate::param::Param;

/// A basic (two 3×3 convolutions) residual block.
///
/// When `in_channels != out_channels` or `stride != 1`, the shortcut is a
/// 1×1 strided convolution + batch norm (a *downsample* block); such
/// blocks cannot be deactivated because the bypass would break tensor
/// shapes. Identity-shortcut blocks can be toggled with
/// [`ResidualBlock::set_active`].
#[derive(Debug, Clone)]
pub struct ResidualBlock {
    conv1: Conv2d,
    bn1: BatchNorm2d,
    relu1: ReLU,
    conv2: Conv2d,
    bn2: BatchNorm2d,
    relu2: ReLU,
    downsample: Option<(Conv2d, BatchNorm2d)>,
    active: bool,
    /// Channel mask applied between the block's two convolutions
    /// (after `relu1`), simulating pruning of conv1's feature maps —
    /// the paper's "apply the HeadStart concept to the convolutional
    /// layers in each block" generalization.
    inner_mask: Option<Vec<f32>>,
    cache: Option<BlockCache>,
}

#[derive(Debug, Clone)]
struct BlockCache {
    /// Whether the forward pass ran the main branch.
    ran_main: bool,
}

impl ResidualBlock {
    /// Creates a basic block. A downsample shortcut is added automatically
    /// when the shape changes.
    pub fn new(in_channels: usize, out_channels: usize, stride: usize, rng: &mut Rng) -> Self {
        let downsample = if stride != 1 || in_channels != out_channels {
            Some((
                Conv2d::new(in_channels, out_channels, 1, stride, 0, rng),
                BatchNorm2d::new(out_channels),
            ))
        } else {
            None
        };
        ResidualBlock {
            conv1: Conv2d::new(in_channels, out_channels, 3, stride, 1, rng),
            bn1: BatchNorm2d::new(out_channels),
            relu1: ReLU::new(),
            conv2: Conv2d::new(out_channels, out_channels, 3, 1, 1, rng),
            bn2: BatchNorm2d::new(out_channels),
            relu2: ReLU::new(),
            downsample,
            active: true,
            inner_mask: None,
            cache: None,
        }
    }

    /// Whether this block participates in the computation.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Whether this block may be deactivated (identity shortcut only).
    pub fn can_prune(&self) -> bool {
        self.downsample.is_none()
    }

    /// Activates or deactivates the block.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadMask`] when trying to deactivate a
    /// downsample block.
    pub fn set_active(&mut self, active: bool) -> Result<(), NnError> {
        if !active && !self.can_prune() {
            return Err(NnError::BadMask {
                detail: "cannot deactivate a downsample residual block".to_string(),
            });
        }
        self.active = active;
        Ok(())
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.conv2.out_channels()
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.conv1.in_channels()
    }

    /// Stride of the block (1 for identity blocks).
    pub fn stride(&self) -> usize {
        self.conv1.stride()
    }

    /// Forward pass.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the inner layers.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor, NnError> {
        if !self.active {
            // Bypassed block: identity (only identity-shortcut blocks can
            // be inactive, so shapes always match).
            if train {
                self.cache = Some(BlockCache { ran_main: false });
            }
            return Ok(input.clone());
        }
        let mut h = self.conv1.forward(input, train)?;
        h = self.bn1.forward(&h, train)?;
        h = self.relu1.forward(&h, train);
        if let Some(mask) = &self.inner_mask {
            apply_channel_mask(&mut h, mask)?;
        }
        h = self.conv2.forward(&h, train)?;
        h = self.bn2.forward(&h, train)?;
        let shortcut = match &mut self.downsample {
            Some((conv, bn)) => {
                let s = conv.forward(input, train)?;
                bn.forward(&s, train)?
            }
            None => input.clone(),
        };
        let sum = h.try_add(&shortcut)?;
        let out = self.relu2.forward(&sum, train);
        if train {
            self.cache = Some(BlockCache { ran_main: true });
        }
        Ok(out)
    }

    /// Backward pass.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoForwardCache`] without a training forward.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let cache = self.cache.take().ok_or(NnError::NoForwardCache {
            layer: "ResidualBlock",
        })?;
        if !cache.ran_main {
            return Ok(grad_out.clone());
        }
        let dsum = self.relu2.backward(grad_out)?;
        // Main branch.
        let mut dh = self.bn2.backward(&dsum)?;
        dh = self.conv2.backward(&dh)?;
        if let Some(mask) = &self.inner_mask {
            apply_channel_mask(&mut dh, mask)?;
        }
        dh = self.relu1.backward(&dh)?;
        dh = self.bn1.backward(&dh)?;
        let dx_main = self.conv1.backward(&dh)?;
        // Shortcut branch.
        let dx_short = match &mut self.downsample {
            Some((conv, bn)) => {
                let d = bn.backward(&dsum)?;
                conv.backward(&d)?
            }
            None => dsum,
        };
        Ok(dx_main.try_add(&dx_short)?)
    }

    /// Visits all trainable parameters (including the downsample path and
    /// including inactive blocks, so optimizer state indices stay stable).
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.conv1.visit_params(f);
        self.bn1.visit_params(f);
        self.conv2.visit_params(f);
        self.bn2.visit_params(f);
        if let Some((conv, bn)) = &mut self.downsample {
            conv.visit_params(f);
            bn.visit_params(f);
        }
    }

    /// Re-samples every weight from its initialization distribution and
    /// resets batch-norm state; used by the "train from scratch" baseline.
    pub fn reinitialize(&mut self, rng: &mut Rng) {
        reinit_conv(&mut self.conv1, rng);
        reinit_bn(&mut self.bn1);
        reinit_conv(&mut self.conv2, rng);
        reinit_bn(&mut self.bn2);
        if let Some((conv, bn)) = &mut self.downsample {
            reinit_conv(conv, rng);
            reinit_bn(bn);
        }
    }

    /// Sets (or clears) the channel mask applied between the block's two
    /// convolutions, simulating removal of conv1's feature maps.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadMask`] if the mask length differs from
    /// conv1's filter count.
    pub fn set_inner_mask(&mut self, mask: Option<Vec<f32>>) -> Result<(), NnError> {
        if let Some(m) = &mask {
            if m.len() != self.conv1.out_channels() {
                return Err(NnError::BadMask {
                    detail: format!(
                        "inner mask of {} entries for {} maps",
                        m.len(),
                        self.conv1.out_channels()
                    ),
                });
            }
        }
        self.inner_mask = mask;
        Ok(())
    }

    /// The inner mask currently attached, if any.
    pub fn inner_mask(&self) -> Option<&[f32]> {
        self.inner_mask.as_deref()
    }

    /// Physically removes conv1 feature maps not listed in `keep`
    /// (strictly increasing): shrinks conv1's filters, bn1's channels and
    /// conv2's input channels. The block's output shape is unchanged, so
    /// the shortcut still adds cleanly — this is the paper's "prune the
    /// convolutional layers in each block just like VGG" variant.
    ///
    /// Any inner mask is cleared.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadMask`] for an empty/unsorted/out-of-range
    /// keep set.
    pub fn prune_inner_maps(&mut self, keep: &[usize]) -> Result<(), NnError> {
        let channels = self.conv1.out_channels();
        if keep.is_empty() {
            return Err(NnError::BadMask {
                detail: "keep set is empty".to_string(),
            });
        }
        let mut prev: Option<usize> = None;
        for &k in keep {
            if k >= channels {
                return Err(NnError::BadMask {
                    detail: format!("keep index {k} out of range for {channels} maps"),
                });
            }
            if prev.map(|p| k <= p).unwrap_or(false) {
                return Err(NnError::BadMask {
                    detail: "keep indices must be strictly increasing".to_string(),
                });
            }
            prev = Some(k);
        }
        let new_conv1 = Conv2d::from_parts(
            self.conv1.weight.value.index_select(0, keep)?,
            self.conv1.bias.value.index_select(0, keep)?,
            self.conv1.stride(),
            self.conv1.padding(),
        )?;
        let new_bn1 = BatchNorm2d::from_parts(
            self.bn1.gamma.value.index_select(0, keep)?,
            self.bn1.beta.value.index_select(0, keep)?,
            self.bn1.running_mean.index_select(0, keep)?,
            self.bn1.running_var.index_select(0, keep)?,
        )?;
        let new_conv2 = Conv2d::from_parts(
            self.conv2.weight.value.index_select(1, keep)?,
            self.conv2.bias.value.clone(),
            self.conv2.stride(),
            self.conv2.padding(),
        )?;
        self.conv1 = new_conv1;
        self.bn1 = new_bn1;
        self.conv2 = new_conv2;
        self.inner_mask = None;
        Ok(())
    }

    /// Feature-map count of the block's first convolution (the maps
    /// [`ResidualBlock::prune_inner_maps`] operates on).
    pub fn inner_channels(&self) -> usize {
        self.conv1.out_channels()
    }

    /// The block's convolutions as `(out_ch, in_ch, kernel, stride)`
    /// tuples, for FLOP accounting. Includes the downsample conv if any.
    pub fn conv_specs(&self) -> Vec<(usize, usize, usize, usize)> {
        let mut v = vec![
            (
                self.conv1.out_channels(),
                self.conv1.in_channels(),
                self.conv1.kernel(),
                self.conv1.stride(),
            ),
            (
                self.conv2.out_channels(),
                self.conv2.in_channels(),
                self.conv2.kernel(),
                self.conv2.stride(),
            ),
        ];
        if let Some((conv, _)) = &self.downsample {
            v.push((
                conv.out_channels(),
                conv.in_channels(),
                conv.kernel(),
                conv.stride(),
            ));
        }
        v
    }

    /// Total trainable parameters in the block (weights, biases, BN
    /// affine), counting the downsample path.
    pub fn param_count(&self) -> usize {
        let mut count = 0;
        let mut add = |p: &Param| count += p.len();
        // visit_params needs &mut; count manually instead.
        add(&self.conv1.weight);
        add(&self.conv1.bias);
        add(&self.bn1.gamma);
        add(&self.bn1.beta);
        add(&self.conv2.weight);
        add(&self.conv2.bias);
        add(&self.bn2.gamma);
        add(&self.bn2.beta);
        if let Some((conv, bn)) = &self.downsample {
            add(&conv.weight);
            add(&conv.bias);
            add(&bn.gamma);
            add(&bn.beta);
        }
        count
    }
}

impl ResidualBlock {
    /// Decomposes the block for checkpointing:
    /// `(conv1, bn1, conv2, bn2, downsample, active)`.
    pub(crate) fn checkpoint_parts(
        &self,
    ) -> (
        &Conv2d,
        &BatchNorm2d,
        &Conv2d,
        &BatchNorm2d,
        Option<(&Conv2d, &BatchNorm2d)>,
        bool,
    ) {
        (
            &self.conv1,
            &self.bn1,
            &self.conv2,
            &self.bn2,
            self.downsample.as_ref().map(|(c, b)| (c, b)),
            self.active,
        )
    }

    /// Reassembles a block from checkpointed parts.
    pub(crate) fn from_checkpoint_parts(
        conv1: Conv2d,
        bn1: BatchNorm2d,
        conv2: Conv2d,
        bn2: BatchNorm2d,
        downsample: Option<(Conv2d, BatchNorm2d)>,
        active: bool,
    ) -> Self {
        ResidualBlock {
            conv1,
            bn1,
            relu1: ReLU::new(),
            conv2,
            bn2,
            relu2: ReLU::new(),
            downsample,
            active,
            inner_mask: None,
            cache: None,
        }
    }
}

/// Multiplies `[B, C, H, W]` activations (or their gradients) by a
/// per-channel mask in place.
fn apply_channel_mask(t: &mut Tensor, mask: &[f32]) -> Result<(), NnError> {
    let shape = t.shape();
    if shape.rank() != 4 || shape.dim(1) != mask.len() {
        return Err(NnError::BadMask {
            detail: format!("inner mask of {} entries on {shape}", mask.len()),
        });
    }
    let (b, c, plane) = (shape.dim(0), shape.dim(1), shape.dim(2) * shape.dim(3));
    let data = t.data_mut();
    for bi in 0..b {
        for (ch, &m) in mask.iter().enumerate() {
            if m != 1.0 {
                let base = (bi * c + ch) * plane;
                for v in &mut data[base..base + plane] {
                    *v *= m;
                }
            }
        }
    }
    Ok(())
}

pub(crate) fn reinit_conv(conv: &mut Conv2d, rng: &mut Rng) {
    use hs_tensor::Init;
    conv.weight.value = Init::KaimingNormal.sample(conv.weight.value.shape().clone(), rng);
    conv.weight.zero_grad();
    conv.bias.value.fill(0.0);
    conv.bias.zero_grad();
}

pub(crate) fn reinit_bn(bn: &mut BatchNorm2d) {
    bn.gamma.value.fill(1.0);
    bn.gamma.zero_grad();
    bn.beta.value.fill(0.0);
    bn.beta.zero_grad();
    bn.running_mean.fill(0.0);
    bn.running_var.fill(1.0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs_tensor::Shape;

    #[test]
    fn identity_block_preserves_shape() {
        let mut rng = Rng::seed_from(0);
        let mut block = ResidualBlock::new(8, 8, 1, &mut rng);
        assert!(block.can_prune());
        let x = Tensor::randn(Shape::d4(2, 8, 6, 6), &mut rng);
        let y = block.forward(&x, false).unwrap();
        assert_eq!(y.shape(), x.shape());
    }

    #[test]
    fn downsample_block_halves_spatial() {
        let mut rng = Rng::seed_from(1);
        let mut block = ResidualBlock::new(8, 16, 2, &mut rng);
        assert!(!block.can_prune());
        let x = Tensor::randn(Shape::d4(1, 8, 8, 8), &mut rng);
        let y = block.forward(&x, false).unwrap();
        assert_eq!(y.shape(), &Shape::d4(1, 16, 4, 4));
    }

    #[test]
    fn inactive_block_is_identity() {
        let mut rng = Rng::seed_from(2);
        let mut block = ResidualBlock::new(4, 4, 1, &mut rng);
        block.set_active(false).unwrap();
        let x = Tensor::randn(Shape::d4(1, 4, 5, 5), &mut rng);
        let y = block.forward(&x, false).unwrap();
        assert_eq!(y, x);
    }

    #[test]
    fn cannot_deactivate_downsample() {
        let mut rng = Rng::seed_from(3);
        let mut block = ResidualBlock::new(4, 8, 2, &mut rng);
        assert!(block.set_active(false).is_err());
        assert!(block.is_active());
    }

    #[test]
    fn inactive_backward_passes_gradient_through() {
        let mut rng = Rng::seed_from(4);
        let mut block = ResidualBlock::new(4, 4, 1, &mut rng);
        block.set_active(false).unwrap();
        let x = Tensor::randn(Shape::d4(1, 4, 5, 5), &mut rng);
        block.forward(&x, true).unwrap();
        let g = Tensor::randn(Shape::d4(1, 4, 5, 5), &mut rng);
        let dx = block.backward(&g).unwrap();
        assert_eq!(dx, g);
    }

    #[test]
    fn gradient_check_through_block() {
        let mut rng = Rng::seed_from(5);
        let mut block = ResidualBlock::new(2, 2, 1, &mut rng);
        let x = Tensor::randn(Shape::d4(1, 2, 4, 4), &mut rng);
        let wobj = Tensor::randn(Shape::d4(1, 2, 4, 4), &mut rng);
        let _y = block.forward(&x, true).unwrap();
        let dx = block.backward(&wobj).unwrap();
        let eps = 1e-2;
        let obj = |block: &mut ResidualBlock, x: &Tensor| -> f32 {
            // Run in train mode so batch statistics match the analytic
            // pass, but snapshot BN running stats around the probe.
            let y = block.forward(x, true).unwrap();
            block.cache = None;
            y.data().iter().zip(wobj.data()).map(|(a, b)| a * b).sum()
        };
        let snap = block.clone();
        for probe in [0usize, 13, 31] {
            let mut xp = x.clone();
            xp.data_mut()[probe] += eps;
            let mut xm = x.clone();
            xm.data_mut()[probe] -= eps;
            let mut b1 = snap.clone();
            let fp = obj(&mut b1, &xp);
            let mut b2 = snap.clone();
            let fm = obj(&mut b2, &xm);
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (numeric - dx.data()[probe]).abs() < 5e-2 * (1.0 + numeric.abs()),
                "probe {probe}: numeric {numeric}, analytic {}",
                dx.data()[probe]
            );
        }
    }

    #[test]
    fn inner_mask_equals_inner_surgery() {
        // Masking conv1's maps and physically pruning them must compute
        // the same function (eval mode, warmed BN).
        let mut rng = Rng::seed_from(20);
        let mut block = ResidualBlock::new(4, 4, 1, &mut rng);
        let x = Tensor::randn(Shape::d4(2, 4, 6, 6), &mut rng);
        for _ in 0..3 {
            block.forward(&x, true).unwrap();
            block.cache = None;
        }
        let keep = vec![0usize, 2];
        let mask: Vec<f32> = (0..4)
            .map(|c| if keep.contains(&c) { 1.0 } else { 0.0 })
            .collect();
        let mut masked = block.clone();
        masked.set_inner_mask(Some(mask)).unwrap();
        let y_masked = masked.forward(&x, false).unwrap();
        let mut pruned = block.clone();
        pruned.prune_inner_maps(&keep).unwrap();
        assert_eq!(pruned.inner_channels(), 2);
        let y_pruned = pruned.forward(&x, false).unwrap();
        for (a, b) in y_masked.data().iter().zip(y_pruned.data()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn inner_surgery_preserves_output_shape() {
        let mut rng = Rng::seed_from(21);
        let mut block = ResidualBlock::new(4, 8, 2, &mut rng);
        block.prune_inner_maps(&[1, 3, 6]).unwrap();
        let x = Tensor::randn(Shape::d4(1, 4, 8, 8), &mut rng);
        let y = block.forward(&x, false).unwrap();
        assert_eq!(y.shape(), &Shape::d4(1, 8, 4, 4));
        assert_eq!(block.inner_channels(), 3);
        assert_eq!(block.out_channels(), 8);
    }

    #[test]
    fn inner_surgery_validates_keep_set() {
        let mut rng = Rng::seed_from(22);
        let mut block = ResidualBlock::new(4, 4, 1, &mut rng);
        assert!(block.prune_inner_maps(&[]).is_err());
        assert!(block.prune_inner_maps(&[2, 1]).is_err());
        assert!(block.prune_inner_maps(&[0, 9]).is_err());
    }

    #[test]
    fn inner_mask_validates_length() {
        let mut rng = Rng::seed_from(23);
        let mut block = ResidualBlock::new(4, 4, 1, &mut rng);
        assert!(block.set_inner_mask(Some(vec![1.0; 3])).is_err());
        assert!(block.set_inner_mask(Some(vec![1.0; 4])).is_ok());
        assert!(block.inner_mask().is_some());
        assert!(block.set_inner_mask(None).is_ok());
        assert!(block.inner_mask().is_none());
    }

    #[test]
    fn inner_masked_backward_matches_finite_difference() {
        let mut rng = Rng::seed_from(24);
        let mut block = ResidualBlock::new(2, 2, 1, &mut rng);
        block.set_inner_mask(Some(vec![1.0, 0.0])).unwrap();
        let x = Tensor::randn(Shape::d4(1, 2, 4, 4), &mut rng);
        let wobj = Tensor::randn(Shape::d4(1, 2, 4, 4), &mut rng);
        block.forward(&x, true).unwrap();
        let dx = block.backward(&wobj).unwrap();
        let eps = 1e-2;
        let snap = block.clone();
        let obj = |b: &mut ResidualBlock, x: &Tensor| -> f32 {
            let y = b.forward(x, true).unwrap();
            b.cache = None;
            y.data().iter().zip(wobj.data()).map(|(a, c)| a * c).sum()
        };
        for probe in [0usize, 13, 29] {
            let mut xp = x.clone();
            xp.data_mut()[probe] += eps;
            let mut xm = x.clone();
            xm.data_mut()[probe] -= eps;
            let mut b1 = snap.clone();
            let mut b2 = snap.clone();
            let numeric = (obj(&mut b1, &xp) - obj(&mut b2, &xm)) / (2.0 * eps);
            assert!(
                (numeric - dx.data()[probe]).abs() < 5e-2 * (1.0 + numeric.abs()),
                "probe {probe}: numeric {numeric} analytic {}",
                dx.data()[probe]
            );
        }
    }

    #[test]
    fn param_count_includes_downsample() {
        let mut rng = Rng::seed_from(6);
        let plain = ResidualBlock::new(4, 4, 1, &mut rng);
        let down = ResidualBlock::new(4, 8, 2, &mut rng);
        assert!(down.param_count() > plain.param_count());
        // Identity block: 2 convs (4*4*9 + 4 bias each) + 2 BN (2*4 each).
        assert_eq!(plain.param_count(), 2 * (4 * 4 * 9 + 4) + 2 * 8);
    }

    #[test]
    fn conv_specs_reports_all_convs() {
        let mut rng = Rng::seed_from(7);
        let block = ResidualBlock::new(4, 8, 2, &mut rng);
        let specs = block.conv_specs();
        assert_eq!(specs.len(), 3);
        assert_eq!(specs[0], (8, 4, 3, 2));
        assert_eq!(specs[1], (8, 8, 3, 1));
        assert_eq!(specs[2], (8, 4, 1, 2));
    }
}
