//! Optimizers: SGD with momentum (fine-tuning) and RMSprop (the paper's
//! choice for training the head-start policy networks).

use hs_tensor::{pool, Tensor};

use crate::network::Network;
use crate::param::Param;

/// Chunk size for pooled parameter updates. Fixed (not thread-derived) so
/// update order within each chunk — and the resulting floats — never
/// depend on `HS_NUM_THREADS`.
const UPDATE_CHUNK: usize = 1 << 15;

/// Applies `f` to matching fixed-size chunks of optimizer state, weights
/// and gradients, in parallel for large parameters.
fn par_zip3(
    state: &mut [f32],
    value: &mut [f32],
    grad: &[f32],
    f: impl Fn(&mut [f32], &mut [f32], &[f32]) + Sync,
) {
    debug_assert!(state.len() == value.len() && value.len() == grad.len());
    if value.len() <= UPDATE_CHUNK {
        f(state, value, grad);
        return;
    }
    let f = &f;
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = state
        .chunks_mut(UPDATE_CHUNK)
        .zip(value.chunks_mut(UPDATE_CHUNK))
        .zip(grad.chunks(UPDATE_CHUNK))
        .map(|((s, v), g)| Box::new(move || f(s, v, g)) as Box<dyn FnOnce() + Send + '_>)
        .collect();
    pool::run_tasks(tasks);
}

/// A gradient-descent optimizer over a [`Network`]'s parameters.
///
/// Per-parameter state (momentum buffers, second-moment estimates) is
/// keyed by the deterministic `visit_params` order, so an optimizer must
/// not be reused across networks with different parameter lists.
pub trait Optimizer: std::fmt::Debug {
    /// Applies one update step using the currently accumulated gradients,
    /// then leaves gradients untouched (call [`Network::zero_grad`]
    /// before the next accumulation).
    fn step(&mut self, net: &mut Network);

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (e.g. for schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with classical momentum and decoupled
/// L2 weight decay.
///
/// # Example
///
/// ```
/// use hs_nn::optim::{Optimizer, Sgd};
///
/// let mut sgd = Sgd::new(0.05).momentum(0.9).weight_decay(5e-4);
/// assert_eq!(sgd.learning_rate(), 0.05);
/// sgd.set_learning_rate(0.01);
/// assert_eq!(sgd.learning_rate(), 0.01);
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates plain SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            velocity: Vec::new(),
        }
    }

    /// Sets the momentum coefficient (builder style).
    pub fn momentum(mut self, momentum: f32) -> Self {
        self.momentum = momentum;
        self
    }

    /// Sets the L2 weight-decay coefficient (builder style). Applies only
    /// to parameters flagged [`Param::decay`].
    pub fn weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Discards per-parameter state (required when switching networks).
    pub fn reset_state(&mut self) {
        self.velocity.clear();
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, net: &mut Network) {
        let mut idx = 0usize;
        let (lr, mom, wd) = (self.lr, self.momentum, self.weight_decay);
        let velocity = &mut self.velocity;
        net.visit_params(&mut |p: &mut Param| {
            if velocity.len() <= idx {
                velocity.push(Tensor::zeros(p.value.shape().clone()));
            }
            let v = &mut velocity[idx];
            debug_assert_eq!(v.shape(), p.value.shape(), "optimizer state shape drift");
            let decay = if p.decay { wd } else { 0.0 };
            let Param { value, grad, .. } = p;
            par_zip3(v.data_mut(), value.data_mut(), grad.data(), |vs, ws, gs| {
                for ((vi, w), &gi) in vs.iter_mut().zip(ws.iter_mut()).zip(gs) {
                    let g = gi + decay * *w;
                    *vi = mom * *vi + g;
                    *w -= lr * *vi;
                }
            });
            idx += 1;
        });
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// RMSprop (Hinton lecture 6a), the optimizer the paper uses for the
/// head-start networks, with optional L2 weight decay.
#[derive(Debug, Clone)]
pub struct RmsProp {
    lr: f32,
    alpha: f32,
    eps: f32,
    weight_decay: f32,
    sq_avg: Vec<Tensor>,
}

impl RmsProp {
    /// Creates RMSprop with the given learning rate, smoothing `α = 0.99`
    /// and `ε = 1e-8`.
    pub fn new(lr: f32) -> Self {
        RmsProp {
            lr,
            alpha: 0.99,
            eps: 1e-8,
            weight_decay: 0.0,
            sq_avg: Vec::new(),
        }
    }

    /// Sets the smoothing constant `α` (builder style).
    pub fn alpha(mut self, alpha: f32) -> Self {
        self.alpha = alpha;
        self
    }

    /// Sets the L2 weight-decay coefficient (builder style).
    pub fn weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Discards per-parameter state.
    pub fn reset_state(&mut self) {
        self.sq_avg.clear();
    }
}

impl Optimizer for RmsProp {
    fn step(&mut self, net: &mut Network) {
        let mut idx = 0usize;
        let (lr, alpha, eps, wd) = (self.lr, self.alpha, self.eps, self.weight_decay);
        let sq_avg = &mut self.sq_avg;
        net.visit_params(&mut |p: &mut Param| {
            if sq_avg.len() <= idx {
                sq_avg.push(Tensor::zeros(p.value.shape().clone()));
            }
            debug_assert_eq!(
                sq_avg[idx].shape(),
                p.value.shape(),
                "optimizer state shape drift"
            );
            let decay = if p.decay { wd } else { 0.0 };
            // Split-borrow value and grad so no gradient copy is needed.
            let Param { value, grad, .. } = p;
            par_zip3(
                sq_avg[idx].data_mut(),
                value.data_mut(),
                grad.data(),
                |ss, ws, gs| {
                    for ((w, &g0), s) in ws.iter_mut().zip(gs).zip(ss.iter_mut()) {
                        let g = g0 + decay * *w;
                        *s = alpha * *s + (1.0 - alpha) * g * g;
                        *w -= lr * g / (s.sqrt() + eps);
                    }
                },
            );
            idx += 1;
        });
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// A step learning-rate schedule: multiply the rate by `gamma` every
/// `step_epochs` epochs (the classic VGG/ResNet schedule; the paper
/// keeps a constant rate during fine-tuning, so this is opt-in).
///
/// # Example
///
/// ```
/// use hs_nn::optim::{Optimizer, Sgd, StepLr};
///
/// let mut opt = Sgd::new(0.1);
/// let schedule = StepLr::new(0.1, 2, 0.5);
/// for epoch in 0..4 {
///     schedule.apply(&mut opt, epoch);
/// }
/// assert!((opt.learning_rate() - 0.05).abs() < 1e-7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepLr {
    base_lr: f32,
    step_epochs: usize,
    gamma: f32,
}

impl StepLr {
    /// Creates a schedule starting at `base_lr`, decaying by `gamma`
    /// every `step_epochs` epochs.
    ///
    /// # Panics
    ///
    /// Panics if `step_epochs` is zero or `gamma` is not in `(0, 1]`.
    pub fn new(base_lr: f32, step_epochs: usize, gamma: f32) -> Self {
        assert!(step_epochs > 0, "step_epochs must be positive");
        assert!(gamma > 0.0 && gamma <= 1.0, "gamma must be in (0, 1]");
        StepLr {
            base_lr,
            step_epochs,
            gamma,
        }
    }

    /// The learning rate the schedule prescribes for `epoch` (0-based).
    pub fn rate_at(&self, epoch: usize) -> f32 {
        self.base_lr * self.gamma.powi((epoch / self.step_epochs) as i32)
    }

    /// Sets the optimizer's learning rate for `epoch`.
    pub fn apply(&self, opt: &mut dyn Optimizer, epoch: usize) {
        opt.set_learning_rate(self.rate_at(epoch));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Linear;
    use crate::network::{Network, Node};
    use hs_tensor::Rng;

    /// One-parameter quadratic: minimize (w - 3)² via a 1×1 linear layer
    /// driven by handcrafted gradients.
    fn quad_net(rng: &mut Rng) -> Network {
        let mut net = Network::new();
        net.push(Node::Linear(Linear::new(1, 1, rng)));
        net
    }

    fn weight(net: &mut Network) -> f32 {
        let mut w = 0.0;
        net.visit_params(&mut |p| {
            if p.value.len() == 1 && p.decay {
                w = p.value.data()[0];
            }
        });
        w
    }

    fn set_grad_towards(net: &mut Network, target: f32) {
        net.visit_params(&mut |p| {
            if p.value.len() == 1 && p.decay {
                p.grad.data_mut()[0] = p.value.data()[0] - target;
            } else {
                p.zero_grad();
            }
        });
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut rng = Rng::seed_from(0);
        let mut net = quad_net(&mut rng);
        let mut opt = Sgd::new(0.1).momentum(0.5);
        for _ in 0..200 {
            set_grad_towards(&mut net, 3.0);
            opt.step(&mut net);
        }
        assert!((weight(&mut net) - 3.0).abs() < 1e-3);
    }

    #[test]
    fn rmsprop_converges_on_quadratic() {
        let mut rng = Rng::seed_from(1);
        let mut net = quad_net(&mut rng);
        let mut opt = RmsProp::new(0.05);
        for _ in 0..500 {
            set_grad_towards(&mut net, -2.0);
            opt.step(&mut net);
        }
        assert!((weight(&mut net) + 2.0).abs() < 0.05);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut rng = Rng::seed_from(2);
        let mut net = quad_net(&mut rng);
        // Force a known weight.
        net.visit_params(&mut |p| {
            if p.decay {
                p.value.fill(1.0);
            }
        });
        let mut opt = Sgd::new(0.1).weight_decay(0.5);
        net.zero_grad();
        opt.step(&mut net);
        // w ← w − lr·wd·w = 1 − 0.05
        assert!((weight(&mut net) - 0.95).abs() < 1e-6);
    }

    #[test]
    fn no_decay_params_skip_weight_decay() {
        let mut rng = Rng::seed_from(3);
        let mut net = quad_net(&mut rng);
        net.visit_params(&mut |p| p.value.fill(1.0));
        let mut opt = Sgd::new(0.1).weight_decay(0.5);
        net.zero_grad();
        opt.step(&mut net);
        net.visit_params(&mut |p| {
            if !p.decay {
                assert_eq!(p.value.data()[0], 1.0, "bias must not decay");
            }
        });
    }

    #[test]
    fn step_lr_decays_at_boundaries() {
        let s = StepLr::new(1.0, 3, 0.1);
        assert_eq!(s.rate_at(0), 1.0);
        assert_eq!(s.rate_at(2), 1.0);
        assert!((s.rate_at(3) - 0.1).abs() < 1e-7);
        assert!((s.rate_at(6) - 0.01).abs() < 1e-7);
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn step_lr_rejects_bad_gamma() {
        StepLr::new(1.0, 2, 1.5);
    }

    #[test]
    fn set_learning_rate_takes_effect() {
        let mut opt = Sgd::new(0.1);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
        let mut r = RmsProp::new(0.1);
        r.set_learning_rate(0.02);
        assert_eq!(r.learning_rate(), 0.02);
    }
}
