//! Model zoo: the architectures the paper evaluates.
//!
//! Channel counts accept a *width multiplier* so the same topology can be
//! instantiated at full width for parameter/FLOP accounting (matching the
//! paper's tables) and at reduced width for CPU-feasible training. The
//! classifier head is a global-average-pool followed by one linear layer —
//! a documented substitution for VGG's original FC stack that keeps the
//! "feature maps ↔ classifier inputs" correspondence one-to-one, which is
//! what channel surgery relies on.

use hs_tensor::Rng;

use crate::block::ResidualBlock;
use crate::error::NnError;
use crate::layer::{AvgPool2d, BatchNorm2d, Conv2d, GlobalAvgPool, Linear, MaxPool2d, ReLU};
use crate::network::{Network, Node};

/// One element of a VGG configuration string: a convolution of the given
/// base width, or a max-pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VggItem {
    /// 3×3 same convolution with this many output channels (pre-scaling).
    Conv(usize),
    /// 2×2 max pool.
    Pool,
}

/// The standard VGG-16 configuration (13 convolutions).
pub const VGG16_CONFIG: &[VggItem] = &[
    VggItem::Conv(64),
    VggItem::Conv(64),
    VggItem::Pool,
    VggItem::Conv(128),
    VggItem::Conv(128),
    VggItem::Pool,
    VggItem::Conv(256),
    VggItem::Conv(256),
    VggItem::Conv(256),
    VggItem::Pool,
    VggItem::Conv(512),
    VggItem::Conv(512),
    VggItem::Conv(512),
    VggItem::Pool,
    VggItem::Conv(512),
    VggItem::Conv(512),
    VggItem::Conv(512),
    VggItem::Pool,
];

/// The standard VGG-11 configuration (8 convolutions).
pub const VGG11_CONFIG: &[VggItem] = &[
    VggItem::Conv(64),
    VggItem::Pool,
    VggItem::Conv(128),
    VggItem::Pool,
    VggItem::Conv(256),
    VggItem::Conv(256),
    VggItem::Pool,
    VggItem::Conv(512),
    VggItem::Conv(512),
    VggItem::Pool,
    VggItem::Conv(512),
    VggItem::Conv(512),
    VggItem::Pool,
];

/// Applies a width multiplier to a base channel count (minimum 2 so every
/// layer keeps at least a pair of prunable maps).
pub fn scale_channels(base: usize, width: f32) -> usize {
    ((base as f32 * width).round() as usize).max(2)
}

/// Builds a VGG-style network from a configuration.
///
/// Pools that would shrink the spatial extent below 1 pixel are skipped,
/// so small synthetic inputs (e.g. 8×8) work with the full configuration.
///
/// # Errors
///
/// Returns [`NnError::BadInput`] if `input_size` is zero or `classes`
/// is zero.
pub fn vgg_from_config(
    config: &[VggItem],
    in_channels: usize,
    classes: usize,
    input_size: usize,
    width: f32,
    rng: &mut Rng,
) -> Result<Network, NnError> {
    if input_size == 0 || classes == 0 {
        return Err(NnError::BadInput {
            what: "vgg_from_config",
            detail: format!("input_size {input_size}, classes {classes}"),
        });
    }
    let mut net = Network::new();
    let mut channels = in_channels;
    let mut spatial = input_size;
    for item in config {
        match item {
            VggItem::Conv(base) => {
                let out = scale_channels(*base, width);
                net.push(Node::Conv(Conv2d::new(channels, out, 3, 1, 1, rng)));
                net.push(Node::Bn(BatchNorm2d::new(out)));
                net.push(Node::Relu(ReLU::new()));
                channels = out;
            }
            VggItem::Pool => {
                if spatial >= 2 && spatial.is_multiple_of(2) {
                    net.push(Node::MaxPool(MaxPool2d::new(2)));
                    spatial /= 2;
                }
            }
        }
    }
    net.push(Node::Gap(GlobalAvgPool::new()));
    net.push(Node::Linear(Linear::new(channels, classes, rng)));
    Ok(net)
}

/// VGG-16 (13 conv layers) for `input_size`×`input_size` inputs.
///
/// # Errors
///
/// See [`vgg_from_config`].
pub fn vgg16(
    in_channels: usize,
    classes: usize,
    input_size: usize,
    width: f32,
    rng: &mut Rng,
) -> Result<Network, NnError> {
    vgg_from_config(VGG16_CONFIG, in_channels, classes, input_size, width, rng)
}

/// VGG-11 (8 conv layers) for `input_size`×`input_size` inputs.
///
/// # Errors
///
/// See [`vgg_from_config`].
pub fn vgg11(
    in_channels: usize,
    classes: usize,
    input_size: usize,
    width: f32,
    rng: &mut Rng,
) -> Result<Network, NnError> {
    vgg_from_config(VGG11_CONFIG, in_channels, classes, input_size, width, rng)
}

/// LeNet-5-style network (LeCun et al. 1998), one of the "single-branch
/// shallow networks" the paper says HeadStart handles layer-by-layer:
/// two conv+avg-pool stages followed by the classifier. Input must be
/// divisible by 4.
///
/// # Errors
///
/// Returns [`NnError::BadInput`] for degenerate sizes.
pub fn lenet(
    in_channels: usize,
    classes: usize,
    input_size: usize,
    width: f32,
    rng: &mut Rng,
) -> Result<Network, NnError> {
    if classes == 0 || input_size < 4 || !input_size.is_multiple_of(4) {
        return Err(NnError::BadInput {
            what: "lenet",
            detail: format!("classes {classes}, input_size {input_size} (needs multiple of 4)"),
        });
    }
    let c1 = scale_channels(6, width.max(1.0)); // LeNet is already tiny
    let c2 = scale_channels(16, width.max(1.0));
    let mut net = Network::new();
    net.push(Node::Conv(Conv2d::new(in_channels, c1, 5, 1, 2, rng)));
    net.push(Node::Relu(ReLU::new()));
    net.push(Node::AvgPool(AvgPool2d::new(2)));
    net.push(Node::Conv(Conv2d::new(c1, c2, 5, 1, 2, rng)));
    net.push(Node::Relu(ReLU::new()));
    net.push(Node::AvgPool(AvgPool2d::new(2)));
    net.push(Node::Gap(GlobalAvgPool::new()));
    net.push(Node::Linear(Linear::new(c2, classes, rng)));
    Ok(net)
}

/// AlexNet-style network scaled to small inputs (Krizhevsky et al.
/// 2012), the other single-branch model the paper names: five
/// convolutions with early aggressive pooling.
///
/// # Errors
///
/// Returns [`NnError::BadInput`] for degenerate sizes.
pub fn alexnet(
    in_channels: usize,
    classes: usize,
    input_size: usize,
    width: f32,
    rng: &mut Rng,
) -> Result<Network, NnError> {
    if classes == 0 || input_size < 8 {
        return Err(NnError::BadInput {
            what: "alexnet",
            detail: format!("classes {classes}, input_size {input_size} (min 8)"),
        });
    }
    let widths = [64, 192, 384, 256, 256].map(|c| scale_channels(c, width));
    let mut net = Network::new();
    let mut spatial = input_size;
    let mut channels = in_channels;
    for (i, &out) in widths.iter().enumerate() {
        let kernel = if i == 0 { 5 } else { 3 };
        net.push(Node::Conv(Conv2d::new(
            channels,
            out,
            kernel,
            1,
            kernel / 2,
            rng,
        )));
        net.push(Node::Bn(BatchNorm2d::new(out)));
        net.push(Node::Relu(ReLU::new()));
        channels = out;
        // Pools after conv 0, 1 and 4 (the AlexNet pattern).
        if matches!(i, 0 | 1 | 4) && spatial >= 2 && spatial.is_multiple_of(2) {
            net.push(Node::MaxPool(MaxPool2d::new(2)));
            spatial /= 2;
        }
    }
    net.push(Node::Gap(GlobalAvgPool::new()));
    net.push(Node::Linear(Linear::new(channels, classes, rng)));
    Ok(net)
}

/// The CIFAR ResNet family (He et al. 2016): depth `6n + 2` with three
/// groups of `n` basic blocks at (scaled) widths 16/32/64.
///
/// `n = 18` gives ResNet-110, `n = 9` ResNet-56, `n = 3` ResNet-20 — the
/// models of the paper's Table 4.
///
/// # Errors
///
/// Returns [`NnError::BadInput`] if `n` or `classes` is zero.
pub fn resnet_cifar(
    n: usize,
    in_channels: usize,
    classes: usize,
    width: f32,
    rng: &mut Rng,
) -> Result<Network, NnError> {
    if n == 0 || classes == 0 {
        return Err(NnError::BadInput {
            what: "resnet_cifar",
            detail: format!("n {n}, classes {classes}"),
        });
    }
    let widths = [
        scale_channels(16, width),
        scale_channels(32, width),
        scale_channels(64, width),
    ];
    let mut net = Network::new();
    net.push(Node::Conv(Conv2d::new(
        in_channels,
        widths[0],
        3,
        1,
        1,
        rng,
    )));
    net.push(Node::Bn(BatchNorm2d::new(widths[0])));
    net.push(Node::Relu(ReLU::new()));
    let mut channels = widths[0];
    for (g, &w) in widths.iter().enumerate() {
        for b in 0..n {
            let stride = if g > 0 && b == 0 { 2 } else { 1 };
            net.push(Node::Block(ResidualBlock::new(channels, w, stride, rng)));
            channels = w;
        }
    }
    net.push(Node::Gap(GlobalAvgPool::new()));
    net.push(Node::Linear(Linear::new(channels, classes, rng)));
    Ok(net)
}

/// Re-samples every weight in the network from its initialization
/// distribution, preserving the architecture exactly. This is the "train
/// from scratch" baseline of the paper's Tables 2–4: same pruned
/// topology, none of the inherited knowledge.
pub fn reinitialize(net: &mut Network, rng: &mut Rng) {
    use crate::block::{reinit_bn, reinit_conv};
    use hs_tensor::Init;
    for i in 0..net.len() {
        match net.node_mut(i) {
            Node::Conv(conv) => reinit_conv(conv, rng),
            Node::Bn(bn) => reinit_bn(bn),
            Node::Linear(lin) => {
                lin.weight.value =
                    Init::XavierUniform.sample(lin.weight.value.shape().clone(), rng);
                lin.weight.zero_grad();
                lin.bias.value.fill(0.0);
                lin.bias.zero_grad();
            }
            Node::Block(block) => block.reinitialize(rng),
            Node::Relu(_)
            | Node::Dropout(_)
            | Node::MaxPool(_)
            | Node::AvgPool(_)
            | Node::Gap(_)
            | Node::Flatten(_) => {}
        }
    }
}

/// Depth of a CIFAR ResNet built with [`resnet_cifar`].
pub fn resnet_depth(n: usize) -> usize {
    6 * n + 2
}

/// Group index (0, 1 or 2) of each residual block of a CIFAR ResNet with
/// `n` blocks per group, aligned with [`Network::block_indices`].
pub fn resnet_block_groups(n: usize) -> Vec<usize> {
    (0..3 * n).map(|i| i / n).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs_tensor::{Shape, Tensor};

    #[test]
    fn vgg16_has_13_convs() {
        let mut rng = Rng::seed_from(0);
        let net = vgg16(3, 10, 32, 0.25, &mut rng).unwrap();
        assert_eq!(net.conv_indices().len(), 13);
    }

    #[test]
    fn vgg16_forward_shape() {
        let mut rng = Rng::seed_from(1);
        let mut net = vgg16(3, 10, 16, 0.125, &mut rng).unwrap();
        let x = Tensor::randn(Shape::d4(2, 3, 16, 16), &mut rng);
        let y = net.forward(&x, false).unwrap();
        assert_eq!(y.shape(), &Shape::d2(2, 10));
    }

    #[test]
    fn vgg_skips_pools_on_small_inputs() {
        let mut rng = Rng::seed_from(2);
        // 8×8 input only admits 3 pools; the builder must still succeed.
        let mut net = vgg16(3, 5, 8, 0.125, &mut rng).unwrap();
        let x = Tensor::randn(Shape::d4(1, 3, 8, 8), &mut rng);
        assert!(net.forward(&x, false).is_ok());
    }

    #[test]
    fn scale_channels_floors_at_two() {
        assert_eq!(scale_channels(64, 0.25), 16);
        assert_eq!(scale_channels(64, 1.0), 64);
        assert_eq!(scale_channels(4, 0.1), 2);
    }

    #[test]
    fn resnet_block_count() {
        let mut rng = Rng::seed_from(3);
        // ResNet-20: n=3 and width 0.5 keep every stage's channel count
        // positive, so construction cannot fail.
        let net = resnet_cifar(3, 3, 10, 0.5, &mut rng)
            .expect("ResNet-20 with positive channel counts always builds");
        assert_eq!(net.block_indices().len(), 9);
        assert_eq!(resnet_depth(3), 20);
        assert_eq!(resnet_depth(18), 110);
        assert_eq!(resnet_depth(9), 56);
    }

    #[test]
    fn resnet_forward_shape() {
        let mut rng = Rng::seed_from(4);
        let mut net = resnet_cifar(2, 3, 7, 0.25, &mut rng).unwrap();
        let x = Tensor::randn(Shape::d4(2, 3, 16, 16), &mut rng);
        let y = net.forward(&x, false).unwrap();
        assert_eq!(y.shape(), &Shape::d2(2, 7));
    }

    #[test]
    fn resnet_groups_have_one_downsample_boundary() {
        let mut rng = Rng::seed_from(5);
        let net = resnet_cifar(3, 3, 10, 0.25, &mut rng).unwrap();
        let blocks = net.block_indices();
        let prunable: Vec<bool> = blocks
            .iter()
            .map(|&i| match net.node(i) {
                Node::Block(b) => b.can_prune(),
                _ => unreachable!(),
            })
            .collect();
        // First block of groups 2 and 3 downsample; everything else is
        // prunable.
        assert_eq!(
            prunable,
            vec![true, true, true, false, true, true, false, true, true]
        );
    }

    #[test]
    fn resnet_block_groups_layout() {
        assert_eq!(resnet_block_groups(2), vec![0, 0, 1, 1, 2, 2]);
    }

    #[test]
    fn builders_reject_degenerate_args() {
        let mut rng = Rng::seed_from(6);
        assert!(vgg16(3, 0, 32, 1.0, &mut rng).is_err());
        assert!(vgg16(3, 10, 0, 1.0, &mut rng).is_err());
        assert!(resnet_cifar(0, 3, 10, 1.0, &mut rng).is_err());
    }

    #[test]
    fn lenet_runs_and_is_prunable() {
        let mut rng = Rng::seed_from(10);
        let mut net = lenet(1, 10, 16, 1.0, &mut rng).unwrap();
        let x = Tensor::randn(Shape::d4(2, 1, 16, 16), &mut rng);
        let y = net.forward(&x, false).unwrap();
        assert_eq!(y.shape(), &Shape::d2(2, 10));
        assert_eq!(net.conv_indices().len(), 2);
        // Layer-wise prunable through the standard surgery path.
        let sites = crate::surgery::conv_sites(&net);
        crate::surgery::prune_feature_maps(&mut net, sites[0].conv, &[0, 2, 4]).unwrap();
        assert!(net.forward(&x, false).is_ok());
    }

    #[test]
    fn lenet_rejects_bad_input_size() {
        let mut rng = Rng::seed_from(11);
        assert!(lenet(1, 10, 10, 1.0, &mut rng).is_err());
        assert!(lenet(1, 0, 16, 1.0, &mut rng).is_err());
    }

    #[test]
    fn alexnet_runs_and_has_five_convs() {
        let mut rng = Rng::seed_from(12);
        let mut net = alexnet(3, 10, 16, 0.25, &mut rng).unwrap();
        let x = Tensor::randn(Shape::d4(2, 3, 16, 16), &mut rng);
        let y = net.forward(&x, false).unwrap();
        assert_eq!(y.shape(), &Shape::d2(2, 10));
        assert_eq!(net.conv_indices().len(), 5);
        let x_train = Tensor::randn(Shape::d4(2, 3, 16, 16), &mut rng);
        net.forward(&x_train, true).unwrap();
        assert!(net.backward(&Tensor::ones(Shape::d2(2, 10))).is_ok());
    }

    #[test]
    fn reinitialize_preserves_architecture_but_not_weights() {
        let mut rng = Rng::seed_from(8);
        let mut net = resnet_cifar(1, 3, 4, 0.25, &mut rng).unwrap();
        let before = net.clone();
        let before_params = net.param_count();
        reinitialize(&mut net, &mut rng);
        assert_eq!(net.param_count(), before_params);
        // Weights must have changed somewhere.
        let mut diff = 0.0f32;
        let mut old = Vec::new();
        let mut neu = Vec::new();
        before
            .clone()
            .visit_params(&mut |p| old.push(p.value.clone()));
        net.visit_params(&mut |p| neu.push(p.value.clone()));
        for (a, b) in old.iter().zip(&neu) {
            assert_eq!(a.shape(), b.shape());
            diff += a
                .data()
                .iter()
                .zip(b.data())
                .map(|(x, y)| (x - y).abs())
                .sum::<f32>();
        }
        assert!(diff > 0.0);
        // And the reinitialized network still runs.
        let x = Tensor::randn(Shape::d4(1, 3, 8, 8), &mut rng);
        assert!(net.forward(&x, false).is_ok());
    }

    #[test]
    fn resnet_training_backward_runs() {
        let mut rng = Rng::seed_from(7);
        let mut net = resnet_cifar(1, 3, 4, 0.25, &mut rng).unwrap();
        let x = Tensor::randn(Shape::d4(2, 3, 8, 8), &mut rng);
        let y = net.forward(&x, true).unwrap();
        let g = Tensor::ones(y.shape().clone());
        assert!(net.backward(&g).is_ok());
    }
}
