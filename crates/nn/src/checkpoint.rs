//! Model checkpointing: a compact, self-describing, checksummed binary
//! format with atomic on-disk writes.
//!
//! A pruned model is only useful if it can leave the process that pruned
//! it — and a crash-resumable pipeline is only as trustworthy as the
//! checkpoints it resumes from. This module serializes a [`Network`] —
//! including physically shrunk layers, batch-norm running statistics and
//! residual-block active flags — to a versioned little-endian byte
//! stream, restores it bit-exactly, and detects corruption (bit flips,
//! truncation, partial writes) as typed `InvalidData` errors instead of
//! garbage weights.
//!
//! The format is deliberately independent of any serialization crate.
//! Version 2 (written by this code) is:
//!
//! ```text
//! magic "HSCK" · version u32 · node count u64 · nodes… · file CRC32
//! ```
//!
//! where every tensor is `rank u32 · dims u64… · f32 data · CRC32` (the
//! per-tensor CRC covers that tensor's rank, dims and data bytes) and
//! the trailing file CRC covers every byte before it, per-tensor CRCs
//! included. Version 1 — the same layout minus all checksums — is still
//! read transparently, so pre-existing checkpoints keep loading.
//!
//! On-disk writes via [`save`] are atomic (tmp + fsync + rename through
//! `hs_telemetry::io::atomic_write_as`), so a crash mid-save can never
//! leave a torn checkpoint at the final path.
//!
//! # Example
//!
//! ```
//! use hs_nn::{checkpoint, models};
//! use hs_tensor::Rng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = Rng::seed_from(0);
//! let net = models::vgg11(3, 4, 8, 0.25, &mut rng)?;
//! let bytes = checkpoint::to_bytes(&net)?;
//! let restored = checkpoint::from_bytes(&bytes)?;
//! assert_eq!(restored.len(), net.len());
//! # Ok(())
//! # }
//! ```

use std::fs::File;
use std::io::{self, BufReader, Read, Write};
use std::path::Path;

use hs_tensor::{Shape, Tensor};

use crate::block::ResidualBlock;
use crate::layer::{
    AvgPool2d, BatchNorm2d, Conv2d, Dropout, Flatten, GlobalAvgPool, Linear, MaxPool2d, ReLU,
};
use crate::network::{Network, Node};

const MAGIC: &[u8; 4] = b"HSCK";
/// Format version written by [`write_network`].
const VERSION: u32 = 2;
/// Oldest format version [`read_network`] still accepts.
const MIN_VERSION: u32 = 1;

/// Sanity bounds enforced before any allocation sized by stream data, so
/// a corrupt length field yields `InvalidData` instead of an OOM abort.
const MAX_NODES: u64 = 1 << 20;
const MAX_RANK: u32 = 8;
const MAX_DIM: u64 = 1 << 24;
const MAX_ELEMENTS: usize = 1 << 28;

fn bad(detail: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, detail.into())
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, polynomial 0xEDB88320), table-driven.

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// Incremental CRC32 (IEEE) hasher used for checkpoint checksums.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A fresh hasher.
    pub fn new() -> Crc32 {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds bytes into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// The checksum of everything fed so far (the hasher stays usable).
    pub fn value(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Crc32 {
        Crc32::new()
    }
}

/// One-shot CRC32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.value()
}

// ---------------------------------------------------------------------------
// Checksumming IO wrappers. The file CRC accumulates every byte that
// crosses the wrapper; a tensor CRC can be layered on top for the span
// of one tensor's rank/dims/data bytes.

struct CheckWriter<W: Write> {
    inner: W,
    checksummed: bool,
    file: Crc32,
    tensor: Option<Crc32>,
}

impl<W: Write> CheckWriter<W> {
    fn new(inner: W, checksummed: bool) -> CheckWriter<W> {
        CheckWriter {
            inner,
            checksummed,
            file: Crc32::new(),
            tensor: None,
        }
    }

    fn begin_tensor(&mut self) {
        if self.checksummed {
            self.tensor = Some(Crc32::new());
        }
    }

    fn end_tensor(&mut self) -> Option<u32> {
        self.tensor.take().map(|crc| crc.value())
    }

    fn file_crc(&self) -> u32 {
        self.file.value()
    }
}

impl<W: Write> Write for CheckWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        if self.checksummed {
            self.file.update(&buf[..n]);
            if let Some(tensor) = &mut self.tensor {
                tensor.update(&buf[..n]);
            }
        }
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

struct CheckReader<R: Read> {
    inner: R,
    checksummed: bool,
    file: Crc32,
    tensor: Option<Crc32>,
}

impl<R: Read> CheckReader<R> {
    fn new(inner: R) -> CheckReader<R> {
        CheckReader {
            inner,
            checksummed: true,
            file: Crc32::new(),
            tensor: None,
        }
    }

    fn begin_tensor(&mut self) {
        if self.checksummed {
            self.tensor = Some(Crc32::new());
        }
    }

    fn end_tensor(&mut self) -> Option<u32> {
        self.tensor.take().map(|crc| crc.value())
    }

    fn file_crc(&self) -> u32 {
        self.file.value()
    }
}

impl<R: Read> Read for CheckReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        if self.checksummed {
            self.file.update(&buf[..n]);
            if let Some(tensor) = &mut self.tensor {
                tensor.update(&buf[..n]);
            }
        }
        Ok(n)
    }
}

// ---------------------------------------------------------------------------
// Primitive field IO.

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn write_tensor<W: Write>(w: &mut CheckWriter<W>, t: &Tensor) -> io::Result<()> {
    w.begin_tensor();
    let dims = t.shape().dims();
    write_u32(w, dims.len() as u32)?;
    for &d in dims {
        write_u64(w, d as u64)?;
    }
    for &v in t.data() {
        w.write_all(&v.to_le_bytes())?;
    }
    if let Some(crc) = w.end_tensor() {
        write_u32(w, crc)?;
    }
    Ok(())
}

fn read_tensor<R: Read>(r: &mut CheckReader<R>) -> io::Result<Tensor> {
    r.begin_tensor();
    let rank = read_u32(r)?;
    if rank > MAX_RANK {
        return Err(bad(format!("implausible tensor rank {rank}")));
    }
    let mut dims = Vec::with_capacity(rank as usize);
    let mut len = 1usize;
    for _ in 0..rank {
        let d = read_u64(r)?;
        if d > MAX_DIM {
            return Err(bad(format!("implausible tensor dimension {d}")));
        }
        len = len
            .checked_mul(d as usize)
            .filter(|&l| l <= MAX_ELEMENTS)
            .ok_or_else(|| bad(format!("implausible tensor size (dims {dims:?} x {d})")))?;
        dims.push(d as usize);
    }
    let mut data = vec![0.0f32; len];
    let mut buf = [0u8; 4];
    for v in &mut data {
        r.read_exact(&mut buf)?;
        *v = f32::from_le_bytes(buf);
    }
    if let Some(computed) = r.end_tensor() {
        let stored = read_u32(r)?;
        if stored != computed {
            return Err(bad(format!(
                "tensor checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
            )));
        }
    }
    Tensor::from_vec(Shape::new(dims), data).map_err(|e| bad(e.to_string()))
}

fn write_conv<W: Write>(w: &mut CheckWriter<W>, conv: &Conv2d) -> io::Result<()> {
    write_tensor(w, &conv.weight.value)?;
    write_tensor(w, &conv.bias.value)?;
    write_u32(w, conv.stride() as u32)?;
    write_u32(w, conv.padding() as u32)
}

fn read_conv<R: Read>(r: &mut CheckReader<R>) -> io::Result<Conv2d> {
    let weight = read_tensor(r)?;
    let bias = read_tensor(r)?;
    let stride = read_u32(r)? as usize;
    let padding = read_u32(r)? as usize;
    Conv2d::from_parts(weight, bias, stride, padding).map_err(|e| bad(e.to_string()))
}

fn write_bn<W: Write>(w: &mut CheckWriter<W>, bn: &BatchNorm2d) -> io::Result<()> {
    write_tensor(w, &bn.gamma.value)?;
    write_tensor(w, &bn.beta.value)?;
    write_tensor(w, &bn.running_mean)?;
    write_tensor(w, &bn.running_var)
}

fn read_bn<R: Read>(r: &mut CheckReader<R>) -> io::Result<BatchNorm2d> {
    let gamma = read_tensor(r)?;
    let beta = read_tensor(r)?;
    let mean = read_tensor(r)?;
    let var = read_tensor(r)?;
    BatchNorm2d::from_parts(gamma, beta, mean, var).map_err(|e| bad(e.to_string()))
}

fn write_node<W: Write>(w: &mut CheckWriter<W>, node: &Node) -> io::Result<()> {
    match node {
        Node::Conv(conv) => {
            w.write_all(&[0])?;
            write_conv(w, conv)
        }
        Node::Bn(bn) => {
            w.write_all(&[1])?;
            write_bn(w, bn)
        }
        Node::Relu(_) => w.write_all(&[2]),
        Node::MaxPool(p) => {
            w.write_all(&[3])?;
            write_u32(w, p.window() as u32)
        }
        Node::AvgPool(p) => {
            w.write_all(&[4])?;
            write_u32(w, p.window() as u32)
        }
        Node::Gap(_) => w.write_all(&[5]),
        Node::Flatten(_) => w.write_all(&[6]),
        Node::Linear(lin) => {
            w.write_all(&[7])?;
            write_tensor(w, &lin.weight.value)?;
            write_tensor(w, &lin.bias.value)
        }
        Node::Dropout(d) => {
            w.write_all(&[9])?;
            w.write_all(&d.probability().to_le_bytes())
        }
        Node::Block(block) => {
            w.write_all(&[8])?;
            let (c1, b1, c2, b2, down, active) = block.checkpoint_parts();
            write_conv(w, c1)?;
            write_bn(w, b1)?;
            write_conv(w, c2)?;
            write_bn(w, b2)?;
            w.write_all(&[down.is_some() as u8])?;
            if let Some((dc, db)) = down {
                write_conv(w, dc)?;
                write_bn(w, db)?;
            }
            w.write_all(&[active as u8])
        }
    }
}

fn read_bool(r: &mut impl Read) -> io::Result<bool> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    match b[0] {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(bad(format!("invalid boolean byte {other}"))),
    }
}

fn read_node<R: Read>(r: &mut CheckReader<R>) -> io::Result<Node> {
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    Ok(match tag[0] {
        0 => Node::Conv(read_conv(r)?),
        1 => Node::Bn(read_bn(r)?),
        2 => Node::Relu(ReLU::new()),
        3 => Node::MaxPool(MaxPool2d::new(read_u32(r)?.max(1) as usize)),
        4 => Node::AvgPool(AvgPool2d::new(read_u32(r)?.max(1) as usize)),
        5 => Node::Gap(GlobalAvgPool::new()),
        6 => Node::Flatten(Flatten::new()),
        7 => {
            let weight = read_tensor(r)?;
            let bias = read_tensor(r)?;
            Node::Linear(Linear::from_parts(weight, bias).map_err(|e| bad(e.to_string()))?)
        }
        8 => {
            let c1 = read_conv(r)?;
            let b1 = read_bn(r)?;
            let c2 = read_conv(r)?;
            let b2 = read_bn(r)?;
            let down = if read_bool(r)? {
                Some((read_conv(r)?, read_bn(r)?))
            } else {
                None
            };
            let active = read_bool(r)?;
            Node::Block(ResidualBlock::from_checkpoint_parts(
                c1, b1, c2, b2, down, active,
            ))
        }
        9 => {
            let mut buf = [0u8; 4];
            r.read_exact(&mut buf)?;
            let p = f32::from_le_bytes(buf);
            if !(0.0..1.0).contains(&p) {
                return Err(bad(format!("invalid dropout probability {p}")));
            }
            // The RNG stream restarts from a fixed seed; dropout is
            // inference-identity so restored behaviour is unchanged.
            Node::Dropout(Dropout::new(p, &mut hs_tensor::Rng::seed_from(0)))
        }
        other => return Err(bad(format!("unknown node tag {other}"))),
    })
}

fn write_network_versioned(w: impl Write, net: &Network, version: u32) -> io::Result<()> {
    let mut w = CheckWriter::new(w, version >= 2);
    w.write_all(MAGIC)?;
    write_u32(&mut w, version)?;
    write_u64(&mut w, net.len() as u64)?;
    for node in net.iter() {
        write_node(&mut w, node)?;
    }
    if version >= 2 {
        let crc = w.file_crc();
        write_u32(&mut w, crc)?;
    }
    w.flush()
}

/// Writes a network to any `Write` sink (a `&mut` reference works too)
/// in the current (checksummed) format version.
///
/// # Errors
///
/// Propagates I/O errors from the sink.
pub fn write_network(w: impl Write, net: &Network) -> io::Result<()> {
    write_network_versioned(w, net, VERSION)
}

/// Reads a network from any `Read` source (a `&mut` reference works
/// too). Both format versions are accepted: version 2 streams have
/// every per-tensor checksum and the whole-file trailer verified;
/// version 1 streams (written before checksums existed) load with
/// structural validation only.
///
/// # Errors
///
/// Returns `InvalidData` for a corrupt or incompatible stream — bad
/// magic, unsupported version, implausible sizes, or any checksum
/// mismatch — and propagates I/O errors.
pub fn read_network(r: impl Read) -> io::Result<Network> {
    let mut r = CheckReader::new(r);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not a headstart checkpoint (bad magic)"));
    }
    let version = read_u32(&mut r)?;
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(bad(format!("unsupported checkpoint version {version}")));
    }
    if version < 2 {
        r.checksummed = false;
    }
    let count = read_u64(&mut r)?;
    if count > MAX_NODES {
        return Err(bad(format!("implausible node count {count}")));
    }
    let mut net = Network::new();
    for _ in 0..count {
        let node = read_node(&mut r)?;
        net.push(node);
    }
    if version >= 2 {
        let computed = r.file_crc();
        let stored = read_u32(&mut r)?;
        if stored != computed {
            return Err(bad(format!(
                "checkpoint file checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
            )));
        }
    }
    Ok(net)
}

/// Serializes a network to bytes in the current format version.
///
/// # Errors
///
/// Never fails for in-memory sinks in practice; the `Result` mirrors
/// [`write_network`].
pub fn to_bytes(net: &Network) -> io::Result<Vec<u8>> {
    let mut buf = Vec::new();
    write_network(&mut buf, net)?;
    Ok(buf)
}

/// Serializes a network in the legacy unchecksummed version-1 layout —
/// a compatibility helper so tests (and tools talking to old readers)
/// can produce streams identical to pre-checksum checkpoints.
///
/// # Errors
///
/// Mirrors [`write_network`].
pub fn to_bytes_v1(net: &Network) -> io::Result<Vec<u8>> {
    let mut buf = Vec::new();
    write_network_versioned(&mut buf, net, 1)?;
    Ok(buf)
}

/// Deserializes a network from bytes (either format version).
///
/// # Errors
///
/// Returns `InvalidData` for corrupt input.
pub fn from_bytes(bytes: &[u8]) -> io::Result<Network> {
    read_network(bytes)
}

/// Saves a network to a file **atomically**: the bytes are written to a
/// sibling temporary file, fsynced, and renamed over `path`, so a crash
/// mid-save never leaves a torn checkpoint behind. Transient IO errors
/// are retried with bounded backoff.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save(net: &Network, path: impl AsRef<Path>) -> io::Result<()> {
    let bytes = to_bytes(net)?;
    hs_telemetry::io::atomic_write_as(path.as_ref(), "checkpoint", &bytes)
}

/// Loads a network from a file.
///
/// # Errors
///
/// Propagates filesystem errors and format errors.
pub fn load(path: impl AsRef<Path>) -> io::Result<Network> {
    read_network(BufReader::new(File::open(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use hs_tensor::Rng;

    fn assert_same_function(a: &mut Network, b: &mut Network, in_c: usize, size: usize) {
        let mut rng = Rng::seed_from(99);
        let x = Tensor::randn(Shape::d4(2, in_c, size, size), &mut rng);
        let ya = a.forward(&x, false).expect("a");
        let yb = b.forward(&x, false).expect("b");
        assert_eq!(ya, yb, "restored network computes a different function");
    }

    #[test]
    fn vgg_round_trips_bit_exactly() {
        let mut rng = Rng::seed_from(0);
        let mut net = models::vgg11(3, 5, 8, 0.25, &mut rng).unwrap();
        // Warm BN so running stats are non-trivial.
        let x = Tensor::randn(Shape::d4(4, 3, 8, 8), &mut rng);
        net.forward(&x, true).unwrap();
        let bytes = to_bytes(&net).unwrap();
        let mut restored = from_bytes(&bytes).unwrap();
        assert_eq!(restored.len(), net.len());
        assert_same_function(&mut net, &mut restored, 3, 8);
    }

    #[test]
    fn resnet_with_inactive_block_round_trips() {
        let mut rng = Rng::seed_from(1);
        let mut net = models::resnet_cifar(2, 3, 4, 0.25, &mut rng).unwrap();
        let blocks = net.block_indices();
        net.set_block_active(blocks[1], false).unwrap();
        let bytes = to_bytes(&net).unwrap();
        let mut restored = from_bytes(&bytes).unwrap();
        // Active flags survive.
        match restored.node(blocks[1]) {
            Node::Block(b) => assert!(!b.is_active()),
            _ => panic!("expected block"),
        }
        assert_same_function(&mut net, &mut restored, 3, 8);
    }

    #[test]
    fn pruned_network_round_trips() {
        let mut rng = Rng::seed_from(2);
        let mut net = models::vgg11(3, 4, 8, 0.25, &mut rng).unwrap();
        let site = crate::surgery::conv_sites(&net)[0];
        crate::surgery::prune_feature_maps(&mut net, site.conv, &[0, 3, 5]).unwrap();
        let bytes = to_bytes(&net).unwrap();
        let mut restored = from_bytes(&bytes).unwrap();
        assert_eq!(restored.conv(site.conv).unwrap().out_channels(), 3);
        assert_same_function(&mut net, &mut restored, 3, 8);
    }

    #[test]
    fn lenet_with_avgpool_round_trips() {
        let mut rng = Rng::seed_from(3);
        let mut net = models::lenet(1, 3, 8, 1.0, &mut rng).unwrap();
        let bytes = to_bytes(&net).unwrap();
        let mut restored = from_bytes(&bytes).unwrap();
        assert_same_function(&mut net, &mut restored, 1, 8);
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The IEEE CRC32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn written_streams_are_version_2_with_trailer() {
        let mut rng = Rng::seed_from(6);
        let net = models::lenet(1, 2, 8, 1.0, &mut rng).unwrap();
        let bytes = to_bytes(&net).unwrap();
        assert_eq!(&bytes[..4], b"HSCK");
        assert_eq!(u32::from_le_bytes(bytes[4..8].try_into().unwrap()), 2);
        // The trailer is the CRC of everything before it.
        let body = &bytes[..bytes.len() - 4];
        let trailer = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
        assert_eq!(trailer, crc32(body));
    }

    #[test]
    fn v1_checkpoints_still_load() {
        let mut rng = Rng::seed_from(7);
        let mut net = models::vgg11(3, 3, 8, 0.25, &mut rng).unwrap();
        let v1 = to_bytes_v1(&net).unwrap();
        assert_eq!(u32::from_le_bytes(v1[4..8].try_into().unwrap()), 1);
        let mut restored = from_bytes(&v1).unwrap();
        assert_same_function(&mut net, &mut restored, 3, 8);
        // v1 is byte-for-byte smaller: no per-tensor CRCs, no trailer.
        let v2 = to_bytes(&net).unwrap();
        assert!(v1.len() < v2.len());
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let mut rng = Rng::seed_from(8);
        let net = models::lenet(1, 2, 8, 1.0, &mut rng).unwrap();
        let bytes = to_bytes(&net).unwrap();
        // Sweep the stream with a prime stride so every region (header,
        // tags, dims, weights, CRCs, trailer) gets hit across the run.
        for pos in (0..bytes.len()).step_by(97) {
            let mut broken = bytes.clone();
            broken[pos] ^= 0x40;
            assert!(
                from_bytes(&broken).is_err(),
                "bit flip at byte {pos} went undetected"
            );
        }
        // And explicitly: a flip in the middle of tensor data, which
        // version 1 could never catch.
        let mut broken = bytes.clone();
        let mid = bytes.len() / 2;
        broken[mid] ^= 0x01;
        assert!(
            from_bytes(&broken).is_err(),
            "data flip at {mid} undetected"
        );
    }

    #[test]
    fn every_truncation_is_detected() {
        let mut rng = Rng::seed_from(9);
        let net = models::lenet(1, 2, 8, 1.0, &mut rng).unwrap();
        let bytes = to_bytes(&net).unwrap();
        for len in (0..bytes.len()).step_by(89) {
            assert!(
                from_bytes(&bytes[..len]).is_err(),
                "truncation to {len} bytes went undetected"
            );
        }
        assert!(from_bytes(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn absurd_sizes_are_rejected_before_allocation() {
        // Hand-built v2 header + conv node whose weight tensor claims
        // outlandish dims. The reader must reject on the size fields,
        // long before allocating or reading data.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"HSCK");
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(&1u64.to_le_bytes()); // one node
        bytes.push(0); // conv tag
        bytes.extend_from_slice(&4u32.to_le_bytes()); // rank 4
        for _ in 0..4 {
            bytes.extend_from_slice(&(u64::MAX / 2).to_le_bytes());
        }
        let err = from_bytes(&bytes).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // Plausible per-dim sizes whose product overflows usize.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"HSCK");
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(&1u64.to_le_bytes());
        bytes.push(0);
        bytes.extend_from_slice(&4u32.to_le_bytes());
        for _ in 0..4 {
            bytes.extend_from_slice(&((1u64 << 24) - 1).to_le_bytes());
        }
        let err = from_bytes(&bytes).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // Implausible rank and node count.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"HSCK");
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(&(u64::MAX).to_le_bytes());
        let err = from_bytes(&bytes).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn corrupt_input_is_rejected_not_panicking() {
        assert!(from_bytes(b"").is_err());
        assert!(from_bytes(b"NOPE").is_err());
        assert!(from_bytes(b"HSCK\xff\xff\xff\xff").is_err(), "bad version");
        // Valid header, truncated body.
        let mut rng = Rng::seed_from(4);
        let net = models::vgg11(3, 2, 8, 0.25, &mut rng).unwrap();
        let bytes = to_bytes(&net).unwrap();
        assert!(from_bytes(&bytes[..bytes.len() / 2]).is_err());
        // Flipped node tag.
        let mut broken = bytes.clone();
        broken[16] = 200;
        assert!(from_bytes(&broken).is_err());
    }

    #[test]
    fn file_save_load_is_atomic_and_leaves_no_tmp() {
        let mut rng = Rng::seed_from(5);
        let mut net = models::vgg11(3, 2, 8, 0.125, &mut rng).unwrap();
        let dir = std::env::temp_dir().join("hs_checkpoint_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.hsck");
        save(&net, &path).unwrap();
        assert!(!path.with_file_name("model.hsck.tmp").exists());
        let mut restored = load(&path).unwrap();
        assert_same_function(&mut net, &mut restored, 3, 8);
        std::fs::remove_file(&path).ok();
    }
}
