//! Model checkpointing: a compact, self-describing binary format.
//!
//! A pruned model is only useful if it can leave the process that pruned
//! it. This module serializes a [`Network`] — including physically
//! shrunk layers, batch-norm running statistics and residual-block
//! active flags — to a versioned little-endian byte stream, and restores
//! it bit-exactly.
//!
//! The format is deliberately independent of any serialization crate:
//! `magic "HSCK" · version u32 · node count u64 · nodes…`, where every
//! tensor is `rank u32 · dims u64… · f32 data`.
//!
//! # Example
//!
//! ```
//! use hs_nn::{checkpoint, models};
//! use hs_tensor::Rng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = Rng::seed_from(0);
//! let net = models::vgg11(3, 4, 8, 0.25, &mut rng)?;
//! let bytes = checkpoint::to_bytes(&net)?;
//! let restored = checkpoint::from_bytes(&bytes)?;
//! assert_eq!(restored.len(), net.len());
//! # Ok(())
//! # }
//! ```

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use hs_tensor::{Shape, Tensor};

use crate::block::ResidualBlock;
use crate::layer::{
    AvgPool2d, BatchNorm2d, Conv2d, Dropout, Flatten, GlobalAvgPool, Linear, MaxPool2d, ReLU,
};
use crate::network::{Network, Node};

const MAGIC: &[u8; 4] = b"HSCK";
const VERSION: u32 = 1;

fn bad(detail: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, detail.into())
}

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn write_tensor(w: &mut impl Write, t: &Tensor) -> io::Result<()> {
    let dims = t.shape().dims();
    write_u32(w, dims.len() as u32)?;
    for &d in dims {
        write_u64(w, d as u64)?;
    }
    for &v in t.data() {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

fn read_tensor(r: &mut impl Read) -> io::Result<Tensor> {
    let rank = read_u32(r)? as usize;
    if rank > 8 {
        return Err(bad(format!("implausible tensor rank {rank}")));
    }
    let mut dims = Vec::with_capacity(rank);
    for _ in 0..rank {
        dims.push(read_u64(r)? as usize);
    }
    let shape = Shape::new(dims);
    let len = shape.len();
    if len > (1 << 31) {
        return Err(bad(format!("implausible tensor size {len}")));
    }
    let mut data = vec![0.0f32; len];
    let mut buf = [0u8; 4];
    for v in &mut data {
        r.read_exact(&mut buf)?;
        *v = f32::from_le_bytes(buf);
    }
    Tensor::from_vec(shape, data).map_err(|e| bad(e.to_string()))
}

fn write_conv(w: &mut impl Write, conv: &Conv2d) -> io::Result<()> {
    write_tensor(w, &conv.weight.value)?;
    write_tensor(w, &conv.bias.value)?;
    write_u32(w, conv.stride() as u32)?;
    write_u32(w, conv.padding() as u32)
}

fn read_conv(r: &mut impl Read) -> io::Result<Conv2d> {
    let weight = read_tensor(r)?;
    let bias = read_tensor(r)?;
    let stride = read_u32(r)? as usize;
    let padding = read_u32(r)? as usize;
    Conv2d::from_parts(weight, bias, stride, padding).map_err(|e| bad(e.to_string()))
}

fn write_bn(w: &mut impl Write, bn: &BatchNorm2d) -> io::Result<()> {
    write_tensor(w, &bn.gamma.value)?;
    write_tensor(w, &bn.beta.value)?;
    write_tensor(w, &bn.running_mean)?;
    write_tensor(w, &bn.running_var)
}

fn read_bn(r: &mut impl Read) -> io::Result<BatchNorm2d> {
    let gamma = read_tensor(r)?;
    let beta = read_tensor(r)?;
    let mean = read_tensor(r)?;
    let var = read_tensor(r)?;
    BatchNorm2d::from_parts(gamma, beta, mean, var).map_err(|e| bad(e.to_string()))
}

fn write_node(w: &mut impl Write, node: &Node) -> io::Result<()> {
    match node {
        Node::Conv(conv) => {
            w.write_all(&[0])?;
            write_conv(w, conv)
        }
        Node::Bn(bn) => {
            w.write_all(&[1])?;
            write_bn(w, bn)
        }
        Node::Relu(_) => w.write_all(&[2]),
        Node::MaxPool(p) => {
            w.write_all(&[3])?;
            write_u32(w, p.window() as u32)
        }
        Node::AvgPool(p) => {
            w.write_all(&[4])?;
            write_u32(w, p.window() as u32)
        }
        Node::Gap(_) => w.write_all(&[5]),
        Node::Flatten(_) => w.write_all(&[6]),
        Node::Linear(lin) => {
            w.write_all(&[7])?;
            write_tensor(w, &lin.weight.value)?;
            write_tensor(w, &lin.bias.value)
        }
        Node::Dropout(d) => {
            w.write_all(&[9])?;
            w.write_all(&d.probability().to_le_bytes())
        }
        Node::Block(block) => {
            w.write_all(&[8])?;
            let (c1, b1, c2, b2, down, active) = block.checkpoint_parts();
            write_conv(w, c1)?;
            write_bn(w, b1)?;
            write_conv(w, c2)?;
            write_bn(w, b2)?;
            w.write_all(&[down.is_some() as u8])?;
            if let Some((dc, db)) = down {
                write_conv(w, dc)?;
                write_bn(w, db)?;
            }
            w.write_all(&[active as u8])
        }
    }
}

fn read_bool(r: &mut impl Read) -> io::Result<bool> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    match b[0] {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(bad(format!("invalid boolean byte {other}"))),
    }
}

fn read_node(r: &mut impl Read) -> io::Result<Node> {
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    Ok(match tag[0] {
        0 => Node::Conv(read_conv(r)?),
        1 => Node::Bn(read_bn(r)?),
        2 => Node::Relu(ReLU::new()),
        3 => Node::MaxPool(MaxPool2d::new(read_u32(r)?.max(1) as usize)),
        4 => Node::AvgPool(AvgPool2d::new(read_u32(r)?.max(1) as usize)),
        5 => Node::Gap(GlobalAvgPool::new()),
        6 => Node::Flatten(Flatten::new()),
        7 => {
            let weight = read_tensor(r)?;
            let bias = read_tensor(r)?;
            Node::Linear(Linear::from_parts(weight, bias).map_err(|e| bad(e.to_string()))?)
        }
        8 => {
            let c1 = read_conv(r)?;
            let b1 = read_bn(r)?;
            let c2 = read_conv(r)?;
            let b2 = read_bn(r)?;
            let down = if read_bool(r)? {
                Some((read_conv(r)?, read_bn(r)?))
            } else {
                None
            };
            let active = read_bool(r)?;
            Node::Block(ResidualBlock::from_checkpoint_parts(
                c1, b1, c2, b2, down, active,
            ))
        }
        9 => {
            let mut buf = [0u8; 4];
            r.read_exact(&mut buf)?;
            let p = f32::from_le_bytes(buf);
            if !(0.0..1.0).contains(&p) {
                return Err(bad(format!("invalid dropout probability {p}")));
            }
            // The RNG stream restarts from a fixed seed; dropout is
            // inference-identity so restored behaviour is unchanged.
            Node::Dropout(Dropout::new(p, &mut hs_tensor::Rng::seed_from(0)))
        }
        other => return Err(bad(format!("unknown node tag {other}"))),
    })
}

/// Writes a network to any `Write` sink (a `&mut` reference works too).
///
/// # Errors
///
/// Propagates I/O errors from the sink.
pub fn write_network(mut w: impl Write, net: &Network) -> io::Result<()> {
    w.write_all(MAGIC)?;
    write_u32(&mut w, VERSION)?;
    write_u64(&mut w, net.len() as u64)?;
    for node in net.iter() {
        write_node(&mut w, node)?;
    }
    w.flush()
}

/// Reads a network from any `Read` source (a `&mut` reference works too).
///
/// # Errors
///
/// Returns `InvalidData` for a corrupt or incompatible stream, and
/// propagates I/O errors.
pub fn read_network(mut r: impl Read) -> io::Result<Network> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not a headstart checkpoint (bad magic)"));
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(bad(format!("unsupported checkpoint version {version}")));
    }
    let count = read_u64(&mut r)? as usize;
    if count > 1 << 20 {
        return Err(bad(format!("implausible node count {count}")));
    }
    let mut net = Network::new();
    for _ in 0..count {
        let node = read_node(&mut r)?;
        net.push(node);
    }
    Ok(net)
}

/// Serializes a network to bytes.
///
/// # Errors
///
/// Never fails for in-memory sinks in practice; the `Result` mirrors
/// [`write_network`].
pub fn to_bytes(net: &Network) -> io::Result<Vec<u8>> {
    let mut buf = Vec::new();
    write_network(&mut buf, net)?;
    Ok(buf)
}

/// Deserializes a network from bytes.
///
/// # Errors
///
/// Returns `InvalidData` for corrupt input.
pub fn from_bytes(bytes: &[u8]) -> io::Result<Network> {
    read_network(bytes)
}

/// Saves a network to a file.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save(net: &Network, path: impl AsRef<Path>) -> io::Result<()> {
    write_network(BufWriter::new(File::create(path)?), net)
}

/// Loads a network from a file.
///
/// # Errors
///
/// Propagates filesystem errors and format errors.
pub fn load(path: impl AsRef<Path>) -> io::Result<Network> {
    read_network(BufReader::new(File::open(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use hs_tensor::Rng;

    fn assert_same_function(a: &mut Network, b: &mut Network, in_c: usize, size: usize) {
        let mut rng = Rng::seed_from(99);
        let x = Tensor::randn(Shape::d4(2, in_c, size, size), &mut rng);
        let ya = a.forward(&x, false).expect("a");
        let yb = b.forward(&x, false).expect("b");
        assert_eq!(ya, yb, "restored network computes a different function");
    }

    #[test]
    fn vgg_round_trips_bit_exactly() {
        let mut rng = Rng::seed_from(0);
        let mut net = models::vgg11(3, 5, 8, 0.25, &mut rng).unwrap();
        // Warm BN so running stats are non-trivial.
        let x = Tensor::randn(Shape::d4(4, 3, 8, 8), &mut rng);
        net.forward(&x, true).unwrap();
        let bytes = to_bytes(&net).unwrap();
        let mut restored = from_bytes(&bytes).unwrap();
        assert_eq!(restored.len(), net.len());
        assert_same_function(&mut net, &mut restored, 3, 8);
    }

    #[test]
    fn resnet_with_inactive_block_round_trips() {
        let mut rng = Rng::seed_from(1);
        let mut net = models::resnet_cifar(2, 3, 4, 0.25, &mut rng).unwrap();
        let blocks = net.block_indices();
        net.set_block_active(blocks[1], false).unwrap();
        let bytes = to_bytes(&net).unwrap();
        let mut restored = from_bytes(&bytes).unwrap();
        // Active flags survive.
        match restored.node(blocks[1]) {
            Node::Block(b) => assert!(!b.is_active()),
            _ => panic!("expected block"),
        }
        assert_same_function(&mut net, &mut restored, 3, 8);
    }

    #[test]
    fn pruned_network_round_trips() {
        let mut rng = Rng::seed_from(2);
        let mut net = models::vgg11(3, 4, 8, 0.25, &mut rng).unwrap();
        let site = crate::surgery::conv_sites(&net)[0];
        crate::surgery::prune_feature_maps(&mut net, site.conv, &[0, 3, 5]).unwrap();
        let bytes = to_bytes(&net).unwrap();
        let mut restored = from_bytes(&bytes).unwrap();
        assert_eq!(restored.conv(site.conv).unwrap().out_channels(), 3);
        assert_same_function(&mut net, &mut restored, 3, 8);
    }

    #[test]
    fn lenet_with_avgpool_round_trips() {
        let mut rng = Rng::seed_from(3);
        let mut net = models::lenet(1, 3, 8, 1.0, &mut rng).unwrap();
        let bytes = to_bytes(&net).unwrap();
        let mut restored = from_bytes(&bytes).unwrap();
        assert_same_function(&mut net, &mut restored, 1, 8);
    }

    #[test]
    fn corrupt_input_is_rejected_not_panicking() {
        assert!(from_bytes(b"").is_err());
        assert!(from_bytes(b"NOPE").is_err());
        assert!(from_bytes(b"HSCK\xff\xff\xff\xff").is_err(), "bad version");
        // Valid header, truncated body.
        let mut rng = Rng::seed_from(4);
        let net = models::vgg11(3, 2, 8, 0.25, &mut rng).unwrap();
        let bytes = to_bytes(&net).unwrap();
        assert!(from_bytes(&bytes[..bytes.len() / 2]).is_err());
        // Flipped node tag.
        let mut broken = bytes.clone();
        broken[16] = 200;
        assert!(from_bytes(&broken).is_err());
    }

    #[test]
    fn file_save_load() {
        let mut rng = Rng::seed_from(5);
        let mut net = models::vgg11(3, 2, 8, 0.125, &mut rng).unwrap();
        let dir = std::env::temp_dir().join("hs_checkpoint_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.hsck");
        save(&net, &path).unwrap();
        let mut restored = load(&path).unwrap();
        assert_same_function(&mut net, &mut restored, 3, 8);
        std::fs::remove_file(&path).ok();
    }
}
