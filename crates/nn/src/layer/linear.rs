//! Fully connected layer.

use hs_tensor::{gemm_ex, Init, Rng, Shape, Tensor};

use crate::error::NnError;
use crate::param::Param;

/// Fully connected layer: `y = x·Wᵀ + b` with `W: [out, in]`.
///
/// The weight's *input* axis (axis 1) is what channel surgery shrinks when
/// the last convolutional layer loses feature maps.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weight matrix `[out_features, in_features]`.
    pub weight: Param,
    /// Bias `[out_features]`.
    pub bias: Param,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a layer with Xavier-uniform weights and zero bias.
    pub fn new(in_features: usize, out_features: usize, rng: &mut Rng) -> Self {
        Linear {
            weight: Param::new(
                Init::XavierUniform.sample(Shape::d2(out_features, in_features), rng),
            ),
            bias: Param::new_no_decay(Tensor::zeros(Shape::d1(out_features))),
            cached_input: None,
        }
    }

    /// Builds a layer from explicit tensors (used by surgery).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] on rank/length mismatch.
    pub fn from_parts(weight: Tensor, bias: Tensor) -> Result<Self, NnError> {
        if weight.shape().rank() != 2 {
            return Err(NnError::BadInput {
                what: "Linear::from_parts",
                detail: format!("weight must be [out, in], got {}", weight.shape()),
            });
        }
        if bias.shape() != &Shape::d1(weight.shape().dim(0)) {
            return Err(NnError::BadInput {
                what: "Linear::from_parts",
                detail: format!("bias {} vs {} outputs", bias.shape(), weight.shape().dim(0)),
            });
        }
        Ok(Linear {
            weight: Param::new(weight),
            bias: Param::new_no_decay(bias),
            cached_input: None,
        })
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weight.value.shape().dim(1)
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.value.shape().dim(0)
    }

    /// Forward pass over `[B, in_features]`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] on shape mismatch.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor, NnError> {
        if input.shape().rank() != 2 || input.shape().dim(1) != self.in_features() {
            return Err(NnError::BadInput {
                what: "Linear",
                detail: format!(
                    "expected [B, {}], got {}",
                    self.in_features(),
                    input.shape()
                ),
            });
        }
        let mut y = input.matmul_nt(&self.weight.value)?;
        let out = self.out_features();
        let bias = self.bias.value.data();
        for row in y.data_mut().chunks_mut(out) {
            for (v, &b) in row.iter_mut().zip(bias) {
                *v += b;
            }
        }
        if train {
            self.cached_input = Some(input.clone());
        } else {
            self.cached_input = None;
        }
        Ok(y)
    }

    /// Backward pass; accumulates parameter gradients and returns the
    /// input gradient.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoForwardCache`] without a training forward, or
    /// shape errors on an inconsistent `grad_out`.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let input = self
            .cached_input
            .take()
            .ok_or(NnError::NoForwardCache { layer: "Linear" })?;
        let batch = input.shape().dim(0);
        let (out, inf) = (self.out_features(), self.in_features());
        if grad_out.shape() != &Shape::d2(batch, out) {
            return Err(NnError::BadInput {
                what: "Linear::backward",
                detail: format!("grad shape {} != [{batch}, {out}]", grad_out.shape()),
            });
        }
        // dW = dYᵀ · X, accumulated straight into the gradient buffer.
        gemm_ex(
            self.weight.grad.data_mut(),
            grad_out.data(),
            input.data(),
            out,
            batch,
            inf,
            true,
            false,
            true,
        );
        // db += Σ_batch dY
        let bgrad = self.bias.grad.data_mut();
        for row in grad_out.data().chunks(out) {
            for (g, &d) in bgrad.iter_mut().zip(row) {
                *g += d;
            }
        }
        // dX = dY · W
        Ok(grad_out.matmul(&self.weight.value)?)
    }

    /// Passes the layer's parameters to `f` (weight first, then bias).
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_matches_manual() {
        let mut rng = Rng::seed_from(0);
        let mut lin = Linear::new(3, 2, &mut rng);
        lin.weight.value =
            Tensor::from_vec(Shape::d2(2, 3), vec![1.0, 0.0, -1.0, 0.5, 0.5, 0.5]).unwrap();
        lin.bias.value = Tensor::from_vec(Shape::d1(2), vec![1.0, -1.0]).unwrap();
        let x = Tensor::from_vec(Shape::d2(1, 3), vec![2.0, 4.0, 6.0]).unwrap();
        let y = lin.forward(&x, false).unwrap();
        assert_eq!(y.data(), &[2.0 - 6.0 + 1.0, 1.0 + 2.0 + 3.0 - 1.0]);
    }

    #[test]
    fn gradient_check() {
        let mut rng = Rng::seed_from(1);
        let mut lin = Linear::new(4, 3, &mut rng);
        let x = Tensor::randn(Shape::d2(5, 4), &mut rng);
        let y = lin.forward(&x, true).unwrap();
        let dy = Tensor::ones(y.shape().clone());
        let dx = lin.backward(&dy).unwrap();
        let eps = 1e-2;
        for probe in [0usize, 7, 19] {
            let mut xp = x.clone();
            xp.data_mut()[probe] += eps;
            let mut xm = x.clone();
            xm.data_mut()[probe] -= eps;
            let fp = lin.forward(&xp, false).unwrap().sum();
            let fm = lin.forward(&xm, false).unwrap().sum();
            let numeric = (fp - fm) / (2.0 * eps);
            assert!((numeric - dx.data()[probe]).abs() < 1e-2 * (1.0 + numeric.abs()));
        }
        for probe in [0usize, 5, 11] {
            let orig = lin.weight.value.data()[probe];
            lin.weight.value.data_mut()[probe] = orig + eps;
            let fp = lin.forward(&x, false).unwrap().sum();
            lin.weight.value.data_mut()[probe] = orig - eps;
            let fm = lin.forward(&x, false).unwrap().sum();
            lin.weight.value.data_mut()[probe] = orig;
            let numeric = (fp - fm) / (2.0 * eps);
            assert!((numeric - lin.weight.grad.data()[probe]).abs() < 1e-2 * (1.0 + numeric.abs()));
        }
        // Bias gradient over a batch of 5 with unit output grads is 5.
        assert!(lin.bias.grad.data().iter().all(|&g| (g - 5.0).abs() < 1e-4));
    }

    #[test]
    fn rejects_wrong_width() {
        let mut rng = Rng::seed_from(2);
        let mut lin = Linear::new(4, 3, &mut rng);
        let x = Tensor::zeros(Shape::d2(2, 5));
        assert!(lin.forward(&x, false).is_err());
    }

    #[test]
    fn from_parts_validates() {
        assert!(
            Linear::from_parts(Tensor::zeros(Shape::d2(2, 3)), Tensor::zeros(Shape::d1(2))).is_ok()
        );
        assert!(
            Linear::from_parts(Tensor::zeros(Shape::d2(2, 3)), Tensor::zeros(Shape::d1(3)))
                .is_err()
        );
        assert!(
            Linear::from_parts(Tensor::zeros(Shape::d1(6)), Tensor::zeros(Shape::d1(2))).is_err()
        );
    }
}
