//! Batch normalization over NCHW activations.

use hs_tensor::{Shape, Tensor};

use crate::error::NnError;
use crate::param::Param;

/// Per-channel batch normalization for `[B, C, H, W]` activations.
///
/// Training mode normalizes with batch statistics and updates exponential
/// running averages; evaluation mode uses the running averages, so a
/// pruned-and-frozen model is deterministic.
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    /// Scale (`γ`), `[C]`.
    pub gamma: Param,
    /// Shift (`β`), `[C]`.
    pub beta: Param,
    /// Running mean, `[C]` (not trained).
    pub running_mean: Tensor,
    /// Running variance, `[C]` (not trained).
    pub running_var: Tensor,
    momentum: f32,
    eps: f32,
    cache: Option<BnCache>,
}

#[derive(Debug, Clone)]
struct BnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
    batch_shape: Shape,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer with `γ = 1`, `β = 0`.
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            gamma: Param::new_no_decay(Tensor::ones(Shape::d1(channels))),
            beta: Param::new_no_decay(Tensor::zeros(Shape::d1(channels))),
            running_mean: Tensor::zeros(Shape::d1(channels)),
            running_var: Tensor::ones(Shape::d1(channels)),
            momentum: 0.1,
            eps: 1e-5,
            cache: None,
        }
    }

    /// Builds a layer from explicit per-channel tensors (used by surgery).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] if the four tensors are not all rank-1
    /// of the same length.
    pub fn from_parts(
        gamma: Tensor,
        beta: Tensor,
        running_mean: Tensor,
        running_var: Tensor,
    ) -> Result<Self, NnError> {
        let c = gamma.len();
        let want = Shape::d1(c);
        for (name, t) in [
            ("gamma", &gamma),
            ("beta", &beta),
            ("running_mean", &running_mean),
            ("running_var", &running_var),
        ] {
            if t.shape() != &want {
                return Err(NnError::BadInput {
                    what: "BatchNorm2d::from_parts",
                    detail: format!("{name} has shape {}, expected {want}", t.shape()),
                });
            }
        }
        Ok(BatchNorm2d {
            gamma: Param::new_no_decay(gamma),
            beta: Param::new_no_decay(beta),
            running_mean,
            running_var,
            momentum: 0.1,
            eps: 1e-5,
            cache: None,
        })
    }

    /// Channel count.
    pub fn channels(&self) -> usize {
        self.gamma.value.len()
    }

    /// Forward pass.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] if the input is not `[B, C, H, W]`
    /// with the layer's channel count.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor, NnError> {
        let shape = input.shape();
        if shape.rank() != 4 || shape.dim(1) != self.channels() {
            return Err(NnError::BadInput {
                what: "BatchNorm2d",
                detail: format!("expected [B, {}, H, W], got {shape}", self.channels()),
            });
        }
        let (b, c, h, w) = (shape.dim(0), shape.dim(1), shape.dim(2), shape.dim(3));
        let per_channel = b * h * w;
        let plane = h * w;
        let mut out = input.clone();
        let mut x_hat = Tensor::zeros(shape.clone());
        let mut inv_stds = vec![0.0f32; c];
        #[allow(clippy::needless_range_loop)] // `ch` also derives plane offsets
        for ch in 0..c {
            let (mean, var) = if train {
                let mut sum = 0.0f64;
                let mut sq = 0.0f64;
                for bi in 0..b {
                    let base = (bi * c + ch) * plane;
                    for &v in &input.data()[base..base + plane] {
                        sum += v as f64;
                        sq += (v as f64) * (v as f64);
                    }
                }
                let mean = (sum / per_channel as f64) as f32;
                let var =
                    ((sq / per_channel as f64) - (mean as f64) * (mean as f64)).max(0.0) as f32;
                // Exponential running averages (unbiased variance like
                // PyTorch uses n/(n-1) but the difference is negligible at
                // our batch sizes; we keep the biased batch variance).
                let m = self.momentum;
                self.running_mean.data_mut()[ch] =
                    (1.0 - m) * self.running_mean.data()[ch] + m * mean;
                self.running_var.data_mut()[ch] = (1.0 - m) * self.running_var.data()[ch] + m * var;
                (mean, var)
            } else {
                (self.running_mean.data()[ch], self.running_var.data()[ch])
            };
            let inv_std = 1.0 / (var + self.eps).sqrt();
            inv_stds[ch] = inv_std;
            let g = self.gamma.value.data()[ch];
            let be = self.beta.value.data()[ch];
            for bi in 0..b {
                let base = (bi * c + ch) * plane;
                for i in base..base + plane {
                    let xh = (input.data()[i] - mean) * inv_std;
                    x_hat.data_mut()[i] = xh;
                    out.data_mut()[i] = g * xh + be;
                }
            }
        }
        if train {
            self.cache = Some(BnCache {
                x_hat,
                inv_std: inv_stds,
                batch_shape: shape.clone(),
            });
        } else {
            self.cache = None;
        }
        Ok(out)
    }

    /// Backward pass.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoForwardCache`] without a training forward, or
    /// [`NnError::BadInput`] on a shape mismatch.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let cache = self.cache.take().ok_or(NnError::NoForwardCache {
            layer: "BatchNorm2d",
        })?;
        if grad_out.shape() != &cache.batch_shape {
            return Err(NnError::BadInput {
                what: "BatchNorm2d::backward",
                detail: format!("grad shape {} != {}", grad_out.shape(), cache.batch_shape),
            });
        }
        let shape = &cache.batch_shape;
        let (b, c, h, w) = (shape.dim(0), shape.dim(1), shape.dim(2), shape.dim(3));
        let plane = h * w;
        let n = (b * plane) as f32;
        let mut dx = Tensor::zeros(shape.clone());
        for ch in 0..c {
            // Accumulate dγ, dβ, and the two reduction terms of the
            // standard batch-norm backward formula.
            let mut dgamma = 0.0f64;
            let mut dbeta = 0.0f64;
            for bi in 0..b {
                let base = (bi * c + ch) * plane;
                for i in base..base + plane {
                    let go = grad_out.data()[i] as f64;
                    dgamma += go * cache.x_hat.data()[i] as f64;
                    dbeta += go;
                }
            }
            self.gamma.grad.data_mut()[ch] += dgamma as f32;
            self.beta.grad.data_mut()[ch] += dbeta as f32;
            let g = self.gamma.value.data()[ch];
            let inv_std = cache.inv_std[ch];
            let mean_dy = dbeta as f32 / n;
            let mean_dy_xhat = dgamma as f32 / n;
            for bi in 0..b {
                let base = (bi * c + ch) * plane;
                for i in base..base + plane {
                    let xh = cache.x_hat.data()[i];
                    let go = grad_out.data()[i];
                    dx.data_mut()[i] = g * inv_std * (go - mean_dy - xh * mean_dy_xhat);
                }
            }
        }
        Ok(dx)
    }

    /// Passes `γ` then `β` to `f`.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs_tensor::Rng;

    #[test]
    fn training_output_is_normalized() {
        let mut rng = Rng::seed_from(0);
        let mut bn = BatchNorm2d::new(3);
        let x = {
            let mut t = Tensor::randn(Shape::d4(4, 3, 5, 5), &mut rng);
            t.map_inplace(|v| v * 3.0 + 2.0);
            t
        };
        let y = bn.forward(&x, true).unwrap();
        // Per-channel mean ≈ 0, var ≈ 1.
        for ch in 0..3 {
            let mut vals = Vec::new();
            for b in 0..4 {
                for h in 0..5 {
                    for w in 0..5 {
                        vals.push(y.at(&[b, ch, h, w]));
                    }
                }
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 = vals.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut rng = Rng::seed_from(1);
        let mut bn = BatchNorm2d::new(2);
        let x = Tensor::randn(Shape::d4(8, 2, 4, 4), &mut rng);
        // Train a few times to move running stats.
        for _ in 0..20 {
            bn.forward(&x, true).unwrap();
        }
        let y_eval = bn.forward(&x, false).unwrap();
        // Running stats converge towards batch stats, so eval output is
        // close to normalized too — but crucially it must be deterministic.
        let y_eval2 = bn.forward(&x, false).unwrap();
        assert_eq!(y_eval, y_eval2);
    }

    #[test]
    fn gradient_check() {
        let mut rng = Rng::seed_from(2);
        let mut bn = BatchNorm2d::new(2);
        bn.gamma.value = Tensor::from_vec(Shape::d1(2), vec![1.5, 0.5]).unwrap();
        bn.beta.value = Tensor::from_vec(Shape::d1(2), vec![0.2, -0.3]).unwrap();
        let x = Tensor::randn(Shape::d4(3, 2, 3, 3), &mut rng);
        // Weighted-sum objective so the gradient isn't trivially zero
        // (sum of a normalized batch is ~constant).
        let wobj = Tensor::randn(Shape::d4(3, 2, 3, 3), &mut rng);
        let y = bn.forward(&x, true).unwrap();
        let _ = y;
        let dx = bn.backward(&wobj).unwrap();
        let eps = 1e-2;
        let objective = |bn: &mut BatchNorm2d, x: &Tensor| -> f32 {
            let y = bn.forward(x, true).unwrap();
            bn.cache = None; // keep the layer re-usable
            y.data().iter().zip(wobj.data()).map(|(a, b)| a * b).sum()
        };
        // Freeze running stats so repeated forwards don't drift.
        let saved_mean = bn.running_mean.clone();
        let saved_var = bn.running_var.clone();
        for probe in [0usize, 17, 53] {
            let mut xp = x.clone();
            xp.data_mut()[probe] += eps;
            let mut xm = x.clone();
            xm.data_mut()[probe] -= eps;
            bn.running_mean = saved_mean.clone();
            bn.running_var = saved_var.clone();
            let fp = objective(&mut bn, &xp);
            let fm = objective(&mut bn, &xm);
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (numeric - dx.data()[probe]).abs() < 3e-2 * (1.0 + numeric.abs()),
                "dx at {probe}: numeric {numeric}, analytic {}",
                dx.data()[probe]
            );
        }
    }

    #[test]
    fn rejects_wrong_channels() {
        let mut bn = BatchNorm2d::new(4);
        let x = Tensor::zeros(Shape::d4(1, 3, 2, 2));
        assert!(bn.forward(&x, true).is_err());
    }

    #[test]
    fn from_parts_validates_lengths() {
        let ok = BatchNorm2d::from_parts(
            Tensor::ones(Shape::d1(3)),
            Tensor::zeros(Shape::d1(3)),
            Tensor::zeros(Shape::d1(3)),
            Tensor::ones(Shape::d1(3)),
        );
        assert!(ok.is_ok());
        let bad = BatchNorm2d::from_parts(
            Tensor::ones(Shape::d1(3)),
            Tensor::zeros(Shape::d1(2)),
            Tensor::zeros(Shape::d1(3)),
            Tensor::ones(Shape::d1(3)),
        );
        assert!(bad.is_err());
    }
}
