//! Spatial pooling layers.

use hs_tensor::{Shape, Tensor};

use crate::error::NnError;

/// Non-overlapping max pooling over `[B, C, H, W]`.
///
/// H and W must be divisible by the window size (the VGG/ResNet
/// configurations in this repository always satisfy that).
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    window: usize,
    cache: Option<PoolCache>,
}

#[derive(Debug, Clone)]
struct PoolCache {
    argmax: Vec<usize>,
    in_shape: Shape,
    out_shape: Shape,
}

impl MaxPool2d {
    /// Creates a max-pool layer with the given square window (also used as
    /// the stride).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "pool window must be positive");
        MaxPool2d {
            window,
            cache: None,
        }
    }

    /// The pooling window / stride.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Forward pass.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] if the input is not rank 4 or not
    /// divisible by the window.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor, NnError> {
        let shape = input.shape();
        if shape.rank() != 4
            || !shape.dim(2).is_multiple_of(self.window)
            || !shape.dim(3).is_multiple_of(self.window)
        {
            return Err(NnError::BadInput {
                what: "MaxPool2d",
                detail: format!("input {shape} not divisible by window {}", self.window),
            });
        }
        let (b, c, h, w) = (shape.dim(0), shape.dim(1), shape.dim(2), shape.dim(3));
        let (oh, ow) = (h / self.window, w / self.window);
        let mut out = vec![f32::NEG_INFINITY; b * c * oh * ow];
        let mut argmax = vec![0usize; b * c * oh * ow];
        let data = input.data();
        for bc in 0..b * c {
            let in_base = bc * h * w;
            let out_base = bc * oh * ow;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0;
                    for dy in 0..self.window {
                        let iy = oy * self.window + dy;
                        for dx in 0..self.window {
                            let ix = ox * self.window + dx;
                            let idx = in_base + iy * w + ix;
                            if data[idx] > best {
                                best = data[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    out[out_base + oy * ow + ox] = best;
                    argmax[out_base + oy * ow + ox] = best_idx;
                }
            }
        }
        let out_shape = Shape::d4(b, c, oh, ow);
        if train {
            self.cache = Some(PoolCache {
                argmax,
                in_shape: shape.clone(),
                out_shape: out_shape.clone(),
            });
        } else {
            self.cache = None;
        }
        Ok(Tensor::from_vec(out_shape, out)?)
    }

    /// Backward pass: routes each gradient to the input position that won
    /// the max.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoForwardCache`] without a training forward, or
    /// [`NnError::BadInput`] on shape mismatch.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let cache = self
            .cache
            .take()
            .ok_or(NnError::NoForwardCache { layer: "MaxPool2d" })?;
        if grad_out.shape() != &cache.out_shape {
            return Err(NnError::BadInput {
                what: "MaxPool2d::backward",
                detail: format!("grad shape {} != {}", grad_out.shape(), cache.out_shape),
            });
        }
        let mut dx = Tensor::zeros(cache.in_shape);
        for (i, &g) in grad_out.data().iter().enumerate() {
            dx.data_mut()[cache.argmax[i]] += g;
        }
        Ok(dx)
    }
}

/// Non-overlapping window average pooling over `[B, C, H, W]`
/// (LeNet-style subsampling).
#[derive(Debug, Clone)]
pub struct AvgPool2d {
    window: usize,
    in_shape: Option<Shape>,
}

impl AvgPool2d {
    /// Creates an average-pool layer with the given square window (also
    /// used as the stride).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "pool window must be positive");
        AvgPool2d {
            window,
            in_shape: None,
        }
    }

    /// The pooling window / stride.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Forward pass.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] if the input is not rank 4 or not
    /// divisible by the window.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor, NnError> {
        let shape = input.shape();
        if shape.rank() != 4
            || !shape.dim(2).is_multiple_of(self.window)
            || !shape.dim(3).is_multiple_of(self.window)
        {
            return Err(NnError::BadInput {
                what: "AvgPool2d",
                detail: format!("input {shape} not divisible by window {}", self.window),
            });
        }
        let (b, c, h, w) = (shape.dim(0), shape.dim(1), shape.dim(2), shape.dim(3));
        let (oh, ow) = (h / self.window, w / self.window);
        let norm = 1.0 / (self.window * self.window) as f32;
        let mut out = vec![0.0f32; b * c * oh * ow];
        let data = input.data();
        for bc in 0..b * c {
            let in_base = bc * h * w;
            let out_base = bc * oh * ow;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0f32;
                    for dy in 0..self.window {
                        let iy = oy * self.window + dy;
                        for dx in 0..self.window {
                            acc += data[in_base + iy * w + ox * self.window + dx];
                        }
                    }
                    out[out_base + oy * ow + ox] = acc * norm;
                }
            }
        }
        if train {
            self.in_shape = Some(shape.clone());
        } else {
            self.in_shape = None;
        }
        Ok(Tensor::from_vec(Shape::d4(b, c, oh, ow), out)?)
    }

    /// Backward pass: spreads each gradient uniformly over its window.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoForwardCache`] without a training forward, or
    /// [`NnError::BadInput`] on shape mismatch.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let in_shape = self
            .in_shape
            .take()
            .ok_or(NnError::NoForwardCache { layer: "AvgPool2d" })?;
        let (b, c, h, w) = (
            in_shape.dim(0),
            in_shape.dim(1),
            in_shape.dim(2),
            in_shape.dim(3),
        );
        let (oh, ow) = (h / self.window, w / self.window);
        if grad_out.shape() != &Shape::d4(b, c, oh, ow) {
            return Err(NnError::BadInput {
                what: "AvgPool2d::backward",
                detail: format!("grad shape {} != [{b}, {c}, {oh}, {ow}]", grad_out.shape()),
            });
        }
        let norm = 1.0 / (self.window * self.window) as f32;
        let mut dx = Tensor::zeros(in_shape);
        let g = grad_out.data();
        let data = dx.data_mut();
        for bc in 0..b * c {
            let in_base = bc * h * w;
            let out_base = bc * oh * ow;
            for oy in 0..oh {
                for ox in 0..ow {
                    let share = g[out_base + oy * ow + ox] * norm;
                    for dy in 0..self.window {
                        let iy = oy * self.window + dy;
                        for dx_off in 0..self.window {
                            data[in_base + iy * w + ox * self.window + dx_off] += share;
                        }
                    }
                }
            }
        }
        Ok(dx)
    }
}

/// Global average pooling: `[B, C, H, W] → [B, C]`.
///
/// Used as the feature→classifier bridge in all models here so that
/// pruning the last convolution's feature maps maps one-to-one onto the
/// classifier's input features.
#[derive(Debug, Clone, Default)]
pub struct GlobalAvgPool {
    in_shape: Option<Shape>,
}

impl GlobalAvgPool {
    /// Creates a global average pooling layer.
    pub fn new() -> Self {
        GlobalAvgPool { in_shape: None }
    }

    /// Forward pass.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] if the input is not rank 4.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor, NnError> {
        let shape = input.shape();
        if shape.rank() != 4 {
            return Err(NnError::BadInput {
                what: "GlobalAvgPool",
                detail: format!("expected [B, C, H, W], got {shape}"),
            });
        }
        let (b, c, h, w) = (shape.dim(0), shape.dim(1), shape.dim(2), shape.dim(3));
        let plane = h * w;
        let mut out = vec![0.0f32; b * c];
        for (bc, o) in out.iter_mut().enumerate() {
            let base = bc * plane;
            *o = input.data()[base..base + plane].iter().sum::<f32>() / plane as f32;
        }
        if train {
            self.in_shape = Some(shape.clone());
        } else {
            self.in_shape = None;
        }
        Ok(Tensor::from_vec(Shape::d2(b, c), out)?)
    }

    /// Backward pass: distributes each gradient uniformly over the plane.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoForwardCache`] without a training forward, or
    /// [`NnError::BadInput`] on shape mismatch.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let in_shape = self.in_shape.take().ok_or(NnError::NoForwardCache {
            layer: "GlobalAvgPool",
        })?;
        let (b, c, h, w) = (
            in_shape.dim(0),
            in_shape.dim(1),
            in_shape.dim(2),
            in_shape.dim(3),
        );
        if grad_out.shape() != &Shape::d2(b, c) {
            return Err(NnError::BadInput {
                what: "GlobalAvgPool::backward",
                detail: format!("grad shape {} != [{b}, {c}]", grad_out.shape()),
            });
        }
        let plane = (h * w) as f32;
        let mut dx = Tensor::zeros(in_shape);
        for (bc, &g) in grad_out.data().iter().enumerate() {
            let share = g / plane;
            let base = bc * (h * w);
            for v in &mut dx.data_mut()[base..base + h * w] {
                *v = share;
            }
        }
        Ok(dx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs_tensor::Rng;

    #[test]
    fn maxpool_forward_manual() {
        let mut pool = MaxPool2d::new(2);
        let x = Tensor::from_fn(Shape::d4(1, 1, 4, 4), |i| (i[2] * 4 + i[3]) as f32);
        let y = pool.forward(&x, false).unwrap();
        assert_eq!(y.shape(), &Shape::d4(1, 1, 2, 2));
        assert_eq!(y.data(), &[5.0, 7.0, 13.0, 15.0]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let mut pool = MaxPool2d::new(2);
        let x = Tensor::from_fn(Shape::d4(1, 1, 2, 2), |i| (i[2] * 2 + i[3]) as f32);
        pool.forward(&x, true).unwrap();
        let g = Tensor::from_vec(Shape::d4(1, 1, 1, 1), vec![5.0]).unwrap();
        let dx = pool.backward(&g).unwrap();
        assert_eq!(dx.data(), &[0.0, 0.0, 0.0, 5.0]);
    }

    #[test]
    fn maxpool_rejects_indivisible() {
        let mut pool = MaxPool2d::new(2);
        let x = Tensor::zeros(Shape::d4(1, 1, 5, 4));
        assert!(pool.forward(&x, false).is_err());
    }

    #[test]
    fn avgpool_forward_manual() {
        let mut pool = AvgPool2d::new(2);
        let x = Tensor::from_fn(Shape::d4(1, 1, 4, 4), |i| (i[2] * 4 + i[3]) as f32);
        let y = pool.forward(&x, false).unwrap();
        assert_eq!(y.shape(), &Shape::d4(1, 1, 2, 2));
        // Window means: (0+1+4+5)/4 = 2.5, etc.
        assert_eq!(y.data(), &[2.5, 4.5, 10.5, 12.5]);
    }

    #[test]
    fn avgpool_backward_spreads_uniformly() {
        let mut pool = AvgPool2d::new(2);
        let x = Tensor::zeros(Shape::d4(1, 1, 2, 2));
        pool.forward(&x, true).unwrap();
        let g = Tensor::from_vec(Shape::d4(1, 1, 1, 1), vec![8.0]).unwrap();
        let dx = pool.backward(&g).unwrap();
        assert_eq!(dx.data(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn avgpool_gradient_check() {
        let mut rng = Rng::seed_from(2);
        let mut pool = AvgPool2d::new(2);
        let x = Tensor::randn(Shape::d4(1, 2, 4, 4), &mut rng);
        let wobj = Tensor::randn(Shape::d4(1, 2, 2, 2), &mut rng);
        pool.forward(&x, true).unwrap();
        let dx = pool.backward(&wobj).unwrap();
        let eps = 1e-2;
        let obj = |pool: &mut AvgPool2d, x: &Tensor| -> f32 {
            pool.forward(x, false)
                .unwrap()
                .data()
                .iter()
                .zip(wobj.data())
                .map(|(a, b)| a * b)
                .sum()
        };
        for probe in [0usize, 15, 31] {
            let mut xp = x.clone();
            xp.data_mut()[probe] += eps;
            let mut xm = x.clone();
            xm.data_mut()[probe] -= eps;
            let numeric = (obj(&mut pool, &xp) - obj(&mut pool, &xm)) / (2.0 * eps);
            assert!((numeric - dx.data()[probe]).abs() < 1e-3);
        }
    }

    #[test]
    fn avgpool_rejects_indivisible() {
        let mut pool = AvgPool2d::new(3);
        let x = Tensor::zeros(Shape::d4(1, 1, 4, 4));
        assert!(pool.forward(&x, false).is_err());
    }

    #[test]
    fn gap_averages_planes() {
        let mut gap = GlobalAvgPool::new();
        let x = Tensor::from_fn(Shape::d4(1, 2, 2, 2), |i| if i[1] == 0 { 1.0 } else { 3.0 });
        let y = gap.forward(&x, false).unwrap();
        assert_eq!(y.shape(), &Shape::d2(1, 2));
        assert_eq!(y.data(), &[1.0, 3.0]);
    }

    #[test]
    fn gap_backward_is_uniform() {
        let mut gap = GlobalAvgPool::new();
        let mut rng = Rng::seed_from(0);
        let x = Tensor::randn(Shape::d4(2, 3, 4, 4), &mut rng);
        gap.forward(&x, true).unwrap();
        let g = Tensor::ones(Shape::d2(2, 3));
        let dx = gap.backward(&g).unwrap();
        assert!(dx.data().iter().all(|&v| (v - 1.0 / 16.0).abs() < 1e-7));
    }

    #[test]
    fn gap_gradient_check() {
        let mut gap = GlobalAvgPool::new();
        let mut rng = Rng::seed_from(1);
        let x = Tensor::randn(Shape::d4(1, 2, 3, 3), &mut rng);
        gap.forward(&x, true).unwrap();
        let w = Tensor::randn(Shape::d2(1, 2), &mut rng);
        let dx = gap.backward(&w).unwrap();
        let eps = 1e-2;
        let obj = |gap: &mut GlobalAvgPool, x: &Tensor| -> f32 {
            gap.forward(x, false)
                .unwrap()
                .data()
                .iter()
                .zip(w.data())
                .map(|(a, b)| a * b)
                .sum()
        };
        for probe in [0usize, 9, 17] {
            let mut xp = x.clone();
            xp.data_mut()[probe] += eps;
            let mut xm = x.clone();
            xm.data_mut()[probe] -= eps;
            let numeric = (obj(&mut gap, &xp) - obj(&mut gap, &xm)) / (2.0 * eps);
            assert!((numeric - dx.data()[probe]).abs() < 1e-3);
        }
    }
}
