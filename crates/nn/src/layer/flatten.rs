//! Reshape bridge between convolutional and fully connected stages.

use hs_tensor::{Shape, Tensor};

use crate::error::NnError;

/// Flattens `[B, C, H, W]` (or any rank ≥ 2 tensor) to `[B, F]`.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    in_shape: Option<Shape>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten { in_shape: None }
    }

    /// Forward pass.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] if the input has rank < 2.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor, NnError> {
        let shape = input.shape();
        if shape.rank() < 2 {
            return Err(NnError::BadInput {
                what: "Flatten",
                detail: format!("expected rank >= 2, got {shape}"),
            });
        }
        let b = shape.dim(0);
        let f = shape.len() / b.max(1);
        if train {
            self.in_shape = Some(shape.clone());
        } else {
            self.in_shape = None;
        }
        Ok(input.clone().reshape(Shape::d2(b, f))?)
    }

    /// Backward pass: restores the cached input shape.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoForwardCache`] without a training forward.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let in_shape = self
            .in_shape
            .take()
            .ok_or(NnError::NoForwardCache { layer: "Flatten" })?;
        Ok(grad_out.clone().reshape(in_shape)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut fl = Flatten::new();
        let x = Tensor::from_fn(Shape::d4(2, 3, 2, 2), |i| i[3] as f32);
        let y = fl.forward(&x, true).unwrap();
        assert_eq!(y.shape(), &Shape::d2(2, 12));
        let dx = fl.backward(&y).unwrap();
        assert_eq!(dx.shape(), x.shape());
        assert_eq!(dx.data(), x.data());
    }

    #[test]
    fn rejects_rank1() {
        let mut fl = Flatten::new();
        assert!(fl.forward(&Tensor::zeros(Shape::d1(4)), false).is_err());
    }
}
