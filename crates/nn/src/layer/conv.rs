//! 2-D convolution, the layer HeadStart prunes.

use hs_tensor::workspace::with_scratch;
use hs_tensor::{col2im_into, gemm_ex, im2col_into, Conv2dGeometry, Init, Rng, Shape, Tensor};

use crate::error::NnError;
use crate::param::Param;

/// 2-D convolution with square kernels, implemented by `im2col` + GEMM.
///
/// The weight layout is `[out_channels, in_channels, k, k]` — axis 0 is the
/// *filter* axis (pruned when this layer's own feature maps are dropped)
/// and axis 1 is the *channel* axis (pruned when the previous layer's
/// feature maps are dropped). This is exactly the `ΔN×C×k×k` /
/// `M×ΔN×k×k` bookkeeping of the paper's Figure 2.
#[derive(Debug, Clone)]
pub struct Conv2d {
    /// Filter bank, `[N, C, k, k]`.
    pub weight: Param,
    /// Per-filter bias, `[N]`.
    pub bias: Param,
    kernel: usize,
    stride: usize,
    padding: usize,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution with Kaiming-normal weights and zero bias.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut Rng,
    ) -> Self {
        let weight =
            Init::KaimingNormal.sample(Shape::d4(out_channels, in_channels, kernel, kernel), rng);
        Conv2d {
            weight: Param::new(weight),
            bias: Param::new_no_decay(Tensor::zeros(Shape::d1(out_channels))),
            kernel,
            stride,
            padding,
            cached_input: None,
        }
    }

    /// Builds a convolution from explicit weight/bias tensors (used by
    /// surgery when shrinking a trained layer).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] if `weight` is not rank 4 or `bias`
    /// does not match the filter count.
    pub fn from_parts(
        weight: Tensor,
        bias: Tensor,
        stride: usize,
        padding: usize,
    ) -> Result<Self, NnError> {
        if weight.shape().rank() != 4 || weight.shape().dim(2) != weight.shape().dim(3) {
            return Err(NnError::BadInput {
                what: "Conv2d::from_parts",
                detail: format!("weight must be [N, C, k, k], got {}", weight.shape()),
            });
        }
        if bias.shape() != &Shape::d1(weight.shape().dim(0)) {
            return Err(NnError::BadInput {
                what: "Conv2d::from_parts",
                detail: format!(
                    "bias {} does not match {} filters",
                    bias.shape(),
                    weight.shape().dim(0)
                ),
            });
        }
        let kernel = weight.shape().dim(2);
        Ok(Conv2d {
            weight: Param::new(weight),
            bias: Param::new_no_decay(bias),
            kernel,
            stride,
            padding,
            cached_input: None,
        })
    }

    /// Number of filters (output channels / feature maps).
    pub fn out_channels(&self) -> usize {
        self.weight.value.shape().dim(0)
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.weight.value.shape().dim(1)
    }

    /// Kernel extent.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Zero padding.
    pub fn padding(&self) -> usize {
        self.padding
    }

    fn geometry(&self, in_h: usize, in_w: usize) -> Conv2dGeometry {
        Conv2dGeometry::new(
            self.in_channels(),
            in_h,
            in_w,
            self.kernel,
            self.stride,
            self.padding,
        )
    }

    /// Forward pass over a `[B, C, H, W]` batch.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] if the input is not rank 4 or its
    /// channel count differs from the filters'.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor, NnError> {
        let shape = input.shape();
        if shape.rank() != 4 || shape.dim(1) != self.in_channels() {
            return Err(NnError::BadInput {
                what: "Conv2d",
                detail: format!("expected [B, {}, H, W], got {}", self.in_channels(), shape),
            });
        }
        let (batch, _, in_h, in_w) = (shape.dim(0), shape.dim(1), shape.dim(2), shape.dim(3));
        let geom = self.geometry(in_h, in_w);
        let (oh, ow) = (geom.out_h(), geom.out_w());
        let n = self.out_channels();
        let positions = oh * ow;
        // The [N, C, k, k] filter bank is already the [N, C·k·k] GEMM
        // operand row-major — use it in place, no clone/reshape.
        let w2d = self.weight.value.data();
        let col_rows = geom.col_rows();
        let sample_len = geom.input_len();
        let mut out = vec![0.0f32; batch * n * positions];
        for b in 0..batch {
            let sample = &input.data()[b * sample_len..(b + 1) * sample_len];
            let y = &mut out[b * n * positions..(b + 1) * n * positions];
            // Lower the sample into workspace scratch: after warm-up this
            // whole loop performs zero heap allocations.
            with_scratch(geom.col_len(), |col| {
                im2col_into(sample, col, &geom);
                gemm_ex(y, w2d, col, n, col_rows, positions, false, false, false);
            });
            // Broadcast bias over spatial positions.
            for (f, &bias) in self.bias.value.data().iter().enumerate() {
                if bias != 0.0 {
                    for v in &mut y[f * positions..(f + 1) * positions] {
                        *v += bias;
                    }
                }
            }
        }
        if train {
            self.cached_input = Some(input.clone());
        } else {
            self.cached_input = None;
        }
        Ok(Tensor::from_vec(Shape::d4(batch, n, oh, ow), out)?)
    }

    /// Backward pass: accumulates `weight.grad` / `bias.grad` and returns
    /// the input gradient.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoForwardCache`] if called before a training
    /// forward pass, or a shape error if `grad_out` is inconsistent.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let input = self
            .cached_input
            .take()
            .ok_or(NnError::NoForwardCache { layer: "Conv2d" })?;
        let in_shape = input.shape().clone();
        let (batch, in_h, in_w) = (in_shape.dim(0), in_shape.dim(2), in_shape.dim(3));
        let geom = self.geometry(in_h, in_w);
        let (oh, ow) = (geom.out_h(), geom.out_w());
        let n = self.out_channels();
        let want = Shape::d4(batch, n, oh, ow);
        if grad_out.shape() != &want {
            return Err(NnError::BadInput {
                what: "Conv2d::backward",
                detail: format!("grad shape {} != {want}", grad_out.shape()),
            });
        }
        let positions = oh * ow;
        let col_rows = geom.col_rows();
        let sample_len = geom.input_len();
        // Split-borrow the parameters so the weight value (GEMM operand)
        // and the weight gradient (GEMM accumulator) can be used together.
        let Conv2d { weight, bias, .. } = self;
        let w2d = weight.value.data();
        // [N, C, k, k] gradient flat == [N, C·k·k]: accumulate GEMM output
        // directly into the gradient buffer, no temporary + axpy.
        let wgrad = weight.grad.data_mut();
        let bgrad = bias.grad.data_mut();
        let mut dx = vec![0.0f32; input.len()];
        for b in 0..batch {
            let sample = &input.data()[b * sample_len..(b + 1) * sample_len];
            let dy = &grad_out.data()[b * n * positions..(b + 1) * n * positions];
            let dsample = &mut dx[b * sample_len..(b + 1) * sample_len];
            with_scratch(geom.col_len(), |col| {
                // Recomputed im2col: trades FLOPs for activation memory.
                im2col_into(sample, col, &geom);
                // dW += dY · colᵀ
                gemm_ex(wgrad, dy, col, n, positions, col_rows, false, true, true);
                with_scratch(geom.col_len(), |dcol| {
                    // dX = col2im(Wᵀ · dY)
                    gemm_ex(dcol, w2d, dy, col_rows, n, positions, true, false, false);
                    col2im_into(dcol, dsample, &geom, false);
                });
            });
            // db += Σ_positions dY
            for (f, g) in bgrad.iter_mut().enumerate() {
                *g += dy[f * positions..(f + 1) * positions]
                    .iter()
                    .map(|&v| v as f64)
                    .sum::<f64>() as f32;
            }
        }
        Ok(Tensor::from_vec(in_shape, dx)?)
    }

    /// Passes the layer's parameters to `f` (weight first, then bias).
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff_check(conv: &mut Conv2d, x: &Tensor, eps: f32, tol: f32) {
        // Scalar objective: sum of outputs. Analytic gradients via
        // backward(ones) vs numeric central differences.
        let y = conv.forward(x, true).unwrap();
        let ones = Tensor::ones(y.shape().clone());
        let dx = conv.backward(&ones).unwrap();

        // Check input gradient at a few positions.
        for probe in [0usize, x.len() / 2, x.len() - 1] {
            let mut xp = x.clone();
            xp.data_mut()[probe] += eps;
            let mut xm = x.clone();
            xm.data_mut()[probe] -= eps;
            let fp = conv.forward(&xp, false).unwrap().sum();
            let fm = conv.forward(&xm, false).unwrap().sum();
            let numeric = (fp - fm) / (2.0 * eps);
            let analytic = dx.data()[probe];
            assert!(
                (numeric - analytic).abs() < tol * (1.0 + numeric.abs()),
                "input grad at {probe}: numeric {numeric} analytic {analytic}"
            );
        }

        // Check weight gradient at a few positions.
        let wlen = conv.weight.value.len();
        for probe in [0usize, wlen / 2, wlen - 1] {
            let orig = conv.weight.value.data()[probe];
            conv.weight.value.data_mut()[probe] = orig + eps;
            let fp = conv.forward(x, false).unwrap().sum();
            conv.weight.value.data_mut()[probe] = orig - eps;
            let fm = conv.forward(x, false).unwrap().sum();
            conv.weight.value.data_mut()[probe] = orig;
            let numeric = (fp - fm) / (2.0 * eps);
            let analytic = conv.weight.grad.data()[probe];
            assert!(
                (numeric - analytic).abs() < tol * (1.0 + numeric.abs()),
                "weight grad at {probe}: numeric {numeric} analytic {analytic}"
            );
        }
    }

    #[test]
    fn forward_shape_same_padding() {
        let mut rng = Rng::seed_from(0);
        let mut conv = Conv2d::new(3, 8, 3, 1, 1, &mut rng);
        let x = Tensor::randn(Shape::d4(2, 3, 6, 6), &mut rng);
        let y = conv.forward(&x, false).unwrap();
        assert_eq!(y.shape(), &Shape::d4(2, 8, 6, 6));
    }

    #[test]
    fn forward_rejects_channel_mismatch() {
        let mut rng = Rng::seed_from(1);
        let mut conv = Conv2d::new(3, 8, 3, 1, 1, &mut rng);
        let x = Tensor::randn(Shape::d4(1, 4, 6, 6), &mut rng);
        assert!(conv.forward(&x, false).is_err());
    }

    #[test]
    fn kernel1_conv_is_channel_mix() {
        // A 1x1 convolution is a per-pixel linear map across channels.
        let mut rng = Rng::seed_from(2);
        let mut conv = Conv2d::new(2, 1, 1, 1, 0, &mut rng);
        conv.weight.value = Tensor::from_vec(Shape::d4(1, 2, 1, 1), vec![2.0, -1.0]).unwrap();
        conv.bias.value = Tensor::from_vec(Shape::d1(1), vec![0.5]).unwrap();
        let x = Tensor::from_fn(Shape::d4(1, 2, 2, 2), |i| {
            (i[1] * 10 + i[2] * 2 + i[3]) as f32
        });
        let y = conv.forward(&x, false).unwrap();
        for h in 0..2 {
            for w in 0..2 {
                let expect = 2.0 * x.at(&[0, 0, h, w]) - x.at(&[0, 1, h, w]) + 0.5;
                assert!((y.at(&[0, 0, h, w]) - expect).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = Rng::seed_from(3);
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        let x = Tensor::randn(Shape::d4(2, 2, 5, 5), &mut rng);
        finite_diff_check(&mut conv, &x, 1e-2, 2e-2);
    }

    #[test]
    fn gradients_match_finite_differences_strided() {
        let mut rng = Rng::seed_from(4);
        let mut conv = Conv2d::new(2, 2, 3, 2, 1, &mut rng);
        let x = Tensor::randn(Shape::d4(1, 2, 7, 7), &mut rng);
        finite_diff_check(&mut conv, &x, 1e-2, 2e-2);
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut rng = Rng::seed_from(5);
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, &mut rng);
        let g = Tensor::zeros(Shape::d4(1, 1, 4, 4));
        assert!(matches!(
            conv.backward(&g),
            Err(NnError::NoForwardCache { layer: "Conv2d" })
        ));
    }

    #[test]
    fn eval_forward_does_not_cache() {
        let mut rng = Rng::seed_from(6);
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, &mut rng);
        let x = Tensor::randn(Shape::d4(1, 1, 4, 4), &mut rng);
        conv.forward(&x, false).unwrap();
        assert!(conv
            .backward(&Tensor::zeros(Shape::d4(1, 1, 4, 4)))
            .is_err());
    }

    #[test]
    fn from_parts_validates() {
        let w = Tensor::zeros(Shape::d4(2, 3, 3, 3));
        let b = Tensor::zeros(Shape::d1(2));
        assert!(Conv2d::from_parts(w.clone(), b, 1, 1).is_ok());
        let bad_bias = Tensor::zeros(Shape::d1(3));
        assert!(Conv2d::from_parts(w, bad_bias, 1, 1).is_err());
        let bad_w = Tensor::zeros(Shape::d3(2, 3, 3));
        assert!(Conv2d::from_parts(bad_w, Tensor::zeros(Shape::d1(2)), 1, 1).is_err());
    }

    #[test]
    fn grad_accumulates_across_backward_calls() {
        let mut rng = Rng::seed_from(7);
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, &mut rng);
        let x = Tensor::randn(Shape::d4(1, 1, 4, 4), &mut rng);
        let ones = Tensor::ones(Shape::d4(1, 1, 4, 4));
        conv.forward(&x, true).unwrap();
        conv.backward(&ones).unwrap();
        let g1 = conv.weight.grad.clone();
        conv.forward(&x, true).unwrap();
        conv.backward(&ones).unwrap();
        let g2 = conv.weight.grad.clone();
        for (a, b) in g1.data().iter().zip(g2.data()) {
            assert!((2.0 * a - b).abs() < 1e-4, "{a} {b}");
        }
    }
}
