//! Individual network layers.
//!
//! Every layer follows the same contract:
//!
//! * `forward(&mut self, x, train)` computes the output and caches whatever
//!   the backward pass needs (inputs, masks, normalization statistics);
//! * `backward(&mut self, grad_out)` *accumulates* parameter gradients and
//!   returns the gradient with respect to the layer input;
//! * parameters are exposed to optimizers via a `visit_params` method.
//!
//! All activation tensors are batched NCHW (`[B, C, H, W]`) or `[B, F]`
//! for the classifier head.

mod activation;
mod batchnorm;
mod conv;
mod dropout;
mod flatten;
mod linear;
mod pool;

pub use activation::ReLU;
pub use batchnorm::BatchNorm2d;
pub use conv::Conv2d;
pub use dropout::Dropout;
pub use flatten::Flatten;
pub use linear::Linear;
pub use pool::{AvgPool2d, GlobalAvgPool, MaxPool2d};
