//! Inverted dropout.

use hs_tensor::{Rng, Tensor};

use crate::error::NnError;

/// Inverted dropout: during training each element is zeroed with
/// probability `p` and survivors are scaled by `1/(1−p)`, so inference
/// is the identity (the AlexNet/VGG classifier regularizer).
///
/// The layer owns its RNG stream (seeded at construction) so training
/// runs stay reproducible without threading a generator through every
/// forward call.
#[derive(Debug, Clone)]
pub struct Dropout {
    p: f32,
    rng: Rng,
    mask: Option<Vec<f32>>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p < 1`.
    pub fn new(p: f32, rng: &mut Rng) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "drop probability must be in [0, 1), got {p}"
        );
        Dropout {
            p,
            rng: rng.split(),
            mask: None,
        }
    }

    /// The drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }

    /// Forward pass (any shape). Identity in inference mode.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if !train || self.p == 0.0 {
            self.mask = None;
            return input.clone();
        }
        let scale = 1.0 / (1.0 - self.p);
        let mask: Vec<f32> = (0..input.len())
            .map(|_| {
                if self.rng.bernoulli(self.p) {
                    0.0
                } else {
                    scale
                }
            })
            .collect();
        let mut out = input.clone();
        for (v, &m) in out.data_mut().iter_mut().zip(&mask) {
            *v *= m;
        }
        self.mask = Some(mask);
        out
    }

    /// Backward pass: applies the cached mask to the gradient.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoForwardCache`] without a training forward, or
    /// [`NnError::BadInput`] on a length mismatch.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let mask = self
            .mask
            .take()
            .ok_or(NnError::NoForwardCache { layer: "Dropout" })?;
        if mask.len() != grad_out.len() {
            return Err(NnError::BadInput {
                what: "Dropout::backward",
                detail: format!(
                    "grad has {} elements, cache has {}",
                    grad_out.len(),
                    mask.len()
                ),
            });
        }
        let mut dx = grad_out.clone();
        for (g, &m) in dx.data_mut().iter_mut().zip(&mask) {
            *g *= m;
        }
        Ok(dx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs_tensor::Shape;

    #[test]
    fn inference_is_identity() {
        let mut rng = Rng::seed_from(0);
        let mut d = Dropout::new(0.5, &mut rng);
        let x = Tensor::randn(Shape::d2(4, 8), &mut rng);
        assert_eq!(d.forward(&x, false), x);
    }

    #[test]
    fn training_preserves_expectation() {
        let mut rng = Rng::seed_from(1);
        let mut d = Dropout::new(0.4, &mut rng);
        let x = Tensor::ones(Shape::d1(20_000));
        let y = d.forward(&x, true);
        // Inverted scaling: mean stays ≈ 1.
        assert!((y.mean() - 1.0).abs() < 0.03, "mean {}", y.mean());
        // Roughly p of the entries are zero.
        let zeros = y.data().iter().filter(|&&v| v == 0.0).count() as f32 / y.len() as f32;
        assert!((zeros - 0.4).abs() < 0.02, "zero fraction {zeros}");
    }

    #[test]
    fn backward_reuses_the_same_mask() {
        let mut rng = Rng::seed_from(2);
        let mut d = Dropout::new(0.5, &mut rng);
        let x = Tensor::ones(Shape::d1(64));
        let y = d.forward(&x, true);
        let g = Tensor::ones(Shape::d1(64));
        let dx = d.backward(&g).unwrap();
        // Gradient flows exactly where activations flowed.
        for (yy, gg) in y.data().iter().zip(dx.data()) {
            assert_eq!(*yy == 0.0, *gg == 0.0);
        }
    }

    #[test]
    fn backward_requires_training_forward() {
        let mut rng = Rng::seed_from(3);
        let mut d = Dropout::new(0.3, &mut rng);
        let x = Tensor::ones(Shape::d1(4));
        d.forward(&x, false);
        assert!(d.backward(&Tensor::ones(Shape::d1(4))).is_err());
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn rejects_invalid_probability() {
        let mut rng = Rng::seed_from(4);
        Dropout::new(1.0, &mut rng);
    }

    #[test]
    fn zero_probability_is_identity_even_in_training() {
        let mut rng = Rng::seed_from(5);
        let mut d = Dropout::new(0.0, &mut rng);
        let x = Tensor::randn(Shape::d1(16), &mut rng);
        assert_eq!(d.forward(&x, true), x);
    }
}
