//! Activation functions.

use hs_tensor::Tensor;

use crate::error::NnError;

/// Rectified linear unit, `max(0, x)`.
///
/// The APoZ pruning criterion (Hu et al. 2016) counts zeros *after* this
/// activation, which is why the network keeps ReLU as an explicit node
/// rather than fusing it.
#[derive(Debug, Clone, Default)]
pub struct ReLU {
    mask: Option<Vec<bool>>,
}

impl ReLU {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        ReLU { mask: None }
    }

    /// Forward pass (any shape).
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let out = input.map(|x| x.max(0.0));
        if train {
            self.mask = Some(input.data().iter().map(|&x| x > 0.0).collect());
        } else {
            self.mask = None;
        }
        out
    }

    /// Backward pass: zeroes gradients where the input was non-positive.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoForwardCache`] without a training forward, or
    /// [`NnError::BadInput`] if `grad_out` has a different element count.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let mask = self
            .mask
            .take()
            .ok_or(NnError::NoForwardCache { layer: "ReLU" })?;
        if mask.len() != grad_out.len() {
            return Err(NnError::BadInput {
                what: "ReLU::backward",
                detail: format!(
                    "grad has {} elements, cache has {}",
                    grad_out.len(),
                    mask.len()
                ),
            });
        }
        let mut dx = grad_out.clone();
        for (g, &keep) in dx.data_mut().iter_mut().zip(mask.iter()) {
            if !keep {
                *g = 0.0;
            }
        }
        Ok(dx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs_tensor::Shape;

    #[test]
    fn forward_clamps_negatives() {
        let mut relu = ReLU::new();
        let x = Tensor::from_vec(Shape::d1(4), vec![-1.0, 0.0, 2.0, -0.5]).unwrap();
        let y = relu.forward(&x, false);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn backward_gates_gradient() {
        let mut relu = ReLU::new();
        let x = Tensor::from_vec(Shape::d1(4), vec![-1.0, 0.0, 2.0, 3.0]).unwrap();
        relu.forward(&x, true);
        let g = Tensor::ones(Shape::d1(4));
        let dx = relu.backward(&g).unwrap();
        assert_eq!(dx.data(), &[0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn backward_requires_forward() {
        let mut relu = ReLU::new();
        assert!(relu.backward(&Tensor::ones(Shape::d1(2))).is_err());
    }
}
