//! Verifies the scratch-arena acceptance criterion: after one warm-up
//! iteration, a conv forward+backward pass performs **zero** heap
//! allocations for im2col / col2im / GEMM packing buffers — every
//! `with_scratch` checkout is served from the thread-local arena.
//!
//! This file holds a single test on purpose: the arena counters are
//! process-global, so a sibling test running concurrently in the same
//! binary would perturb them.

use hs_nn::layer::Conv2d;
use hs_tensor::{workspace, Rng, Shape, Tensor};

#[test]
fn conv_forward_backward_is_zero_alloc_after_warmup() {
    let mut rng = Rng::seed_from(42);
    // Small enough to stay on the calling thread (below the parallel
    // thresholds), large enough to exercise im2col + both GEMMs.
    let mut conv = Conv2d::new(3, 8, 3, 1, 1, &mut rng);
    let x = Tensor::randn(Shape::d4(2, 3, 12, 12), &mut rng);

    // Warm-up: populates this thread's arena with every buffer size the
    // fwd+bwd path checks out.
    let y = conv.forward(&x, true).unwrap();
    let dy = Tensor::ones(y.shape().clone());
    conv.backward(&dy).unwrap();

    workspace::reset_stats();
    for _ in 0..5 {
        let y = conv.forward(&x, true).unwrap();
        let dy = Tensor::ones(y.shape().clone());
        conv.backward(&dy).unwrap();
    }
    assert_eq!(
        workspace::alloc_count(),
        0,
        "warm conv fwd+bwd allocated scratch buffers instead of reusing the arena"
    );
    assert!(
        workspace::reuse_count() > 0,
        "conv fwd+bwd never touched the arena; the zero-alloc check is vacuous"
    );
}
