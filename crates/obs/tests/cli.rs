//! End-to-end checks of the `hs_obs` binary: the bench-check gate must
//! actually fail the process on a synthetically regressed benchmark
//! file, and stay green (or warn-only) otherwise.

use std::path::PathBuf;
use std::process::Command;

fn tmp(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("hs_obs_cli");
    std::fs::create_dir_all(&dir).expect("tmpdir");
    dir.join(name)
}

fn bench_file(name: &str, gflops: f64, speedup: f64) -> PathBuf {
    let path = tmp(name);
    let doc = format!(
        r#"{{"schema_version":1,
            "gemm":[{{"size":256,"new_gflops":{gflops},"speedup":2.0}}],
            "forward":[{{"model":"vgg11","sp":2,"measured_speedup":{speedup}}}]}}"#
    );
    std::fs::write(&path, doc).expect("write bench file");
    path
}

fn hs_obs(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_hs_obs"))
        .args(args)
        .output()
        .expect("run hs_obs")
}

#[test]
fn bench_check_exits_nonzero_on_synthetic_regression() {
    let baseline = bench_file("baseline.json", 10.0, 1.8);
    let regressed = bench_file("regressed.json", 4.0, 1.8);

    let out = hs_obs(&[
        "bench-check",
        regressed.to_str().unwrap(),
        "--baseline",
        baseline.to_str().unwrap(),
        "--tolerance",
        "0.3",
    ]);
    assert!(
        !out.status.success(),
        "a regressed GFLOP/s rate must fail bench-check"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("gemm[256].new_gflops"),
        "the regression must be named: {stdout}"
    );

    // The same comparison passes in --warn-only mode (CI on noisy
    // shared runners) and against an identical file.
    let out = hs_obs(&[
        "bench-check",
        regressed.to_str().unwrap(),
        "--baseline",
        baseline.to_str().unwrap(),
        "--warn-only",
    ]);
    assert!(out.status.success(), "warn-only must not fail the process");

    let out = hs_obs(&[
        "bench-check",
        baseline.to_str().unwrap(),
        "--baseline",
        baseline.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "identical files must pass");
}

#[test]
fn unknown_commands_and_missing_files_fail_with_usage() {
    let out = hs_obs(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    let out = hs_obs(&["report", "--events", "/nonexistent/events.jsonl"]);
    assert_eq!(out.status.code(), Some(2));
}
