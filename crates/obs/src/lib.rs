//! **hs-obs**: offline analysis over the workspace's deterministic
//! telemetry JSONL stream.
//!
//! Every run (pruning pipeline, coordinator fleet, serving engine)
//! emits schema-v1 JSONL events whose trace ids derive purely from the
//! run's seed, so the stream is byte-identical across repeats and can
//! be analysed after the fact without re-running anything. This crate
//! is the analysis side:
//!
//! - [`trace_timeline`] — the causal timeline of one trace id (or the
//!   trace owning a serve request id): every span in stream order,
//!   indented by parent/child depth.
//! - [`build_report`] — a serving report: latency percentiles from the
//!   `hs_serve_latency_micros` histogram flush, shed-reason breakdown,
//!   breaker and degrade/restore timelines, per-worker utilization,
//!   and per-class SLO burn accounting.
//! - [`diff_metrics`] — final metric values of two runs, with deltas
//!   beyond a relative threshold.
//! - [`bench_check`] — compares a fresh `BENCH_kernels.json` against a
//!   committed baseline and flags GFLOP/s or forward-speedup
//!   regressions (the CI gate behind `hs_obs bench-check`).
//!
//! All output derives only from event *field values* (never wall-clock
//! `ts`), so two seeded runs produce identical reports.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::BTreeMap;
use std::fmt::Write as _;

use hs_telemetry::schema::{self, Json};
use hs_telemetry::trace;

// ---------------------------------------------------------------------------
// Event stream loading
// ---------------------------------------------------------------------------

/// One parsed telemetry event line.
#[derive(Debug, Clone)]
pub struct EventRec {
    /// 1-based line number in the source JSONL file.
    pub line: usize,
    /// Event kind string (`log`, `serve_request`, `metric`, …).
    pub kind: String,
    /// Severity string.
    pub level: String,
    /// Event name (for `metric` events: the metric name).
    pub name: String,
    /// Human message, often empty.
    pub message: String,
    /// Flat field map.
    pub fields: BTreeMap<String, Json>,
}

impl EventRec {
    /// String field value, if present and a string.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.fields.get(key).and_then(Json::as_str)
    }

    /// Numeric field value, if present and a number.
    pub fn num_field(&self, key: &str) -> Option<f64> {
        self.fields.get(key).and_then(Json::as_num)
    }
}

/// Parses a JSONL event stream into records.
///
/// # Errors
///
/// Returns `"line N: <cause>"` for the first malformed line; blank
/// lines are skipped.
pub fn load_events(text: &str) -> Result<Vec<EventRec>, String> {
    let mut out = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let value = schema::parse(raw).map_err(|e| format!("line {line}: {e}"))?;
        let obj = value
            .as_obj()
            .ok_or_else(|| format!("line {line}: not a JSON object"))?;
        let get_str = |key: &str| {
            obj.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("line {line}: missing string `{key}`"))
        };
        out.push(EventRec {
            line,
            kind: get_str("kind")?,
            level: get_str("level")?,
            name: get_str("name")?,
            message: get_str("message")?,
            fields: obj
                .get("fields")
                .and_then(Json::as_obj)
                .cloned()
                .unwrap_or_default(),
        });
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Deterministic JSON output
// ---------------------------------------------------------------------------

/// A JSON value for report output. Object keys keep insertion order so
/// rendered reports are stable and diffable.
#[derive(Debug, Clone, PartialEq)]
pub enum Val {
    /// A number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Val>),
    /// An insertion-ordered object.
    Obj(Vec<(String, Val)>),
}

impl Val {
    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Val {
        Val::Str(s.into())
    }

    /// Renders compact JSON. Integral numbers render without a decimal
    /// point; everything derives from field values, so the output is
    /// identical across identical seeded runs.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Val::Num(n) => {
                if n.is_finite() && *n == n.trunc() && n.abs() < 1e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    // JSON has no infinity; burn rates with a zero
                    // error budget land here.
                    out.push_str("\"inf\"");
                }
            }
            Val::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Val::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Val::Obj(entries) => {
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Val::Str(key.clone()).write(out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Trace timelines
// ---------------------------------------------------------------------------

/// One event on a trace's timeline.
#[derive(Debug, Clone)]
pub struct TimelineRow {
    /// Source line number.
    pub line: usize,
    /// Event kind.
    pub kind: String,
    /// Event name.
    pub name: String,
    /// Span id of this event.
    pub span: u64,
    /// Parent span id (0 for roots).
    pub parent: u64,
    /// Causal depth under the trace root.
    pub depth: usize,
    /// `key=value` rendering of the non-trace fields.
    pub detail: String,
}

/// Resolves a trace query: a hex trace id that occurs in the stream,
/// or (fallback) a decimal serve request id whose `serve_request`
/// events name the owning trace.
///
/// # Errors
///
/// Describes what was searched when nothing matches.
pub fn resolve_trace(events: &[EventRec], query: &str) -> Result<u64, String> {
    if let Some(id) = trace::parse_hex(query) {
        let hex = trace::hex(id);
        if events
            .iter()
            .any(|e| e.str_field("trace_id") == Some(hex.as_str()))
        {
            return Ok(id);
        }
    }
    if let Ok(rid) = query.parse::<u64>() {
        let owner = events.iter().find(|e| {
            e.kind == "serve_request"
                && e.num_field("id") == Some(rid as f64)
                && e.fields.contains_key("trace_id")
        });
        if let Some(event) = owner {
            if let Some(id) = event.str_field("trace_id").and_then(trace::parse_hex) {
                return Ok(id);
            }
        }
    }
    Err(format!(
        "no trace matches `{query}` (tried hex trace id and decimal serve request id)"
    ))
}

/// The causal timeline of one trace: every event carrying its id, in
/// stream order, with depth derived from the parent/child span links.
pub fn trace_timeline(events: &[EventRec], trace_id: u64) -> Vec<TimelineRow> {
    let hex = trace::hex(trace_id);
    let mut depth_of: BTreeMap<u64, usize> = BTreeMap::new();
    let mut rows = Vec::new();
    for event in events {
        if event.str_field("trace_id") != Some(hex.as_str()) {
            continue;
        }
        let span = event
            .str_field("span_id")
            .and_then(trace::parse_hex)
            .unwrap_or(0);
        let parent = event
            .str_field("parent_id")
            .and_then(trace::parse_hex)
            .unwrap_or(0);
        let depth = if parent == 0 {
            0
        } else {
            depth_of.get(&parent).map_or(0, |d| d + 1)
        };
        depth_of.entry(span).or_insert(depth);
        let mut detail = String::new();
        for (key, value) in &event.fields {
            if matches!(key.as_str(), "trace_id" | "span_id" | "parent_id") {
                continue;
            }
            if !detail.is_empty() {
                detail.push(' ');
            }
            match value {
                Json::Str(s) => {
                    let _ = write!(detail, "{key}={s}");
                }
                Json::Num(n) => {
                    let _ = write!(detail, "{key}={}", Val::Num(*n).render());
                }
                other => {
                    let _ = write!(detail, "{key}={other:?}");
                }
            }
        }
        rows.push(TimelineRow {
            line: event.line,
            kind: event.kind.clone(),
            name: event.name.clone(),
            span,
            parent,
            depth,
            detail,
        });
    }
    rows
}

/// Renders a timeline for terminal display.
pub fn render_timeline(trace_id: u64, rows: &[TimelineRow]) -> String {
    let mut out = format!("trace {} ({} events)\n", trace::hex(trace_id), rows.len());
    for row in rows {
        let indent = "  ".repeat(row.depth);
        let _ = writeln!(
            out,
            "  L{:<5} {}{} {} [span {}] {}",
            row.line,
            indent,
            row.kind,
            row.name,
            trace::hex(row.span),
            row.detail
        );
    }
    out
}

// ---------------------------------------------------------------------------
// Serving report
// ---------------------------------------------------------------------------

/// Latency percentiles recovered from the cumulative bucket counts of
/// the final `hs_serve_latency_micros` metric flush.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencySummary {
    /// Total observations.
    pub count: u64,
    /// Estimated percentiles in microseconds (linear interpolation
    /// within the owning bucket; the `+Inf` bucket clamps to the last
    /// finite bound).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

/// Per-class SLO accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct SloClass {
    /// Request class index.
    pub class: u64,
    /// Burn events observed for the class.
    pub burns: u64,
    /// Hit ratio of the last burned window, if any burn occurred.
    pub last_hit_ratio: Option<f64>,
    /// Final burn-rate gauge (`hs_serve_slo_burn_c<class>`), if
    /// flushed.
    pub burn_rate: Option<f64>,
}

/// Fleet-level accounting derived from replica-tagged batch events
/// plus the `replica_health`, `failover`, and `hedge` streams that
/// `hs-fleet` emits. Absent (empty) for single-engine runs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FleetSection {
    /// Per-replica `(batches, items)` utilization, from `serve_batch`
    /// events carrying a `replica` field, keyed by replica id.
    pub replicas: BTreeMap<u64, (u64, u64)>,
    /// Replica health transitions as `(line, replica, from, to)`.
    pub health: Vec<(usize, u64, String, String)>,
    /// Failover dispositions as `(line, id, from_replica, outcome)`.
    pub failovers: Vec<(usize, u64, u64, String)>,
    /// Hedge event counts keyed by outcome (`launched`, `won`, ...).
    pub hedges: BTreeMap<String, u64>,
}

impl FleetSection {
    /// True when the stream carried no fleet telemetry at all.
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
            && self.health.is_empty()
            && self.failovers.is_empty()
            && self.hedges.is_empty()
    }

    /// Fraction of launched hedges whose copy won the race, when any
    /// hedge was launched.
    pub fn hedge_win_rate(&self) -> Option<f64> {
        let launched = *self.hedges.get("launched").unwrap_or(&0);
        if launched == 0 {
            return None;
        }
        let won = *self.hedges.get("won").unwrap_or(&0);
        Some(won as f64 / launched as f64)
    }
}

/// Everything `hs_obs report` derives from one event stream.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// `serve_request` outcome counts (`accepted`, `completed`, and
    /// the shed reasons), in outcome order.
    pub outcomes: BTreeMap<String, u64>,
    /// Latency percentiles, when a histogram flush is present.
    pub latency: Option<LatencySummary>,
    /// Breaker transitions as `(line, from, to)`.
    pub breaker: Vec<(usize, String, String)>,
    /// Degrade/restore swaps as `(line, event, reason, model)`.
    pub swaps: Vec<(usize, String, String, String)>,
    /// Per-worker lifetime item counts from `worker_done` events.
    pub workers: Vec<(u64, u64)>,
    /// Per-class SLO accounting, keyed by class.
    pub slo: BTreeMap<u64, SloClass>,
    /// Replica fleet accounting; empty unless the run was fleet-served.
    pub fleet: FleetSection,
    /// Injected-fault tallies from `fault_injected` events, keyed
    /// `kind@site`; empty unless the run was under fault injection
    /// (so chaos-campaign streams summarize what actually fired).
    pub faults: BTreeMap<String, u64>,
}

fn percentile(buckets: &[(f64, u64)], count: u64, q: f64) -> f64 {
    if count == 0 || buckets.is_empty() {
        return 0.0;
    }
    let rank = q * count as f64;
    let mut prev_cum = 0u64;
    let mut prev_bound = 0.0f64;
    let last_finite = buckets
        .iter()
        .rev()
        .find(|(b, _)| b.is_finite())
        .map_or(0.0, |(b, _)| *b);
    for &(bound, cum) in buckets {
        if (cum as f64) >= rank {
            if !bound.is_finite() {
                return last_finite;
            }
            let in_bucket = (cum - prev_cum) as f64;
            if in_bucket <= 0.0 {
                return bound;
            }
            let portion = (rank - prev_cum as f64) / in_bucket;
            return prev_bound + portion.clamp(0.0, 1.0) * (bound - prev_bound);
        }
        prev_cum = cum;
        if bound.is_finite() {
            prev_bound = bound;
        }
    }
    last_finite
}

/// Cumulative `(bound, count)` pairs from a histogram metric event's
/// `le_*` fields, sorted by bound with `le_inf` last.
fn histogram_buckets(event: &EventRec) -> Vec<(f64, u64)> {
    let mut buckets: Vec<(f64, u64)> = Vec::new();
    for (key, value) in &event.fields {
        let Some(rest) = key.strip_prefix("le_") else {
            continue;
        };
        let bound = if rest == "inf" {
            f64::INFINITY
        } else {
            match rest.parse::<f64>() {
                Ok(b) => b,
                Err(_) => continue,
            }
        };
        if let Some(n) = value.as_num() {
            buckets.push((bound, n as u64));
        }
    }
    buckets.sort_by(|a, b| a.0.total_cmp(&b.0));
    buckets
}

/// Builds the serving report from an event stream.
pub fn build_report(events: &[EventRec]) -> Report {
    let mut report = Report::default();
    for event in events {
        match event.kind.as_str() {
            "serve_request" => {
                if let Some(outcome) = event.str_field("outcome") {
                    *report.outcomes.entry(outcome.to_string()).or_insert(0) += 1;
                }
            }
            "serve_breaker" => {
                let from = event.str_field("from").unwrap_or("?").to_string();
                let to = event.str_field("to").unwrap_or("?").to_string();
                report.breaker.push((event.line, from, to));
            }
            "degrade" | "restore" => {
                let reason = event.str_field("reason").unwrap_or("?").to_string();
                let model = event.str_field("model").unwrap_or("?").to_string();
                report
                    .swaps
                    .push((event.line, event.kind.clone(), reason, model));
            }
            "worker_done" => {
                if let (Some(worker), Some(items)) =
                    (event.num_field("worker"), event.num_field("items"))
                {
                    report.workers.push((worker as u64, items as u64));
                }
            }
            "serve_batch" => {
                if let Some(replica) = event.num_field("replica") {
                    let items = event.num_field("size").unwrap_or(0.0) as u64;
                    let entry = report
                        .fleet
                        .replicas
                        .entry(replica as u64)
                        .or_insert((0, 0));
                    entry.0 += 1;
                    entry.1 += items;
                }
            }
            "replica_health" => {
                let replica = event.num_field("replica").unwrap_or(0.0) as u64;
                let from = event.str_field("from").unwrap_or("?").to_string();
                let to = event.str_field("to").unwrap_or("?").to_string();
                report.fleet.health.push((event.line, replica, from, to));
            }
            "failover" => {
                let id = event.num_field("id").unwrap_or(0.0) as u64;
                let from = event.num_field("from").unwrap_or(0.0) as u64;
                let outcome = event.str_field("outcome").unwrap_or("?").to_string();
                report.fleet.failovers.push((event.line, id, from, outcome));
            }
            "hedge" => {
                if let Some(outcome) = event.str_field("outcome") {
                    *report.fleet.hedges.entry(outcome.to_string()).or_insert(0) += 1;
                }
            }
            "fault_injected" => {
                if let (Some(fault), Some(site)) =
                    (event.str_field("fault"), event.str_field("site"))
                {
                    *report.faults.entry(format!("{fault}@{site}")).or_insert(0) += 1;
                }
            }
            "slo_burn" => {
                if let Some(class) = event.num_field("class") {
                    let entry = report.slo.entry(class as u64).or_insert(SloClass {
                        class: class as u64,
                        burns: 0,
                        last_hit_ratio: None,
                        burn_rate: None,
                    });
                    entry.burns += 1;
                    entry.last_hit_ratio = event.num_field("hit_ratio");
                }
            }
            "metric" if event.name == "hs_serve_latency_micros" => {
                let count = event.num_field("count").unwrap_or(0.0) as u64;
                let buckets = histogram_buckets(event);
                report.latency = Some(LatencySummary {
                    count,
                    p50: percentile(&buckets, count, 0.50),
                    p95: percentile(&buckets, count, 0.95),
                    p99: percentile(&buckets, count, 0.99),
                });
            }
            "metric" => {
                if let Some(rest) = event.name.strip_prefix("hs_serve_slo_burn_c") {
                    if let (Ok(class), Some(rate)) = (rest.parse::<u64>(), event.num_field("value"))
                    {
                        let entry = report.slo.entry(class).or_insert(SloClass {
                            class,
                            burns: 0,
                            last_hit_ratio: None,
                            burn_rate: None,
                        });
                        entry.burn_rate = Some(rate);
                    }
                }
            }
            _ => {}
        }
    }
    report
}

/// Shed-reason subset of the outcome counts (everything that is
/// neither `accepted` nor `completed`).
pub fn shed_breakdown(report: &Report) -> Vec<(&str, u64)> {
    report
        .outcomes
        .iter()
        .filter(|(k, _)| k.as_str() != "accepted" && k.as_str() != "completed")
        .map(|(k, v)| (k.as_str(), *v))
        .collect()
}

/// The report as a deterministic JSON value.
pub fn report_json(report: &Report) -> Val {
    let outcomes = Val::Obj(
        report
            .outcomes
            .iter()
            .map(|(k, v)| (k.clone(), Val::Num(*v as f64)))
            .collect(),
    );
    let latency = match &report.latency {
        Some(l) => Val::Obj(vec![
            ("count".into(), Val::Num(l.count as f64)),
            ("p50_micros".into(), Val::Num(l.p50)),
            ("p95_micros".into(), Val::Num(l.p95)),
            ("p99_micros".into(), Val::Num(l.p99)),
        ]),
        None => Val::Obj(vec![]),
    };
    let breaker = Val::Arr(
        report
            .breaker
            .iter()
            .map(|(line, from, to)| {
                Val::Obj(vec![
                    ("line".into(), Val::Num(*line as f64)),
                    ("from".into(), Val::str(from.clone())),
                    ("to".into(), Val::str(to.clone())),
                ])
            })
            .collect(),
    );
    let swaps = Val::Arr(
        report
            .swaps
            .iter()
            .map(|(line, event, reason, model)| {
                Val::Obj(vec![
                    ("line".into(), Val::Num(*line as f64)),
                    ("event".into(), Val::str(event.clone())),
                    ("reason".into(), Val::str(reason.clone())),
                    ("model".into(), Val::str(model.clone())),
                ])
            })
            .collect(),
    );
    let total_items: u64 = report.workers.iter().map(|(_, items)| items).sum();
    let workers = Val::Arr(
        report
            .workers
            .iter()
            .map(|(worker, items)| {
                let share = if total_items == 0 {
                    0.0
                } else {
                    *items as f64 / total_items as f64
                };
                Val::Obj(vec![
                    ("worker".into(), Val::Num(*worker as f64)),
                    ("items".into(), Val::Num(*items as f64)),
                    ("share".into(), Val::Num(share)),
                ])
            })
            .collect(),
    );
    let slo = Val::Arr(
        report
            .slo
            .values()
            .map(|c| {
                let mut entries = vec![
                    ("class".into(), Val::Num(c.class as f64)),
                    ("burns".into(), Val::Num(c.burns as f64)),
                ];
                if let Some(ratio) = c.last_hit_ratio {
                    entries.push(("last_hit_ratio".into(), Val::Num(ratio)));
                }
                if let Some(rate) = c.burn_rate {
                    entries.push(("burn_rate".into(), Val::Num(rate)));
                }
                Val::Obj(entries)
            })
            .collect(),
    );
    let mut top = vec![
        ("outcomes".into(), outcomes),
        ("latency".into(), latency),
        ("breaker".into(), breaker),
        ("swaps".into(), swaps),
        ("workers".into(), workers),
        ("slo".into(), slo),
    ];
    if !report.fleet.is_empty() {
        top.push(("fleet".into(), fleet_json(&report.fleet)));
    }
    if !report.faults.is_empty() {
        top.push((
            "faults".into(),
            Val::Obj(
                report
                    .faults
                    .iter()
                    .map(|(key, count)| (key.clone(), Val::Num(*count as f64)))
                    .collect(),
            ),
        ));
    }
    Val::Obj(top)
}

/// The fleet section as a deterministic JSON value.
fn fleet_json(fleet: &FleetSection) -> Val {
    let total_items: u64 = fleet.replicas.values().map(|(_, items)| items).sum();
    let replicas = Val::Arr(
        fleet
            .replicas
            .iter()
            .map(|(replica, (batches, items))| {
                let share = if total_items == 0 {
                    0.0
                } else {
                    *items as f64 / total_items as f64
                };
                Val::Obj(vec![
                    ("replica".into(), Val::Num(*replica as f64)),
                    ("batches".into(), Val::Num(*batches as f64)),
                    ("items".into(), Val::Num(*items as f64)),
                    ("share".into(), Val::Num(share)),
                ])
            })
            .collect(),
    );
    let health = Val::Arr(
        fleet
            .health
            .iter()
            .map(|(line, replica, from, to)| {
                Val::Obj(vec![
                    ("line".into(), Val::Num(*line as f64)),
                    ("replica".into(), Val::Num(*replica as f64)),
                    ("from".into(), Val::str(from.clone())),
                    ("to".into(), Val::str(to.clone())),
                ])
            })
            .collect(),
    );
    let failovers = Val::Arr(
        fleet
            .failovers
            .iter()
            .map(|(line, id, from, outcome)| {
                Val::Obj(vec![
                    ("line".into(), Val::Num(*line as f64)),
                    ("id".into(), Val::Num(*id as f64)),
                    ("from".into(), Val::Num(*from as f64)),
                    ("outcome".into(), Val::str(outcome.clone())),
                ])
            })
            .collect(),
    );
    let hedges = Val::Obj(
        fleet
            .hedges
            .iter()
            .map(|(k, v)| (k.clone(), Val::Num(*v as f64)))
            .collect(),
    );
    let mut entries = vec![
        ("replicas".into(), replicas),
        ("health".into(), health),
        ("failovers".into(), failovers),
        ("hedges".into(), hedges),
    ];
    if let Some(rate) = fleet.hedge_win_rate() {
        entries.push(("hedge_win_rate".into(), Val::Num(rate)));
    }
    Val::Obj(entries)
}

/// The report as a human-readable table.
pub fn report_table(report: &Report) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "request outcomes");
    for (outcome, count) in &report.outcomes {
        let _ = writeln!(out, "  {outcome:<22} {count}");
    }
    if let Some(l) = &report.latency {
        let _ = writeln!(out, "latency (micros, {} observed)", l.count);
        let _ = writeln!(out, "  p50 {:>12.1}", l.p50);
        let _ = writeln!(out, "  p95 {:>12.1}", l.p95);
        let _ = writeln!(out, "  p99 {:>12.1}", l.p99);
    }
    if !report.breaker.is_empty() {
        let _ = writeln!(out, "breaker transitions");
        for (line, from, to) in &report.breaker {
            let _ = writeln!(out, "  L{line:<5} {from} -> {to}");
        }
    }
    if !report.swaps.is_empty() {
        let _ = writeln!(out, "model swaps");
        for (line, event, reason, model) in &report.swaps {
            let _ = writeln!(out, "  L{line:<5} {event:<8} {reason:<20} -> {model}");
        }
    }
    if !report.workers.is_empty() {
        let total: u64 = report.workers.iter().map(|(_, items)| items).sum();
        let _ = writeln!(out, "worker utilization ({total} items)");
        for (worker, items) in &report.workers {
            let share = if total == 0 {
                0.0
            } else {
                *items as f64 / total as f64
            };
            let _ = writeln!(
                out,
                "  worker {worker:<3} {items:>8} items  {:>5.1}%",
                share * 100.0
            );
        }
    }
    if !report.slo.is_empty() {
        let _ = writeln!(out, "slo burn");
        for c in report.slo.values() {
            let rate = c.burn_rate.map_or("-".to_string(), |r| format!("{r:.3}"));
            let _ = writeln!(
                out,
                "  class {:<3} burns {:<4} burn_rate {rate}",
                c.class, c.burns
            );
        }
    }
    let fleet = &report.fleet;
    if !fleet.replicas.is_empty() {
        let total: u64 = fleet.replicas.values().map(|(_, items)| items).sum();
        let _ = writeln!(out, "replica utilization ({total} items)");
        for (replica, (batches, items)) in &fleet.replicas {
            let share = if total == 0 {
                0.0
            } else {
                *items as f64 / total as f64
            };
            let _ = writeln!(
                out,
                "  replica {replica:<3} {batches:>6} batches {items:>8} items  {:>5.1}%",
                share * 100.0
            );
        }
    }
    if !fleet.health.is_empty() {
        let _ = writeln!(out, "replica health");
        for (line, replica, from, to) in &fleet.health {
            let _ = writeln!(out, "  L{line:<5} replica {replica} {from} -> {to}");
        }
    }
    if !fleet.failovers.is_empty() {
        let _ = writeln!(out, "failovers");
        for (line, id, from, outcome) in &fleet.failovers {
            let _ = writeln!(
                out,
                "  L{line:<5} request {id} off replica {from}: {outcome}"
            );
        }
    }
    if !fleet.hedges.is_empty() {
        let _ = writeln!(out, "hedges");
        for (outcome, count) in &fleet.hedges {
            let _ = writeln!(out, "  {outcome:<22} {count}");
        }
        if let Some(rate) = fleet.hedge_win_rate() {
            let _ = writeln!(out, "  win_rate {:>14.3}", rate);
        }
    }
    if !report.faults.is_empty() {
        let total: u64 = report.faults.values().sum();
        let _ = writeln!(out, "faults injected ({total} total)");
        for (key, count) in &report.faults {
            let _ = writeln!(out, "  {key:<28} {count}");
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Run diffs
// ---------------------------------------------------------------------------

/// A metric whose final value moved beyond the diff threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Metric name.
    pub name: String,
    /// Final value in run A (0 when absent).
    pub a: f64,
    /// Final value in run B (0 when absent).
    pub b: f64,
    /// Relative delta `|a-b| / max(|a|,|b|)`.
    pub relative: f64,
}

/// Final value per metric name: the last `metric` flush event wins.
/// Counters and gauges contribute `value`, histograms their `count`.
pub fn final_metrics(events: &[EventRec]) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for event in events.iter().filter(|e| e.kind == "metric") {
        let value = event
            .num_field("value")
            .or_else(|| event.num_field("count"));
        if let Some(v) = value {
            out.insert(event.name.clone(), v);
        }
    }
    out
}

/// Metrics differing between two runs by more than `threshold`
/// (relative), sorted by name.
pub fn diff_metrics(
    a: &BTreeMap<String, f64>,
    b: &BTreeMap<String, f64>,
    threshold: f64,
) -> Vec<MetricDelta> {
    let mut names: Vec<&String> = a.keys().chain(b.keys()).collect();
    names.sort();
    names.dedup();
    let mut out = Vec::new();
    for name in names {
        let va = a.get(name).copied().unwrap_or(0.0);
        let vb = b.get(name).copied().unwrap_or(0.0);
        let scale = va.abs().max(vb.abs());
        let relative = if scale == 0.0 {
            0.0
        } else {
            (va - vb).abs() / scale
        };
        if relative > threshold {
            out.push(MetricDelta {
                name: name.clone(),
                a: va,
                b: vb,
                relative,
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Benchmark regression checks
// ---------------------------------------------------------------------------

/// One benchmark row that regressed against the baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// What regressed, e.g. `gemm[256].new_gflops`.
    pub what: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value (0 when the row vanished).
    pub current: f64,
}

fn bench_rows<'a>(doc: &'a Json, key: &str) -> Vec<&'a BTreeMap<String, Json>> {
    match doc.as_obj().and_then(|o| o.get(key)) {
        Some(Json::Arr(rows)) => rows.iter().filter_map(Json::as_obj).collect(),
        _ => Vec::new(),
    }
}

fn check_metric(
    what: String,
    baseline: Option<f64>,
    current: Option<f64>,
    tolerance: f64,
    out: &mut Vec<Regression>,
) {
    let Some(base) = baseline else { return };
    let cur = current.unwrap_or(0.0);
    if cur < base * (1.0 - tolerance) {
        out.push(Regression {
            what,
            baseline: base,
            current: cur,
        });
    }
}

/// Compares a freshly produced `BENCH_kernels.json` against a
/// committed baseline: every baseline GEMM row's `new_gflops` and
/// every forward row's `measured_speedup` must stay within
/// `tolerance` (relative) of the baseline. Rows present only in the
/// current file are informational, never regressions.
pub fn bench_check(current: &Json, baseline: &Json, tolerance: f64) -> Vec<Regression> {
    let mut out = Vec::new();
    let cur_gemm: BTreeMap<i64, &BTreeMap<String, Json>> = bench_rows(current, "gemm")
        .into_iter()
        .filter_map(|row| {
            row.get("size")
                .and_then(Json::as_num)
                .map(|s| (s as i64, row))
        })
        .collect();
    for row in bench_rows(baseline, "gemm") {
        let Some(size) = row.get("size").and_then(Json::as_num) else {
            continue;
        };
        let cur = cur_gemm
            .get(&(size as i64))
            .and_then(|r| r.get("new_gflops"))
            .and_then(Json::as_num);
        check_metric(
            format!("gemm[{}].new_gflops", size as i64),
            row.get("new_gflops").and_then(Json::as_num),
            cur,
            tolerance,
            &mut out,
        );
    }
    let fwd_key = |row: &BTreeMap<String, Json>| -> Option<String> {
        let model = row.get("model").and_then(Json::as_str)?;
        let sp = row.get("sp").and_then(Json::as_num)?;
        Some(format!("{model}@sp{sp}"))
    };
    let cur_fwd: BTreeMap<String, &BTreeMap<String, Json>> = bench_rows(current, "forward")
        .into_iter()
        .filter_map(|row| fwd_key(row).map(|k| (k, row)))
        .collect();
    for row in bench_rows(baseline, "forward") {
        let Some(key) = fwd_key(row) else { continue };
        let cur = cur_fwd
            .get(&key)
            .and_then(|r| r.get("measured_speedup"))
            .and_then(Json::as_num);
        check_metric(
            format!("forward[{key}].measured_speedup"),
            row.get("measured_speedup").and_then(Json::as_num),
            cur,
            tolerance,
            &mut out,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs_telemetry::{Event, EventKind, Level, TraceCtx};

    fn stream(events: Vec<Event>) -> Vec<EventRec> {
        let text: String = events
            .into_iter()
            .map(|mut e| {
                e.ts = 0.0;
                let mut line = e.to_json_line();
                line.push('\n');
                line
            })
            .collect();
        load_events(&text).unwrap()
    }

    fn request_event(id: u64, outcome: &str, ctx: &TraceCtx) -> Event {
        Event::new(EventKind::ServeRequest, Level::Info, "serve/request")
            .field("id", id)
            .field("outcome", outcome)
            .traced(ctx)
    }

    #[test]
    fn loads_real_event_lines_with_line_numbers() {
        let events = stream(vec![
            Event::new(EventKind::Log, Level::Info, "runner").message("hello"),
            Event::new(EventKind::Metric, Level::Debug, "hs_x").field("value", 3u64),
        ]);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].line, 1);
        assert_eq!(events[1].line, 2);
        assert_eq!(events[1].num_field("value"), Some(3.0));
        assert!(load_events("{not json\n").is_err());
    }

    #[test]
    fn resolves_request_ids_and_names_shed_reason() {
        let root = TraceCtx::root(0x4853, 0);
        let other = TraceCtx::root(0x4853, 1);
        let events = stream(vec![
            request_event(7, "accepted", &root),
            request_event(9, "queue_full", &other),
            request_event(7, "completed", &root.child(1)),
        ]);
        // Decimal request id resolves to its owning trace.
        let id = resolve_trace(&events, "7").unwrap();
        assert_eq!(id, root.trace);
        // The hex trace id resolves directly too.
        let hex = trace::hex(other.trace);
        assert_eq!(resolve_trace(&events, &hex).unwrap(), other.trace);
        assert!(resolve_trace(&events, "beef").is_err());

        // A shed request's timeline names the shed reason.
        let shed_id = resolve_trace(&events, "9").unwrap();
        let rows = trace_timeline(&events, shed_id);
        assert_eq!(rows.len(), 1);
        assert!(rows[0].detail.contains("outcome=queue_full"));
        let rendered = render_timeline(shed_id, &rows);
        assert!(rendered.contains("queue_full"));
    }

    #[test]
    fn timeline_indents_children_under_their_root() {
        let root = TraceCtx::root(1, 0);
        let events = stream(vec![
            request_event(1, "accepted", &root),
            request_event(1, "completed", &root.child(1)),
        ]);
        let rows = trace_timeline(&events, root.trace);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].depth, 0);
        assert_eq!(rows[1].depth, 1);
        assert_eq!(rows[1].parent, root.span);
    }

    #[test]
    fn report_recovers_percentiles_from_cumulative_buckets() {
        // 100 observations: 50 in (0,1000], 45 in (1000,5000],
        // 5 in (5000,10000].
        let hist = Event::new(EventKind::Metric, Level::Debug, "hs_serve_latency_micros")
            .field("metric_kind", "histogram")
            .field("count", 100u64)
            .field("sum", 2.0e5)
            .field("le_1000", 50u64)
            .field("le_5000", 95u64)
            .field("le_10000", 100u64)
            .field("le_inf", 100u64);
        let events = stream(vec![hist]);
        let report = build_report(&events);
        let latency = report.latency.expect("histogram flush parsed");
        assert_eq!(latency.count, 100);
        assert!((latency.p50 - 1000.0).abs() < 1e-9, "p50={}", latency.p50);
        assert!(latency.p95 > 1000.0 && latency.p95 <= 5000.0);
        assert!(latency.p99 > 5000.0 && latency.p99 <= 10000.0);
    }

    #[test]
    fn report_aggregates_outcomes_swaps_workers_and_slo() {
        let ctx = TraceCtx::root(2, 0);
        let events = stream(vec![
            request_event(1, "accepted", &ctx),
            request_event(1, "completed", &ctx.child(1)),
            request_event(2, "queue_full", &TraceCtx::root(2, 1)),
            Event::new(EventKind::ServeBreaker, Level::Warn, "serve/breaker")
                .field("from", "closed")
                .field("to", "open"),
            Event::new(EventKind::Degrade, Level::Warn, "serve/engine")
                .field("reason", "breaker_open")
                .field("model", "pruned"),
            Event::new(EventKind::WorkerDone, Level::Debug, "coord")
                .field("worker", 0u64)
                .field("items", 30u64),
            Event::new(EventKind::WorkerDone, Level::Debug, "coord")
                .field("worker", 1u64)
                .field("items", 10u64),
            Event::new(EventKind::SloBurn, Level::Warn, "serve/slo")
                .field("class", 0u64)
                .field("target", 0.9)
                .field("hit_ratio", 0.5)
                .field("window", 20u64),
            Event::new(EventKind::Metric, Level::Debug, "hs_serve_slo_burn_c0")
                .field("metric_kind", "gauge")
                .field("value", 5.0),
        ]);
        let report = build_report(&events);
        assert_eq!(report.outcomes["accepted"], 1);
        assert_eq!(report.outcomes["completed"], 1);
        assert_eq!(shed_breakdown(&report), vec![("queue_full", 1)]);
        assert_eq!(report.breaker.len(), 1);
        assert_eq!(report.swaps[0].2, "breaker_open");
        assert_eq!(report.workers, vec![(0, 30), (1, 10)]);
        let slo = &report.slo[&0];
        assert_eq!(slo.burns, 1);
        assert_eq!(slo.last_hit_ratio, Some(0.5));
        assert_eq!(slo.burn_rate, Some(5.0));

        // JSON output is a pure function of field values.
        let a = report_json(&report).render();
        let b = report_json(&build_report(&events)).render();
        assert_eq!(a, b);
        assert!(a.contains("\"queue_full\":1"));
        let table = report_table(&report);
        assert!(table.contains("worker 0"));
        assert!(table.contains("burn_rate 5.000"));
    }

    #[test]
    fn report_builds_the_fleet_section_only_from_fleet_telemetry() {
        // A single-engine stream (no replica tags) yields no fleet key.
        let plain = stream(vec![Event::new(
            EventKind::ServeBatch,
            Level::Debug,
            "serve/batch",
        )
        .field("size", 4u64)
        .field("outcome", "flush")]);
        let report = build_report(&plain);
        assert!(report.fleet.is_empty());
        assert!(!report_json(&report).render().contains("\"fleet\""));

        // A fleet stream fills all four sub-sections.
        let batch = |replica: u64, size: u64| {
            Event::new(EventKind::ServeBatch, Level::Debug, "serve/batch")
                .field("size", size)
                .field("outcome", "flush")
                .field("replica", replica)
        };
        let events = stream(vec![
            batch(0, 3),
            batch(0, 1),
            batch(1, 4),
            Event::new(EventKind::ReplicaHealth, Level::Warn, "fleet/health")
                .field("replica", 2u64)
                .field("from", "healthy")
                .field("to", "suspect"),
            Event::new(EventKind::ReplicaHealth, Level::Warn, "fleet/health")
                .field("replica", 2u64)
                .field("from", "suspect")
                .field("to", "ejected"),
            Event::new(EventKind::Failover, Level::Warn, "fleet/failover")
                .field("id", 7u64)
                .field("from", 2u64)
                .field("outcome", "rerouted"),
            Event::new(EventKind::Hedge, Level::Info, "fleet/hedge")
                .field("id", 9u64)
                .field("outcome", "launched"),
            Event::new(EventKind::Hedge, Level::Info, "fleet/hedge")
                .field("id", 9u64)
                .field("outcome", "won"),
            Event::new(EventKind::Hedge, Level::Info, "fleet/hedge")
                .field("id", 11u64)
                .field("outcome", "launched"),
        ]);
        let report = build_report(&events);
        assert_eq!(report.fleet.replicas[&0], (2, 4));
        assert_eq!(report.fleet.replicas[&1], (1, 4));
        assert_eq!(report.fleet.health.len(), 2);
        assert_eq!(report.fleet.health[1].3, "ejected");
        assert_eq!(report.fleet.failovers, vec![(6, 7, 2, "rerouted".into())]);
        assert_eq!(report.fleet.hedges["launched"], 2);
        assert!((report.fleet.hedge_win_rate().unwrap() - 0.5).abs() < 1e-9);

        let json = report_json(&report).render();
        assert!(json.contains("\"fleet\""));
        assert!(json.contains("\"hedge_win_rate\":0.5"));
        assert!(json.contains("\"share\":0.5"));
        let table = report_table(&report);
        assert!(table.contains("replica utilization (8 items)"));
        assert!(table.contains("replica 2 healthy -> suspect"));
        assert!(table.contains("request 7 off replica 2: rerouted"));
        assert!(table.contains("win_rate"));
    }

    #[test]
    fn diff_flags_only_moved_metrics() {
        let a = BTreeMap::from([
            ("hs_serve_completed_total".to_string(), 100.0),
            ("hs_serve_rejected_total".to_string(), 10.0),
        ]);
        let b = BTreeMap::from([
            ("hs_serve_completed_total".to_string(), 101.0),
            ("hs_serve_rejected_total".to_string(), 20.0),
        ]);
        let deltas = diff_metrics(&a, &b, 0.05);
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].name, "hs_serve_rejected_total");
        assert!((deltas[0].relative - 0.5).abs() < 1e-9);
        // Identical runs diff clean at any threshold.
        assert!(diff_metrics(&a, &a, 0.0).is_empty());
    }

    fn bench_doc(gflops: f64, speedup: f64) -> Json {
        schema::parse(&format!(
            r#"{{"gemm":[{{"size":256,"new_gflops":{gflops},"speedup":2.0}}],
                "forward":[{{"model":"vgg11","sp":2,"measured_speedup":{speedup}}}]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn bench_check_flags_synthetic_regressions() {
        let baseline = bench_doc(10.0, 1.8);
        // Identical results pass.
        assert!(bench_check(&baseline, &baseline, 0.3).is_empty());
        // A small wobble inside the tolerance passes.
        assert!(bench_check(&bench_doc(9.0, 1.7), &baseline, 0.3).is_empty());
        // A synthetically regressed GFLOP/s rate is flagged.
        let regressions = bench_check(&bench_doc(4.0, 1.8), &baseline, 0.3);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].what, "gemm[256].new_gflops");
        // So is a forward-speedup collapse.
        let regressions = bench_check(&bench_doc(10.0, 0.9), &baseline, 0.3);
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].what.contains("measured_speedup"));
        // A vanished row counts as a regression to zero.
        let empty = schema::parse("{}").unwrap();
        let regressions = bench_check(&empty, &baseline, 0.3);
        assert_eq!(regressions.len(), 2);
        assert_eq!(regressions[0].current, 0.0);
    }

    #[test]
    fn fault_injections_are_tallied_by_kind_and_site() {
        let fault = |kind: &str, site: &str| {
            Event::new(EventKind::FaultInjected, Level::Warn, "faults")
                .message(format!("injected {kind} at {site} (hit 1)"))
                .field("fault", kind)
                .field("site", site)
                .field("hit", 1u64)
        };
        let events = stream(vec![
            fault("torn_write", "metrics"),
            fault("probe_loss", "replica1"),
            fault("torn_write", "metrics"),
        ]);
        let report = build_report(&events);
        assert_eq!(report.faults.get("torn_write@metrics"), Some(&2));
        assert_eq!(report.faults.get("probe_loss@replica1"), Some(&1));
        let json = report_json(&report).render();
        assert!(
            json.contains(r#""faults":{"probe_loss@replica1":1,"torn_write@metrics":2}"#),
            "{json}"
        );
        let table = report_table(&report);
        assert!(table.contains("faults injected (3 total)"), "{table}");
        assert!(table.contains("torn_write@metrics"), "{table}");
        // Fault-free streams keep the section out entirely.
        let clean = build_report(&[]);
        assert!(!report_json(&clean).render().contains("faults"));
        assert!(!report_table(&clean).contains("faults injected"));
    }

    #[test]
    fn val_renders_integers_bare_and_escapes_strings() {
        let v = Val::Obj(vec![
            ("n".into(), Val::Num(3.0)),
            ("f".into(), Val::Num(0.25)),
            ("inf".into(), Val::Num(f64::INFINITY)),
            ("s".into(), Val::str("a\"b\n")),
            ("a".into(), Val::Arr(vec![Val::Num(1.0), Val::Num(2.0)])),
        ]);
        assert_eq!(
            v.render(),
            r#"{"n":3,"f":0.25,"inf":"inf","s":"a\"b\n","a":[1,2]}"#
        );
    }
}
