//! `hs_obs` — offline analysis over the deterministic telemetry JSONL
//! stream.
//!
//! ```text
//! hs_obs trace <ID> --events EVENTS.jsonl
//! hs_obs report --events EVENTS.jsonl [--json]
//! hs_obs diff A.jsonl B.jsonl [--threshold F]
//! hs_obs bench-check CURRENT.json --baseline BASELINE.json
//!         [--tolerance F] [--warn-only]
//! ```
//!
//! `trace` prints the causal timeline of one trace — the argument is a
//! hex trace id or a decimal serve request id. `report` summarises a
//! serving run (latency percentiles, shed reasons, breaker/degrade
//! timelines, worker utilization, SLO burn). `diff` compares the final
//! metric values of two runs. `bench-check` exits non-zero when a
//! benchmark row regressed beyond tolerance — the CI gate over
//! `BENCH_kernels.json`.

use std::path::Path;
use std::process::ExitCode;

use hs_obs::{
    bench_check, build_report, diff_metrics, final_metrics, load_events, render_timeline,
    report_json, report_table, resolve_trace, trace_timeline, EventRec,
};
use hs_telemetry::schema::{self, Json};

const USAGE: &str = "usage: hs_obs <command> [args]

commands:
  trace <ID> --events FILE      causal timeline of a trace (hex trace id
                                or decimal serve request id)
  report --events FILE [--json] serving report: latency percentiles,
                                shed reasons, breaker/degrade timelines,
                                worker utilization, SLO burn
  diff A B [--threshold F]      final-metric deltas between two event
                                streams beyond F (relative, default 0.05)
  bench-check CURRENT --baseline BASE [--tolerance F] [--warn-only]
                                flag GFLOP/s or forward-speedup rows of
                                CURRENT that regressed beyond F (relative,
                                default 0.3) against BASE; exits 1 on
                                regression unless --warn-only";

fn fail(message: impl std::fmt::Display) -> ExitCode {
    eprintln!("hs_obs: {message}");
    ExitCode::from(2)
}

fn read_events(path: &Path) -> Result<Vec<EventRec>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    load_events(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn read_json(path: &Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    schema::parse(text.trim()).map_err(|e| format!("{}: {e}", path.display()))
}

/// Pulls the value after `flag` out of `args`, if present.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let Some(pos) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if pos + 1 >= args.len() {
        return Err(format!("{flag} needs a value"));
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Ok(Some(value))
}

fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    let Some(pos) = args.iter().position(|a| a == flag) else {
        return false;
    };
    args.remove(pos);
    true
}

fn parse_f64(value: &str, flag: &str) -> Result<f64, String> {
    value
        .parse::<f64>()
        .map_err(|_| format!("{flag} needs a number, got `{value}`"))
}

fn cmd_trace(mut args: Vec<String>) -> Result<ExitCode, String> {
    let events_path = take_flag(&mut args, "--events")?.ok_or("trace needs --events FILE")?;
    let [query] = args.as_slice() else {
        return Err("trace needs exactly one ID argument".to_string());
    };
    let events = read_events(Path::new(&events_path))?;
    let trace_id = resolve_trace(&events, query)?;
    let rows = trace_timeline(&events, trace_id);
    print!("{}", render_timeline(trace_id, &rows));
    Ok(ExitCode::SUCCESS)
}

fn cmd_report(mut args: Vec<String>) -> Result<ExitCode, String> {
    let events_path = take_flag(&mut args, "--events")?.ok_or("report needs --events FILE")?;
    let as_json = take_switch(&mut args, "--json");
    if !args.is_empty() {
        return Err(format!("unexpected argument `{}`", args[0]));
    }
    let events = read_events(Path::new(&events_path))?;
    let report = build_report(&events);
    if as_json {
        println!("{}", report_json(&report).render());
    } else {
        print!("{}", report_table(&report));
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_diff(mut args: Vec<String>) -> Result<ExitCode, String> {
    let threshold = match take_flag(&mut args, "--threshold")? {
        Some(v) => parse_f64(&v, "--threshold")?,
        None => 0.05,
    };
    let [a, b] = args.as_slice() else {
        return Err("diff needs exactly two event files".to_string());
    };
    let metrics_a = final_metrics(&read_events(Path::new(a))?);
    let metrics_b = final_metrics(&read_events(Path::new(b))?);
    let deltas = diff_metrics(&metrics_a, &metrics_b, threshold);
    if deltas.is_empty() {
        println!("no metric moved beyond {threshold} (relative)");
    } else {
        for d in &deltas {
            println!(
                "{:<40} {:>14} -> {:<14} ({:+.1}%)",
                d.name,
                d.a,
                d.b,
                (d.b - d.a) / d.a.abs().max(f64::MIN_POSITIVE) * 100.0
            );
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_bench_check(mut args: Vec<String>) -> Result<ExitCode, String> {
    let baseline_path =
        take_flag(&mut args, "--baseline")?.ok_or("bench-check needs --baseline FILE")?;
    let tolerance = match take_flag(&mut args, "--tolerance")? {
        Some(v) => parse_f64(&v, "--tolerance")?,
        None => 0.3,
    };
    let warn_only = take_switch(&mut args, "--warn-only");
    let [current_path] = args.as_slice() else {
        return Err("bench-check needs exactly one CURRENT file".to_string());
    };
    let current = read_json(Path::new(current_path))?;
    let baseline = read_json(Path::new(&baseline_path))?;
    let regressions = bench_check(&current, &baseline, tolerance);
    if regressions.is_empty() {
        println!("bench-check: no regression beyond {tolerance} (relative)");
        return Ok(ExitCode::SUCCESS);
    }
    for r in &regressions {
        println!(
            "REGRESSION {:<40} baseline {:>10.3} current {:>10.3}",
            r.what, r.baseline, r.current
        );
    }
    if warn_only {
        println!(
            "bench-check: {} regression(s) (warn-only, not failing)",
            regressions.len()
        );
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::FAILURE)
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let command = args.remove(0);
    let result = match command.as_str() {
        "trace" => cmd_trace(args),
        "report" => cmd_report(args),
        "diff" => cmd_diff(args),
        "bench-check" => cmd_bench_check(args),
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(message) => fail(message),
    }
}
