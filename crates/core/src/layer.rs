//! Per-layer HeadStart pruning: the RL loop of Section III.

use hs_data::Dataset;
use hs_nn::surgery::conv_sites;
use hs_nn::Network;
use hs_tensor::Rng;

use crate::config::HeadStartConfig;
use crate::error::HeadStartError;
use crate::evaluator::MaskedEvaluator;
use crate::policy::HeadStartNetwork;
use crate::reinforce::{
    inference_action, is_stable, kept_count, logit_gradient, policy_drift, sample_action,
};
use crate::reward::reward;

/// The outcome of pruning one layer: the learned inception.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerDecision {
    /// Indices of the feature maps to keep (sorted ascending).
    pub keep: Vec<usize>,
    /// Final keep probabilities emitted by the policy.
    pub probs: Vec<f32>,
    /// Episodes the policy trained for.
    pub episodes: usize,
    /// Reward of the inference action per episode (convergence trace).
    pub reward_history: Vec<f32>,
    /// Evaluation-batch accuracy of the chosen action, before surgery
    /// and fine-tuning (the inception accuracy on the eval split).
    pub inception_eval_accuracy: f32,
}

/// Trains one head-start network against one convolutional layer and
/// extracts the learned keep set.
#[derive(Debug, Clone)]
pub struct LayerPruner {
    cfg: HeadStartConfig,
}

impl LayerPruner {
    /// Creates a pruner with the given configuration.
    pub fn new(cfg: HeadStartConfig) -> Self {
        LayerPruner { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &HeadStartConfig {
        &self.cfg
    }

    /// Runs the RL loop against conv ordinal `conv_ordinal` of `net`
    /// (0-based position among the network's convolutions). The network
    /// itself is *not* modified — apply the returned decision with
    /// [`hs_nn::surgery::prune_feature_maps`].
    ///
    /// # Errors
    ///
    /// Returns [`HeadStartError::BadConfig`] for an invalid config,
    /// [`HeadStartError::BadTarget`] for a bad ordinal, and propagates
    /// network errors.
    pub fn prune(
        &self,
        net: &mut Network,
        conv_ordinal: usize,
        ds: &Dataset,
        rng: &mut Rng,
    ) -> Result<LayerDecision, HeadStartError> {
        self.cfg.validate()?;
        let sites = conv_sites(net);
        let site = *sites
            .get(conv_ordinal)
            .ok_or_else(|| HeadStartError::BadTarget {
                detail: format!(
                    "conv ordinal {conv_ordinal} out of range ({} convs)",
                    sites.len()
                ),
            })?;
        let channels = net.conv(site.conv)?.out_channels();

        // Evaluation split: a fixed prefix of the training set (the
        // generators interleave classes, so it is class-balanced).
        let n_eval = self.cfg.eval_images.min(ds.train_labels.len());
        let idx: Vec<usize> = (0..n_eval).collect();
        let eval_images = ds.train_images.index_select(0, &idx)?;
        let eval_labels: Vec<usize> = ds.train_labels[..n_eval].to_vec();
        let evaluator = MaskedEvaluator::new(net, site.mask_node, &eval_images, &eval_labels)?;
        let acc_original = evaluator.baseline_accuracy();

        let mut policy = HeadStartNetwork::with_hyperparams(
            channels,
            self.cfg.noise_size,
            self.cfg.lr,
            self.cfg.weight_decay,
            rng,
        )?;
        let fixed_noise = policy.sample_noise(rng);

        let mut reward_history = Vec::new();
        let mut prob_history: Vec<Vec<f32>> = Vec::new();
        let mut episodes = 0usize;
        let mut probs = vec![0.5f32; channels];
        for episode in 0..self.cfg.max_episodes {
            episodes = episode + 1;
            let noise = if self.cfg.resample_noise {
                policy.sample_noise(rng)
            } else {
                fixed_noise.clone()
            };
            probs = policy.probs(&noise)?;

            // k Monte-Carlo samples (Eq. 6) ...
            let mut actions = Vec::with_capacity(self.cfg.k);
            let mut rewards = Vec::with_capacity(self.cfg.k);
            for _ in 0..self.cfg.k {
                let action = sample_action(&probs, rng);
                let r = self.action_reward(net, &evaluator, &action, channels, acc_original)?;
                actions.push(action);
                rewards.push(r);
            }
            // ... and the self-critical baseline R(Aᴵ) (Eqs. 9–10).
            let inf = inference_action(&probs, self.cfg.t);
            let r_inf = self.action_reward(net, &evaluator, &inf, channels, acc_original)?;
            let baseline = if self.cfg.self_critical_baseline {
                r_inf
            } else {
                0.0
            };

            let grad = logit_gradient(&probs, &actions, &rewards, baseline);
            policy.train_step(&grad)?;
            reward_history.push(r_inf);
            prob_history.push(probs.clone());
            // Converged when both the reward and the policy itself have
            // stopped moving over the stability window.
            let drift_ok = prob_history.len() > self.cfg.stability_window
                && policy_drift(
                    &prob_history[prob_history.len() - 1 - self.cfg.stability_window],
                    &probs,
                ) < self.cfg.drift_tol;
            if episodes >= self.cfg.min_episodes
                && drift_ok
                && is_stable(
                    &reward_history,
                    self.cfg.stability_window,
                    self.cfg.stability_tol,
                )
            {
                break;
            }
        }

        // The final inception: the inference action of the converged
        // policy, guarded against the degenerate empty action.
        let mut final_action = inference_action(&probs, self.cfg.t);
        if kept_count(&final_action) == 0 {
            let best = probs
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .unwrap_or(0);
            final_action[best] = true;
        }
        let inception_eval_accuracy = evaluator.accuracy_with_action(net, &final_action)?;
        let keep: Vec<usize> = final_action
            .iter()
            .enumerate()
            .filter_map(|(i, &a)| a.then_some(i))
            .collect();
        Ok(LayerDecision {
            keep,
            probs,
            episodes,
            reward_history,
            inception_eval_accuracy,
        })
    }

    fn action_reward(
        &self,
        net: &mut Network,
        evaluator: &MaskedEvaluator,
        action: &[bool],
        channels: usize,
        acc_original: f32,
    ) -> Result<f32, HeadStartError> {
        let kept = kept_count(action);
        if kept == 0 {
            // No defined speedup; prohibitive penalty, skip the forward.
            return Ok(reward(0.0, acc_original, channels, 0, self.cfg.sp));
        }
        let acc = evaluator.accuracy_with_action(net, action)?;
        Ok(reward(acc, acc_original, channels, kept, self.cfg.sp))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs_data::DatasetSpec;
    use hs_nn::models;

    fn tiny_setup() -> (Dataset, Network, Rng) {
        let ds = Dataset::generate(
            &DatasetSpec::cifar_like()
                .classes(4)
                .train_per_class(8)
                .test_per_class(4)
                .image_size(8),
        )
        .unwrap();
        let mut rng = Rng::seed_from(0);
        let net = models::vgg11(3, 4, 8, 0.25, &mut rng).unwrap();
        (ds, net, rng)
    }

    #[test]
    fn decision_has_consistent_fields() {
        let (ds, mut net, mut rng) = tiny_setup();
        let cfg = HeadStartConfig::new(2.0).max_episodes(8).eval_images(16);
        let d = LayerPruner::new(cfg)
            .prune(&mut net, 0, &ds, &mut rng)
            .unwrap();
        assert!(!d.keep.is_empty());
        assert!(d.keep.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(d.probs.len(), 16); // vgg11 @ 0.25 width: first conv = 16 maps
        assert!(d.episodes >= 1 && d.episodes <= 8);
        assert_eq!(d.reward_history.len(), d.episodes);
        assert!((0.0..=1.0).contains(&d.inception_eval_accuracy));
        // Network untouched: all 16 maps still present.
        assert_eq!(net.conv(net.conv_indices()[0]).unwrap().out_channels(), 16);
    }

    #[test]
    fn learned_speedup_approaches_target() {
        let (ds, mut net, mut rng) = tiny_setup();
        // Give the policy room to converge.
        let cfg = HeadStartConfig::new(2.0).max_episodes(60).eval_images(16);
        let d = LayerPruner::new(cfg)
            .prune(&mut net, 1, &ds, &mut rng)
            .unwrap();
        let channels = 32; // vgg11 @ 0.25: second conv
        let learned_sp = channels as f32 / d.keep.len() as f32;
        assert!(
            (learned_sp - 2.0).abs() < 1.0,
            "learned speedup {learned_sp} too far from target 2.0 (kept {} of {channels})",
            d.keep.len()
        );
    }

    #[test]
    fn rejects_bad_ordinal_and_config() {
        let (ds, mut net, mut rng) = tiny_setup();
        let cfg = HeadStartConfig::new(2.0).max_episodes(2).eval_images(8);
        assert!(LayerPruner::new(cfg.clone())
            .prune(&mut net, 99, &ds, &mut rng)
            .is_err());
        let bad = HeadStartConfig::new(0.1);
        assert!(LayerPruner::new(bad)
            .prune(&mut net, 0, &ds, &mut rng)
            .is_err());
    }

    #[test]
    fn reward_history_is_finite() {
        let (ds, mut net, mut rng) = tiny_setup();
        let cfg = HeadStartConfig::new(3.0).max_episodes(6).eval_images(8);
        let d = LayerPruner::new(cfg)
            .prune(&mut net, 0, &ds, &mut rng)
            .unwrap();
        assert!(d.reward_history.iter().all(|r| r.is_finite()));
    }
}
