//! Per-layer HeadStart pruning: the RL loop of Section III, as a thin
//! adapter over the shared [`EpisodeEngine`].

use hs_data::Dataset;
use hs_nn::surgery::conv_sites;
use hs_nn::Network;
use hs_tensor::Rng;

use crate::config::HeadStartConfig;
use crate::engine::{
    EngineObserver, EpisodeEngine, EpisodeTrace, EvalExecutor, NullObserver, SerialExecutor,
};
use crate::error::HeadStartError;
use crate::evaluator::MaskedEvaluator;
use crate::units::LayerUnit;

/// The outcome of pruning one layer: the learned inception.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerDecision {
    /// Indices of the feature maps to keep (sorted ascending).
    pub keep: Vec<usize>,
    /// Final keep probabilities emitted by the policy.
    pub probs: Vec<f32>,
    /// Episode trace emitted by the engine (episode count, per-episode
    /// inference rewards, convergence reason).
    pub trace: EpisodeTrace,
    /// Evaluation-batch accuracy of the chosen action, before surgery
    /// and fine-tuning (the inception accuracy on the eval split).
    pub inception_eval_accuracy: f32,
}

impl LayerDecision {
    /// Episodes the policy trained for.
    pub fn episodes(&self) -> usize {
        self.trace.episodes
    }

    /// Reward of the inference action per episode (convergence trace).
    pub fn reward_history(&self) -> &[f32] {
        &self.trace.reward_history
    }
}

/// Trains one head-start network against one convolutional layer and
/// extracts the learned keep set.
#[derive(Debug, Clone)]
pub struct LayerPruner {
    cfg: HeadStartConfig,
}

impl LayerPruner {
    /// Creates a pruner with the given configuration.
    pub fn new(cfg: HeadStartConfig) -> Self {
        LayerPruner { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &HeadStartConfig {
        &self.cfg
    }

    /// Runs the RL loop against conv ordinal `conv_ordinal` of `net`
    /// (0-based position among the network's convolutions). The network
    /// itself is *not* modified — apply the returned decision with
    /// [`hs_nn::surgery::prune_feature_maps`].
    ///
    /// # Errors
    ///
    /// Returns [`HeadStartError::BadConfig`] for an invalid config,
    /// [`HeadStartError::BadTarget`] for a bad ordinal, and propagates
    /// network errors.
    pub fn prune(
        &self,
        net: &mut Network,
        conv_ordinal: usize,
        ds: &Dataset,
        rng: &mut Rng,
    ) -> Result<LayerDecision, HeadStartError> {
        self.prune_observed(net, conv_ordinal, ds, rng, &mut NullObserver)
    }

    /// As [`LayerPruner::prune`], reporting each episode to `observer`.
    ///
    /// # Errors
    ///
    /// As [`LayerPruner::prune`].
    pub fn prune_observed(
        &self,
        net: &mut Network,
        conv_ordinal: usize,
        ds: &Dataset,
        rng: &mut Rng,
        observer: &mut dyn EngineObserver,
    ) -> Result<LayerDecision, HeadStartError> {
        self.prune_executed(net, conv_ordinal, ds, rng, observer, &mut SerialExecutor)
    }

    /// As [`LayerPruner::prune_observed`], evaluating each episode's
    /// candidate batch through `executor` (bit-identical for every
    /// executor; only wall-clock differs).
    ///
    /// # Errors
    ///
    /// As [`LayerPruner::prune`].
    pub fn prune_executed(
        &self,
        net: &mut Network,
        conv_ordinal: usize,
        ds: &Dataset,
        rng: &mut Rng,
        observer: &mut dyn EngineObserver,
        executor: &mut dyn EvalExecutor,
    ) -> Result<LayerDecision, HeadStartError> {
        self.cfg.validate()?;
        let sites = conv_sites(net);
        let site = *sites
            .get(conv_ordinal)
            .ok_or_else(|| HeadStartError::BadTarget {
                detail: format!(
                    "conv ordinal {conv_ordinal} out of range ({} convs)",
                    sites.len()
                ),
            })?;

        // Evaluation split: a fixed prefix of the training set (the
        // generators interleave classes, so it is class-balanced).
        let n_eval = self.cfg.eval_images.min(ds.train_labels.len());
        let idx: Vec<usize> = (0..n_eval).collect();
        let eval_images = ds.train_images.index_select(0, &idx)?;
        let eval_labels: Vec<usize> = ds.train_labels[..n_eval].to_vec();
        let evaluator = MaskedEvaluator::new(net, site.mask_node, &eval_images, &eval_labels)?;

        let mut unit = LayerUnit::new(&evaluator, self.cfg.sp);
        let outcome =
            EpisodeEngine::new(&self.cfg).run_executed(net, &mut unit, rng, observer, executor)?;
        let inception_eval_accuracy = unit.accuracy(net, &outcome.final_action)?;
        let keep: Vec<usize> = outcome
            .final_action
            .iter()
            .enumerate()
            .filter_map(|(i, &a)| a.then_some(i))
            .collect();
        Ok(LayerDecision {
            keep,
            probs: outcome.probs,
            trace: outcome.trace,
            inception_eval_accuracy,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs_data::DatasetSpec;
    use hs_nn::models;

    fn tiny_setup() -> (Dataset, Network, Rng) {
        let ds = Dataset::generate(
            &DatasetSpec::cifar_like()
                .classes(4)
                .train_per_class(8)
                .test_per_class(4)
                .image_size(8),
        )
        .unwrap();
        let mut rng = Rng::seed_from(0);
        let net = models::vgg11(3, 4, 8, 0.25, &mut rng).unwrap();
        (ds, net, rng)
    }

    #[test]
    fn decision_has_consistent_fields() {
        let (ds, mut net, mut rng) = tiny_setup();
        let cfg = HeadStartConfig::new(2.0).max_episodes(8).eval_images(16);
        let d = LayerPruner::new(cfg)
            .prune(&mut net, 0, &ds, &mut rng)
            .unwrap();
        assert!(!d.keep.is_empty());
        assert!(d.keep.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(d.probs.len(), 16); // vgg11 @ 0.25 width: first conv = 16 maps
        assert!(d.episodes() >= 1 && d.episodes() <= 8);
        assert_eq!(d.reward_history().len(), d.episodes());
        assert!((0.0..=1.0).contains(&d.inception_eval_accuracy));
        // Network untouched: all 16 maps still present.
        assert_eq!(net.conv(net.conv_indices()[0]).unwrap().out_channels(), 16);
    }

    #[test]
    fn learned_speedup_approaches_target() {
        let (ds, mut net, mut rng) = tiny_setup();
        // Give the policy room to converge.
        let cfg = HeadStartConfig::new(2.0).max_episodes(60).eval_images(16);
        let d = LayerPruner::new(cfg)
            .prune(&mut net, 1, &ds, &mut rng)
            .unwrap();
        let channels = 32; // vgg11 @ 0.25: second conv
        let learned_sp = channels as f32 / d.keep.len() as f32;
        assert!(
            (learned_sp - 2.0).abs() < 1.0,
            "learned speedup {learned_sp} too far from target 2.0 (kept {} of {channels})",
            d.keep.len()
        );
    }

    #[test]
    fn rejects_bad_ordinal_and_config() {
        let (ds, mut net, mut rng) = tiny_setup();
        let cfg = HeadStartConfig::new(2.0).max_episodes(2).eval_images(8);
        assert!(LayerPruner::new(cfg.clone())
            .prune(&mut net, 99, &ds, &mut rng)
            .is_err());
        let bad = HeadStartConfig::new(0.1);
        assert!(LayerPruner::new(bad)
            .prune(&mut net, 0, &ds, &mut rng)
            .is_err());
    }

    #[test]
    fn reward_history_is_finite() {
        let (ds, mut net, mut rng) = tiny_setup();
        let cfg = HeadStartConfig::new(3.0).max_episodes(6).eval_images(8);
        let d = LayerPruner::new(cfg)
            .prune(&mut net, 0, &ds, &mut rng)
            .unwrap();
        assert!(d.reward_history().iter().all(|r| r.is_finite()));
    }

    #[test]
    fn observer_trace_matches_decision() {
        use crate::engine::{EpisodeEvent, EpisodeTrace};

        #[derive(Default)]
        struct Collect {
            rewards: Vec<f32>,
            traces: Vec<EpisodeTrace>,
        }
        impl EngineObserver for Collect {
            fn on_episode(&mut self, e: &EpisodeEvent<'_>) {
                assert_eq!(e.unit_kind, "layer");
                self.rewards.push(e.inference_reward);
            }
            fn on_converged(&mut self, _k: &'static str, t: &EpisodeTrace) {
                self.traces.push(t.clone());
            }
        }

        let (ds, mut net, mut rng) = tiny_setup();
        let cfg = HeadStartConfig::new(2.0).max_episodes(5).eval_images(8);
        let mut obs = Collect::default();
        let d = LayerPruner::new(cfg)
            .prune_observed(&mut net, 0, &ds, &mut rng, &mut obs)
            .unwrap();
        assert_eq!(obs.rewards, d.trace.reward_history);
        assert_eq!(obs.traces, vec![d.trace.clone()]);
    }
}
