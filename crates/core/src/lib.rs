//! **HeadStart**: reinforcement-learning structured pruning that targets
//! the *optimal inception* — the reproduction of Lin, Lu, Wei & Li,
//! "HeadStart: Enforcing Optimal Inceptions in Pruning Deep Neural
//! Networks for Efficient Inference on GPGPUs" (DAC 2019).
//!
//! For every convolutional layer a small *head-start network* (three
//! convolutions + one fully connected layer, fed a Gaussian noise map)
//! outputs per-feature-map keep probabilities. Binary actions are drawn
//! from a Bernoulli distribution over those probabilities (Eq. 6), the
//! masked model's accuracy produces the reward
//!
//! ```text
//! R(A) = log(acc'/acc + 1) − |C/‖A‖₀ − sp|        (Eqs. 2–4)
//! ```
//!
//! and REINFORCE with the self-critical baseline `R(Aᴵ)`, where
//! `Aᴵ = 𝜑ₜ(p)` thresholds the probabilities at `t` (Eqs. 8–10), trains
//! the policy until loss and reward stabilize. The surviving-filter set —
//! the *inception* — is then made physical by channel surgery and the
//! model is fine-tuned before moving to the next layer.
//!
//! The same machinery prunes whole residual blocks of a ResNet
//! ([`BlockPruner`]), reproducing the paper's Table 4 experiment.
//!
//! # Example
//!
//! ```
//! use hs_core::{HeadStartConfig, LayerPruner};
//! use hs_data::{Dataset, DatasetSpec};
//! use hs_nn::models;
//! use hs_tensor::Rng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ds = Dataset::generate(
//!     &DatasetSpec::cifar_like().classes(2).train_per_class(4).test_per_class(2).image_size(8),
//! )?;
//! let mut rng = Rng::seed_from(0);
//! let mut net = models::vgg11(3, 2, 8, 0.125, &mut rng)?;
//! let cfg = HeadStartConfig::new(2.0).max_episodes(4).eval_images(8);
//! let decision = LayerPruner::new(cfg).prune(&mut net, 0, &ds, &mut rng)?;
//! assert!(!decision.keep.is_empty());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod block;
pub mod block_inner;
mod config;
mod criterion;
pub mod engine;
mod error;
mod evaluator;
mod layer;
pub mod model;
pub mod observe;
mod policy;
pub mod reinforce;
pub mod reward;
pub mod units;

pub use block::{BlockDecision, BlockPruner};
pub use block_inner::{
    prune_all_block_inners, prune_all_block_inners_executed, prune_all_block_inners_observed,
    InnerLayerPruner,
};
pub use config::{GuardPolicy, HeadStartConfig};
pub use criterion::HeadStartCriterion;
pub use engine::{
    ConvergenceReason, EngineObserver, EngineOutcome, EpisodeEngine, EpisodeEvent, EpisodeTrace,
    EvalExecutor, GuardAction, GuardReason, NullObserver, ParallelReward, PruningUnit,
    RecoveryEvent, SerialExecutor, StderrObserver,
};
pub use error::HeadStartError;
pub use evaluator::MaskedEvaluator;
pub use layer::{LayerDecision, LayerPruner};
pub use model::HeadStartPruner;
pub use observe::TelemetryObserver;
pub use policy::HeadStartNetwork;
pub use units::{BlockUnit, InnerUnit, LayerUnit};
