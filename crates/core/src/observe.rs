//! Telemetry-backed engine observation.
//!
//! [`TelemetryObserver`] turns the engine's [`EpisodeEvent`] stream into
//! the workspace's structured telemetry: one `episode` JSONL event per
//! REINFORCE episode carrying the paper's per-episode quantities — the
//! reward `R(Aᴵ)` and its decomposition into `ACC` and `SPD` (Eqs. 2–4),
//! the inception size `‖Aᴵ‖₀`, the self-critical baseline, and the
//! policy-gradient diagnostics (mean advantage of the sampled actions and
//! the Bernoulli policy entropy) — plus `hs_core_*` metrics recorded into
//! the global registry.
//!
//! The decomposition needs no extra evaluation passes: the engine reports
//! `R = ACC − SPD`, and `SPD = |C/‖Aᴵ‖₀ − sp|` is a closed form of the
//! event's `probs.len()` and `inference_l0`, so `ACC = R + SPD`.

use std::sync::OnceLock;

use hs_telemetry::metrics::{self, Counter, Histogram};
use hs_telemetry::{flight, trace, Event, EventKind, Level, TraceCtx};

use crate::config::HeadStartConfig;
use crate::engine::{EngineObserver, EpisodeEvent, EpisodeTrace, RecoveryEvent};
use crate::reward::spd_term;

fn episodes_total() -> &'static Counter {
    static HANDLE: OnceLock<&'static Counter> = OnceLock::new();
    HANDLE.get_or_init(|| metrics::counter("hs_core_episodes_total"))
}

fn convergences_total() -> &'static Counter {
    static HANDLE: OnceLock<&'static Counter> = OnceLock::new();
    HANDLE.get_or_init(|| metrics::counter("hs_core_convergences_total"))
}

fn recoveries_total() -> &'static Counter {
    static HANDLE: OnceLock<&'static Counter> = OnceLock::new();
    HANDLE.get_or_init(|| metrics::counter("hs_core_guard_recoveries_total"))
}

fn reward_hist() -> &'static Histogram {
    static HANDLE: OnceLock<&'static Histogram> = OnceLock::new();
    HANDLE.get_or_init(|| {
        metrics::histogram(
            "hs_core_inference_reward",
            &[-8.0, -4.0, -2.0, -1.0, -0.5, -0.25, 0.0, 0.25, 0.5, 1.0],
        )
    })
}

/// Mean Bernoulli entropy (nats) of the policy's keep probabilities — a
/// measure of how committed the policy is to its inception.
pub fn policy_entropy(probs: &[f32]) -> f32 {
    if probs.is_empty() {
        return 0.0;
    }
    let sum: f32 = probs
        .iter()
        .map(|&p| {
            let p = p.clamp(1e-7, 1.0 - 1e-7);
            -(p * p.ln() + (1.0 - p) * (1.0 - p).ln())
        })
        .sum();
    sum / probs.len() as f32
}

/// An [`EngineObserver`] that emits one telemetry `episode` event per
/// episode (at [`Level::Debug`]) and records `hs_core_*` metrics.
///
/// Needs the config's speedup target `sp` to split the reward back into
/// its `ACC` and `SPD` halves.
#[derive(Debug, Clone, Copy)]
pub struct TelemetryObserver {
    sp: f32,
    /// Context string for the event name, e.g. `"conv:3"`; events are
    /// named `<unit_kind>/<context>`.
    context_id: usize,
    /// When set, episode/recovery events carry trace ids derived from
    /// this seed via [`trace::unit_ctx`] — the same derivation
    /// `hs-coord` uses, so a unit's episodes and its worker shards share
    /// one trace.
    trace_seed: Option<u64>,
    /// Root span of the unit currently being pruned.
    unit_ctx: Option<TraceCtx>,
    /// Child-span counter within the current unit (episodes and
    /// recoveries share it so spans never collide).
    unit_seq: u64,
}

impl TelemetryObserver {
    /// Creates an observer deriving `SPD` against the given target.
    pub fn new(sp: f32) -> TelemetryObserver {
        TelemetryObserver {
            sp,
            context_id: 0,
            trace_seed: None,
            unit_ctx: None,
            unit_seq: 0,
        }
    }

    /// Creates an observer for a configuration.
    pub fn from_config(cfg: &HeadStartConfig) -> TelemetryObserver {
        TelemetryObserver::new(cfg.sp)
    }

    /// Sets the ordinal of the layer/block being pruned; it appears in
    /// event names (`layer:3`) so traces from a whole-model run stay
    /// attributable.
    #[must_use]
    pub fn context(mut self, ordinal: usize) -> TelemetryObserver {
        self.context_id = ordinal;
        self
    }

    /// Enables trace tagging: every episode/recovery event becomes a
    /// child span of the owning unit's root, derived from `seed`.
    #[must_use]
    pub fn with_trace_seed(mut self, seed: u64) -> TelemetryObserver {
        self.trace_seed = Some(seed);
        self
    }

    /// The next child span of the current unit, if tracing is on.
    fn next_span(&mut self) -> Option<TraceCtx> {
        let ctx = self.unit_ctx?;
        let span = ctx.child(self.unit_seq);
        self.unit_seq += 1;
        Some(span)
    }
}

impl EngineObserver for TelemetryObserver {
    fn on_unit_start(&mut self, unit_kind: &'static str, ordinal: usize) {
        self.context_id = ordinal;
        if let Some(seed) = self.trace_seed {
            self.unit_ctx = Some(trace::unit_ctx(seed, unit_kind, ordinal));
            self.unit_seq = 0;
        }
    }

    fn on_episode(&mut self, event: &EpisodeEvent<'_>) {
        episodes_total().inc();
        reward_hist().observe(event.inference_reward as f64);
        if !hs_telemetry::enabled(Level::Debug) {
            return;
        }
        let spd = spd_term(event.probs.len(), event.inference_l0, self.sp);
        let acc = event.inference_reward + spd;
        let mean_sampled = if event.sampled_rewards.is_empty() {
            0.0
        } else {
            event.sampled_rewards.iter().sum::<f32>() / event.sampled_rewards.len() as f32
        };
        let mut out = Event::new(
            EventKind::Episode,
            Level::Debug,
            format!("{}:{}", event.unit_kind, self.context_id),
        )
        .field("episode", event.episode)
        .field("reward", event.inference_reward)
        .field("acc", acc)
        .field("spd", spd)
        .field("l0", event.inference_l0)
        .field("units", event.probs.len())
        .field("baseline", event.baseline)
        .field("advantage_mean", mean_sampled - event.baseline)
        .field("policy_entropy", policy_entropy(event.probs));
        if let Some(span) = self.next_span() {
            out = out.traced(&span);
        }
        hs_telemetry::emit(out);
    }

    fn on_recovery(&mut self, unit_kind: &'static str, event: &RecoveryEvent) {
        recoveries_total().inc();
        let mut out = Event::new(
            EventKind::Recovery,
            Level::Warn,
            format!("{}:{}", unit_kind, self.context_id),
        )
        .message(format!(
            "divergence ({}) at episode {}; {}",
            event.reason.as_str(),
            event.episode,
            event.action.as_str()
        ))
        .field("reason", event.reason.as_str())
        .field("action", event.action.as_str())
        .field("episode", event.episode)
        .field("resets", event.resets);
        if let Some(span) = self.next_span() {
            out = out.traced(&span);
        }
        hs_telemetry::emit(out);
        // A guard recovery is exactly the "something just went wrong"
        // moment the flight recorder exists for.
        flight::trigger("guard_recovery");
    }

    fn on_converged(&mut self, unit_kind: &'static str, trace: &EpisodeTrace) {
        convergences_total().inc();
        hs_telemetry::log_with(
            Level::Debug,
            "hs-core",
            format!(
                "{unit_kind}:{} policy stopped after {} episodes ({:?})",
                self.context_id, trace.episodes, trace.convergence
            ),
            vec![
                ("episodes".to_string(), trace.episodes.into()),
                ("converged".to_string(), trace.converged().into()),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_peaks_at_half_and_vanishes_at_certainty() {
        let uniform = policy_entropy(&[0.5, 0.5]);
        assert!((uniform - 2.0f32.ln()).abs() < 1e-5);
        assert!(policy_entropy(&[0.0, 1.0]) < 1e-4);
        assert!(policy_entropy(&[]).abs() < 1e-9);
        assert!(policy_entropy(&[0.5, 1.0]) < uniform);
    }

    #[test]
    fn observer_records_episode_metrics() {
        let before = episodes_total().get();
        let probs = vec![0.9f32, 0.2, 0.7];
        let rewards = vec![0.1f32, -0.3];
        let mut obs = TelemetryObserver::new(2.0).context(5);
        obs.on_episode(&EpisodeEvent {
            unit_kind: "layer",
            episode: 0,
            probs: &probs,
            sampled_rewards: &rewards,
            inference_reward: -0.2,
            baseline: -0.2,
            inference_l0: 2,
        });
        assert_eq!(episodes_total().get(), before + 1);
        assert!(reward_hist().count() > 0);
    }

    #[test]
    fn acc_spd_split_inverts_the_reward() {
        // reward = ACC − SPD by construction; the observer's ACC = R + SPD
        // must therefore recover the ACC used to build the reward.
        let sp = 2.0;
        let (total, kept) = (64, 30);
        let acc = 0.55f32;
        let reward = acc - spd_term(total, kept, sp);
        let recovered = reward + spd_term(total, kept, sp);
        assert!((recovered - acc).abs() < 1e-6);
    }
}
