//! HeadStart hyper-parameters.

use crate::error::HeadStartError;

/// Divergence-guard policy for the episode engine.
///
/// REINFORCE on a misconfigured reward can diverge — NaN/Inf rewards
/// from a broken evaluation, exploding magnitudes, or a policy that
/// saturates to certainty before learning anything. The guard watches
/// every episode for these symptoms; on detection the engine resets the
/// head-start policy and retries the unit, and after `max_resets`
/// failed retries falls back to a deterministic keep-everything
/// inception instead of aborting the whole pipeline run.
///
/// Defaults are conservative: non-finite rewards are always treated as
/// divergence (healthy arithmetic cannot produce them), while the
/// magnitude and entropy checks ship disabled (`reward_limit =
/// infinity`, `entropy_floor = 0`) so guarded runs stay bit-identical
/// to unguarded ones on the normal path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardPolicy {
    /// Policy resets attempted before the deterministic fallback.
    pub max_resets: usize,
    /// Absolute reward magnitude above which an episode counts as
    /// exploding. `f32::INFINITY` (the default) disables the check;
    /// NaN/Inf rewards are divergent regardless.
    pub reward_limit: f32,
    /// Mean Bernoulli policy entropy (nats) below which the policy
    /// counts as collapsed. `0.0` (the default) disables the check.
    pub entropy_floor: f32,
    /// Episodes to wait before the entropy check applies, so a policy
    /// that legitimately commits fast is not misread as collapsed.
    pub entropy_grace: usize,
}

impl Default for GuardPolicy {
    fn default() -> GuardPolicy {
        GuardPolicy {
            max_resets: 2,
            reward_limit: f32::INFINITY,
            entropy_floor: 0.0,
            entropy_grace: 20,
        }
    }
}

impl GuardPolicy {
    /// Validates the guard fields.
    ///
    /// # Errors
    ///
    /// Returns [`HeadStartError::BadConfig`] naming the first invalid
    /// field.
    pub fn validate(&self) -> Result<(), HeadStartError> {
        let bad =
            |field: &'static str, detail: String| Err(HeadStartError::BadConfig { field, detail });
        if self.reward_limit.is_nan() || self.reward_limit <= 0.0 {
            return bad("guard.reward_limit", format!("{}", self.reward_limit));
        }
        if !self.entropy_floor.is_finite() || self.entropy_floor < 0.0 {
            return bad("guard.entropy_floor", format!("{}", self.entropy_floor));
        }
        Ok(())
    }
}

/// Hyper-parameters of the HeadStart pruner.
///
/// Defaults follow Section IV-A of the paper: `k = 3` Monte-Carlo
/// samples, threshold `t = 0.5`, RMSprop with weight decay `5e-4` (the
/// paper prints `5×10⁴`, an obvious typo for the standard value),
/// pruning each layer "until we observe a nearly constant loss and
/// reward". The learning rate is the paper's `1e-3` (`10³` as
/// printed); at this reproduction's reduced scale convergence typically
/// needs 100–300 episodes per layer, which the default budget allows.
///
/// # Example
///
/// ```
/// use hs_core::HeadStartConfig;
///
/// let cfg = HeadStartConfig::new(2.0).monte_carlo_samples(5).threshold(0.6);
/// assert!(cfg.validate().is_ok());
/// assert_eq!(cfg.sp, 2.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HeadStartConfig {
    /// Target speedup `sp` (compression ratio is `1/sp`, Eq. 11).
    pub sp: f32,
    /// Monte-Carlo action samples per episode (`k` in Eq. 6).
    pub k: usize,
    /// Inference-action threshold (`t` in Eq. 10).
    pub t: f32,
    /// RMSprop learning rate for the head-start network.
    pub lr: f32,
    /// RMSprop weight decay for the head-start network.
    pub weight_decay: f32,
    /// Hard cap on training episodes per layer.
    pub max_episodes: usize,
    /// Minimum episodes before convergence can trigger.
    pub min_episodes: usize,
    /// Width of the reward-stability window.
    pub stability_window: usize,
    /// Reward spread below which the window counts as stable.
    pub stability_tol: f32,
    /// Maximum policy drift (max |Δp| against the probabilities from
    /// `stability_window` episodes earlier) below which the policy
    /// counts as converged.
    pub drift_tol: f32,
    /// Number of training images used to evaluate candidate inceptions.
    pub eval_images: usize,
    /// Spatial extent of the Gaussian noise map fed to the policy.
    pub noise_size: usize,
    /// Re-sample the policy's noise input every episode instead of
    /// fixing it per layer (ablation knob; the default fixed map gives a
    /// stationary optimization target).
    pub resample_noise: bool,
    /// Use the self-critical baseline `R(Aᴵ)` of Eq. 9. Turning this off
    /// (plain REINFORCE, Eq. 7) is the paper's implicit ablation for the
    /// variance-reduction claim.
    pub self_critical_baseline: bool,
    /// Divergence-guard policy (NaN rewards, exploding magnitudes,
    /// entropy collapse) for the episode engine.
    pub guard: GuardPolicy,
}

impl HeadStartConfig {
    /// Creates a config with the paper's defaults for target speedup
    /// `sp`.
    pub fn new(sp: f32) -> Self {
        HeadStartConfig {
            sp,
            k: 3,
            t: 0.5,
            lr: 1e-3,
            weight_decay: 5e-4,
            max_episodes: 300,
            min_episodes: 60,
            stability_window: 12,
            stability_tol: 0.005,
            drift_tol: 0.01,
            eval_images: 128,
            noise_size: 8,
            resample_noise: false,
            self_critical_baseline: true,
            guard: GuardPolicy::default(),
        }
    }

    /// Sets the divergence-guard policy (builder style).
    pub fn guard_policy(mut self, guard: GuardPolicy) -> Self {
        self.guard = guard;
        self
    }

    /// Sets `k`, the Monte-Carlo sample count (builder style).
    pub fn monte_carlo_samples(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Sets the inference threshold `t` (builder style).
    pub fn threshold(mut self, t: f32) -> Self {
        self.t = t;
        self
    }

    /// Sets the episode cap (builder style). `min_episodes` is clamped
    /// down to stay consistent.
    pub fn max_episodes(mut self, n: usize) -> Self {
        self.max_episodes = n;
        self.min_episodes = self.min_episodes.min(n);
        self
    }

    /// Sets the evaluation-subset size (builder style).
    pub fn eval_images(mut self, n: usize) -> Self {
        self.eval_images = n;
        self
    }

    /// Sets the policy learning rate (builder style).
    pub fn learning_rate(mut self, lr: f32) -> Self {
        self.lr = lr;
        self
    }

    /// Disables the self-critical baseline (plain REINFORCE; builder
    /// style, for ablations).
    pub fn without_baseline(mut self) -> Self {
        self.self_critical_baseline = false;
        self
    }

    /// Validates every field.
    ///
    /// # Errors
    ///
    /// Returns [`HeadStartError::BadConfig`] naming the first invalid
    /// field.
    pub fn validate(&self) -> Result<(), HeadStartError> {
        let bad =
            |field: &'static str, detail: String| Err(HeadStartError::BadConfig { field, detail });
        if !self.sp.is_finite() || self.sp < 1.0 {
            return bad("sp", format!("{} (speedup must be >= 1)", self.sp));
        }
        if self.k == 0 {
            return bad("k", "need at least one Monte-Carlo sample".into());
        }
        if !(0.0..=1.0).contains(&self.t) {
            return bad("t", format!("{} is not a probability threshold", self.t));
        }
        if !self.lr.is_finite() || self.lr <= 0.0 {
            return bad("lr", format!("{}", self.lr));
        }
        if self.max_episodes == 0 {
            return bad("max_episodes", "must be > 0".into());
        }
        if self.min_episodes > self.max_episodes {
            return bad(
                "min_episodes",
                format!(
                    "{} exceeds max_episodes {}",
                    self.min_episodes, self.max_episodes
                ),
            );
        }
        if self.stability_window == 0 {
            return bad("stability_window", "must be > 0".into());
        }
        if !self.drift_tol.is_finite() || self.drift_tol < 0.0 {
            return bad("drift_tol", format!("{}", self.drift_tol));
        }
        if self.eval_images == 0 {
            return bad("eval_images", "must be > 0".into());
        }
        if self.noise_size < 4 {
            return bad(
                "noise_size",
                format!("{} below the 4px minimum", self.noise_size),
            );
        }
        self.guard.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let cfg = HeadStartConfig::new(2.0);
        assert_eq!(cfg.k, 3);
        assert_eq!(cfg.t, 0.5);
        assert!(cfg.self_critical_baseline);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn invalid_fields_are_rejected() {
        assert!(HeadStartConfig::new(0.5).validate().is_err());
        assert!(HeadStartConfig::new(2.0)
            .monte_carlo_samples(0)
            .validate()
            .is_err());
        assert!(HeadStartConfig::new(2.0).threshold(1.5).validate().is_err());
        assert!(HeadStartConfig::new(2.0)
            .max_episodes(0)
            .validate()
            .is_err());
        assert!(HeadStartConfig::new(2.0).eval_images(0).validate().is_err());
        assert!(HeadStartConfig::new(2.0)
            .learning_rate(0.0)
            .validate()
            .is_err());
    }

    #[test]
    fn guard_defaults_are_conservative_and_validated() {
        let guard = GuardPolicy::default();
        assert_eq!(guard.max_resets, 2);
        assert!(guard.reward_limit.is_infinite());
        assert_eq!(guard.entropy_floor, 0.0);
        assert!(guard.validate().is_ok());
        let bad = GuardPolicy {
            reward_limit: f32::NAN,
            ..GuardPolicy::default()
        };
        assert!(HeadStartConfig::new(2.0)
            .guard_policy(bad)
            .validate()
            .is_err());
        let bad = GuardPolicy {
            entropy_floor: -1.0,
            ..GuardPolicy::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn builders_set_fields() {
        let cfg = HeadStartConfig::new(5.0)
            .monte_carlo_samples(7)
            .threshold(0.4)
            .max_episodes(99)
            .eval_images(16)
            .learning_rate(0.01)
            .without_baseline();
        assert_eq!(cfg.sp, 5.0);
        assert_eq!(cfg.k, 7);
        assert_eq!(cfg.t, 0.4);
        assert_eq!(cfg.max_episodes, 99);
        assert_eq!(cfg.eval_images, 16);
        assert!(!cfg.self_critical_baseline);
    }
}
