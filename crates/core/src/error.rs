//! Error type for the HeadStart pruner.

use std::error::Error;
use std::fmt;

use hs_nn::NnError;
use hs_pruning::PruneError;
use hs_tensor::TensorError;

/// Error returned by HeadStart pruning.
#[derive(Debug, Clone, PartialEq)]
pub enum HeadStartError {
    /// An underlying network operation failed.
    Nn(NnError),
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// A baseline-pruning utility failed.
    Prune(PruneError),
    /// A configuration field is invalid.
    BadConfig {
        /// Which field.
        field: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// The requested layer/block target does not exist.
    BadTarget {
        /// Human-readable detail.
        detail: String,
    },
}

impl fmt::Display for HeadStartError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeadStartError::Nn(e) => write!(f, "network error: {e}"),
            HeadStartError::Tensor(e) => write!(f, "tensor error: {e}"),
            HeadStartError::Prune(e) => write!(f, "pruning error: {e}"),
            HeadStartError::BadConfig { field, detail } => {
                write!(f, "bad headstart config ({field}): {detail}")
            }
            HeadStartError::BadTarget { detail } => write!(f, "bad pruning target: {detail}"),
        }
    }
}

impl Error for HeadStartError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            HeadStartError::Nn(e) => Some(e),
            HeadStartError::Tensor(e) => Some(e),
            HeadStartError::Prune(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for HeadStartError {
    fn from(e: NnError) -> Self {
        HeadStartError::Nn(e)
    }
}

impl From<TensorError> for HeadStartError {
    fn from(e: TensorError) -> Self {
        HeadStartError::Tensor(e)
    }
}

impl From<PruneError> for HeadStartError {
    fn from(e: PruneError) -> Self {
        HeadStartError::Prune(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_source() {
        let e: HeadStartError = TensorError::Empty { op: "stack" }.into();
        assert!(Error::source(&e).is_some());
        let e = HeadStartError::BadConfig {
            field: "sp",
            detail: "must be >= 1".into(),
        };
        assert!(e.to_string().contains("sp"));
    }
}
