//! Adapter exposing HeadStart through the baseline
//! [`PruningCriterion`] interface, for *controlled* comparisons where
//! every method must keep exactly the same number of maps (the paper's
//! Figure 3 single-layer study). The RL loop itself runs in the shared
//! [`EpisodeEngine`], exactly as in the native pruners.

use hs_data::{Dataset, DatasetSpec};
use hs_pruning::{top_k_indices, PruneError, PruningCriterion, ScoreContext};
use hs_tensor::Tensor;

use crate::config::HeadStartConfig;
use crate::engine::EpisodeEngine;
use crate::evaluator::MaskedEvaluator;
use crate::units::LayerUnit;

/// HeadStart as a drop-in [`PruningCriterion`].
///
/// The RL loop runs with `sp = C / keep`; the final importance scores
/// are the converged keep probabilities, so `keep_set` retains exactly
/// the requested count (unlike the native pipeline, where the learned
/// count may drift a few maps around the target, as in the paper's
/// Table 1).
#[derive(Debug, Clone)]
pub struct HeadStartCriterion {
    cfg: HeadStartConfig,
    /// Filled by `keep_set` so callers can inspect convergence.
    pub last_reward_history: Vec<f32>,
}

impl HeadStartCriterion {
    /// Creates the adapter. The config's `sp` field is overridden per
    /// call from the requested keep count.
    pub fn new(cfg: HeadStartConfig) -> Self {
        HeadStartCriterion {
            cfg,
            last_reward_history: Vec::new(),
        }
    }

    fn run_rl(&mut self, ctx: &mut ScoreContext<'_>, sp: f32) -> Result<Vec<f32>, PruneError> {
        let bad_scoring = |e: crate::error::HeadStartError| PruneError::BadScoringSet {
            detail: e.to_string(),
        };
        let mut cfg = self.cfg.clone();
        cfg.sp = sp;
        cfg.validate().map_err(bad_scoring)?;
        let evaluator = MaskedEvaluator::new(ctx.net, ctx.site.mask_node, ctx.images, ctx.labels)
            .map_err(bad_scoring)?;
        let mut unit = LayerUnit::new(&evaluator, cfg.sp);
        let outcome = EpisodeEngine::new(&cfg)
            .run(ctx.net, &mut unit, ctx.rng)
            .map_err(bad_scoring)?;
        self.last_reward_history = outcome.trace.reward_history;
        Ok(outcome.probs)
    }
}

impl PruningCriterion for HeadStartCriterion {
    fn name(&self) -> &'static str {
        "HeadStart"
    }

    fn score(&mut self, ctx: &mut ScoreContext<'_>) -> Result<Vec<f32>, PruneError> {
        // With no keep count given, train against the config's own sp.
        let sp = self.cfg.sp;
        self.run_rl(ctx, sp)
    }

    fn keep_set(
        &mut self,
        ctx: &mut ScoreContext<'_>,
        keep: usize,
    ) -> Result<Vec<usize>, PruneError> {
        let channels = ctx.channels()?;
        if keep == 0 || keep > channels {
            return Err(PruneError::BadKeepCount {
                keep,
                available: channels,
            });
        }
        let sp = channels as f32 / keep as f32;
        let probs = self.run_rl(ctx, sp.max(1.0))?;
        Ok(top_k_indices(&probs, keep))
    }
}

/// Convenience used by tests and examples: a minimal dataset and labels
/// from a spec, as plain tensors.
#[allow(dead_code)]
pub(crate) fn tiny_eval_set(spec: &DatasetSpec) -> (Tensor, Vec<usize>) {
    let ds = Dataset::generate(spec).expect("valid spec");
    (ds.train_images, ds.train_labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hs_nn::models;
    use hs_nn::surgery::conv_sites;
    use hs_tensor::Rng;

    #[test]
    fn keep_set_returns_exact_count() {
        let ds = Dataset::generate(
            &DatasetSpec::cifar_like()
                .classes(4)
                .train_per_class(8)
                .test_per_class(4)
                .image_size(8),
        )
        .unwrap();
        let mut rng = Rng::seed_from(0);
        let mut net = models::vgg11(3, 4, 8, 0.25, &mut rng).unwrap();
        let site = conv_sites(&net)[0];
        let mut crit =
            HeadStartCriterion::new(HeadStartConfig::new(2.0).max_episodes(6).eval_images(16));
        let mut ctx =
            ScoreContext::new(&mut net, site, &ds.train_images, &ds.train_labels, &mut rng);
        let keep = crit.keep_set(&mut ctx, 8).unwrap();
        assert_eq!(keep.len(), 8);
        assert!(keep.windows(2).all(|w| w[0] < w[1]));
        assert!(!crit.last_reward_history.is_empty());
        assert_eq!(crit.name(), "HeadStart");
    }

    #[test]
    fn keep_set_validates_count() {
        let ds = Dataset::generate(
            &DatasetSpec::cifar_like()
                .classes(2)
                .train_per_class(4)
                .test_per_class(2)
                .image_size(8),
        )
        .unwrap();
        let mut rng = Rng::seed_from(1);
        let mut net = models::vgg11(3, 2, 8, 0.25, &mut rng).unwrap();
        let site = conv_sites(&net)[0];
        let mut crit = HeadStartCriterion::new(HeadStartConfig::new(2.0).max_episodes(2));
        let mut ctx =
            ScoreContext::new(&mut net, site, &ds.train_images, &ds.train_labels, &mut rng);
        assert!(crit.keep_set(&mut ctx, 0).is_err());
        assert!(crit.keep_set(&mut ctx, 1000).is_err());
    }
}
